//! Property-based tests of the code-theory substrate: GF(2) algebra, code
//! constructions, edge coloring, and schedule invariants.

use proptest::prelude::*;
use qec::bb::{bivariate_bicycle, BbParameters, Monomial};
use qec::classical::ClassicalCode;
use qec::coloring::{edge_color_bipartite, is_proper_coloring};
use qec::hgp::{hgp_num_logical, hgp_num_qubits, hypergraph_product};
use qec::linalg::{dot, weight, xor_vec, BitMat};
use qec::schedule::{max_parallel_schedule, parallel_xz_schedule, serial_schedule};

fn arb_bitmat(max_rows: usize, max_cols: usize) -> impl Strategy<Value = BitMat> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(proptest::collection::vec(0u8..2, c), r)
            .prop_map(|rows| BitMat::from_dense(&rows))
    })
}

proptest! {
    // Deterministic: every case derives from this explicit seed (the workspace's
    // shared 0xC1C1_0DE5 convention), so a CI failure reproduces locally.
    #![proptest_config(ProptestConfig::with_cases(64).with_seed(0xC1C1_0DE5))]

    #[test]
    fn transpose_is_involution(m in arb_bitmat(12, 12)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn rank_invariant_under_transpose(m in arb_bitmat(10, 14)) {
        prop_assert_eq!(m.rank(), m.transpose().rank());
    }

    #[test]
    fn rank_plus_nullity_equals_columns(m in arb_bitmat(10, 12)) {
        prop_assert_eq!(m.rank() + m.null_space().len(), m.num_cols());
    }

    #[test]
    fn null_space_vectors_are_in_kernel(m in arb_bitmat(8, 10)) {
        for v in m.null_space() {
            prop_assert!(m.mul_vec(&v).iter().all(|&b| !b));
        }
    }

    #[test]
    fn solve_returns_valid_solutions(m in arb_bitmat(8, 10), x in proptest::collection::vec(any::<bool>(), 10)) {
        // Build a consistent right-hand side from a known solution, then solve.
        let x = &x[..m.num_cols()];
        let b = m.mul_vec(x);
        let sol = m.solve(&b).expect("constructed system is consistent");
        prop_assert_eq!(m.mul_vec(&sol), b);
    }

    #[test]
    fn xor_weight_triangle_inequality(a in proptest::collection::vec(any::<bool>(), 1..40)) {
        let b: Vec<bool> = a.iter().map(|&x| !x).collect();
        let x = xor_vec(&a, &b);
        prop_assert_eq!(weight(&x), a.len());
        prop_assert_eq!(dot(&a, &a), weight(&a) % 2 == 1);
    }

    #[test]
    fn kron_dimensions_multiply(a in arb_bitmat(4, 4), b in arb_bitmat(4, 4)) {
        let k = a.kron(&b);
        prop_assert_eq!(k.shape(), (a.num_rows() * b.num_rows(), a.num_cols() * b.num_cols()));
    }

    #[test]
    fn edge_coloring_is_always_proper_and_optimal(
        edges in proptest::collection::hash_set((0usize..8, 0usize..8), 0..30)
    ) {
        let edges: Vec<(usize, usize)> = edges.into_iter().collect();
        let coloring = edge_color_bipartite(8, 8, &edges);
        prop_assert!(is_proper_coloring(&edges, &coloring));
        let mut dl = [0usize; 8];
        let mut dr = [0usize; 8];
        for &(l, r) in &edges { dl[l] += 1; dr[r] += 1; }
        let delta = dl.iter().chain(dr.iter()).copied().max().unwrap_or(0);
        prop_assert_eq!(coloring.num_colors, delta);
    }

    #[test]
    fn hgp_of_random_ldpc_codes_is_valid(seed1 in 0u64..200, seed2 in 0u64..200) {
        let c1 = ClassicalCode::gallager_ldpc(8, 3, 4, seed1);
        let c2 = ClassicalCode::gallager_ldpc(8, 3, 4, seed2);
        let code = hypergraph_product(&c1, &c2).expect("HGP always commutes");
        prop_assert_eq!(code.num_qubits(), hgp_num_qubits(&c1, &c2));
        prop_assert_eq!(code.num_logical(), hgp_num_logical(&c1, &c2));
        // Logical operators commute with the opposite-sector checks.
        for lx in code.logical_x() {
            prop_assert!(code.z_syndrome(lx).iter().all(|&b| !b));
        }
    }

    #[test]
    fn schedules_are_valid_for_random_hgp_codes(seed in 0u64..100) {
        let c = ClassicalCode::gallager_ldpc(8, 3, 4, seed);
        let code = hypergraph_product(&c, &c).expect("valid");
        let serial = serial_schedule(&code);
        let xz = parallel_xz_schedule(&code);
        let best = max_parallel_schedule(&code);
        prop_assert!(serial.validate(&code));
        prop_assert!(xz.validate(&code));
        prop_assert!(best.validate(&code));
        prop_assert!(best.depth() <= xz.depth());
        prop_assert!(xz.depth() <= code.max_x_weight() + code.max_z_weight());
        prop_assert_eq!(serial.num_gates(), best.num_gates());
    }

    #[test]
    fn bb_codes_from_random_small_polynomials_commute(
        l in 2usize..6, m in 2usize..6,
        a1 in 0usize..6, a2 in 0usize..6, a3 in 0usize..6,
        b1 in 0usize..6, b2 in 0usize..6, b3 in 0usize..6,
    ) {
        let params = BbParameters {
            l,
            m,
            a: vec![Monomial::x(a1), Monomial::y(a2), Monomial { x: a3, y: a3 }],
            b: vec![Monomial::y(b1), Monomial::x(b2), Monomial { x: b3, y: b3 }],
            claimed_distance: None,
        };
        // The BB construction always yields commuting stabilizers because the two
        // circulant blocks commute.
        let code = bivariate_bicycle(&params).expect("commuting construction");
        prop_assert_eq!(code.num_qubits(), 2 * l * m);
    }
}
