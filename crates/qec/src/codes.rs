//! Named code catalog used throughout the paper's evaluation.
//!
//! The paper evaluates hypergraph product codes up to `[[625,25,8]]` and bivariate
//! bicycle codes up to `[[144,12,12]]`. The HGP instances are built from seeded
//! (3,4)-regular classical LDPC codes found by a deterministic seed search (recorded
//! in DESIGN.md as a substitution for the exact QuITS instances); the BB instances are
//! the published polynomial constructions.

use crate::bb::{
    bb_108_8_10_parameters, bb_72_12_6_parameters, bb_90_8_10_parameters, bivariate_bicycle,
    gross_code_parameters,
};
use crate::classical::ClassicalCode;
use crate::css::CssCode;
use crate::error::QecError;
use crate::hgp::square_hypergraph_product;

/// The family a named code belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodeFamily {
    /// Hypergraph product codes (edge-colorable qLDPC).
    Hgp,
    /// Bivariate bicycle codes (non-edge-colorable qLDPC).
    Bb,
}

impl std::fmt::Display for CodeFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodeFamily::Hgp => write!(f, "HGP"),
            CodeFamily::Bb => write!(f, "BB"),
        }
    }
}

/// Builds the seeded classical ingredient code for an HGP instance: a (3,4)-regular
/// LDPC code with `n` bits, dimension `want_k`, and distance at least `want_d`.
///
/// # Errors
///
/// Returns [`QecError::SearchExhausted`] if no suitable seed is found within the
/// budget (does not happen for the catalog parameters).
pub fn hgp_ingredient(n: usize, want_k: usize, want_d: usize) -> Result<ClassicalCode, QecError> {
    ClassicalCode::search_regular_ldpc(n, 3, 4, want_k, want_d, 0, 20_000).ok_or_else(|| {
        QecError::SearchExhausted {
            context: format!("(3,4)-regular LDPC with n={n}, k={want_k}, d>={want_d}"),
        }
    })
}

/// The `[[100,4,4]]`-class HGP code (product of a seeded `[8,2,≥4]` LDPC code).
pub fn hgp_100() -> Result<CssCode, QecError> {
    let c = hgp_ingredient(8, 2, 4)?;
    rename(square_hypergraph_product(&c)?, "HGP-100")
}

/// The `[[225,9,6]]` HGP code used in most of the paper's sensitivity studies
/// (product of a seeded `[12,3,6]` LDPC code).
pub fn hgp_225_9_6() -> Result<CssCode, QecError> {
    let c = hgp_ingredient(12, 3, 6)?;
    rename(square_hypergraph_product(&c)?, "HGP-225")
}

/// The `[[400,16,6]]`-class HGP code (product of a seeded `[16,4,≥6]` LDPC code).
pub fn hgp_400() -> Result<CssCode, QecError> {
    let c = hgp_ingredient(16, 4, 6)?;
    rename(square_hypergraph_product(&c)?, "HGP-400")
}

/// The `[[625,25,8]]` HGP code, the largest HGP instance in the paper
/// (product of a seeded `[20,5,8]` LDPC code).
pub fn hgp_625_25_8() -> Result<CssCode, QecError> {
    let c = hgp_ingredient(20, 5, 8)?;
    rename(square_hypergraph_product(&c)?, "HGP-625")
}

/// The `[[72,12,6]]` bivariate bicycle code.
pub fn bb_72_12_6() -> Result<CssCode, QecError> {
    rename(bivariate_bicycle(&bb_72_12_6_parameters())?, "BB-72")
}

/// The `[[90,8,10]]` bivariate bicycle code.
pub fn bb_90_8_10() -> Result<CssCode, QecError> {
    rename(bivariate_bicycle(&bb_90_8_10_parameters())?, "BB-90")
}

/// The `[[108,8,10]]` bivariate bicycle code.
pub fn bb_108_8_10() -> Result<CssCode, QecError> {
    rename(bivariate_bicycle(&bb_108_8_10_parameters())?, "BB-108")
}

/// The `[[144,12,12]]` "gross" bivariate bicycle code.
pub fn bb_144_12_12() -> Result<CssCode, QecError> {
    rename(bivariate_bicycle(&gross_code_parameters())?, "BB-144")
}

fn rename(code: CssCode, name: &str) -> Result<CssCode, QecError> {
    // CssCode is immutable; rebuild with the catalog name while keeping validation.
    CssCode::new(
        name,
        code.hx().clone(),
        code.hz().clone(),
        code.is_edge_colorable(),
        code.claimed_distance(),
    )
}

/// A named entry of the paper's evaluation catalog.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// Family of the code.
    pub family: CodeFamily,
    /// Short label used in figures (e.g. `"[[225,9,6]]"`).
    pub label: String,
    /// The constructed code.
    pub code: CssCode,
}

/// All HGP codes of the evaluation, smallest first.
///
/// # Errors
///
/// Propagates construction errors (the catalog parameters always succeed).
pub fn hgp_catalog() -> Result<Vec<CatalogEntry>, QecError> {
    let builders: Vec<fn() -> Result<CssCode, QecError>> =
        vec![hgp_100, hgp_225_9_6, hgp_400, hgp_625_25_8];
    builders
        .into_iter()
        .map(|b| {
            let code = b()?;
            Ok(CatalogEntry {
                family: CodeFamily::Hgp,
                label: code.descriptor(),
                code,
            })
        })
        .collect()
}

/// All BB codes of the evaluation, smallest first.
///
/// # Errors
///
/// Propagates construction errors (the catalog parameters always succeed).
pub fn bb_catalog() -> Result<Vec<CatalogEntry>, QecError> {
    let builders: Vec<fn() -> Result<CssCode, QecError>> =
        vec![bb_72_12_6, bb_90_8_10, bb_108_8_10, bb_144_12_12];
    builders
        .into_iter()
        .map(|b| {
            let code = b()?;
            Ok(CatalogEntry {
                family: CodeFamily::Bb,
                label: code.descriptor(),
                code,
            })
        })
        .collect()
}

/// The full evaluation catalog: HGP codes followed by BB codes.
///
/// # Errors
///
/// Propagates construction errors (the catalog parameters always succeed).
pub fn full_catalog() -> Result<Vec<CatalogEntry>, QecError> {
    let mut all = hgp_catalog()?;
    all.extend(bb_catalog()?);
    Ok(all)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hgp_225_parameters() {
        let code = hgp_225_9_6().expect("construction succeeds");
        assert_eq!(code.num_qubits(), 225);
        assert_eq!(code.num_logical(), 9);
        assert_eq!(code.claimed_distance(), Some(6));
        assert_eq!(code.num_stabilizers(), 216);
    }

    #[test]
    fn bb_catalog_parameters() {
        let cat = bb_catalog().expect("construction succeeds");
        let params: Vec<(usize, usize)> = cat
            .iter()
            .map(|e| (e.code.num_qubits(), e.code.num_logical()))
            .collect();
        assert_eq!(params, vec![(72, 12), (90, 8), (108, 8), (144, 12)]);
    }

    #[test]
    fn hgp_100_parameters() {
        let code = hgp_100().expect("construction succeeds");
        assert_eq!(code.num_qubits(), 100);
        assert_eq!(code.num_logical(), 4);
    }

    #[test]
    fn catalog_labels_are_descriptors() {
        let cat = bb_catalog().expect("construction succeeds");
        assert!(cat.iter().all(|e| e.label.starts_with("[[")));
    }
}
