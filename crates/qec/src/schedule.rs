//! Syndrome-extraction schedules.
//!
//! A *schedule* is an ordered list of timeslices; each timeslice is a set of CX gates
//! between an ancilla (identified with its stabilizer) and a data qubit that may all
//! execute in parallel on idealized hardware (every data qubit and every ancilla is
//! touched at most once per slice).
//!
//! Three generators are provided, matching §III-A of the paper:
//!
//! * [`serial_schedule`] — one gate per timeslice (the fully serialized reference).
//! * [`parallel_xz_schedule`] — the *non-edge-colorable* policy: all X stabilizers in
//!   parallel (edge-colored within the X sector), followed by all Z stabilizers.
//!   Worst-case depth `w_max(X) + w_max(Z)`.
//! * [`interleaved_schedule`] — the *edge-colorable* policy: X and Z gates are
//!   interleaved by coloring the full Tanner graph; only valid for edge-colorable
//!   codes such as hypergraph product codes.

use crate::coloring::{edge_color_bipartite, Edge};
use crate::css::{CssCode, StabKind};
use serde::{Deserialize, Serialize};

/// A single entangling gate of the syndrome-extraction circuit.
///
/// For X stabilizers the ancilla (prepared in `|+⟩`) is the control and the data
/// qubit the target; for Z stabilizers the data qubit is the control and the ancilla
/// (prepared in `|0⟩`) the target. The scheduling layers only care about *which pair
/// interacts when*; the direction is recovered from `kind` by the circuit builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GateOp {
    /// Stabilizer sector.
    pub kind: StabKind,
    /// Stabilizer index within its sector.
    pub stabilizer: usize,
    /// Data qubit index.
    pub data: usize,
}

/// One parallel timeslice of gates.
pub type Timeslice = Vec<GateOp>;

/// Which scheduling policy produced a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulePolicy {
    /// Fully serialized: one gate per slice.
    Serial,
    /// All X stabilizers in parallel, then all Z stabilizers (non-edge-colorable policy).
    ParallelXThenZ,
    /// Interleaved X/Z schedule from a full Tanner-graph edge coloring
    /// (edge-colorable codes only).
    Interleaved,
}

impl std::fmt::Display for SchedulePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedulePolicy::Serial => write!(f, "serial"),
            SchedulePolicy::ParallelXThenZ => write!(f, "parallel-x-then-z"),
            SchedulePolicy::Interleaved => write!(f, "interleaved"),
        }
    }
}

/// An idealized (hardware-independent) syndrome-extraction schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    policy: SchedulePolicy,
    slices: Vec<Timeslice>,
    num_data: usize,
    num_x: usize,
    num_z: usize,
}

impl Schedule {
    /// The policy that generated this schedule.
    pub fn policy(&self) -> SchedulePolicy {
        self.policy
    }

    /// The parallel timeslices, in execution order.
    pub fn slices(&self) -> &[Timeslice] {
        &self.slices
    }

    /// Number of timeslices (the idealized depth).
    pub fn depth(&self) -> usize {
        self.slices.len()
    }

    /// Total number of entangling gates.
    pub fn num_gates(&self) -> usize {
        self.slices.iter().map(Vec::len).sum()
    }

    /// Number of data qubits of the underlying code.
    pub fn num_data(&self) -> usize {
        self.num_data
    }

    /// Number of X stabilizers of the underlying code.
    pub fn num_x_stabilizers(&self) -> usize {
        self.num_x
    }

    /// Number of Z stabilizers of the underlying code.
    pub fn num_z_stabilizers(&self) -> usize {
        self.num_z
    }

    /// Maximum number of gates in any single timeslice.
    pub fn max_parallelism(&self) -> usize {
        self.slices.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Checks the schedule invariants:
    /// 1. every (stabilizer, data) gate of the code appears exactly once;
    /// 2. within a timeslice no data qubit and no ancilla is used twice.
    pub fn validate(&self, code: &CssCode) -> bool {
        use std::collections::HashSet;
        let mut seen: HashSet<GateOp> = HashSet::new();
        for slice in &self.slices {
            let mut data_used = HashSet::new();
            let mut anc_used = HashSet::new();
            for g in slice {
                if !data_used.insert(g.data) {
                    return false;
                }
                if !anc_used.insert((g.kind, g.stabilizer)) {
                    return false;
                }
                if !seen.insert(*g) {
                    return false;
                }
            }
        }
        let mut expected = 0usize;
        for s in code.stabilizers() {
            for &d in &s.support {
                expected += 1;
                if !seen.contains(&GateOp {
                    kind: s.kind,
                    stabilizer: s.index,
                    data: d,
                }) {
                    return false;
                }
            }
        }
        expected == seen.len()
    }
}

/// All gates of the code's syndrome-extraction circuit, in stabilizer order.
fn all_gates(code: &CssCode) -> Vec<GateOp> {
    let mut gates = Vec::new();
    for s in code.stabilizers() {
        for &d in &s.support {
            gates.push(GateOp {
                kind: s.kind,
                stabilizer: s.index,
                data: d,
            });
        }
    }
    gates
}

/// The fully serialized schedule: one gate per timeslice.
pub fn serial_schedule(code: &CssCode) -> Schedule {
    let slices = all_gates(code).into_iter().map(|g| vec![g]).collect();
    Schedule {
        policy: SchedulePolicy::Serial,
        slices,
        num_data: code.num_qubits(),
        num_x: code.num_x_stabilizers(),
        num_z: code.num_z_stabilizers(),
    }
}

/// Edge-colors one stabilizer sector and returns its timeslices.
fn sector_slices(code: &CssCode, kind: StabKind) -> Vec<Timeslice> {
    let stabs = code.sector_stabilizers(kind);
    let num_left = stabs.len();
    let num_right = code.num_qubits();
    let mut edges: Vec<Edge> = Vec::new();
    let mut gate_of_edge: Vec<GateOp> = Vec::new();
    for s in &stabs {
        for &d in &s.support {
            edges.push((s.index, d));
            gate_of_edge.push(GateOp {
                kind,
                stabilizer: s.index,
                data: d,
            });
        }
    }
    let coloring = edge_color_bipartite(num_left, num_right, &edges);
    coloring
        .classes()
        .into_iter()
        .filter(|class| !class.is_empty())
        .map(|class| class.into_iter().map(|i| gate_of_edge[i]).collect())
        .collect()
}

/// The non-edge-colorable maximally parallel policy: all X stabilizers (edge-colored
/// within the sector), then all Z stabilizers. Valid for **any** CSS code; worst-case
/// depth `w_max(X) + w_max(Z)`.
pub fn parallel_xz_schedule(code: &CssCode) -> Schedule {
    let mut slices = sector_slices(code, StabKind::X);
    slices.extend(sector_slices(code, StabKind::Z));
    Schedule {
        policy: SchedulePolicy::ParallelXThenZ,
        slices,
        num_data: code.num_qubits(),
        num_x: code.num_x_stabilizers(),
        num_z: code.num_z_stabilizers(),
    }
}

/// The edge-colorable interleaved policy: X and Z gates share timeslices, obtained
/// from an edge coloring of the *full* Tanner graph (both sectors on the left).
///
/// # Errors
///
/// Returns `None` if the code is not edge-colorable (e.g. bivariate bicycle codes),
/// since interleaving X and Z gates on such codes does not commute into a valid
/// syndrome-extraction circuit.
pub fn interleaved_schedule(code: &CssCode) -> Option<Schedule> {
    if !code.is_edge_colorable() {
        return None;
    }
    let num_x = code.num_x_stabilizers();
    let num_left = num_x + code.num_z_stabilizers();
    let num_right = code.num_qubits();
    let mut edges: Vec<Edge> = Vec::new();
    let mut gate_of_edge: Vec<GateOp> = Vec::new();
    for s in code.stabilizers() {
        let left = match s.kind {
            StabKind::X => s.index,
            StabKind::Z => num_x + s.index,
        };
        for &d in &s.support {
            edges.push((left, d));
            gate_of_edge.push(GateOp {
                kind: s.kind,
                stabilizer: s.index,
                data: d,
            });
        }
    }
    let coloring = edge_color_bipartite(num_left, num_right, &edges);
    let slices: Vec<Timeslice> = coloring
        .classes()
        .into_iter()
        .filter(|class| !class.is_empty())
        .map(|class| class.into_iter().map(|i| gate_of_edge[i]).collect())
        .collect();
    Some(Schedule {
        policy: SchedulePolicy::Interleaved,
        slices,
        num_data: code.num_qubits(),
        num_x: code.num_x_stabilizers(),
        num_z: code.num_z_stabilizers(),
    })
}

/// The best (shallowest) idealized schedule available for a code: interleaved when the
/// code is edge-colorable, otherwise X-then-Z.
pub fn max_parallel_schedule(code: &CssCode) -> Schedule {
    match interleaved_schedule(code) {
        Some(s) if s.depth() <= parallel_xz_schedule(code).depth() => s,
        _ => parallel_xz_schedule(code),
    }
}

/// The idealized speedup of the maximally parallel schedule over the serial schedule
/// (ratio of gate counts to parallel depth). This is the quantity plotted in Fig. 3.
pub fn parallel_speedup(code: &CssCode) -> f64 {
    let serial = serial_schedule(code);
    let parallel = max_parallel_schedule(code);
    serial.depth() as f64 / parallel.depth() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bb::{bb_72_12_6_parameters, bivariate_bicycle};
    use crate::classical::ClassicalCode;
    use crate::hgp::square_hypergraph_product;

    fn small_hgp() -> CssCode {
        let rep = ClassicalCode::repetition(3);
        square_hypergraph_product(&rep).expect("valid")
    }

    #[test]
    fn serial_schedule_valid() {
        let code = small_hgp();
        let s = serial_schedule(&code);
        assert!(s.validate(&code));
        assert_eq!(s.depth(), s.num_gates());
        assert_eq!(s.max_parallelism(), 1);
    }

    #[test]
    fn parallel_xz_schedule_valid_and_bounded() {
        let code = small_hgp();
        let s = parallel_xz_schedule(&code);
        assert!(s.validate(&code));
        assert!(s.depth() <= code.max_x_weight() + code.max_z_weight());
    }

    #[test]
    fn interleaved_schedule_valid_for_hgp() {
        let code = small_hgp();
        let s = interleaved_schedule(&code).expect("HGP codes are edge-colorable");
        assert!(s.validate(&code));
    }

    #[test]
    fn interleaved_rejected_for_bb() {
        let code = bivariate_bicycle(&bb_72_12_6_parameters()).expect("valid");
        assert!(interleaved_schedule(&code).is_none());
    }

    #[test]
    fn bb_parallel_schedule_valid() {
        let code = bivariate_bicycle(&bb_72_12_6_parameters()).expect("valid");
        let s = parallel_xz_schedule(&code);
        assert!(s.validate(&code));
        // BB stabilizers all have weight 6, so depth is at most 12.
        assert!(s.depth() <= 12);
    }

    #[test]
    fn speedup_is_large_for_parallel_codes() {
        let code = bivariate_bicycle(&bb_72_12_6_parameters()).expect("valid");
        let speedup = parallel_speedup(&code);
        // 432 gates vs depth <= 12 gives speedup >= 36.
        assert!(speedup >= 30.0, "speedup {speedup} unexpectedly small");
    }

    #[test]
    fn max_parallel_prefers_shallower() {
        let code = small_hgp();
        let best = max_parallel_schedule(&code);
        assert!(best.depth() <= parallel_xz_schedule(&code).depth());
    }
}
