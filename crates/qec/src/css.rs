//! CSS stabilizer codes.
//!
//! A CSS code is described by two parity-check matrices `Hx` (X stabilizers) and
//! `Hz` (Z stabilizers) acting on `n` data qubits, satisfying `Hx · Hzᵀ = 0`.
//! [`CssCode`] stores both matrices, validates the commutation condition, computes
//! logical operators, and exposes the Tanner-graph view needed by the scheduling and
//! hardware-mapping layers.

use crate::error::QecError;
use crate::linalg::{dot, BitMat};
use serde::{Deserialize, Serialize};

/// Which stabilizer sector a check belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StabKind {
    /// An X-type stabilizer (product of Pauli X on its support).
    X,
    /// A Z-type stabilizer (product of Pauli Z on its support).
    Z,
}

impl std::fmt::Display for StabKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StabKind::X => write!(f, "X"),
            StabKind::Z => write!(f, "Z"),
        }
    }
}

/// A single stabilizer generator: its sector and the data qubits in its support.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stabilizer {
    /// X or Z sector.
    pub kind: StabKind,
    /// Index of this stabilizer within its sector (row of `Hx` or `Hz`).
    pub index: usize,
    /// Data qubits acted on.
    pub support: Vec<usize>,
}

impl Stabilizer {
    /// The weight (number of data qubits touched) of this stabilizer.
    pub fn weight(&self) -> usize {
        self.support.len()
    }
}

/// A CSS stabilizer code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CssCode {
    name: String,
    hx: BitMat,
    hz: BitMat,
    logical_x: Vec<Vec<bool>>,
    logical_z: Vec<Vec<bool>>,
    /// Whether the Tanner graph admits the interleaved X/Z ("edge-colorable") schedule.
    edge_colorable: bool,
    /// Claimed minimum distance (from the construction), if known.
    claimed_distance: Option<usize>,
}

impl CssCode {
    /// Builds a CSS code from its two parity-check matrices.
    ///
    /// Logical operators are computed eagerly so that downstream memory experiments
    /// can check for logical errors without re-deriving them.
    ///
    /// # Errors
    ///
    /// Returns [`QecError::StabilizersDoNotCommute`] when `Hx · Hzᵀ ≠ 0`, and
    /// [`QecError::ShapeMismatch`] when the two matrices act on different numbers of
    /// qubits.
    pub fn new(
        name: impl Into<String>,
        hx: BitMat,
        hz: BitMat,
        edge_colorable: bool,
        claimed_distance: Option<usize>,
    ) -> Result<Self, QecError> {
        let name = name.into();
        if hx.num_cols() != hz.num_cols() {
            return Err(QecError::ShapeMismatch {
                context: format!(
                    "Hx has {} columns but Hz has {} columns",
                    hx.num_cols(),
                    hz.num_cols()
                ),
            });
        }
        let prod = hx.mul(&hz.transpose());
        if !prod.is_zero() {
            return Err(QecError::StabilizersDoNotCommute { name });
        }
        let (logical_x, logical_z) = compute_logicals(&hx, &hz);
        Ok(CssCode {
            name,
            hx,
            hz,
            logical_x,
            logical_z,
            edge_colorable,
            claimed_distance,
        })
    }

    /// Returns the code's name, e.g. `"[[225,9,6]] HGP"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of data qubits `n`.
    pub fn num_qubits(&self) -> usize {
        self.hx.num_cols()
    }

    /// Number of logical qubits `k = n - rank(Hx) - rank(Hz)`.
    pub fn num_logical(&self) -> usize {
        self.logical_x.len()
    }

    /// Claimed minimum distance from the construction, if known.
    pub fn claimed_distance(&self) -> Option<usize> {
        self.claimed_distance
    }

    /// The X-sector parity-check matrix.
    pub fn hx(&self) -> &BitMat {
        &self.hx
    }

    /// The Z-sector parity-check matrix.
    pub fn hz(&self) -> &BitMat {
        &self.hz
    }

    /// Number of X stabilizers.
    pub fn num_x_stabilizers(&self) -> usize {
        self.hx.num_rows()
    }

    /// Number of Z stabilizers.
    pub fn num_z_stabilizers(&self) -> usize {
        self.hz.num_rows()
    }

    /// Total number of stabilizers `m = |X| + |Z|`.
    pub fn num_stabilizers(&self) -> usize {
        self.num_x_stabilizers() + self.num_z_stabilizers()
    }

    /// Whether this code supports the interleaved ("edge-colorable") X/Z schedule.
    pub fn is_edge_colorable(&self) -> bool {
        self.edge_colorable
    }

    /// Returns all stabilizers (X sector first, then Z), each with its support.
    pub fn stabilizers(&self) -> Vec<Stabilizer> {
        let mut out = Vec::with_capacity(self.num_stabilizers());
        for r in 0..self.hx.num_rows() {
            out.push(Stabilizer {
                kind: StabKind::X,
                index: r,
                support: self.hx.row_support(r),
            });
        }
        for r in 0..self.hz.num_rows() {
            out.push(Stabilizer {
                kind: StabKind::Z,
                index: r,
                support: self.hz.row_support(r),
            });
        }
        out
    }

    /// Returns one sector's stabilizers.
    pub fn sector_stabilizers(&self, kind: StabKind) -> Vec<Stabilizer> {
        let h = match kind {
            StabKind::X => &self.hx,
            StabKind::Z => &self.hz,
        };
        (0..h.num_rows())
            .map(|r| Stabilizer {
                kind,
                index: r,
                support: h.row_support(r),
            })
            .collect()
    }

    /// Maximum stabilizer weight in the X sector.
    pub fn max_x_weight(&self) -> usize {
        (0..self.hx.num_rows())
            .map(|r| self.hx.row_weight(r))
            .max()
            .unwrap_or(0)
    }

    /// Maximum stabilizer weight in the Z sector.
    pub fn max_z_weight(&self) -> usize {
        (0..self.hz.num_rows())
            .map(|r| self.hz.row_weight(r))
            .max()
            .unwrap_or(0)
    }

    /// Logical X operators (one per logical qubit), as supports over data qubits.
    pub fn logical_x(&self) -> &[Vec<bool>] {
        &self.logical_x
    }

    /// Logical Z operators (one per logical qubit), as supports over data qubits.
    pub fn logical_z(&self) -> &[Vec<bool>] {
        &self.logical_z
    }

    /// Returns the X syndrome of a Z-error pattern (`Hx · e`).
    pub fn x_syndrome(&self, z_error: &[bool]) -> Vec<bool> {
        self.hx.mul_vec(z_error)
    }

    /// Returns the Z syndrome of an X-error pattern (`Hz · e`).
    pub fn z_syndrome(&self, x_error: &[bool]) -> Vec<bool> {
        self.hz.mul_vec(x_error)
    }

    /// Checks whether a residual Z-error (after correction) flips any logical X
    /// operator, i.e. whether it anticommutes with some logical X.
    pub fn z_error_is_logical(&self, residual: &[bool]) -> bool {
        self.logical_x.iter().any(|lx| dot(lx, residual))
    }

    /// Checks whether a residual X-error (after correction) flips any logical Z
    /// operator.
    pub fn x_error_is_logical(&self, residual: &[bool]) -> bool {
        self.logical_z.iter().any(|lz| dot(lz, residual))
    }

    /// Returns a short `[[n,k,d]]`-style descriptor.
    pub fn descriptor(&self) -> String {
        match self.claimed_distance {
            Some(d) => format!("[[{},{},{}]]", self.num_qubits(), self.num_logical(), d),
            None => format!("[[{},{},?]]", self.num_qubits(), self.num_logical()),
        }
    }
}

impl std::fmt::Display for CssCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.descriptor(), self.name)
    }
}

/// Computes logical X and Z operator bases for a CSS code.
///
/// Logical X operators are elements of `ker(Hz)` outside `rowspace(Hx)`; symmetrically
/// for logical Z. The returned bases are paired so that `logical_x[i]` anticommutes
/// with `logical_z[i]` and commutes with all other logical Z operators (symplectic
/// Gram–Schmidt pairing).
fn compute_logicals(hx: &BitMat, hz: &BitMat) -> (Vec<Vec<bool>>, Vec<Vec<bool>>) {
    let x_candidates = candidate_logicals(hz, hx);
    let z_candidates = candidate_logicals(hx, hz);
    pair_logicals(x_candidates, z_candidates)
}

/// Vectors in `ker(h_commute)` that are independent of `rowspace(h_span)`.
///
/// Maintains an incremental echelon basis so each candidate is reduced in
/// `O(rows · n)` time rather than re-solving a linear system per candidate.
fn candidate_logicals(h_commute: &BitMat, h_span: &BitMat) -> Vec<Vec<bool>> {
    let kernel = h_commute.null_space();
    let n = h_commute.num_cols();
    // Echelon basis: rows paired with their pivot column.
    let mut basis: Vec<(usize, Vec<bool>)> = Vec::new();
    let insert = |mut v: Vec<bool>, basis: &mut Vec<(usize, Vec<bool>)>| -> bool {
        for (pivot, row) in basis.iter() {
            if v[*pivot] {
                for (vi, &ri) in v.iter_mut().zip(row) {
                    *vi ^= ri;
                }
            }
        }
        if let Some(pivot) = v.iter().position(|&b| b) {
            basis.push((pivot, v));
            true
        } else {
            false
        }
    };
    for r in 0..h_span.num_rows() {
        let row: Vec<bool> = (0..n).map(|c| h_span.get(r, c)).collect();
        insert(row, &mut basis);
    }
    let mut chosen = Vec::new();
    for v in kernel {
        if insert(v.clone(), &mut basis) {
            chosen.push(v);
        }
    }
    chosen
}

/// Pairs logical X and Z candidates so that the symplectic product matrix is the
/// identity: `⟨x_i, z_j⟩ = δ_ij`.
fn pair_logicals(
    mut xs: Vec<Vec<bool>>,
    mut zs: Vec<Vec<bool>>,
) -> (Vec<Vec<bool>>, Vec<Vec<bool>>) {
    let k = xs.len().min(zs.len());
    let mut px = Vec::with_capacity(k);
    let mut pz = Vec::with_capacity(k);
    for _ in 0..k {
        // Find an anticommuting pair among the remaining candidates.
        let mut found = None;
        'outer: for (i, x) in xs.iter().enumerate() {
            for (j, z) in zs.iter().enumerate() {
                if dot(x, z) {
                    found = Some((i, j));
                    break 'outer;
                }
            }
        }
        let Some((i, j)) = found else { break };
        let x = xs.swap_remove(i);
        let z = zs.swap_remove(j);
        // Clean the remaining candidates so they commute with the chosen pair.
        for other in xs.iter_mut() {
            if dot(other, &z) {
                for (o, &xb) in other.iter_mut().zip(&x) {
                    *o ^= xb;
                }
            }
        }
        for other in zs.iter_mut() {
            if dot(other, &x) {
                for (o, &zb) in other.iter_mut().zip(&z) {
                    *o ^= zb;
                }
            }
        }
        px.push(x);
        pz.push(z);
    }
    (px, pz)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::weight;

    /// The distance-3 rotated-free Steane-style code: the [[7,1,3]] CSS code built
    /// from two copies of the Hamming code's parity check.
    fn steane() -> CssCode {
        let h = crate::classical::ClassicalCode::hamming_7_4();
        let hm = h.parity_check().clone();
        CssCode::new("steane", hm.clone(), hm, false, Some(3)).expect("steane is a valid CSS code")
    }

    #[test]
    fn steane_parameters() {
        let c = steane();
        assert_eq!(c.num_qubits(), 7);
        assert_eq!(c.num_logical(), 1);
        assert_eq!(c.num_stabilizers(), 6);
        assert_eq!(c.max_x_weight(), 4);
    }

    #[test]
    fn steane_logicals_commute_with_stabilizers() {
        let c = steane();
        for lx in c.logical_x() {
            assert!(
                c.z_syndrome(lx).iter().all(|&b| !b),
                "logical X commutes with Z checks"
            );
        }
        for lz in c.logical_z() {
            assert!(
                c.x_syndrome(lz).iter().all(|&b| !b),
                "logical Z commutes with X checks"
            );
        }
    }

    #[test]
    fn steane_logical_pairing() {
        let c = steane();
        assert!(
            dot(&c.logical_x()[0], &c.logical_z()[0]),
            "paired logicals anticommute"
        );
    }

    #[test]
    fn noncommuting_rejected() {
        let hx = BitMat::from_dense(&[vec![1, 1, 0]]);
        let hz = BitMat::from_dense(&[vec![1, 0, 0]]);
        assert!(matches!(
            CssCode::new("bad", hx, hz, false, None),
            Err(QecError::StabilizersDoNotCommute { .. })
        ));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let hx = BitMat::from_dense(&[vec![1, 1, 0]]);
        let hz = BitMat::from_dense(&[vec![1, 1]]);
        assert!(matches!(
            CssCode::new("bad", hx, hz, false, None),
            Err(QecError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn logical_error_detection() {
        let c = steane();
        let lz = c.logical_z()[0].clone();
        assert!(c.z_error_is_logical(&lz) || weight(&lz) == 0);
        let no_error = vec![false; 7];
        assert!(!c.z_error_is_logical(&no_error));
    }

    #[test]
    fn stabilizer_listing() {
        let c = steane();
        let stabs = c.stabilizers();
        assert_eq!(stabs.len(), 6);
        assert_eq!(stabs.iter().filter(|s| s.kind == StabKind::X).count(), 3);
        assert!(stabs.iter().all(|s| s.weight() == 4));
    }
}
