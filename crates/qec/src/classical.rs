//! Classical binary linear codes used as ingredients of hypergraph product codes.
//!
//! The paper's HGP codes are built from small (3,4)-regular LDPC codes (the
//! "classical seed codes"). This module provides a seeded Gallager-style regular
//! LDPC construction, a handful of textbook codes (repetition, Hamming), and
//! exact minimum-distance computation for small dimensions.

use crate::linalg::{weight, BitMat};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A classical binary linear code described by its parity-check matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassicalCode {
    /// Human-readable name, e.g. `"ldpc(3,4) n=12 seed=7"`.
    name: String,
    /// Parity-check matrix, `m × n`.
    h: BitMat,
}

impl ClassicalCode {
    /// Creates a classical code from a parity-check matrix.
    pub fn new(name: impl Into<String>, h: BitMat) -> Self {
        ClassicalCode {
            name: name.into(),
            h,
        }
    }

    /// Returns the code's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the parity-check matrix.
    pub fn parity_check(&self) -> &BitMat {
        &self.h
    }

    /// Block length `n` (number of bits).
    pub fn block_length(&self) -> usize {
        self.h.num_cols()
    }

    /// Number of parity checks (rows of H, not necessarily independent).
    pub fn num_checks(&self) -> usize {
        self.h.num_rows()
    }

    /// Code dimension `k = n - rank(H)`.
    pub fn dimension(&self) -> usize {
        self.block_length() - self.h.rank()
    }

    /// Dimension of the *transpose* code (the code with parity-check `Hᵀ`),
    /// `kᵀ = m - rank(H)`. Needed for the HGP dimension formula.
    pub fn transpose_dimension(&self) -> usize {
        self.num_checks() - self.h.rank()
    }

    /// Exact minimum distance computed by enumerating the `2^k - 1` nonzero codewords.
    ///
    /// Returns `None` for the trivial `k = 0` code.
    ///
    /// # Panics
    ///
    /// Panics if `k > 24` (enumeration would be too expensive).
    pub fn minimum_distance(&self) -> Option<usize> {
        let k = self.dimension();
        if k == 0 {
            return None;
        }
        assert!(
            k <= 24,
            "minimum_distance enumeration limited to k <= 24, got k = {k}"
        );
        let basis = self.h.null_space();
        debug_assert_eq!(basis.len(), k);
        let n = self.block_length();
        let mut best = usize::MAX;
        for mask in 1u32..(1u32 << k) {
            let mut v = vec![false; n];
            for (i, b) in basis.iter().enumerate() {
                if (mask >> i) & 1 == 1 {
                    for (vi, &bi) in v.iter_mut().zip(b) {
                        *vi ^= bi;
                    }
                }
            }
            best = best.min(weight(&v));
        }
        Some(best)
    }

    /// Returns `[n, k, d]` with `d = None` when the code has no nonzero codewords.
    pub fn parameters(&self) -> (usize, usize, Option<usize>) {
        (
            self.block_length(),
            self.dimension(),
            self.minimum_distance(),
        )
    }

    /// The binary repetition code of length `n` (parity checks between adjacent bits).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn repetition(n: usize) -> Self {
        assert!(n >= 2, "repetition code needs n >= 2");
        let supports: Vec<Vec<usize>> = (0..n - 1).map(|i| vec![i, i + 1]).collect();
        ClassicalCode::new(
            format!("repetition[{n}]"),
            BitMat::from_row_supports(n - 1, n, &supports),
        )
    }

    /// The `[7,4,3]` Hamming code.
    pub fn hamming_7_4() -> Self {
        let h = BitMat::from_dense(&[
            vec![1, 0, 1, 0, 1, 0, 1],
            vec![0, 1, 1, 0, 0, 1, 1],
            vec![0, 0, 0, 1, 1, 1, 1],
        ]);
        ClassicalCode::new("hamming[7,4,3]", h)
    }

    /// A seeded `(wc, wr)`-regular LDPC code with `n` bits and `m = n * wc / wr`
    /// checks, built with the configuration model: every column gets exactly `wc`
    /// edge stubs, every check exactly `wr`, and stubs are matched by a seeded
    /// shuffle (re-shuffled up to 200 times to avoid parallel edges, which would
    /// break row regularity over GF(2)).
    ///
    /// Deterministic for a given `(n, wc, wr, seed)`. Unlike the classical Gallager
    /// block construction, this one does not force `wc − 1` redundant checks, so
    /// full-rank parity-check matrices (needed for the paper's `[[225,9,6]]` and
    /// `[[625,25,8]]` ingredient codes) are reachable.
    ///
    /// # Panics
    ///
    /// Panics if `n * wc` is not divisible by `wr` or the parameters are degenerate.
    pub fn gallager_ldpc(n: usize, wc: usize, wr: usize, seed: u64) -> Self {
        assert!(wc >= 1 && wr >= 1 && n >= wr, "degenerate LDPC parameters");
        assert_eq!((n * wc) % wr, 0, "n*wc must be divisible by wr");
        let m = n * wc / wr;
        let mut rng = StdRng::seed_from_u64(seed);
        // Column stubs: column c appears wc times.
        let base_stubs: Vec<usize> = (0..n).flat_map(|c| std::iter::repeat(c).take(wc)).collect();
        let mut supports: Vec<Vec<usize>> = Vec::new();
        'attempt: for _ in 0..200 {
            let mut stubs = base_stubs.clone();
            stubs.shuffle(&mut rng);
            let mut cand: Vec<Vec<usize>> = Vec::with_capacity(m);
            for r in 0..m {
                let mut row: Vec<usize> = stubs[r * wr..(r + 1) * wr].to_vec();
                row.sort_unstable();
                let len_before = row.len();
                row.dedup();
                if row.len() != len_before {
                    continue 'attempt; // parallel edge: retry with a fresh shuffle
                }
                cand.push(row);
            }
            supports = cand;
            break;
        }
        if supports.is_empty() {
            // Extremely unlikely fallback: accept a shuffle with parallel edges removed.
            let mut stubs = base_stubs.clone();
            stubs.shuffle(&mut rng);
            supports = (0..m)
                .map(|r| {
                    let mut row: Vec<usize> = stubs[r * wr..(r + 1) * wr].to_vec();
                    row.sort_unstable();
                    row.dedup();
                    row
                })
                .collect();
        }
        let h = BitMat::from_row_supports(m, n, &supports);
        ClassicalCode::new(format!("ldpc({wc},{wr}) n={n} seed={seed}"), h)
    }

    /// Searches seeds for a `(wc, wr)`-regular LDPC code with the requested dimension
    /// and minimum distance. Deterministic: seeds are scanned in increasing order from
    /// `start_seed`.
    ///
    /// Returns the first code found, or `None` after `max_tries` seeds.
    pub fn search_regular_ldpc(
        n: usize,
        wc: usize,
        wr: usize,
        want_k: usize,
        want_d: usize,
        start_seed: u64,
        max_tries: u64,
    ) -> Option<Self> {
        for seed in start_seed..start_seed + max_tries {
            let code = Self::gallager_ldpc(n, wc, wr, seed);
            if code.dimension() != want_k {
                continue;
            }
            if let Some(d) = code.minimum_distance() {
                if d >= want_d {
                    return Some(code);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repetition_parameters() {
        let c = ClassicalCode::repetition(5);
        let (n, k, d) = c.parameters();
        assert_eq!((n, k, d), (5, 1, Some(5)));
    }

    #[test]
    fn hamming_parameters() {
        let c = ClassicalCode::hamming_7_4();
        let (n, k, d) = c.parameters();
        assert_eq!((n, k, d), (7, 4, Some(3)));
    }

    #[test]
    fn gallager_regularity() {
        let c = ClassicalCode::gallager_ldpc(12, 3, 4, 1);
        let h = c.parity_check();
        assert_eq!(h.shape(), (9, 12));
        for r in 0..h.num_rows() {
            assert_eq!(h.row_weight(r), 4, "every check has weight wr");
        }
        for col in 0..h.num_cols() {
            // Column weight can drop below wc if two permutations collide on the same
            // (row-block, bit) pair, but can never exceed wc.
            assert!(h.col_weight(col) <= 3);
        }
    }

    #[test]
    fn gallager_deterministic() {
        let a = ClassicalCode::gallager_ldpc(12, 3, 4, 42);
        let b = ClassicalCode::gallager_ldpc(12, 3, 4, 42);
        assert_eq!(a.parity_check(), b.parity_check());
    }

    #[test]
    fn search_finds_12_3_code() {
        let c = ClassicalCode::search_regular_ldpc(12, 3, 4, 3, 4, 0, 500)
            .expect("a [12,3,>=4] regular LDPC code should exist within 500 seeds");
        let (n, k, d) = c.parameters();
        assert_eq!(n, 12);
        assert_eq!(k, 3);
        assert!(d.unwrap() >= 4);
    }

    #[test]
    fn dimension_matches_rank_deficit() {
        let c = ClassicalCode::gallager_ldpc(16, 3, 4, 7);
        assert_eq!(c.dimension(), 16 - c.parity_check().rank());
    }
}
