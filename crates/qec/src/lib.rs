//! CSS quantum error-correcting codes and their syndrome-extraction schedules.
//!
//! This crate is the code-theory substrate of the Cyclone reproduction. It provides:
//!
//! * dense GF(2) linear algebra ([`linalg`]),
//! * classical LDPC ingredient codes ([`classical`]),
//! * hypergraph product and bivariate bicycle constructions ([`hgp`], [`bb`]),
//! * the CSS code abstraction with logical operators ([`css`]),
//! * bipartite edge coloring ([`coloring`]) and idealized syndrome-extraction
//!   schedules ([`schedule`]),
//! * the named code catalog of the paper's evaluation ([`codes`]).
//!
//! # Quick example
//!
//! ```
//! use qec::codes::bb_72_12_6;
//! use qec::schedule::{max_parallel_schedule, serial_schedule};
//!
//! let code = bb_72_12_6()?;
//! let parallel = max_parallel_schedule(&code);
//! let serial = serial_schedule(&code);
//! assert!(parallel.depth() < serial.depth() / 10);
//! # Ok::<(), qec::error::QecError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bb;
pub mod classical;
pub mod codes;
pub mod coloring;
pub mod css;
pub mod error;
pub mod hgp;
pub mod linalg;
pub mod schedule;

pub use css::{CssCode, StabKind, Stabilizer};
pub use error::QecError;
pub use schedule::{Schedule, SchedulePolicy};
