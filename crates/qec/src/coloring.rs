//! Bipartite edge coloring of Tanner graphs.
//!
//! Syndrome-extraction scheduling reduces to edge coloring of the Tanner graph: each
//! color class is a set of CX gates that touch every stabilizer and every data qubit
//! at most once, so it can execute as one parallel timeslice (hardware permitting).
//! By König's theorem a bipartite graph with maximum degree Δ admits a proper edge
//! coloring with exactly Δ colors; [`edge_color_bipartite`] implements the classical
//! alternating-path (fan-free Vizing) algorithm for bipartite graphs.

use std::collections::HashMap;

/// An edge of a bipartite graph: (left vertex, right vertex).
pub type Edge = (usize, usize);

/// Result of an edge coloring: `colors[i]` is the color of `edges[i]`, and
/// `num_colors` equals the maximum degree of the graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeColoring {
    /// Color index per input edge, parallel to the `edges` slice passed in.
    pub colors: Vec<usize>,
    /// Total number of colors used (equals the maximum degree).
    pub num_colors: usize,
}

impl EdgeColoring {
    /// Groups edge indices by color, in increasing color order.
    pub fn classes(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.num_colors];
        for (i, &c) in self.colors.iter().enumerate() {
            out[c].push(i);
        }
        out
    }
}

/// Properly edge-colors a bipartite graph with `Δ` colors.
///
/// `num_left` / `num_right` are the sizes of the two vertex classes; `edges` lists the
/// edges as `(left, right)` pairs. Parallel edges are allowed only if duplicates are
/// distinct entries (each gets its own color).
///
/// # Panics
///
/// Panics if an edge refers to a vertex outside the declared ranges.
///
/// # Examples
///
/// ```
/// use qec::coloring::edge_color_bipartite;
///
/// // A 2x2 complete bipartite graph needs exactly 2 colors.
/// let edges = vec![(0, 0), (0, 1), (1, 0), (1, 1)];
/// let coloring = edge_color_bipartite(2, 2, &edges);
/// assert_eq!(coloring.num_colors, 2);
/// ```
pub fn edge_color_bipartite(num_left: usize, num_right: usize, edges: &[Edge]) -> EdgeColoring {
    for &(l, r) in edges {
        assert!(l < num_left, "left vertex {l} out of range {num_left}");
        assert!(r < num_right, "right vertex {r} out of range {num_right}");
    }
    let mut left_deg = vec![0usize; num_left];
    let mut right_deg = vec![0usize; num_right];
    for &(l, r) in edges {
        left_deg[l] += 1;
        right_deg[r] += 1;
    }
    let delta = left_deg
        .iter()
        .chain(right_deg.iter())
        .copied()
        .max()
        .unwrap_or(0);

    // color_at_left[l][c] = edge index using color c at left vertex l (if any); same for right.
    let mut color_at_left: Vec<HashMap<usize, usize>> = vec![HashMap::new(); num_left];
    let mut color_at_right: Vec<HashMap<usize, usize>> = vec![HashMap::new(); num_right];
    let mut colors = vec![usize::MAX; edges.len()];

    for (idx, &(l, r)) in edges.iter().enumerate() {
        let free_l = (0..delta).find(|c| !color_at_left[l].contains_key(c));
        let free_r = (0..delta).find(|c| !color_at_right[r].contains_key(c));
        let (Some(alpha), Some(beta)) = (free_l, free_r) else {
            unreachable!("a vertex exceeded the computed maximum degree");
        };
        if alpha == beta {
            colors[idx] = alpha;
            color_at_left[l].insert(alpha, idx);
            color_at_right[r].insert(alpha, idx);
            continue;
        }
        // alpha is free at l, beta is free at r. Walk the alternating alpha/beta path
        // starting from r and swap colors along it, which frees alpha at r.
        let mut current_vertex_is_right = true;
        let mut vertex = r;
        let mut want = alpha; // color we are looking for at the current vertex
        let mut path: Vec<usize> = Vec::new();
        loop {
            let map = if current_vertex_is_right {
                &color_at_right[vertex]
            } else {
                &color_at_left[vertex]
            };
            match map.get(&want) {
                None => break,
                Some(&edge_idx) => {
                    path.push(edge_idx);
                    let (el, er) = edges[edge_idx];
                    vertex = if current_vertex_is_right { el } else { er };
                    current_vertex_is_right = !current_vertex_is_right;
                    want = if want == alpha { beta } else { alpha };
                }
            }
        }
        // Swap alpha<->beta along the path: remove every path edge from the maps
        // first, then flip the colors, then re-insert. Interleaving removals and
        // insertions would clobber entries shared by consecutive path edges.
        for &edge_idx in &path {
            let (el, er) = edges[edge_idx];
            let old = colors[edge_idx];
            color_at_left[el].remove(&old);
            color_at_right[er].remove(&old);
        }
        for &edge_idx in &path {
            let (el, er) = edges[edge_idx];
            let new = if colors[edge_idx] == alpha {
                beta
            } else {
                alpha
            };
            colors[edge_idx] = new;
            color_at_left[el].insert(new, edge_idx);
            color_at_right[er].insert(new, edge_idx);
        }
        debug_assert!(!color_at_left[l].contains_key(&alpha));
        debug_assert!(!color_at_right[r].contains_key(&alpha));
        colors[idx] = alpha;
        color_at_left[l].insert(alpha, idx);
        color_at_right[r].insert(alpha, idx);
    }

    EdgeColoring {
        colors,
        num_colors: delta,
    }
}

/// Verifies that a coloring is proper: no two edges of the same color share a vertex.
pub fn is_proper_coloring(edges: &[Edge], coloring: &EdgeColoring) -> bool {
    let mut seen_left = std::collections::HashSet::new();
    let mut seen_right = std::collections::HashSet::new();
    for (idx, &(l, r)) in edges.iter().enumerate() {
        let c = coloring.colors[idx];
        if !seen_left.insert((l, c)) || !seen_right.insert((r, c)) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    #[test]
    fn complete_bipartite_uses_delta_colors() {
        for n in 1..6 {
            let edges: Vec<Edge> = (0..n).flat_map(|l| (0..n).map(move |r| (l, r))).collect();
            let c = edge_color_bipartite(n, n, &edges);
            assert_eq!(c.num_colors, n);
            assert!(is_proper_coloring(&edges, &c));
        }
    }

    #[test]
    fn star_graph() {
        let edges: Vec<Edge> = (0..7).map(|r| (0, r)).collect();
        let c = edge_color_bipartite(1, 7, &edges);
        assert_eq!(c.num_colors, 7);
        assert!(is_proper_coloring(&edges, &c));
    }

    #[test]
    fn empty_graph() {
        let c = edge_color_bipartite(3, 3, &[]);
        assert_eq!(c.num_colors, 0);
        assert!(c.colors.is_empty());
    }

    #[test]
    fn random_bipartite_graphs_are_properly_colored() {
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..20 {
            let nl = 3 + trial % 7;
            let nr = 4 + trial % 5;
            let mut edges = Vec::new();
            let mut used = std::collections::HashSet::new();
            for _ in 0..(nl * nr / 2) {
                let e = (rng.gen_range(0..nl), rng.gen_range(0..nr));
                if used.insert(e) {
                    edges.push(e);
                }
            }
            let c = edge_color_bipartite(nl, nr, &edges);
            assert!(
                is_proper_coloring(&edges, &c),
                "trial {trial} produced an improper coloring"
            );
            // Optimality: number of colors equals maximum degree.
            let mut dl = vec![0; nl];
            let mut dr = vec![0; nr];
            for &(l, r) in &edges {
                dl[l] += 1;
                dr[r] += 1;
            }
            let delta = dl.iter().chain(dr.iter()).copied().max().unwrap_or(0);
            assert_eq!(c.num_colors, delta);
        }
    }

    #[test]
    fn classes_partition_edges() {
        let edges = vec![(0, 0), (0, 1), (1, 0), (1, 1), (2, 0)];
        let c = edge_color_bipartite(3, 2, &edges);
        let classes = c.classes();
        let total: usize = classes.iter().map(Vec::len).sum();
        assert_eq!(total, edges.len());
    }
}
