//! Dense GF(2) linear algebra.
//!
//! [`BitMat`] is a dense binary matrix with rows packed into `u64` words. It provides
//! the operations needed to construct CSS codes and their logical operators: rank,
//! reduced row-echelon form, null space, transpose, Kronecker products, and
//! matrix/vector multiplication over GF(2).
//!
//! # Examples
//!
//! ```
//! use qec::linalg::BitMat;
//!
//! let mut m = BitMat::zeros(2, 3);
//! m.set(0, 0, true);
//! m.set(0, 2, true);
//! m.set(1, 1, true);
//! assert_eq!(m.rank(), 2);
//! ```

use std::fmt;

/// Number of bits per storage word.
const WORD_BITS: usize = 64;

/// A dense matrix over GF(2) with rows packed into 64-bit words.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitMat {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    data: Vec<u64>,
}

impl BitMat {
    /// Creates a `rows × cols` matrix of zeros.
    ///
    /// # Examples
    ///
    /// ```
    /// # use qec::linalg::BitMat;
    /// let m = BitMat::zeros(3, 5);
    /// assert_eq!(m.shape(), (3, 5));
    /// assert!(m.is_zero());
    /// ```
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let words_per_row = cols.div_ceil(WORD_BITS).max(1);
        BitMat {
            rows,
            cols,
            words_per_row,
            data: vec![0u64; rows * words_per_row],
        }
    }

    /// Creates the `n × n` identity matrix.
    ///
    /// # Examples
    ///
    /// ```
    /// # use qec::linalg::BitMat;
    /// let id = BitMat::identity(4);
    /// assert_eq!(id.rank(), 4);
    /// ```
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, true);
        }
        m
    }

    /// Builds a matrix from an iterator of rows, each row given as indices of set columns.
    ///
    /// # Panics
    ///
    /// Panics if any column index is out of bounds.
    pub fn from_row_supports(rows: usize, cols: usize, supports: &[Vec<usize>]) -> Self {
        assert_eq!(rows, supports.len(), "row count must match supports length");
        let mut m = Self::zeros(rows, cols);
        for (r, support) in supports.iter().enumerate() {
            for &c in support {
                assert!(
                    c < cols,
                    "column index {c} out of bounds for {cols} columns"
                );
                m.set(r, c, true);
            }
        }
        m
    }

    /// Builds a matrix from a nested `Vec` of 0/1 entries.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_dense(entries: &[Vec<u8>]) -> Self {
        let rows = entries.len();
        let cols = entries.first().map_or(0, |r| r.len());
        let mut m = Self::zeros(rows, cols);
        for (r, row) in entries.iter().enumerate() {
            assert_eq!(row.len(), cols, "all rows must have the same length");
            for (c, &v) in row.iter().enumerate() {
                if v % 2 == 1 {
                    m.set(r, c, true);
                }
            }
        }
        m
    }

    /// Returns `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns the number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Returns the number of columns.
    pub fn num_cols(&self) -> usize {
        self.cols
    }

    /// Number of `u64` storage words per row.
    ///
    /// Together with [`BitMat::row_words`] this exposes the packed representation to
    /// word-level consumers (e.g. the OSD decoder's augmented-matrix construction);
    /// bit `c` of a row lives in word `c / 64` at bit position `c % 64`.
    #[inline]
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// The packed storage words of row `r` (bit `c` at word `c / 64`, bit `c % 64`).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[inline]
    pub fn row_words(&self, r: usize) -> &[u64] {
        assert!(r < self.rows, "row index {r} out of bounds");
        &self.data[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    /// Returns the bit at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        let w = self.data[r * self.words_per_row + c / WORD_BITS];
        (w >> (c % WORD_BITS)) & 1 == 1
    }

    /// Sets the bit at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: bool) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        let idx = r * self.words_per_row + c / WORD_BITS;
        let mask = 1u64 << (c % WORD_BITS);
        if value {
            self.data[idx] |= mask;
        } else {
            self.data[idx] &= !mask;
        }
    }

    /// Flips (XORs with 1) the bit at `(r, c)`.
    #[inline]
    pub fn flip(&mut self, r: usize, c: usize) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        let idx = r * self.words_per_row + c / WORD_BITS;
        self.data[idx] ^= 1u64 << (c % WORD_BITS);
    }

    /// Returns true when every entry is zero.
    pub fn is_zero(&self) -> bool {
        self.data.iter().all(|&w| w == 0)
    }

    /// Returns the indices of set columns in row `r`.
    pub fn row_support(&self, r: usize) -> Vec<usize> {
        (0..self.cols).filter(|&c| self.get(r, c)).collect()
    }

    /// Returns the indices of set rows in column `c`.
    pub fn col_support(&self, c: usize) -> Vec<usize> {
        (0..self.rows).filter(|&r| self.get(r, c)).collect()
    }

    /// Returns the Hamming weight of row `r`.
    pub fn row_weight(&self, r: usize) -> usize {
        let base = r * self.words_per_row;
        self.data[base..base + self.words_per_row]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Returns the Hamming weight of column `c`.
    pub fn col_weight(&self, c: usize) -> usize {
        (0..self.rows).filter(|&r| self.get(r, c)).count()
    }

    /// XORs row `src` into row `dst` (`dst += src` over GF(2)).
    pub fn xor_row_into(&mut self, src: usize, dst: usize) {
        assert!(
            src < self.rows && dst < self.rows,
            "row index out of bounds"
        );
        if src == dst {
            for w in 0..self.words_per_row {
                self.data[dst * self.words_per_row + w] = 0;
            }
            return;
        }
        let (a, b) = (src * self.words_per_row, dst * self.words_per_row);
        for w in 0..self.words_per_row {
            let v = self.data[a + w];
            self.data[b + w] ^= v;
        }
    }

    /// Swaps rows `a` and `b`.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for w in 0..self.words_per_row {
            self.data
                .swap(a * self.words_per_row + w, b * self.words_per_row + w);
        }
    }

    /// Returns the transpose of this matrix.
    pub fn transpose(&self) -> BitMat {
        let mut t = BitMat::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                if self.get(r, c) {
                    t.set(c, r, true);
                }
            }
        }
        t
    }

    /// Matrix multiplication over GF(2): `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not agree.
    pub fn mul(&self, other: &BitMat) -> BitMat {
        assert_eq!(
            self.cols, other.rows,
            "inner dimensions must agree: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = BitMat::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                if self.get(r, k) {
                    // out.row(r) ^= other.row(k)
                    let a = k * other.words_per_row;
                    let b = r * out.words_per_row;
                    for w in 0..other.words_per_row {
                        out.data[b + w] ^= other.data[a + w];
                    }
                }
            }
        }
        out
    }

    /// Matrix-vector multiplication over GF(2); `v` is indexed by column.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.num_cols()`.
    pub fn mul_vec(&self, v: &[bool]) -> Vec<bool> {
        assert_eq!(v.len(), self.cols, "vector length must equal column count");
        let mut out = vec![false; self.rows];
        for (r, o) in out.iter_mut().enumerate() {
            let mut acc = false;
            for (c, &vc) in v.iter().enumerate() {
                if vc && self.get(r, c) {
                    acc = !acc;
                }
            }
            *o = acc;
        }
        out
    }

    /// Kronecker (tensor) product `self ⊗ other` over GF(2).
    pub fn kron(&self, other: &BitMat) -> BitMat {
        let mut out = BitMat::zeros(self.rows * other.rows, self.cols * other.cols);
        for r1 in 0..self.rows {
            for c1 in 0..self.cols {
                if !self.get(r1, c1) {
                    continue;
                }
                for r2 in 0..other.rows {
                    for c2 in 0..other.cols {
                        if other.get(r2, c2) {
                            out.set(r1 * other.rows + r2, c1 * other.cols + c2, true);
                        }
                    }
                }
            }
        }
        out
    }

    /// Horizontal concatenation `[self | other]`.
    ///
    /// # Panics
    ///
    /// Panics if row counts differ.
    pub fn hconcat(&self, other: &BitMat) -> BitMat {
        assert_eq!(self.rows, other.rows, "row counts must match for hconcat");
        let mut out = BitMat::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                if self.get(r, c) {
                    out.set(r, c, true);
                }
            }
            for c in 0..other.cols {
                if other.get(r, c) {
                    out.set(r, self.cols + c, true);
                }
            }
        }
        out
    }

    /// Vertical concatenation `[self; other]`.
    ///
    /// # Panics
    ///
    /// Panics if column counts differ.
    pub fn vconcat(&self, other: &BitMat) -> BitMat {
        assert_eq!(
            self.cols, other.cols,
            "column counts must match for vconcat"
        );
        let mut out = BitMat::zeros(self.rows + other.rows, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                if self.get(r, c) {
                    out.set(r, c, true);
                }
            }
        }
        for r in 0..other.rows {
            for c in 0..self.cols {
                if other.get(r, c) {
                    out.set(self.rows + r, c, true);
                }
            }
        }
        out
    }

    /// Computes the rank over GF(2) without modifying `self`.
    pub fn rank(&self) -> usize {
        let mut work = self.clone();
        work.row_reduce().len()
    }

    /// In-place Gaussian elimination to reduced row-echelon form.
    ///
    /// Returns the pivot columns in order.
    pub fn row_reduce(&mut self) -> Vec<usize> {
        let mut pivots = Vec::new();
        let mut pivot_row = 0usize;
        for col in 0..self.cols {
            if pivot_row >= self.rows {
                break;
            }
            // Find a row at or below pivot_row with a 1 in this column.
            let mut found = None;
            for r in pivot_row..self.rows {
                if self.get(r, col) {
                    found = Some(r);
                    break;
                }
            }
            let Some(r) = found else { continue };
            self.swap_rows(pivot_row, r);
            // Eliminate all other rows.
            for rr in 0..self.rows {
                if rr != pivot_row && self.get(rr, col) {
                    let (a, b) = (pivot_row * self.words_per_row, rr * self.words_per_row);
                    for w in 0..self.words_per_row {
                        let v = self.data[a + w];
                        self.data[b + w] ^= v;
                    }
                }
            }
            pivots.push(col);
            pivot_row += 1;
        }
        pivots
    }

    /// Returns a basis of the null space (kernel) of this matrix: vectors `x` with
    /// `self * x = 0`. Each returned vector has length `self.num_cols()`.
    pub fn null_space(&self) -> Vec<Vec<bool>> {
        let mut work = self.clone();
        let pivots = work.row_reduce();
        let pivot_set: Vec<Option<usize>> = {
            let mut v = vec![None; self.cols];
            for (i, &p) in pivots.iter().enumerate() {
                v[p] = Some(i);
            }
            v
        };
        let mut basis = Vec::new();
        for free_col in 0..self.cols {
            if pivot_set[free_col].is_some() {
                continue;
            }
            let mut vec = vec![false; self.cols];
            vec[free_col] = true;
            // Back-substitute: for each pivot row, the pivot column value equals the
            // row's entry in the free column.
            for (row_idx, &pcol) in pivots.iter().enumerate() {
                if work.get(row_idx, free_col) {
                    vec[pcol] = true;
                }
            }
            basis.push(vec);
        }
        basis
    }

    /// Solves `self * x = b` over GF(2), returning one solution if it exists.
    ///
    /// # Errors
    ///
    /// Returns `None` when the system is inconsistent.
    pub fn solve(&self, b: &[bool]) -> Option<Vec<bool>> {
        assert_eq!(b.len(), self.rows, "rhs length must equal row count");
        // Augment with b as an extra column.
        let mut aug = BitMat::zeros(self.rows, self.cols + 1);
        for (r, &br) in b.iter().enumerate() {
            for c in 0..self.cols {
                if self.get(r, c) {
                    aug.set(r, c, true);
                }
            }
            if br {
                aug.set(r, self.cols, true);
            }
        }
        let pivots = aug.row_reduce();
        // Inconsistent if a pivot lands in the augmented column.
        if pivots.contains(&self.cols) {
            return None;
        }
        let mut x = vec![false; self.cols];
        for (row_idx, &pcol) in pivots.iter().enumerate() {
            if aug.get(row_idx, self.cols) {
                x[pcol] = true;
            }
        }
        Some(x)
    }

    /// Returns true when vector `v` (length = cols) lies in the row space of `self`.
    pub fn row_space_contains(&self, v: &[bool]) -> bool {
        assert_eq!(v.len(), self.cols, "vector length must equal column count");
        let t = self.transpose();
        t.solve(v).is_some()
    }

    /// Returns the rows as support lists (useful for sparse consumers).
    pub fn to_row_supports(&self) -> Vec<Vec<usize>> {
        (0..self.rows).map(|r| self.row_support(r)).collect()
    }
}

impl fmt::Debug for BitMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BitMat {}x{}:", self.rows, self.cols)?;
        for r in 0..self.rows.min(40) {
            for c in 0..self.cols.min(120) {
                write!(f, "{}", u8::from(self.get(r, c)))?;
            }
            writeln!(f)?;
        }
        if self.rows > 40 || self.cols > 120 {
            writeln!(f, "... (truncated)")?;
        }
        Ok(())
    }
}

impl fmt::Display for BitMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// XOR of two boolean vectors of equal length.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn xor_vec(a: &[bool], b: &[bool]) -> Vec<bool> {
    assert_eq!(a.len(), b.len(), "vector lengths must match");
    a.iter().zip(b).map(|(&x, &y)| x ^ y).collect()
}

/// Hamming weight of a boolean vector.
pub fn weight(v: &[bool]) -> usize {
    v.iter().filter(|&&b| b).count()
}

/// Dot product over GF(2) of two boolean vectors of equal length.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn dot(a: &[bool], b: &[bool]) -> bool {
    assert_eq!(a.len(), b.len(), "vector lengths must match");
    a.iter().zip(b).fold(false, |acc, (&x, &y)| acc ^ (x & y))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_rank() {
        for n in 1..10 {
            assert_eq!(BitMat::identity(n).rank(), n);
        }
    }

    #[test]
    fn set_get_roundtrip() {
        let mut m = BitMat::zeros(5, 70);
        m.set(3, 65, true);
        m.set(0, 0, true);
        assert!(m.get(3, 65));
        assert!(m.get(0, 0));
        assert!(!m.get(3, 64));
        m.set(3, 65, false);
        assert!(!m.get(3, 65));
    }

    #[test]
    fn flip_toggles() {
        let mut m = BitMat::zeros(2, 2);
        m.flip(1, 1);
        assert!(m.get(1, 1));
        m.flip(1, 1);
        assert!(!m.get(1, 1));
    }

    #[test]
    fn mul_identity_is_noop() {
        let m = BitMat::from_dense(&[vec![1, 0, 1], vec![0, 1, 1]]);
        let id = BitMat::identity(3);
        assert_eq!(m.mul(&id), m);
    }

    #[test]
    fn mul_matches_manual() {
        let a = BitMat::from_dense(&[vec![1, 1], vec![0, 1]]);
        let b = BitMat::from_dense(&[vec![1, 0], vec![1, 1]]);
        let c = a.mul(&b);
        // [1 1; 0 1] * [1 0; 1 1] = [0 1; 1 1] over GF(2)
        assert_eq!(c, BitMat::from_dense(&[vec![0, 1], vec![1, 1]]));
    }

    #[test]
    fn transpose_involution() {
        let m = BitMat::from_dense(&[vec![1, 0, 1, 1], vec![0, 1, 1, 0]]);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn kron_shape_and_values() {
        let a = BitMat::from_dense(&[vec![1, 0], vec![0, 1]]);
        let b = BitMat::from_dense(&[vec![1, 1]]);
        let k = a.kron(&b);
        assert_eq!(k.shape(), (2, 4));
        assert!(k.get(0, 0) && k.get(0, 1) && !k.get(0, 2));
        assert!(k.get(1, 2) && k.get(1, 3));
    }

    #[test]
    fn rank_of_dependent_rows() {
        let m = BitMat::from_dense(&[vec![1, 1, 0], vec![0, 1, 1], vec![1, 0, 1]]);
        // third row = sum of first two
        assert_eq!(m.rank(), 2);
    }

    #[test]
    fn null_space_is_kernel() {
        let m = BitMat::from_dense(&[vec![1, 1, 0, 0], vec![0, 1, 1, 0], vec![0, 0, 1, 1]]);
        let ns = m.null_space();
        assert_eq!(ns.len(), 1);
        for v in &ns {
            assert!(m.mul_vec(v).iter().all(|&b| !b));
        }
    }

    #[test]
    fn solve_consistent_system() {
        let m = BitMat::from_dense(&[vec![1, 1, 0], vec![0, 1, 1]]);
        let b = vec![true, false];
        let x = m.solve(&b).expect("system should be consistent");
        assert_eq!(m.mul_vec(&x), b);
    }

    #[test]
    fn solve_inconsistent_system() {
        let m = BitMat::from_dense(&[vec![1, 1, 0], vec![1, 1, 0]]);
        let b = vec![true, false];
        assert!(m.solve(&b).is_none());
    }

    #[test]
    fn row_space_membership() {
        let m = BitMat::from_dense(&[vec![1, 1, 0], vec![0, 1, 1]]);
        assert!(m.row_space_contains(&[true, false, true])); // sum of rows
        assert!(!m.row_space_contains(&[true, false, false]));
    }

    #[test]
    fn hconcat_vconcat() {
        let a = BitMat::identity(2);
        let b = BitMat::zeros(2, 3);
        let h = a.hconcat(&b);
        assert_eq!(h.shape(), (2, 5));
        let v = a.vconcat(&BitMat::identity(2));
        assert_eq!(v.shape(), (4, 2));
        assert_eq!(v.rank(), 2);
    }

    #[test]
    fn row_words_expose_packed_bits() {
        let mut m = BitMat::zeros(2, 70);
        m.set(1, 0, true);
        m.set(1, 65, true);
        assert_eq!(m.words_per_row(), 2);
        let words = m.row_words(1);
        assert_eq!(words[0], 1);
        assert_eq!(words[1], 1 << 1);
        assert_eq!(m.row_words(0), &[0, 0]);
    }

    #[test]
    fn vector_helpers() {
        assert_eq!(weight(&[true, false, true]), 2);
        assert_eq!(xor_vec(&[true, false], &[true, true]), vec![false, true]);
        assert!(dot(&[true, true], &[true, false]));
        assert!(!dot(&[true, true], &[true, true]));
    }
}
