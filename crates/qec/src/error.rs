//! Error types for code construction.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing or validating quantum error-correcting codes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum QecError {
    /// The X and Z parity-check matrices do not commute (`Hx · Hzᵀ ≠ 0`).
    StabilizersDoNotCommute {
        /// Name of the offending code.
        name: String,
    },
    /// Matrix dimensions are inconsistent.
    ShapeMismatch {
        /// Human-readable description of the mismatch.
        context: String,
    },
    /// A code-family constructor was given invalid parameters.
    InvalidParameters {
        /// Human-readable description of the problem.
        context: String,
    },
    /// A seeded search for a classical ingredient code failed within its budget.
    SearchExhausted {
        /// Human-readable description of the search target.
        context: String,
    },
}

impl fmt::Display for QecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QecError::StabilizersDoNotCommute { name } => {
                write!(
                    f,
                    "stabilizers of code `{name}` do not commute (Hx * Hz^T != 0)"
                )
            }
            QecError::ShapeMismatch { context } => write!(f, "shape mismatch: {context}"),
            QecError::InvalidParameters { context } => write!(f, "invalid parameters: {context}"),
            QecError::SearchExhausted { context } => write!(f, "search exhausted: {context}"),
        }
    }
}

impl Error for QecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let e = QecError::ShapeMismatch {
            context: "Hx vs Hz".into(),
        };
        assert!(!e.to_string().is_empty());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QecError>();
    }
}
