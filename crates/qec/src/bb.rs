//! Bivariate bicycle (BB) codes.
//!
//! BB codes (Bravyi et al., *Nature* 2024) are CSS codes defined by two polynomials
//! `A` and `B` in commuting cyclic-shift variables `x` (order `l`) and `y` (order `m`):
//!
//! ```text
//! x = S_l ⊗ I_m,     y = I_l ⊗ S_m
//! Hx = [ A | B ],    Hz = [ Bᵀ | Aᵀ ]
//! ```
//!
//! where `S_n` is the `n × n` cyclic shift. The code acts on `n = 2·l·m` qubits.
//! BB codes are *not* edge-colorable, so their syndrome extraction measures all X
//! stabilizers and then all Z stabilizers (no interleaving).

use crate::css::CssCode;
use crate::error::QecError;
use crate::linalg::BitMat;
use serde::{Deserialize, Serialize};

/// A monomial `x^a · y^b` in the bivariate group algebra.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Monomial {
    /// Exponent of `x` (taken modulo `l`).
    pub x: usize,
    /// Exponent of `y` (taken modulo `m`).
    pub y: usize,
}

impl Monomial {
    /// `x^a` with no `y` component.
    pub fn x(a: usize) -> Self {
        Monomial { x: a, y: 0 }
    }

    /// `y^b` with no `x` component.
    pub fn y(b: usize) -> Self {
        Monomial { x: 0, y: b }
    }

    /// The identity monomial `1`.
    pub fn one() -> Self {
        Monomial { x: 0, y: 0 }
    }
}

/// Parameters of a bivariate bicycle code: cyclic orders `l`, `m` and the monomial
/// supports of the polynomials `A` and `B`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BbParameters {
    /// Order of the `x` shift.
    pub l: usize,
    /// Order of the `y` shift.
    pub m: usize,
    /// Monomials of polynomial `A`.
    pub a: Vec<Monomial>,
    /// Monomials of polynomial `B`.
    pub b: Vec<Monomial>,
    /// Claimed distance from the literature, if known.
    pub claimed_distance: Option<usize>,
}

impl BbParameters {
    /// Number of physical qubits `n = 2·l·m`.
    pub fn num_qubits(&self) -> usize {
        2 * self.l * self.m
    }
}

/// Builds the circulant matrix of a polynomial over the bivariate group algebra.
fn polynomial_matrix(l: usize, m: usize, terms: &[Monomial]) -> BitMat {
    let dim = l * m;
    let mut mat = BitMat::zeros(dim, dim);
    for row in 0..dim {
        let (i, j) = (row / m, row % m);
        for t in terms {
            let ii = (i + t.x) % l;
            let jj = (j + t.y) % m;
            mat.flip(row, ii * m + jj);
        }
    }
    mat
}

/// Constructs the bivariate bicycle code described by `params`.
///
/// # Errors
///
/// Returns [`QecError::InvalidParameters`] when `l`, `m`, or the polynomial supports
/// are empty, and propagates commutation failures (which cannot occur for well-formed
/// circulant inputs, but are checked defensively).
///
/// # Examples
///
/// ```
/// use qec::bb::{bivariate_bicycle, gross_code_parameters};
///
/// let code = bivariate_bicycle(&gross_code_parameters())?;
/// assert_eq!(code.num_qubits(), 144);
/// assert_eq!(code.num_logical(), 12);
/// # Ok::<(), qec::error::QecError>(())
/// ```
pub fn bivariate_bicycle(params: &BbParameters) -> Result<CssCode, QecError> {
    if params.l == 0 || params.m == 0 {
        return Err(QecError::InvalidParameters {
            context: "BB code requires l >= 1 and m >= 1".into(),
        });
    }
    if params.a.is_empty() || params.b.is_empty() {
        return Err(QecError::InvalidParameters {
            context: "BB code polynomials A and B must be nonempty".into(),
        });
    }
    let a = polynomial_matrix(params.l, params.m, &params.a);
    let b = polynomial_matrix(params.l, params.m, &params.b);
    let hx = a.hconcat(&b);
    let hz = b.transpose().hconcat(&a.transpose());
    let name = format!("BB(l={}, m={})", params.l, params.m);
    CssCode::new(name, hx, hz, false, params.claimed_distance)
}

/// Parameters of the `[[72,12,6]]` BB code.
pub fn bb_72_12_6_parameters() -> BbParameters {
    BbParameters {
        l: 6,
        m: 6,
        a: vec![Monomial::x(3), Monomial::y(1), Monomial::y(2)],
        b: vec![Monomial::y(3), Monomial::x(1), Monomial::x(2)],
        claimed_distance: Some(6),
    }
}

/// Parameters of the `[[90,8,10]]` BB code.
pub fn bb_90_8_10_parameters() -> BbParameters {
    BbParameters {
        l: 15,
        m: 3,
        a: vec![Monomial::x(9), Monomial::y(1), Monomial::y(2)],
        b: vec![Monomial::one(), Monomial::x(2), Monomial::x(7)],
        claimed_distance: Some(10),
    }
}

/// Parameters of the `[[108,8,10]]` BB code.
pub fn bb_108_8_10_parameters() -> BbParameters {
    BbParameters {
        l: 9,
        m: 6,
        a: vec![Monomial::x(3), Monomial::y(1), Monomial::y(2)],
        b: vec![Monomial::y(3), Monomial::x(1), Monomial::x(2)],
        claimed_distance: Some(10),
    }
}

/// Parameters of the `[[144,12,12]]` "gross" BB code.
pub fn gross_code_parameters() -> BbParameters {
    BbParameters {
        l: 12,
        m: 6,
        a: vec![Monomial::x(3), Monomial::y(1), Monomial::y(2)],
        b: vec![Monomial::y(3), Monomial::x(1), Monomial::x(2)],
        claimed_distance: Some(12),
    }
}

/// Parameters of the `[[288,12,18]]` BB code.
pub fn bb_288_12_18_parameters() -> BbParameters {
    BbParameters {
        l: 12,
        m: 12,
        a: vec![Monomial::x(3), Monomial::y(2), Monomial::y(7)],
        b: vec![Monomial::y(3), Monomial::x(1), Monomial::x(2)],
        claimed_distance: Some(18),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(params: BbParameters, n: usize, k: usize) {
        let code = bivariate_bicycle(&params).expect("valid BB code");
        assert_eq!(code.num_qubits(), n, "physical qubit count");
        assert_eq!(code.num_logical(), k, "logical qubit count");
        assert_eq!(code.max_x_weight(), 6, "BB stabilizers have weight 6");
        assert_eq!(code.max_z_weight(), 6);
        assert!(!code.is_edge_colorable());
    }

    #[test]
    fn bb_72_12_6() {
        check(bb_72_12_6_parameters(), 72, 12);
    }

    #[test]
    fn bb_90_8_10() {
        check(bb_90_8_10_parameters(), 90, 8);
    }

    #[test]
    fn bb_108_8_10() {
        check(bb_108_8_10_parameters(), 108, 8);
    }

    #[test]
    fn gross_code() {
        check(gross_code_parameters(), 144, 12);
    }

    #[test]
    fn empty_polynomial_rejected() {
        let params = BbParameters {
            l: 4,
            m: 4,
            a: vec![],
            b: vec![Monomial::one()],
            claimed_distance: None,
        };
        assert!(matches!(
            bivariate_bicycle(&params),
            Err(QecError::InvalidParameters { .. })
        ));
    }

    #[test]
    fn polynomial_matrix_is_circulant() {
        let m = polynomial_matrix(3, 2, &[Monomial::x(1)]);
        // Every row and column has weight exactly 1.
        for r in 0..6 {
            assert_eq!(m.row_weight(r), 1);
            assert_eq!(m.col_weight(r), 1);
        }
    }
}
