//! Hypergraph product (HGP) codes.
//!
//! Given two classical codes with parity-check matrices `H1` (m1×n1) and `H2` (m2×n2),
//! the hypergraph product construction of Tillich and Zémor yields a CSS code on
//! `n1·n2 + m1·m2` qubits with
//!
//! ```text
//! Hx = [ H1 ⊗ I_n2  |  I_m1 ⊗ H2ᵀ ]
//! Hz = [ I_n1 ⊗ H2  |  H1ᵀ ⊗ I_m2 ]
//! ```
//!
//! and `k = k1·k2 + k1ᵀ·k2ᵀ` logical qubits. HGP codes are *edge-colorable*: their
//! Tanner graphs admit interleaved X/Z syndrome-extraction schedules (Tremblay,
//! Delfosse, Beverland).

use crate::classical::ClassicalCode;
use crate::css::CssCode;
use crate::error::QecError;
use crate::linalg::BitMat;

/// Builds the hypergraph product of two classical codes.
///
/// # Errors
///
/// Returns an error if the resulting stabilizers fail to commute (which would indicate
/// a bug in the construction, not bad user input) — the check is kept as a defensive
/// validation of the library itself.
///
/// # Examples
///
/// ```
/// use qec::classical::ClassicalCode;
/// use qec::hgp::hypergraph_product;
///
/// let rep = ClassicalCode::repetition(3);
/// let code = hypergraph_product(&rep, &rep)?;
/// // The HGP of two repetition codes is the (rotated-boundary) surface code:
/// assert_eq!(code.num_qubits(), 13);
/// assert_eq!(code.num_logical(), 1);
/// # Ok::<(), qec::error::QecError>(())
/// ```
pub fn hypergraph_product(c1: &ClassicalCode, c2: &ClassicalCode) -> Result<CssCode, QecError> {
    let h1 = c1.parity_check();
    let h2 = c2.parity_check();
    let (m1, n1) = h1.shape();
    let (m2, n2) = h2.shape();

    let hx_left = h1.kron(&BitMat::identity(n2));
    let hx_right = BitMat::identity(m1).kron(&h2.transpose());
    let hx = hx_left.hconcat(&hx_right);

    let hz_left = BitMat::identity(n1).kron(h2);
    let hz_right = h1.transpose().kron(&BitMat::identity(m2));
    let hz = hz_left.hconcat(&hz_right);

    let d1 = c1.minimum_distance();
    let d2 = c2.minimum_distance();
    let claimed = match (d1, d2) {
        (Some(a), Some(b)) => Some(a.min(b)),
        _ => None,
    };

    let name = format!("HGP({}, {})", c1.name(), c2.name());
    CssCode::new(name, hx, hz, true, claimed)
}

/// Convenience constructor: the hypergraph product of a classical code with itself.
///
/// # Errors
///
/// Propagates errors from [`hypergraph_product`].
pub fn square_hypergraph_product(c: &ClassicalCode) -> Result<CssCode, QecError> {
    hypergraph_product(c, c)
}

/// The expected number of physical qubits of `HGP(c1, c2)`.
pub fn hgp_num_qubits(c1: &ClassicalCode, c2: &ClassicalCode) -> usize {
    c1.block_length() * c2.block_length() + c1.num_checks() * c2.num_checks()
}

/// The expected number of logical qubits of `HGP(c1, c2)`:
/// `k1·k2 + k1ᵀ·k2ᵀ`.
pub fn hgp_num_logical(c1: &ClassicalCode, c2: &ClassicalCode) -> usize {
    c1.dimension() * c2.dimension() + c1.transpose_dimension() * c2.transpose_dimension()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surface_code_from_repetition() {
        let rep = ClassicalCode::repetition(3);
        let code = square_hypergraph_product(&rep).expect("valid construction");
        assert_eq!(code.num_qubits(), 13); // 3*3 + 2*2
        assert_eq!(code.num_logical(), 1);
        assert_eq!(code.claimed_distance(), Some(3));
        assert!(code.is_edge_colorable());
    }

    #[test]
    fn dimension_formula_matches_computed() {
        let c1 = ClassicalCode::hamming_7_4();
        let c2 = ClassicalCode::repetition(4);
        let code = hypergraph_product(&c1, &c2).expect("valid construction");
        assert_eq!(code.num_qubits(), hgp_num_qubits(&c1, &c2));
        assert_eq!(code.num_logical(), hgp_num_logical(&c1, &c2));
    }

    #[test]
    fn ldpc_product_commutes() {
        let c = ClassicalCode::gallager_ldpc(12, 3, 4, 3);
        let code = square_hypergraph_product(&c).expect("HGP always commutes");
        assert_eq!(code.num_qubits(), 12 * 12 + 9 * 9);
        // Low-weight stabilizers: each has weight <= wr + wc = 7.
        assert!(code.max_x_weight() <= 7);
        assert!(code.max_z_weight() <= 7);
    }

    #[test]
    fn asymmetric_product_shapes() {
        let c1 = ClassicalCode::repetition(3);
        let c2 = ClassicalCode::repetition(5);
        let code = hypergraph_product(&c1, &c2).expect("valid construction");
        assert_eq!(code.num_qubits(), 3 * 5 + 2 * 4);
        assert_eq!(code.num_x_stabilizers(), 2 * 5);
        assert_eq!(code.num_z_stabilizers(), 3 * 4);
    }
}
