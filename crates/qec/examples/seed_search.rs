// quick seed search for ingredient codes
fn main() {
    for (n, k, d) in [(8usize, 2usize, 4usize), (12, 3, 6), (16, 4, 6), (20, 5, 8)] {
        let mut found = None;
        for seed in 0..200000u64 {
            let c = qec::classical::ClassicalCode::gallager_ldpc(n, 3, 4, seed);
            if c.dimension() != k {
                continue;
            }
            if let Some(dist) = c.minimum_distance() {
                if dist >= d {
                    found = Some((seed, dist));
                    break;
                }
            }
        }
        println!("n={n} k={k} want_d={d} -> {:?}", found);
    }
}
