//! Regenerates `EXPERIMENTS.md` at the repository root: one row per figure with the
//! paper's claim next to the value measured by this run.
//!
//! All Monte-Carlo rows go through the sweep engine, so a regeneration after the
//! figure suite has populated `sweeps/` is almost entirely cache hits; running it
//! cold recomputes (and caches) everything. `CYCLONE_SHOTS` / `--shots` scale the
//! sampling; the shot count used is recorded in the document header.

use bench::runner::RunContext;
use cyclone::experiments::{
    fig13_trap_capacity_sweep_with, fig16_spacetime, fig17_loose_capacity_with,
    fig18_op_time_sweep_with, fig20_compiler_comparison, fig21_swap_sensitivity,
    fig3_parallel_speedup, fig5_latency_vs_ler_with, fig6_confusion_matrix,
    fig9_junction_sensitivity_with, fig_hetero_with, ler_comparison_with, spatial_summary,
    HETERO_DEFAULT_RATIOS,
};
use cyclone::{best_configuration, default_trap_counts, trap_capacity_sweep};
use qccd::timing::OperationTimes;

struct Row {
    figure: &'static str,
    scenario: String,
    paper: &'static str,
    measured: String,
}

/// Number of distinct codesigns in the hetero rows (one uniform row each).
fn standard_registry_len(rows: &[cyclone::experiments::HeteroRow]) -> usize {
    rows.iter().filter(|r| r.channel == "uniform").count()
}

fn main() {
    let ctx = RunContext::from_env();
    let times = OperationTimes::default();
    let catalog = bench::catalog();
    let codes: Vec<_> = catalog.iter().map(|e| e.code.clone()).collect();
    let sens = bench::sensitivity_code();
    let mut rows: Vec<Row> = Vec::new();

    // Fig. 3 — schedule-level speedup (compile-only).
    let fig3 = fig3_parallel_speedup(&catalog);
    let (lo, hi) = fig3.iter().fold((f64::MAX, f64::MIN), |(lo, hi), r| {
        (lo.min(r.speedup), hi.max(r.speedup))
    });
    rows.push(Row {
        figure: "Fig. 3",
        scenario: format!(
            "max-parallel vs serial schedule depth, {} codes",
            fig3.len()
        ),
        paper: "order-of-magnitude idealized speedups",
        measured: format!("{lo:.1}x – {hi:.1}x"),
    });

    // Fig. 5 — baseline LER vs latency reduction.
    let fig5 = fig5_latency_vs_ler_with(&bench::hgp_codes(), 5e-4, &[1.0, 2.0, 4.0], &ctx.sweep);
    let first = &fig5[0];
    let fastest = &fig5[2];
    rows.push(Row {
        figure: "Fig. 5",
        scenario: format!("{} baseline latency / 1x vs / 4x at p=5e-4", first.code),
        paper: "faster syndrome extraction lowers LER",
        measured: format!("LER {:.3e} -> {:.3e}", first.ler.ler, fastest.ler.ler),
    });

    // Fig. 6 — confusion matrix.
    let m = fig6_confusion_matrix(&sens, &times);
    rows.push(Row {
        figure: "Fig. 6",
        scenario: format!("software x hardware matrix, {}", m.code),
        paper: "only circle+coordinated (Cyclone) beats the grid baseline",
        measured: format!(
            "Cyclone cell {:.1}x faster than grid+static; circle+static {:.1}x slower",
            m.grid_static / m.circle_dynamic,
            m.circle_static / m.grid_static
        ),
    });

    // Fig. 9 — junction sensitivity.
    let fig9 = fig9_junction_sensitivity_with(&sens, 5e-4, &[0.0, 0.3, 0.5, 0.7, 0.9], &ctx.sweep);
    let crossover = fig9
        .iter()
        .find(|r| r.mesh_ler.ler <= r.baseline_ler.ler)
        .map(|r| format!("crossover at {:.0}% reduction", r.reduction * 100.0))
        .unwrap_or_else(|| "no crossover in sweep".to_string());
    rows.push(Row {
        figure: "Fig. 9",
        scenario: format!("mesh junction network vs baseline, {}", sens.descriptor()),
        paper: "mesh needs ~70% junction-time reduction to beat the baseline",
        measured: crossover,
    });

    // Fig. 13 — trap/capacity sweep.
    let counts = default_trap_counts(&sens);
    let fig13 = fig13_trap_capacity_sweep_with(&sens, 1e-4, &counts, &ctx.sweep);
    let best = fig13
        .iter()
        .min_by(|a, b| a.execution_time.total_cmp(&b.execution_time))
        .expect("nonempty");
    rows.push(Row {
        figure: "Fig. 13",
        scenario: format!("condensed Cyclone trap counts on {}", sens.descriptor()),
        paper: "sweet spot between one giant trap and the base form",
        measured: format!(
            "fastest at {} traps (capacity {}), {:.2} ms",
            best.num_traps,
            best.trap_capacity,
            best.execution_time * 1e3
        ),
    });
    // Consistency check against the compile-only sweep helper.
    let sweep_points = trap_capacity_sweep(&sens, &counts, &times);
    assert_eq!(
        best_configuration(&sweep_points).map(|p| p.num_traps),
        Some(best.num_traps),
        "sweep-engine best configuration must match the compile-only sweep"
    );

    // Figs. 14/15 — LER comparison.
    for (figure, label, codes) in [
        ("Fig. 14", "BB", bench::bb_codes()),
        ("Fig. 15", "HGP", bench::hgp_codes()),
    ] {
        let cache_name = if label == "BB" {
            "fig14_bb_ler"
        } else {
            "fig15_hgp_ler"
        };
        let rows_f = ler_comparison_with(cache_name, &codes, &bench::error_rate_grid(), &ctx.sweep);
        let best_improvement = rows_f
            .iter()
            .map(|r| r.baseline_ler.ler / r.cyclone_ler.ler)
            .fold(f64::MIN, f64::max);
        rows.push(Row {
            figure,
            scenario: format!("Cyclone vs baseline LER, {label} codes x 5 error rates"),
            paper: "up to orders-of-magnitude LER improvement",
            measured: format!("best improvement {best_improvement:.1}x"),
        });
    }

    // Fig. 16 — spacetime cost.
    let fig16 = fig16_spacetime(&codes, &times);
    let max_improvement = fig16.iter().map(|r| r.improvement).fold(f64::MIN, f64::max);
    rows.push(Row {
        figure: "Fig. 16",
        scenario: format!("traps x time x ancillas, {} codes", fig16.len()),
        paper: "up to ~20x spacetime advantage for Cyclone",
        measured: format!("up to {max_improvement:.1}x"),
    });

    // Fig. 17 — loose capacity.
    let fig17 = fig17_loose_capacity_with(&sens, 1e-4, &[5, 8, 12, 20, 40], &ctx.sweep);
    let spread = fig17
        .iter()
        .map(|r| r.execution_time)
        .fold(f64::MIN, f64::max)
        / fig17
            .iter()
            .map(|r| r.execution_time)
            .fold(f64::MAX, f64::min);
    rows.push(Row {
        figure: "Fig. 17",
        scenario: format!("baseline with excess trap capacity, {}", sens.descriptor()),
        paper: "looser traps give negligible improvement",
        measured: format!("exec-time spread {spread:.2}x across capacities 5–40"),
    });

    // Fig. 18 — uniformly faster operations.
    let fig18 = fig18_op_time_sweep_with(&sens, 1e-4, &[0.0, 0.5, 0.9], &ctx.sweep);
    let gap0 = fig18[0].baseline_latency / fig18[0].cyclone_latency;
    let gap9 = fig18[2].baseline_latency / fig18[2].cyclone_latency;
    rows.push(Row {
        figure: "Fig. 18",
        scenario: format!(
            "gate+shuttle times reduced 0% -> 90%, {}",
            sens.descriptor()
        ),
        paper: "Cyclone's latency edge persists as operations speed up",
        measured: format!("latency gap {gap0:.1}x at 0%, {gap9:.1}x at 90%"),
    });

    // Fig. 19 — execution times (captured via Fig. 16's codes).
    let fig19 = cyclone::experiments::fig19_execution_times(&codes, &times);
    let speedups: Vec<f64> = fig19.iter().map(|r| r.baseline / r.cyclone).collect();
    let (s_lo, s_hi) = speedups
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &s| (lo.min(s), hi.max(s)));
    rows.push(Row {
        figure: "Fig. 19",
        scenario: format!("alternate grid / baseline / Cyclone, {} codes", fig19.len()),
        paper: "Cyclone is the fastest configuration on every code",
        measured: format!("Cyclone {s_lo:.1}x – {s_hi:.1}x faster than the baseline"),
    });

    // Fig. 20 — compiler comparison.
    let fig20 = fig20_compiler_comparison(&sens, &times);
    let cyclone_row = fig20
        .iter()
        .find(|r| r.compiler == "Cyclone")
        .expect("present");
    let best_baseline = fig20
        .iter()
        .filter(|r| r.compiler != "Cyclone")
        .map(|r| r.execution_time)
        .fold(f64::MAX, f64::min);
    rows.push(Row {
        figure: "Fig. 20",
        scenario: format!(
            "4 compilers with component breakdown, {}",
            sens.descriptor()
        ),
        paper: "Cyclone beats all three baseline compilers",
        measured: format!(
            "Cyclone {:.1}x faster than the best baseline compiler, parallelization {:.1}x",
            best_baseline / cyclone_row.execution_time,
            cyclone_row.parallelization
        ),
    });

    // Fig. 21 — swap sensitivity.
    let fig21 = fig21_swap_sensitivity(&sens);
    let cyclone_wins = ["GateSwap", "IonSwap"].iter().all(|kind| {
        let base = fig21
            .iter()
            .find(|r| r.codesign == "baseline" && r.swap_kind == *kind);
        let cyc = fig21
            .iter()
            .find(|r| r.codesign == "cyclone" && r.swap_kind == *kind);
        matches!((base, cyc), (Some(b), Some(c)) if c.execution_time < b.execution_time)
    });
    rows.push(Row {
        figure: "Fig. 21",
        scenario: format!("GateSwap vs IonSwap, {}", sens.descriptor()),
        paper: "Cyclone wins under both swap implementations",
        measured: if cyclone_wins {
            "Cyclone faster under both swap kinds".to_string()
        } else {
            "Cyclone does NOT win under both swap kinds".to_string()
        },
    });

    // fig_hetero — channel-structured noise across the codesign registry.
    let bb = qec::codes::bb_72_12_6().expect("valid");
    let hetero = fig_hetero_with(&bb, 2e-3, &HETERO_DEFAULT_RATIOS, &ctx.sweep);
    let worst = hetero
        .iter()
        .filter(|r| r.channel != "uniform")
        .filter_map(|r| {
            let uniform = hetero
                .iter()
                .find(|u| u.codesign == r.codesign && u.channel == "uniform")?;
            Some((r.ler.ler / uniform.ler.ler, r))
        })
        .max_by(|a, b| a.0.total_cmp(&b.0));
    rows.push(Row {
        figure: "Hetero",
        scenario: format!(
            "{} codesigns x uniform/biased/schedule channels, {}",
            standard_registry_len(&hetero),
            bb.descriptor()
        ),
        paper: "beyond-paper: noise structure as a scenario dimension",
        measured: match worst {
            Some((d, r)) => format!(
                "largest LER degradation vs uniform {d:.1}x ({} under {})",
                r.codesign, r.channel
            ),
            None => "no structured rows".to_string(),
        },
    });

    // Spatial summary.
    let spatial = spatial_summary(&codes);
    let halved = spatial
        .iter()
        .all(|r| r.cyclone_ancillas * 2 == r.baseline_ancillas);
    let fewer_dacs = spatial.iter().all(|r| r.cyclone_dacs < r.baseline_dacs);
    rows.push(Row {
        figure: "Spatial",
        scenario: format!("traps/junctions/DACs/ancillas, {} codes", spatial.len()),
        paper: "half the ancillas, fewer traps, constant DAC groups",
        measured: format!(
            "ancillas halved on all codes: {halved}; fewer DACs on all codes: {fewer_dacs}"
        ),
    });

    // Render the document.
    let mut doc = String::new();
    doc.push_str("# EXPERIMENTS — paper vs measured\n\n");
    doc.push_str(
        "Generated by `cargo bench -p bench --bench experiments_md` through the\n\
         `cyclone::sweep` engine. Monte-Carlo rows are served from the\n\
         `sweeps/<figure>.json` cache when it satisfies the configuration below, so\n\
         regenerating after the figure suite is nearly free.\n\n",
    );
    let sampling = match &ctx.sweep.precision {
        Some(target) => format!(
            "adaptive sampling (stop at relative std err <= {}, >= {} failures, \
             <= {} shots/point)",
            target.target_rse, target.min_failures, target.max_shots
        ),
        None => format!("fixed budget, {} shots/point", ctx.config.shots),
    };
    doc.push_str(&format!(
        "Configuration: {sampling}; seed `0xC1C1_0DE5`, BP iterations 30, {} codes.\n\n",
        codes.len()
    ));
    doc.push_str("| Figure | Scenario | Paper | Measured (this run) |\n");
    doc.push_str("|---|---|---|---|\n");
    for row in &rows {
        doc.push_str(&format!(
            "| {} | {} | {} | {} |\n",
            row.figure, row.scenario, row.paper, row.measured
        ));
    }
    doc.push_str(
        "\n## Sampling modes and the sweep cache\n\n\
         Every Monte-Carlo point runs in one of two modes:\n\n\
         * **Fixed budget** (the default): exactly `--shots` / `CYCLONE_SHOTS`\n\
           Monte-Carlo shots per point, bit-identical at any thread count.\n\
         * **Precision-targeted (adaptive)**: each point samples the *same* seeded\n\
           shot streams but stops at the smallest shot count with ≥ `--min-failures`\n\
           failures and relative standard error ≤ `--target-rse`, capped by\n\
           `--max-shots` (default 20 × the fixed budget). High-failure points stop\n\
           orders of magnitude early; low-failure points sample deeper than the\n\
           fixed budget, so precision *improves* where it was worst. `--full` runs\n\
           are adaptive by default; `--fixed` (or `--target-rse 0`) pins the fixed\n\
           path, which reproduces the pre-adaptive tables byte-for-byte.\n\n\
         Every point also samples under an **error channel** (`--noise\n\
         uniform|biased:<ratio>|schedule`): `uniform` is the historical scalar\n\
         model, `biased:<ratio>` adds measurement flips at `<ratio>` times the\n\
         data rate, and `schedule` derives per-qubit rates from each codesign's\n\
         compiled idle exposure (the `fig_hetero` scenario sweeps all three\n\
         across the codesign registry).\n\n\
         The `sweeps/<figure>.json` cache (schema 3) records the shots actually\n\
         spent per point and the channel it was sampled under. A fixed-budget\n\
         request reuses an entry only at the exact shot count; a\n\
         precision-targeted request reuses any entry that meets-or-exceeds the\n\
         requested precision (including fixed full-shot entries); in both cases\n\
         the entry's channel identity must match the request's. Schema-1 files\n\
         (no `schema` field) and schema-2 files stay readable without migration —\n\
         their per-point shot counts are what the reuse rules consult, and their\n\
         entries read back as uniform-channel points (which is what they were);\n\
         files with a foreign seed or BP iteration count are invalidated wholesale.\n\n\
         Regenerate with more sampling: `CYCLONE_SHOTS=20000 cargo bench -p bench \
         --bench experiments_md` (or `-- --shots 20000`); add `--target-rse 0.05 \
         --min-failures 400` for publication-grade uniform precision.\n\
         `CYCLONE_FULL=1` extends every sweep to the full code catalog.\n\n\
         ## Distributed (multi-process) sweeps\n\n\
         `--shards N` / `CYCLONE_SHARDS=N` runs any figure as an `N`-process\n\
         fleet: the coordinator re-executes its own binary once per shard,\n\
         each worker computes the points whose stable id hashes (FNV-1a 64)\n\
         to its shard and checkpoints them to a shard-local cache\n\
         (`<cache-dir>/shards/<i>-of-<N>/`), and the coordinator merges the\n\
         shard caches and assembles the figure from cache hits. The final\n\
         cache and tables are byte-identical to a serial run at any shard\n\
         count, including after a killed-and-resumed fleet (workers reread\n\
         their surviving checkpoints and the read-only main cache). The\n\
         `sweep-cache` binary (`cargo run -p cyclone --bin sweep-cache --\n\
         merge|stats|verify`) operates on the same files by hand: `merge`\n\
         unions point sets with strictly-more-shots-wins conflict\n\
         resolution (commutative, idempotent, never precision-lowering) and\n\
         skips corrupt or header-incompatible sources with a warning.\n\n\
         `BENCH_sweep.json` (written by `cargo bench -p bench --bench\n\
         sweep_engine`) records serial, threaded, and process-fleet\n\
         throughput (`*_points_per_sec`) together with `host_cores` and\n\
         `worker_processes`; on a multi-core host it records\n\
         `threaded_speedup` / `sharded_speedup` (the latter enforced in CI\n\
         via `CYCLONE_ENFORCE=1`), while on a 1-core host it records an\n\
         explicit `scaling_not_measurable` reason instead of a meaningless\n\
         ~1x ratio.\n\n\
         ## Decoding hot path\n\n\
         Every Monte-Carlo shot above runs through the bit-sliced batch sampler\n\
         (`MemoryExperiment::sample_batch_with`): 64 shots per `u64` word —\n\
         data-qubit flips, per-check measurement flips, and word-level syndrome\n\
         extraction all operate on whole words, zero-syndrome lanes skip BP\n\
         entirely, weight-1 (single-check) syndromes resolve from a per-check\n\
         correction table built by running the real decoder once per check at\n\
         context bind, and a 4-way set-associative per-syndrome decode cache\n\
         (`CYCLONE_DECODE_CACHE_SLOTS` slots, conflict evictions counted)\n\
         replays repeated syndromes as a word-compare plus a copy. Lanes that\n\
         still reach the OSD fallback hit a warm-started ordered-statistics\n\
         stage (column-permutation reuse + early-exit elimination, pinned\n\
         bit-identical to the cold reference `decode_into_cold` by a property\n\
         test). Each lane consumes its own seeded per-shot stream, so every\n\
         table in this file is bit-identical to the scalar per-shot path at any\n\
         thread count and any batch size (pinned by a property test across the\n\
         code catalog × channel shapes × batch sizes).\n\n\
         The decode caches persist: `--decode-cache-dir DIR` (or\n\
         `CYCLONE_DECODE_CACHE_DIR`) stores each channel context's cache as\n\
         JSON after a sweep and reloads it on the next run, keyed by a digest\n\
         of the check matrix, BP iteration count, and decode priors — entries\n\
         are pure decoder outputs, so estimates are bit-identical whether the\n\
         cache is cold, warm, or deleted.\n\n\
         Error rates are validated at `ErrorChannel` construction: rates above\n\
         the depolarizing maximum (0.75) saturate there with a recorded\n\
         `saturated()` flag instead of being silently clamped mid-sample.\n\n\
         `BENCH_decoder.json` (written by `cargo bench -p bench --bench\n\
         decoder_hotpath`) records the scalar and batch shot rates per channel\n\
         shape (`channel_shots_per_sec`, `batch_shots_per_sec`), per-channel\n\
         `weight1_fastpath_rate` / `osd_fallback_rate` / `cache_hit_rate`\n\
         (`batch_channel_stats`), the warm and cold OSD stage rates\n\
         (`osd_stage_decodes_per_sec`), conflict evictions\n\
         (`batch_cache_evictions`), whether a persisted decode cache was\n\
         loaded (`decode_cache.{entries_loaded,warm}`), the worst\n\
         structured-channel penalty vs the uniform batch rate\n\
         (`structured_penalty_vs_uniform`), and `speedup_vs_pre_pr` computed at\n\
         run time from the recorded `pre_pr_baseline_shots_per_sec` field.\n\
         `CYCLONE_ENFORCE=1` (set in CI) turns the recorded thresholds into\n\
         hard assertions alongside the always-on zero-steady-state-allocation\n\
         check; CI runs the bench cold then warm against one cache directory\n\
         and holds the warm run to penalty ≤ 5× and ≥ 300k structured\n\
         shots/sec.\n",
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../EXPERIMENTS.md");
    // cyclone-lint: allow(io-unwrap) -- report write is fail-fast by design: a partial EXPERIMENTS.md must abort the run, not pass CI
    std::fs::write(path, &doc).expect("write EXPERIMENTS.md");
    println!("{doc}");
    println!("wrote {path}");
}
