//! Fig. 5 — logical error rate improvement when the baseline's compiled latency is
//! divided by 1x / 2x / 4x, for the HGP codes, at fixed physical error rate
//! `p = 5·10⁻⁴`.

use bench::{ms, sci, Table};
use cyclone::experiments::fig5_latency_vs_ler_with;

fn main() {
    bench::runner::figure(
        "fig05_latency_vs_ler",
        "Fig. 5: baseline LER vs latency reduction at p = 5e-4 (HGP codes)",
        |ctx| {
            let codes = bench::hgp_codes();
            let rows = fig5_latency_vs_ler_with(&codes, 5e-4, &[1.0, 2.0, 4.0], &ctx.sweep);
            let mut table = Table::new(&["code", "speedup", "latency (ms)", "LER", "shots"]);
            for r in rows {
                table.row(vec![
                    r.code,
                    format!("{:.0}x", r.speedup),
                    ms(r.latency),
                    sci(r.ler.ler),
                    r.ler.shots.to_string(),
                ]);
            }
            table
        },
    );
}
