//! fig_hetero — channel-structured noise across the codesign registry: every
//! registered codesign's logical error rate under the uniform channel, under
//! measurement-biased channels (`--noise biased:<ratio>` adds an extra swept
//! ratio), and under the schedule-derived per-qubit channel built from the
//! codesign's own compiled idle exposure.

use bench::runner::{FigureReport, NoiseFlag};
use bench::{ms, sci, Table};
use cyclone::experiments::{fig_hetero_with, HETERO_DEFAULT_RATIOS};
use qec::codes::bb_72_12_6;

fn main() {
    let code = bb_72_12_6().expect("valid");
    let title = format!(
        "fig_hetero: codesign registry under uniform / biased / schedule channels ({})",
        code.descriptor()
    );
    bench::runner::figure("fig_hetero", &title, |ctx| {
        let mut ratios = HETERO_DEFAULT_RATIOS.to_vec();
        if let NoiseFlag::Biased(extra) = ctx.noise {
            if !ratios.contains(&extra) {
                ratios.push(extra);
            }
        }
        let rows = fig_hetero_with(&code, 2e-3, &ratios, &ctx.sweep);
        let mut table = Table::new(&["codesign", "channel", "latency (ms)", "LER", "vs uniform"]);
        let mut worst: Option<(f64, String, String)> = None;
        for r in &rows {
            let uniform_ler = rows
                .iter()
                .find(|u| u.codesign == r.codesign && u.channel == "uniform")
                .map(|u| u.ler.ler)
                .unwrap_or(f64::NAN);
            let degradation = r.ler.ler / uniform_ler;
            let tops = match &worst {
                None => true,
                Some((d, _, _)) => degradation > *d,
            };
            if r.channel != "uniform" && tops {
                worst = Some((degradation, r.codesign.clone(), r.channel.clone()));
            }
            table.row(vec![
                r.codesign.clone(),
                r.channel.clone(),
                ms(r.latency),
                sci(r.ler.ler),
                format!("{degradation:.2}x"),
            ]);
        }
        let note = match worst {
            Some((d, codesign, channel)) => {
                format!("largest degradation vs uniform: {d:.2}x ({codesign} under {channel})")
            }
            None => "no structured channel degraded any codesign".to_string(),
        };
        FigureReport::with_notes(table, vec![note])
    });
}
