//! Fig. 3 — speedup of the maximally parallel syndrome-extraction schedule over the
//! fully serial schedule, for every HGP and BB code in the catalog.

use bench::Table;
use cyclone::experiments::fig3_parallel_speedup;

fn main() {
    bench::runner::figure(
        "fig03_parallel_speedup",
        "Fig. 3: fully parallel vs fully serial schedule speedup",
        |_ctx| {
            let rows = fig3_parallel_speedup(&bench::catalog());
            let mut table = Table::new(&[
                "code",
                "family",
                "serial depth",
                "parallel depth",
                "speedup (x)",
            ]);
            for r in rows {
                table.row(vec![
                    r.code,
                    r.family,
                    r.serial_depth.to_string(),
                    r.parallel_depth.to_string(),
                    format!("{:.1}", r.speedup),
                ]);
            }
            table
        },
    );
}
