//! Fig. 17 — baseline sensitivity to loosely fitting trap capacities (excess room) on
//! the `[[225,9,6]]` code at `p = 10⁻⁴`. The paper finds negligible improvement.

use bench::{ms, sci, sensitivity_code, Table};
use cyclone::experiments::fig17_loose_capacity_with;

fn main() {
    let code = sensitivity_code();
    let title = format!(
        "Fig. 17: baseline sensitivity to loose trap capacity ({})",
        code.descriptor()
    );
    bench::runner::figure("fig17_loose_capacity", &title, |ctx| {
        let capacities = [5, 8, 12, 20, 40];
        let rows = fig17_loose_capacity_with(&code, 1e-4, &capacities, &ctx.sweep);
        let mut table = Table::new(&["trap capacity", "baseline exec (ms)", "baseline LER"]);
        for r in rows {
            table.row(vec![
                r.capacity.to_string(),
                ms(r.execution_time),
                sci(r.ler.ler),
            ]);
        }
        table
    });
}
