//! Fig. 13 — Cyclone sensitivity to the trap count / ion capacity trade-off on the
//! `[[225,9,6]]` code at `p = 10⁻⁴` ("tight" architectures).

use bench::{memory_config, ms, sci, sensitivity_code, Table};
use cyclone::experiments::fig13_trap_capacity_sweep;
use cyclone::default_trap_counts;

fn main() {
    let code = sensitivity_code();
    let config = memory_config();
    let counts = default_trap_counts(&code);
    let rows = fig13_trap_capacity_sweep(&code, 1e-4, &counts, &config);
    let mut table = Table::new(&["traps", "capacity", "exec (ms)", "LER @ p=1e-4"]);
    for r in &rows {
        table.row(vec![
            r.num_traps.to_string(),
            r.trap_capacity.to_string(),
            ms(r.execution_time),
            sci(r.ler.ler),
        ]);
    }
    table.print(&format!(
        "Fig. 13: Cyclone trap/ion-capacity sensitivity ({})",
        code.descriptor()
    ));
    if let Some(best) = rows.iter().min_by(|a, b| a.execution_time.total_cmp(&b.execution_time)) {
        println!(
            "\nfastest configuration: {} traps with capacity {} ({} ms)",
            best.num_traps,
            best.trap_capacity,
            ms(best.execution_time)
        );
    }
}
