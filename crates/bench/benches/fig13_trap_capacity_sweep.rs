//! Fig. 13 — Cyclone sensitivity to the trap count / ion capacity trade-off on the
//! `[[225,9,6]]` code at `p = 10⁻⁴` ("tight" architectures).

use bench::runner::FigureReport;
use bench::{ms, sci, sensitivity_code, Table};
use cyclone::default_trap_counts;
use cyclone::experiments::fig13_trap_capacity_sweep_with;

fn main() {
    let code = sensitivity_code();
    let title = format!(
        "Fig. 13: Cyclone trap/ion-capacity sensitivity ({})",
        code.descriptor()
    );
    bench::runner::figure("fig13_trap_capacity_sweep", &title, |ctx| {
        let counts = default_trap_counts(&code);
        let rows = fig13_trap_capacity_sweep_with(&code, 1e-4, &counts, &ctx.sweep);
        let mut table = Table::new(&["traps", "capacity", "exec (ms)", "LER @ p=1e-4"]);
        for r in &rows {
            table.row(vec![
                r.num_traps.to_string(),
                r.trap_capacity.to_string(),
                ms(r.execution_time),
                sci(r.ler.ler),
            ]);
        }
        let mut notes = Vec::new();
        if let Some(best) = rows
            .iter()
            .min_by(|a, b| a.execution_time.total_cmp(&b.execution_time))
        {
            notes.push(format!(
                "fastest configuration: {} traps with capacity {} ({} ms)",
                best.num_traps,
                best.trap_capacity,
                ms(best.execution_time)
            ));
        }
        FigureReport::with_notes(table, notes)
    });
}
