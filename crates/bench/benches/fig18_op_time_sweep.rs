//! Fig. 18 — sensitivity to uniformly reducing gate and shuttling times by a fixed
//! percentage on the `[[225,9,6]]` code at `p = 10⁻⁴`. As operations get faster the
//! baseline-to-Cyclone gap narrows (the code's error-correcting ability becomes the
//! limit).

use bench::{ms, sci, sensitivity_code, Table};
use cyclone::experiments::fig18_op_time_sweep_with;

fn main() {
    let code = sensitivity_code();
    let title = format!(
        "Fig. 18: sensitivity to uniformly faster gates and shuttling ({})",
        code.descriptor()
    );
    bench::runner::figure("fig18_op_time_sweep", &title, |ctx| {
        let reductions = [0.0, 0.25, 0.5, 0.75, 0.9];
        let rows = fig18_op_time_sweep_with(&code, 1e-4, &reductions, &ctx.sweep);
        let mut table = Table::new(&[
            "reduction",
            "baseline lat (ms)",
            "cyclone lat (ms)",
            "baseline LER",
            "cyclone LER",
        ]);
        for r in rows {
            table.row(vec![
                format!("{:.0}%", r.reduction * 100.0),
                ms(r.baseline_latency),
                ms(r.cyclone_latency),
                sci(r.baseline_ler.ler),
                sci(r.cyclone_ler.ler),
            ]);
        }
        table
    });
}
