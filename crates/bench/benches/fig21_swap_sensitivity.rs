//! Fig. 21 — sensitivity to the swap implementation (GateSwap vs IonSwap) for the
//! baseline and for Cyclone on the `[[225,9,6]]` code.

use bench::{ms, sensitivity_code, Table};
use cyclone::experiments::fig21_swap_sensitivity;

fn main() {
    let code = sensitivity_code();
    let title = format!(
        "Fig. 21: GateSwap vs IonSwap sensitivity ({})",
        code.descriptor()
    );
    bench::runner::figure("fig21_swap_sensitivity", &title, |_ctx| {
        let rows = fig21_swap_sensitivity(&code);
        let mut table = Table::new(&["codesign", "swap kind", "exec (ms)"]);
        for r in rows {
            table.row(vec![r.codesign, r.swap_kind, ms(r.execution_time)]);
        }
        table
    });
}
