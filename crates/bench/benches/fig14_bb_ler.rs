//! Fig. 14 — logical error rate of Cyclone (C) vs the baseline (B) for the bivariate
//! bicycle codes across physical error rates.

use bench::{error_rate_grid, ms, sci, Table};
use cyclone::experiments::ler_comparison_with;

fn main() {
    bench::runner::figure(
        "fig14_bb_ler",
        "Fig. 14: Cyclone (C) vs baseline (B) logical error rate — BB codes",
        |ctx| {
            let codes = bench::bb_codes();
            let rows = ler_comparison_with("fig14_bb_ler", &codes, &error_rate_grid(), &ctx.sweep);
            let mut table = Table::new(&[
                "code",
                "p",
                "B latency (ms)",
                "C latency (ms)",
                "B LER",
                "C LER",
                "improvement",
            ]);
            for r in rows {
                table.row(vec![
                    r.code,
                    sci(r.p),
                    ms(r.baseline_latency),
                    ms(r.cyclone_latency),
                    sci(r.baseline_ler.ler),
                    sci(r.cyclone_ler.ler),
                    format!("{:.1}x", r.baseline_ler.ler / r.cyclone_ler.ler),
                ]);
            }
            table
        },
    );
}
