//! Fig. 15 — logical error rate of Cyclone (C) vs the baseline (B) for the hypergraph
//! product codes across physical error rates.

use bench::{error_rate_grid, ms, sci, Table};
use cyclone::experiments::ler_comparison_with;

fn main() {
    bench::runner::figure(
        "fig15_hgp_ler",
        "Fig. 15: Cyclone (C) vs baseline (B) logical error rate — HGP codes",
        |ctx| {
            let codes = bench::hgp_codes();
            let rows = ler_comparison_with("fig15_hgp_ler", &codes, &error_rate_grid(), &ctx.sweep);
            let mut table = Table::new(&[
                "code",
                "p",
                "B latency (ms)",
                "C latency (ms)",
                "B LER",
                "C LER",
                "improvement",
            ]);
            for r in rows {
                table.row(vec![
                    r.code,
                    sci(r.p),
                    ms(r.baseline_latency),
                    ms(r.cyclone_latency),
                    sci(r.baseline_ler.ler),
                    sci(r.cyclone_ler.ler),
                    format!("{:.1}x", r.baseline_ler.ler / r.cyclone_ler.ler),
                ]);
            }
            table
        },
    );
}
