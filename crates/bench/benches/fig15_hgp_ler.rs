//! Fig. 15 — logical error rate of Cyclone (C) vs the baseline (B) for the hypergraph
//! product codes across physical error rates.

use bench::{error_rate_grid, memory_config, ms, sci, Table};
use cyclone::experiments::ler_comparison;

fn main() {
    let codes = bench::hgp_codes();
    let config = memory_config();
    let rows = ler_comparison(&codes, &error_rate_grid(), &config);
    let mut table = Table::new(&[
        "code",
        "p",
        "B latency (ms)",
        "C latency (ms)",
        "B LER",
        "C LER",
        "improvement",
    ]);
    for r in rows {
        table.row(vec![
            r.code,
            sci(r.p),
            ms(r.baseline_latency),
            ms(r.cyclone_latency),
            sci(r.baseline_ler.ler),
            sci(r.cyclone_ler.ler),
            format!("{:.1}x", r.baseline_ler.ler / r.cyclone_ler.ler),
        ]);
    }
    table.print("Fig. 15: Cyclone (C) vs baseline (B) logical error rate — HGP codes");
}
