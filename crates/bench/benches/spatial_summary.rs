//! Spatial and control-overhead summary (§IV spatial claims and §VI wiring
//! discussion): traps, junctions, DAC channel groups, and ancilla qubits used by the
//! baseline grid vs base Cyclone.

use bench::Table;
use cyclone::experiments::spatial_summary;

fn main() {
    bench::runner::figure(
        "spatial_summary",
        "Spatial summary: baseline (B) vs Cyclone (C)",
        |_ctx| {
            let codes: Vec<_> = bench::catalog().into_iter().map(|e| e.code).collect();
            let rows = spatial_summary(&codes);
            let mut table = Table::new(&[
                "code",
                "B traps",
                "B junctions",
                "B DACs",
                "B ancillas",
                "C traps",
                "C junctions",
                "C DACs",
                "C ancillas",
            ]);
            for r in rows {
                table.row(vec![
                    r.code,
                    r.baseline_traps.to_string(),
                    r.baseline_junctions.to_string(),
                    r.baseline_dacs.to_string(),
                    r.baseline_ancillas.to_string(),
                    r.cyclone_traps.to_string(),
                    r.cyclone_junctions.to_string(),
                    r.cyclone_dacs.to_string(),
                    r.cyclone_ancillas.to_string(),
                ]);
            }
            table
        },
    );
}
