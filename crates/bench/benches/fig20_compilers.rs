//! Fig. 20 — total and unrolled (component-wise) execution times of the three baseline
//! compilers and Cyclone on the `[[225,9,6]]` code, plus realized parallelization.

use bench::{ms, sensitivity_code, Table};
use cyclone::experiments::fig20_compiler_comparison;
use qccd::timing::OperationTimes;

fn main() {
    let code = sensitivity_code();
    let title = format!(
        "Fig. 20: compiler comparison with component breakdown ({})",
        code.descriptor()
    );
    bench::runner::figure("fig20_compilers", &title, |_ctx| {
        let rows = fig20_compiler_comparison(&code, &OperationTimes::default());
        let mut table = Table::new(&[
            "compiler",
            "exec (ms)",
            "unrolled (ms)",
            "gate (ms)",
            "shuttle (ms)",
            "swap (ms)",
            "measure (ms)",
            "parallelization",
        ]);
        for r in rows {
            table.row(vec![
                r.compiler,
                ms(r.execution_time),
                ms(r.serialized_total),
                ms(r.gate),
                ms(r.shuttle),
                ms(r.swap),
                ms(r.measurement),
                format!("{:.1}x", r.parallelization),
            ]);
        }
        table
    });
}
