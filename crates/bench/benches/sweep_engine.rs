//! Sweep-engine throughput: wall-clock of a multi-point figure sweep executed
//! serially (one worker) vs across the point-level pool (`CYCLONE_THREADS`, default
//! 4 here), plus points/sec. Each run overwrites `BENCH_sweep.json` at the repository
//! root, so the file always holds the current commit's numbers.
//!
//! The measured workload is the Fig. 5 latency×LER sweep shape (two HGP codes × six
//! latency-division factors = 12 Monte-Carlo points). Points are embarrassingly
//! parallel, so the speedup tracks the host's usable cores; the JSON records
//! `host_cores` so a 1-core CI shard reporting ~1.0x is interpretable. Both runs must
//! produce bit-identical estimates — this binary asserts it, making it a determinism
//! check as well as a benchmark.
//!
//! `CYCLONE_SHOTS` scales the per-point work (CI uses 50).

use cyclone::experiments::fig5_spec;
use cyclone::sweep::{run_sweep, SweepOptions, SweepResult};
use decoder::memory::MemoryConfig;
use std::time::Instant;

/// Latency division factors: six per code, so the pool has enough points to fill
/// four workers.
const SPEEDUPS: [f64; 6] = [1.0, 1.5, 2.0, 3.0, 4.0, 8.0];

fn timed_run(spec: &cyclone::sweep::ScenarioSpec, threads: usize, shots: usize) -> (SweepResult, f64) {
    let config = MemoryConfig {
        shots,
        bp_iterations: 30,
        threads,
        seed: 0xC1C1_0DE5,
    };
    let start = Instant::now();
    let result = run_sweep(spec, &SweepOptions::ephemeral(config));
    (result, start.elapsed().as_secs_f64())
}

fn main() {
    // Scale up the per-point work so the measurement dominates thread startup and
    // timer noise (1000 shots/point in CI quick mode, 8000 by default).
    let shots = 20 * bench::shots();
    let threaded_workers = match bench::threads() {
        0 | 1 => 4,
        n => n,
    };
    let codes = vec![
        qec::codes::hgp_100().expect("construction"),
        qec::codes::hgp_225_9_6().expect("construction"),
    ];
    let spec = fig5_spec(&codes, 5e-4, &SPEEDUPS);
    let points = spec.points.len();

    // Warm-up pass (decoder construction paths, page cache) — not timed.
    let _ = timed_run(&spec, 1, shots.min(20));

    let (serial, serial_seconds) = timed_run(&spec, 1, shots);
    let (threaded, threaded_seconds) = timed_run(&spec, threaded_workers, shots);

    // The engine must be bit-identical at any pool size.
    for (a, b) in serial.points.iter().zip(&threaded.points) {
        assert_eq!(a.ler.failures, b.ler.failures, "point {} diverged across pool sizes", a.id);
        assert_eq!(a.ler.ler, b.ler.ler);
    }

    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let speedup = serial_seconds / threaded_seconds;
    let serial_pps = points as f64 / serial_seconds;
    let threaded_pps = points as f64 / threaded_seconds;

    println!("sweep engine, fig5-shaped sweep: {points} points x {shots} shots");
    println!("  host cores                {host_cores}");
    println!("  serial (1 worker)         {serial_seconds:>8.3} s  ({serial_pps:.2} points/sec)");
    println!(
        "  threaded ({threaded_workers} workers)     {threaded_seconds:>8.3} s  ({threaded_pps:.2} points/sec)"
    );
    println!("  wall-clock speedup        {speedup:.2}x");
    if host_cores == 1 {
        println!("  (single-core host: point-level parallelism cannot show a wall-clock win here)");
    }

    let json = format!(
        "{{\n  \"sweep\": \"fig5_latency_vs_ler\",\n  \"points\": {points},\n  \
         \"shots_per_point\": {shots},\n  \
         \"host_cores\": {host_cores},\n  \
         \"serial_seconds\": {serial_seconds:.4},\n  \
         \"threaded_workers\": {threaded_workers},\n  \
         \"threaded_seconds\": {threaded_seconds:.4},\n  \
         \"serial_points_per_sec\": {serial_pps:.3},\n  \
         \"threaded_points_per_sec\": {threaded_pps:.3},\n  \
         \"speedup\": {speedup:.3},\n  \
         \"bit_identical_across_pool_sizes\": true\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    std::fs::write(path, json).expect("write BENCH_sweep.json");
    println!("  wrote {path}");
}
