//! Sweep-engine throughput: wall-clock of a multi-point figure sweep executed
//! serially (one worker), across the in-process point-level pool
//! (`CYCLONE_THREADS`, default 4 here), and across a fleet of worker
//! **processes** (`CYCLONE_SHARDS`, default 4 — spawn, shard-local caches,
//! merge, final assemble), plus adaptive-vs-fixed sampling cost per figure.
//! Each run overwrites `BENCH_sweep.json` at the repository root, so the file
//! always holds the current commit's numbers.
//!
//! Two figure-shaped workloads are measured: the Fig. 5 latency×LER sweep (two HGP
//! codes × six latency-division factors) and the Fig. 14 LER-comparison sweep (two
//! BB codes × the error-rate grid × {baseline, cyclone}). Points are embarrassingly
//! parallel, so both the pool and the fleet speedups track the host's usable
//! cores; the JSON records `host_cores` *and* `worker_processes`, and on a
//! single-core host it records an explicit `scaling_not_measurable` reason with
//! the raw seconds instead of a misleading ~1.0× speedup figure. Serial,
//! threaded, and sharded runs must produce bit-identical estimates — this
//! binary asserts it, making it a determinism check as well as a benchmark.
//! Under `CYCLONE_ENFORCE=1` the sharded speedup also becomes a hard floor on
//! multi-core hosts (≥1.5× at 4+ cores, ≥1.15× at 2–3).
//!
//! The adaptive comparison runs each workload twice at the same per-point cap: once
//! with the fixed budget, once precision-targeted (target rse 0.1, ≥100 failures,
//! `max_shots` = the fixed budget). Every adaptive point therefore ends either
//! *bit-identical* to the fixed point (cap-bound low-LER points) or at the target
//! precision with the surplus shots saved (high-LER points); the JSON records
//! wall-clock and total shots spent for both modes, per figure.
//!
//! `CYCLONE_SHOTS` scales the per-point work (CI uses 50). The binary re-execs
//! itself as the fleet's workers (`--worker-shard i/N --fleet-dir DIR
//! --worker-shots S`); those flags are internal to the measurement.

use bench::runner::{merge_shard_caches, shard_cache_dir};
use cyclone::experiments::{fig5_spec, ler_comparison_spec};
use cyclone::sweep::{run_sweep, ScenarioSpec, Shard, SweepOptions, SweepResult};
use decoder::memory::{MemoryConfig, PrecisionTarget};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Latency division factors: six per code, so the pool has enough points to fill
/// four workers.
const SPEEDUPS: [f64; 6] = [1.0, 1.5, 2.0, 3.0, 4.0, 8.0];

/// Sharded-throughput regression floor under `CYCLONE_ENFORCE=1` on hosts with
/// 4+ cores: 4 worker processes over 12 embarrassingly parallel points must
/// beat serial by well over this much; the slack absorbs spawn + merge
/// overhead and CI noise.
const ENFORCE_SHARDED_SPEEDUP_4CORE: f64 = 1.5;

/// The gentler floor for 2–3 core hosts.
const ENFORCE_SHARDED_SPEEDUP_2CORE: f64 = 1.15;

/// Per-point shot floor of the serial-vs-sharded comparison. Each worker
/// process pays a fixed ~0.5 s startup (mostly HGP code construction, paid in
/// parallel across the fleet), so the measured pipeline only reflects *scaling*
/// when per-point compute dominates it; 24k shots/point puts the serial
/// reference around 3 s, which a 4-process fleet on 4+ cores beats by well over
/// 2× including spawn + merge + assemble. The threaded and adaptive sections
/// keep the cheaper `CYCLONE_SHOTS`-scaled budget.
const FLEET_SHOTS_FLOOR: usize = 24_000;

fn config(threads: usize, shots: usize) -> MemoryConfig {
    MemoryConfig {
        shots,
        bp_iterations: 30,
        threads,
        seed: 0xC1C1_0DE5,
    }
}

/// The fleet's shared measurement workload (workers rebuild it identically).
fn fig5_workload() -> ScenarioSpec {
    let codes = vec![
        qec::codes::hgp_100().expect("construction"),
        qec::codes::hgp_225_9_6().expect("construction"),
    ];
    fig5_spec(&codes, 5e-4, &SPEEDUPS)
}

fn timed_run(spec: &ScenarioSpec, options: &SweepOptions) -> (SweepResult, f64) {
    let start = Instant::now();
    let result = run_sweep(spec, options);
    (result, start.elapsed().as_secs_f64())
}

/// Applies the fleet-shared decode-cache directory when the environment
/// requests one (the sharded path's warm-start lever; estimates are
/// bit-identical either way).
fn with_env_decode_cache(options: SweepOptions) -> SweepOptions {
    match std::env::var("CYCLONE_DECODE_CACHE_DIR") {
        Ok(dir) if !dir.trim().is_empty() => options.with_decode_cache_dir(dir),
        _ => options,
    }
}

/// Worker-process entry: compute this shard of the fig5 workload into its
/// shard-local cache under the fleet directory, checkpointing per point.
fn worker_main(shard: Shard, fleet_dir: &Path, shots: usize) {
    let spec = fig5_workload();
    let options = SweepOptions::cached(config(1, shots), shard_cache_dir(fleet_dir, shard))
        .with_shard(shard)
        .with_checkpoint(1)
        .with_fallback_cache_dir(fleet_dir);
    let result = run_sweep(&spec, &with_env_decode_cache(options));
    assert_eq!(
        result.computed + result.cache_hits + result.skipped,
        spec.points.len()
    );
}

/// The full multi-process pipeline, timed end to end: spawn one worker process
/// per shard, wait, merge the shard-local caches, and assemble the final result
/// from the merged cache. Returns the assembled result and the wall-clock of
/// the whole pipeline (spawn → merge → assemble), which is what a user of
/// `--shards N` actually waits for.
fn timed_sharded(shots: usize, workers: usize, fleet_dir: &Path) -> (SweepResult, f64) {
    let _ = std::fs::remove_dir_all(fleet_dir);
    // cyclone-lint: allow(io-unwrap) -- bench harness setup is fail-fast: no fleet dir means no shards to measure
    std::fs::create_dir_all(fleet_dir).expect("create fleet dir");
    // cyclone-lint: allow(io-unwrap) -- bench harness setup is fail-fast: cannot re-spawn shards without our own path
    let exe = std::env::current_exe().expect("own executable path");
    let spec = fig5_workload();

    let start = Instant::now();
    let mut children = Vec::new();
    for index in 0..workers {
        let child = std::process::Command::new(&exe)
            .arg("--worker-shard")
            .arg(format!("{index}/{workers}"))
            .arg("--fleet-dir")
            .arg(fleet_dir)
            .arg("--worker-shots")
            .arg(shots.to_string())
            .env_remove("CYCLONE_SHARDS")
            .env_remove("CYCLONE_SHARD")
            .stdout(std::process::Stdio::null())
            .spawn()
            .expect("spawn fleet worker");
        children.push(child);
    }
    for mut child in children {
        let status = child.wait().expect("wait for fleet worker");
        assert!(status.success(), "fleet worker failed with {status}");
    }
    merge_shard_caches(fleet_dir).expect("merge shard caches");
    let (result, _) = timed_run(
        &spec,
        &with_env_decode_cache(SweepOptions::cached(config(1, shots), fleet_dir)),
    );
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(
        result.cache_hits,
        spec.points.len(),
        "the merged fleet cache must serve every point"
    );
    (result, elapsed)
}

/// One figure's adaptive-vs-fixed measurement, rendered as a JSON object literal.
fn adaptive_vs_fixed(figure: &str, spec: &ScenarioSpec, threads: usize, shots: usize) -> String {
    let target = &PrecisionTarget::new(0.1, 100, shots);
    let (fixed, fixed_seconds) = timed_run(spec, &SweepOptions::ephemeral(config(threads, shots)));
    let (adaptive, adaptive_seconds) = timed_run(
        spec,
        &SweepOptions::ephemeral(config(threads, shots)).with_precision(*target),
    );
    let fixed_shots = fixed.total_shots();
    let adaptive_shots = adaptive.total_shots();
    // Sanity: with max_shots == the fixed budget, every adaptive point is either
    // bit-identical to the fixed point (cap-bound) or stopped at the target — so
    // every point's std_err is at-or-below max(fixed std_err, target_rse × ler).
    let mut identical = 0usize;
    let mut at_target = 0usize;
    for (f, a) in fixed.points.iter().zip(&adaptive.points) {
        if a.ler == f.ler {
            identical += 1;
        } else {
            assert!(
                target.met_by(a.ler.shots, a.ler.failures),
                "early-stopped point {} missed the precision target",
                a.id
            );
            at_target += 1;
        }
    }
    let shots_saved = fixed_shots as f64 / adaptive_shots.max(1) as f64;
    let speedup = fixed_seconds / adaptive_seconds.max(1e-12);
    println!("  {figure} ({shots} shots/point cap): fixed {fixed_shots} shots / {fixed_seconds:.3} s, adaptive {adaptive_shots} shots / {adaptive_seconds:.3} s ({shots_saved:.1}x fewer shots, {speedup:.1}x wall-clock)");
    println!("    {at_target} points stopped at target rse {}, {identical} cap-bound points bit-identical to fixed", target.target_rse);
    format!(
        "{{\n      \"figure\": \"{figure}\",\n      \"points\": {},\n      \
         \"shots_per_point_cap\": {shots},\n      \
         \"target_rse\": {},\n      \
         \"min_failures\": {},\n      \
         \"fixed_seconds\": {fixed_seconds:.4},\n      \
         \"fixed_total_shots\": {fixed_shots},\n      \
         \"fixed_max_rse\": {:.4},\n      \
         \"adaptive_seconds\": {adaptive_seconds:.4},\n      \
         \"adaptive_total_shots\": {adaptive_shots},\n      \
         \"adaptive_max_rse\": {:.4},\n      \
         \"points_at_target\": {at_target},\n      \
         \"points_cap_bound_bit_identical\": {identical},\n      \
         \"shots_saved_factor\": {shots_saved:.3},\n      \
         \"wall_clock_speedup\": {speedup:.3}\n    }}",
        spec.points.len(),
        target.target_rse,
        target.min_failures,
        fixed.max_relative_std_err(),
        adaptive.max_relative_std_err(),
    )
}

fn main() {
    // Worker re-exec: `--worker-shard i/N --fleet-dir DIR --worker-shots S` is
    // this binary calling itself; compute the shard and exit.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    if let Some(raw) = flag("--worker-shard") {
        let shard = Shard::parse(raw).expect("valid --worker-shard i/N");
        let fleet_dir = PathBuf::from(flag("--fleet-dir").expect("--fleet-dir"));
        let shots = flag("--worker-shots")
            .and_then(|s| s.parse().ok())
            .expect("--worker-shots");
        worker_main(shard, &fleet_dir, shots);
        return;
    }

    // Scale up the per-point work so the measurement dominates thread startup and
    // timer noise (1000 shots/point in CI quick mode, 8000 by default).
    let shots = 20 * bench::shots();
    let threaded_workers = match bench::threads() {
        0 | 1 => 4,
        n => n,
    };
    let worker_processes = std::env::var("CYCLONE_SHARDS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(4);
    let spec = fig5_workload();
    let points = spec.points.len();

    // Warm-up pass (decoder construction paths, page cache) — not timed.
    let _ = timed_run(&spec, &SweepOptions::ephemeral(config(1, shots.min(20))));

    let (serial, serial_seconds) = timed_run(&spec, &SweepOptions::ephemeral(config(1, shots)));
    let (threaded, threaded_seconds) = timed_run(
        &spec,
        &SweepOptions::ephemeral(config(threaded_workers, shots)),
    );
    // The multi-process comparison runs at its own (larger) budget so per-point
    // compute dominates the fleet's fixed per-process startup.
    let fleet_shots = shots.max(FLEET_SHOTS_FLOOR);
    let (fleet_serial, fleet_serial_seconds) =
        timed_run(&spec, &SweepOptions::ephemeral(config(1, fleet_shots)));
    let fleet_dir =
        std::env::temp_dir().join(format!("cyclone-sweep-fleet-{}", std::process::id()));
    let (sharded, sharded_seconds) = timed_sharded(fleet_shots, worker_processes, &fleet_dir);
    let _ = std::fs::remove_dir_all(&fleet_dir);

    // The engine must be bit-identical at any pool size and any process count.
    for (a, b) in serial.points.iter().zip(&threaded.points) {
        assert_eq!(
            a.ler.failures, b.ler.failures,
            "point {} diverged across pool sizes",
            a.id
        );
        assert_eq!(a.ler.ler, b.ler.ler);
    }
    for (a, b) in fleet_serial.points.iter().zip(&sharded.points) {
        assert_eq!(
            a.ler.failures, b.ler.failures,
            "point {} diverged across the process fleet",
            a.id
        );
        assert_eq!(a.ler.ler, b.ler.ler);
        assert_eq!(a.ler.std_err, b.ler.std_err);
    }

    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threaded_speedup = serial_seconds / threaded_seconds;
    let sharded_speedup = fleet_serial_seconds / sharded_seconds;
    let serial_pps = points as f64 / serial_seconds;
    let threaded_pps = points as f64 / threaded_seconds;
    let fleet_serial_pps = points as f64 / fleet_serial_seconds;
    let sharded_pps = points as f64 / sharded_seconds;

    println!("sweep engine, fig5-shaped sweep: {points} points x {shots} shots");
    println!("  host cores                {host_cores}");
    println!("  serial (1 worker)         {serial_seconds:>8.3} s  ({serial_pps:.2} points/sec)");
    println!(
        "  threaded ({threaded_workers} workers)     {threaded_seconds:>8.3} s  ({threaded_pps:.2} points/sec)"
    );
    println!("fleet comparison, same 12 points x {fleet_shots} shots:");
    println!(
        "  serial (1 process)        {fleet_serial_seconds:>8.3} s  ({fleet_serial_pps:.2} points/sec)"
    );
    println!(
        "  sharded ({worker_processes} processes)    {sharded_seconds:>8.3} s  ({sharded_pps:.2} points/sec, spawn+merge+assemble included)"
    );
    if host_cores == 1 {
        println!(
            "  (single-core host: {threaded_speedup:.2}x threaded / {sharded_speedup:.2}x sharded \
             ratios are NOT scaling measurements — everything shares one core)"
        );
    } else {
        println!("  threaded wall-clock speedup  {threaded_speedup:.2}x");
        println!("  sharded  wall-clock speedup  {sharded_speedup:.2}x");
    }

    // On a multi-core host the fleet must actually scale; a single core cannot
    // show a wall-clock win, so there is nothing to enforce there.
    let enforce = std::env::var("CYCLONE_ENFORCE").is_ok_and(|v| v == "1");
    if enforce && host_cores >= 2 {
        let floor = if host_cores >= 4 {
            ENFORCE_SHARDED_SPEEDUP_4CORE
        } else {
            ENFORCE_SHARDED_SPEEDUP_2CORE
        };
        assert!(
            sharded_speedup >= floor,
            "sharded sweep regressed: {sharded_speedup:.2}x < {floor}x floor \
             ({host_cores} cores, {worker_processes} worker processes)"
        );
        println!("  CYCLONE_ENFORCE: sharded speedup {sharded_speedup:.2}x >= {floor}x floor");
    }

    // Adaptive vs fixed, per figure, at the same per-point shot cap (so every
    // adaptive point is either cap-bound bit-identical to fixed, or at target).
    println!("adaptive vs fixed (target rse 0.1, >=100 failures, max_shots = fixed budget):");
    let bb_codes = vec![
        qec::codes::bb_72_12_6().expect("construction"),
        qec::codes::bb_90_8_10().expect("construction"),
    ];
    let (fig14, _) = ler_comparison_spec("fig14_bb_ler", &bb_codes, &bench::error_rate_grid());
    // Fig. 9 is the high-LER showcase (mesh junction latencies push the LER to
    // 5e-3..0.25): at a full-shot budget (5x the engine workload above) its
    // high-failure points stop orders of magnitude early.
    let sens = bench::sensitivity_code();
    let (fig9, _) = cyclone::experiments::fig9_spec(&sens, 5e-4, &[0.0, 0.3, 0.5, 0.7, 0.9]);
    let figures = [
        adaptive_vs_fixed("fig05_latency_vs_ler", &spec, threaded_workers, shots),
        adaptive_vs_fixed("fig14_bb_ler", &fig14, threaded_workers, shots),
        adaptive_vs_fixed(
            "fig09_junction_sensitivity",
            &fig9,
            threaded_workers,
            5 * shots,
        ),
    ];

    // Speedup ratios are only recorded when they measure something: on a
    // single-core host the explicit reason replaces them (the raw seconds and
    // points/sec stay, and stay honest).
    let scaling = if host_cores > 1 {
        format!(
            "\"threaded_speedup\": {threaded_speedup:.3},\n  \
             \"sharded_speedup\": {sharded_speedup:.3},"
        )
    } else {
        "\"scaling_not_measurable\": \"host_cores == 1: serial, threaded, and sharded runs all \
         share one core, so their wall-clock ratios measure scheduling overhead, not scaling; \
         raw seconds and points/sec are recorded above\","
            .to_string()
    };
    let json = format!(
        "{{\n  \"sweep\": \"fig5_latency_vs_ler\",\n  \"points\": {points},\n  \
         \"shots_per_point\": {shots},\n  \
         \"host_cores\": {host_cores},\n  \
         \"serial_seconds\": {serial_seconds:.4},\n  \
         \"threaded_workers\": {threaded_workers},\n  \
         \"threaded_seconds\": {threaded_seconds:.4},\n  \
         \"worker_processes\": {worker_processes},\n  \
         \"sharded_shots_per_point\": {fleet_shots},\n  \
         \"fleet_serial_seconds\": {fleet_serial_seconds:.4},\n  \
         \"sharded_seconds\": {sharded_seconds:.4},\n  \
         \"serial_points_per_sec\": {serial_pps:.3},\n  \
         \"threaded_points_per_sec\": {threaded_pps:.3},\n  \
         \"fleet_serial_points_per_sec\": {fleet_serial_pps:.3},\n  \
         \"sharded_points_per_sec\": {sharded_pps:.3},\n  \
         {scaling}\n  \
         \"bit_identical_across_pool_sizes\": true,\n  \
         \"bit_identical_across_process_fleet\": true,\n  \
         \"adaptive_vs_fixed\": [{}\n  ]\n}}\n",
        figures
            .iter()
            .map(|f| format!("\n    {f}"))
            .collect::<Vec<_>>()
            .join(",")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    // cyclone-lint: allow(io-unwrap) -- bench artifact write is fail-fast by design: a partial BENCH_sweep.json must abort the run, not pass CI
    std::fs::write(path, json).expect("write BENCH_sweep.json");
    println!("  wrote {path}");
}
