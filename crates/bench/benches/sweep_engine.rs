//! Sweep-engine throughput: wall-clock of a multi-point figure sweep executed
//! serially (one worker) vs across the point-level pool (`CYCLONE_THREADS`, default
//! 4 here), plus adaptive-vs-fixed sampling cost per figure. Each run overwrites
//! `BENCH_sweep.json` at the repository root, so the file always holds the current
//! commit's numbers.
//!
//! Two figure-shaped workloads are measured: the Fig. 5 latency×LER sweep (two HGP
//! codes × six latency-division factors) and the Fig. 14 LER-comparison sweep (two
//! BB codes × the error-rate grid × {baseline, cyclone}). Points are embarrassingly
//! parallel, so the pool speedup tracks the host's usable cores; the JSON records
//! `host_cores` so a 1-core CI shard reporting ~1.0x is interpretable. Serial and
//! threaded runs must produce bit-identical estimates — this binary asserts it,
//! making it a determinism check as well as a benchmark.
//!
//! The adaptive comparison runs each workload twice at the same per-point cap: once
//! with the fixed budget, once precision-targeted (target rse 0.1, ≥100 failures,
//! `max_shots` = the fixed budget). Every adaptive point therefore ends either
//! *bit-identical* to the fixed point (cap-bound low-LER points) or at the target
//! precision with the surplus shots saved (high-LER points); the JSON records
//! wall-clock and total shots spent for both modes, per figure.
//!
//! `CYCLONE_SHOTS` scales the per-point work (CI uses 50).

use cyclone::experiments::{fig5_spec, ler_comparison_spec};
use cyclone::sweep::{run_sweep, ScenarioSpec, SweepOptions, SweepResult};
use decoder::memory::{MemoryConfig, PrecisionTarget};
use std::time::Instant;

/// Latency division factors: six per code, so the pool has enough points to fill
/// four workers.
const SPEEDUPS: [f64; 6] = [1.0, 1.5, 2.0, 3.0, 4.0, 8.0];

fn config(threads: usize, shots: usize) -> MemoryConfig {
    MemoryConfig {
        shots,
        bp_iterations: 30,
        threads,
        seed: 0xC1C1_0DE5,
    }
}

fn timed_run(spec: &ScenarioSpec, options: &SweepOptions) -> (SweepResult, f64) {
    let start = Instant::now();
    let result = run_sweep(spec, options);
    (result, start.elapsed().as_secs_f64())
}

/// One figure's adaptive-vs-fixed measurement, rendered as a JSON object literal.
fn adaptive_vs_fixed(figure: &str, spec: &ScenarioSpec, threads: usize, shots: usize) -> String {
    let target = &PrecisionTarget::new(0.1, 100, shots);
    let (fixed, fixed_seconds) = timed_run(spec, &SweepOptions::ephemeral(config(threads, shots)));
    let (adaptive, adaptive_seconds) = timed_run(
        spec,
        &SweepOptions::ephemeral(config(threads, shots)).with_precision(*target),
    );
    let fixed_shots = fixed.total_shots();
    let adaptive_shots = adaptive.total_shots();
    // Sanity: with max_shots == the fixed budget, every adaptive point is either
    // bit-identical to the fixed point (cap-bound) or stopped at the target — so
    // every point's std_err is at-or-below max(fixed std_err, target_rse × ler).
    let mut identical = 0usize;
    let mut at_target = 0usize;
    for (f, a) in fixed.points.iter().zip(&adaptive.points) {
        if a.ler == f.ler {
            identical += 1;
        } else {
            assert!(
                target.met_by(a.ler.shots, a.ler.failures),
                "early-stopped point {} missed the precision target",
                a.id
            );
            at_target += 1;
        }
    }
    let shots_saved = fixed_shots as f64 / adaptive_shots.max(1) as f64;
    let speedup = fixed_seconds / adaptive_seconds.max(1e-12);
    println!("  {figure} ({shots} shots/point cap): fixed {fixed_shots} shots / {fixed_seconds:.3} s, adaptive {adaptive_shots} shots / {adaptive_seconds:.3} s ({shots_saved:.1}x fewer shots, {speedup:.1}x wall-clock)");
    println!("    {at_target} points stopped at target rse {}, {identical} cap-bound points bit-identical to fixed", target.target_rse);
    format!(
        "{{\n      \"figure\": \"{figure}\",\n      \"points\": {},\n      \
         \"shots_per_point_cap\": {shots},\n      \
         \"target_rse\": {},\n      \
         \"min_failures\": {},\n      \
         \"fixed_seconds\": {fixed_seconds:.4},\n      \
         \"fixed_total_shots\": {fixed_shots},\n      \
         \"fixed_max_rse\": {:.4},\n      \
         \"adaptive_seconds\": {adaptive_seconds:.4},\n      \
         \"adaptive_total_shots\": {adaptive_shots},\n      \
         \"adaptive_max_rse\": {:.4},\n      \
         \"points_at_target\": {at_target},\n      \
         \"points_cap_bound_bit_identical\": {identical},\n      \
         \"shots_saved_factor\": {shots_saved:.3},\n      \
         \"wall_clock_speedup\": {speedup:.3}\n    }}",
        spec.points.len(),
        target.target_rse,
        target.min_failures,
        fixed.max_relative_std_err(),
        adaptive.max_relative_std_err(),
    )
}

fn main() {
    // Scale up the per-point work so the measurement dominates thread startup and
    // timer noise (1000 shots/point in CI quick mode, 8000 by default).
    let shots = 20 * bench::shots();
    let threaded_workers = match bench::threads() {
        0 | 1 => 4,
        n => n,
    };
    let codes = vec![
        qec::codes::hgp_100().expect("construction"),
        qec::codes::hgp_225_9_6().expect("construction"),
    ];
    let spec = fig5_spec(&codes, 5e-4, &SPEEDUPS);
    let points = spec.points.len();

    // Warm-up pass (decoder construction paths, page cache) — not timed.
    let _ = timed_run(&spec, &SweepOptions::ephemeral(config(1, shots.min(20))));

    let (serial, serial_seconds) = timed_run(&spec, &SweepOptions::ephemeral(config(1, shots)));
    let (threaded, threaded_seconds) = timed_run(
        &spec,
        &SweepOptions::ephemeral(config(threaded_workers, shots)),
    );

    // The engine must be bit-identical at any pool size.
    for (a, b) in serial.points.iter().zip(&threaded.points) {
        assert_eq!(
            a.ler.failures, b.ler.failures,
            "point {} diverged across pool sizes",
            a.id
        );
        assert_eq!(a.ler.ler, b.ler.ler);
    }

    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let speedup = serial_seconds / threaded_seconds;
    let serial_pps = points as f64 / serial_seconds;
    let threaded_pps = points as f64 / threaded_seconds;

    println!("sweep engine, fig5-shaped sweep: {points} points x {shots} shots");
    println!("  host cores                {host_cores}");
    println!("  serial (1 worker)         {serial_seconds:>8.3} s  ({serial_pps:.2} points/sec)");
    println!(
        "  threaded ({threaded_workers} workers)     {threaded_seconds:>8.3} s  ({threaded_pps:.2} points/sec)"
    );
    println!("  wall-clock speedup        {speedup:.2}x");
    if host_cores == 1 {
        println!("  (single-core host: point-level parallelism cannot show a wall-clock win here)");
    }

    // Adaptive vs fixed, per figure, at the same per-point shot cap (so every
    // adaptive point is either cap-bound bit-identical to fixed, or at target).
    println!("adaptive vs fixed (target rse 0.1, >=100 failures, max_shots = fixed budget):");
    let bb_codes = vec![
        qec::codes::bb_72_12_6().expect("construction"),
        qec::codes::bb_90_8_10().expect("construction"),
    ];
    let (fig14, _) = ler_comparison_spec("fig14_bb_ler", &bb_codes, &bench::error_rate_grid());
    // Fig. 9 is the high-LER showcase (mesh junction latencies push the LER to
    // 5e-3..0.25): at a full-shot budget (5x the engine workload above) its
    // high-failure points stop orders of magnitude early.
    let sens = bench::sensitivity_code();
    let (fig9, _) = cyclone::experiments::fig9_spec(&sens, 5e-4, &[0.0, 0.3, 0.5, 0.7, 0.9]);
    let figures = [
        adaptive_vs_fixed("fig05_latency_vs_ler", &spec, threaded_workers, shots),
        adaptive_vs_fixed("fig14_bb_ler", &fig14, threaded_workers, shots),
        adaptive_vs_fixed(
            "fig09_junction_sensitivity",
            &fig9,
            threaded_workers,
            5 * shots,
        ),
    ];

    let json = format!(
        "{{\n  \"sweep\": \"fig5_latency_vs_ler\",\n  \"points\": {points},\n  \
         \"shots_per_point\": {shots},\n  \
         \"host_cores\": {host_cores},\n  \
         \"serial_seconds\": {serial_seconds:.4},\n  \
         \"threaded_workers\": {threaded_workers},\n  \
         \"threaded_seconds\": {threaded_seconds:.4},\n  \
         \"serial_points_per_sec\": {serial_pps:.3},\n  \
         \"threaded_points_per_sec\": {threaded_pps:.3},\n  \
         \"speedup\": {speedup:.3},\n  \
         \"bit_identical_across_pool_sizes\": true,\n  \
         \"adaptive_vs_fixed\": [{}\n  ]\n}}\n",
        figures
            .iter()
            .map(|f| format!("\n    {f}"))
            .collect::<Vec<_>>()
            .join(",")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    std::fs::write(path, json).expect("write BENCH_sweep.json");
    println!("  wrote {path}");
}
