//! Decoder hot-path throughput on the `[[72,12,6]]` BB code.
//!
//! Measures three rates with plain wall-clock timing (the criterion shim's statistics
//! are no richer — see `crates/shims/README.md`):
//!
//! * **BP-only** — decodes of weight-1-error syndromes, which belief propagation
//!   resolves without the OSD fallback;
//! * **OSD-fallback** — decodes of syndromes on which BP fails, exercising the
//!   word-level ordered-statistics path;
//! * **full-shot** — complete Monte-Carlo shots (depolarizing sample + X and Z
//!   decodes + logical checks) via `MemoryExperiment::sample_one_with`.
//!
//! A counting global allocator verifies the zero-allocation claim: after warmup, the
//! timed full-shot loop must perform **zero** heap allocations. Each run overwrites
//! `BENCH_decoder.json` at the repository root with its measurements, so the file
//! always holds the current commit's numbers and the perf trajectory accumulates in
//! git history (and in CI artifacts). All timed loops are single-threaded — worker
//! parallelism is `MemoryExperiment::run`'s concern, not the hot path's.
//! `CYCLONE_SHOTS` scales the measurement length (CI uses 50).

use decoder::bposd::{BpOsdDecoder, DecodeMethod};
use decoder::memory::{MemoryExperiment, ShotScratch};
use decoder::scratch::DecoderScratch;
use noise::{HardwareNoiseModel, NoiseParameters};
use qec::codes::bb_72_12_6;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Full-shot throughput measured at the pre-refactor commit (`be2e5a4`, allocating
/// `sample_one`, per-decode Tanner rebuild, bit-level OSD) on this container:
/// median of three 20k-shot runs. Kept as the fixed reference point for the
/// speedup figure reported in `BENCH_decoder.json`.
const PRE_PR_BASELINE_SHOTS_PER_SEC: f64 = 61_860.0;

/// The physical error rate of the acceptance measurement.
const P: f64 = 3e-3;

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Times `iters` calls of `routine` and returns calls per second.
fn rate(iters: usize, mut routine: impl FnMut(usize)) -> f64 {
    let start = Instant::now();
    for i in 0..iters {
        routine(i);
    }
    iters as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let code = bb_72_12_6().expect("valid");
    let n = code.num_qubits();
    let decoder = BpOsdDecoder::new(code.hz(), 30);
    let iters = 40 * bench::shots(); // 16k iterations by default, 2k in CI quick mode

    // --- BP-only: weight-1 errors, cycled over every qubit. -----------------
    let weight1_syndromes: Vec<Vec<bool>> = (0..n)
        .map(|q| {
            let mut e = vec![false; n];
            e[q] = true;
            code.z_syndrome(&e)
        })
        .collect();
    let mut scratch = DecoderScratch::new();
    for s in &weight1_syndromes {
        let status = decoder.decode_into(s, P, &mut scratch);
        assert_eq!(status.method, DecodeMethod::BeliefPropagation);
    }
    let bp_rate = rate(iters, |i| {
        let s = &weight1_syndromes[i % weight1_syndromes.len()];
        black_box(decoder.decode_into(black_box(s), P, &mut scratch));
    });

    // --- OSD-fallback: syndromes on which BP fails. -------------------------
    let mut rng = StdRng::seed_from_u64(0xC1C1_0DE5);
    let mut fallback_syndromes: Vec<Vec<bool>> = Vec::new();
    while fallback_syndromes.len() < 32 {
        let e: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.08)).collect();
        let s = code.z_syndrome(&e);
        if decoder.decode_into(&s, P, &mut scratch).method == DecodeMethod::OrderedStatistics {
            fallback_syndromes.push(s);
        }
    }
    let osd_rate = rate(iters / 4, |i| {
        let s = &fallback_syndromes[i % fallback_syndromes.len()];
        black_box(decoder.decode_into(black_box(s), P, &mut scratch));
    });

    // --- Full shots, with the zero-allocation check. ------------------------
    let model = HardwareNoiseModel::new(NoiseParameters::new(P), 0.0);
    let exp = MemoryExperiment::new(&code, model, 30);
    let mut shot_scratch = ShotScratch::new();
    // Warm up the scratch buffers, including the OSD-fallback path in both sectors
    // (rare at p = 3e-3, so a burst of high-noise shots forces it deliberately).
    let noisy = MemoryExperiment::new(
        &code,
        HardwareNoiseModel::new(NoiseParameters::new(0.08), 0.0),
        30,
    );
    for shot in 0..256usize {
        let mut rng = StdRng::seed_from_u64(0xC1C1_0DE5 ^ shot as u64);
        black_box(noisy.sample_one_with(&mut rng, &mut shot_scratch));
        black_box(exp.sample_one_with(&mut rng, &mut shot_scratch));
    }
    let allocs_before = allocations();
    let shot_rate = rate(iters, |shot| {
        let mut rng = StdRng::seed_from_u64(0xC1C1_0DE5 ^ shot as u64);
        black_box(exp.sample_one_with(&mut rng, &mut shot_scratch));
    });
    let steady_state_allocs = allocations() - allocs_before;
    assert_eq!(
        steady_state_allocs, 0,
        "steady-state sample_one_with must not allocate"
    );
    let speedup = shot_rate / PRE_PR_BASELINE_SHOTS_PER_SEC;

    // --- Per-channel-kind sampling throughput. ------------------------------
    // The biased channel exercises syndrome flips + per-bit priors; the
    // "schedule" channel is a fully heterogeneous from_schedule instantiation
    // (distinct data and ancilla idle exposures). Both must also be
    // allocation-free in steady state.
    let channel_rate = |channel: noise::ErrorChannel| -> f64 {
        let exp = MemoryExperiment::with_channel(&code, model, channel, 30);
        let mut scratch = ShotScratch::new();
        for shot in 0..256usize {
            let mut rng = StdRng::seed_from_u64(0xC1C1_0DE5 ^ shot as u64);
            black_box(exp.sample_one_with(&mut rng, &mut scratch));
        }
        let before = allocations();
        let rate = rate(iters, |shot| {
            let mut rng = StdRng::seed_from_u64(0xC1C1_0DE5 ^ shot as u64);
            black_box(exp.sample_one_with(&mut rng, &mut scratch));
        });
        assert_eq!(
            allocations() - before,
            0,
            "steady-state channel sampling must not allocate"
        );
        rate
    };
    let biased_rate = channel_rate(noise::ErrorChannel::biased(
        n,
        code.num_stabilizers(),
        P,
        2.0 * P,
    ));
    let schedule_rate = {
        let data_idle: Vec<f64> = (0..n).map(|q| 1e-2 * (q % 7) as f64 / 6.0).collect();
        let meas_idle: Vec<f64> = (0..code.num_stabilizers())
            .map(|c| 1e-2 * (c % 5) as f64 / 4.0)
            .collect();
        channel_rate(noise::ErrorChannel::from_schedule(
            &model, &data_idle, &meas_idle,
        ))
    };

    println!("decoder hot path, [[72,12,6]] BB code at p = {P:.0e} ({iters} iterations)");
    println!("  BP-only       {bp_rate:>12.0} decodes/sec");
    println!("  OSD-fallback  {osd_rate:>12.0} decodes/sec");
    println!("  full-shot     {shot_rate:>12.0} shots/sec");
    println!("  biased-channel   {biased_rate:>9.0} shots/sec");
    println!("  schedule-channel {schedule_rate:>9.0} shots/sec");
    println!("  steady-state heap allocations per shot: {steady_state_allocs}");
    println!(
        "  speedup vs pre-PR baseline ({PRE_PR_BASELINE_SHOTS_PER_SEC:.0} shots/sec): {speedup:.2}x"
    );

    let json = format!(
        "{{\n  \"code\": \"{}\",\n  \"p\": {P},\n  \"iterations\": {iters},\n  \
         \"bp_only_decodes_per_sec\": {bp_rate:.1},\n  \
         \"osd_fallback_decodes_per_sec\": {osd_rate:.1},\n  \
         \"full_shot_shots_per_sec\": {shot_rate:.1},\n  \
         \"channel_shots_per_sec\": {{\n    \"uniform\": {shot_rate:.1},\n    \
         \"biased\": {biased_rate:.1},\n    \"schedule\": {schedule_rate:.1}\n  }},\n  \
         \"steady_state_allocs_per_shot\": {steady_state_allocs},\n  \
         \"pre_pr_baseline_shots_per_sec\": {PRE_PR_BASELINE_SHOTS_PER_SEC:.1},\n  \
         \"speedup_vs_pre_pr\": {speedup:.2}\n}}\n",
        code.descriptor()
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_decoder.json");
    std::fs::write(path, json).expect("write BENCH_decoder.json");
    println!("  wrote {path}");
}
