//! Decoder hot-path throughput on the `[[72,12,6]]` BB code.
//!
//! Measures per-decode and per-shot rates with plain wall-clock timing (the
//! criterion shim's statistics are no richer — see `crates/shims/README.md`):
//!
//! * **BP-only** — decodes of weight-1-error syndromes, which belief propagation
//!   resolves without the OSD fallback;
//! * **OSD-fallback** — decodes of syndromes on which BP fails, exercising the
//!   word-level ordered-statistics path;
//! * **full-shot (scalar)** — complete Monte-Carlo shots (depolarizing sample +
//!   X and Z decodes + logical checks) via `MemoryExperiment::sample_one_with`;
//! * **full-shot (batch)** — the same shots through the bit-sliced 64-lane path
//!   (`MemoryExperiment::sample_batch_with`: word-level syndrome extraction,
//!   zero-syndrome lane skip, per-syndrome decode cache), for the uniform,
//!   biased, and schedule-shaped channels.
//!
//! A counting global allocator verifies the zero-allocation claim: after warmup,
//! every timed loop — scalar and batch, all channel shapes — must perform
//! **zero** heap allocations. Each run overwrites `BENCH_decoder.json` at the
//! repository root with its measurements, so the file always holds the current
//! commit's numbers and the perf trajectory accumulates in git history (and in
//! CI artifacts). All timed loops are single-threaded — worker parallelism is
//! `MemoryExperiment::run`'s concern, not the hot path's. `CYCLONE_SHOTS`
//! scales the measurement length (CI uses 50), and `CYCLONE_ENFORCE=1` turns
//! the recorded regression thresholds below into hard assertions.

use decoder::bposd::{BpOsdDecoder, DecodeMethod};
use decoder::memory::{BatchScratch, MemoryConfig, MemoryExperiment, ShotScratch};
use decoder::scratch::DecoderScratch;
use noise::{ErrorChannel, HardwareNoiseModel, NoiseParameters};
use qec::codes::bb_72_12_6;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Full-shot throughput measured at the pre-refactor commit (`be2e5a4`, allocating
/// `sample_one`, per-decode Tanner rebuild, bit-level OSD) on this container:
/// median of three 20k-shot runs. The recorded baseline field in
/// `BENCH_decoder.json` comes from this constant, and `speedup_vs_pre_pr` is
/// always computed from it at run time — never hand-entered.
const PRE_PR_BASELINE_SHOTS_PER_SEC: f64 = 61_860.0;

/// Regression floor for the batch uniform rate under `CYCLONE_ENFORCE=1`
/// (quick mode included): the tentpole target for this container, with the
/// measured rate (~4.0M shots/sec full-length, ~2.8M in CI quick mode) leaving
/// roughly 3× headroom.
const ENFORCE_MIN_UNIFORM_BATCH_SHOTS_PER_SEC: f64 = 1_000_000.0;

/// Regression ceiling for the worst structured-channel penalty
/// (`uniform_batch / min(biased_batch, schedule_batch)`) under
/// `CYCLONE_ENFORCE=1`. Measured ~28× on this container in both full-length
/// and quick mode: structured channels pay measurement-flip sampling, a much
/// higher active-lane fraction, and — decisively — compulsory decode-cache
/// misses whose syndromes (single measurement flips and the two-event tail)
/// mostly need the ~78 µs OSD fallback. 40× is the recorded do-not-regress
/// threshold. Note the *absolute* structured rates still improved ~4× over the
/// scalar path; the penalty vs uniform widened only because the uniform batch
/// path gained ~14×.
const ENFORCE_MAX_STRUCTURED_PENALTY: f64 = 40.0;

/// The physical error rate of the acceptance measurement.
const P: f64 = 3e-3;

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Times `iters` calls of `routine` and returns calls per second.
fn rate(iters: usize, mut routine: impl FnMut(usize)) -> f64 {
    let start = Instant::now();
    for i in 0..iters {
        routine(i);
    }
    iters as f64 / start.elapsed().as_secs_f64()
}

/// Measures steady-state batch throughput (shots/sec) for one experiment, and
/// asserts the timed loop is allocation-free. `batch` arrives warm (buffers and
/// decode caches sized, OSD arenas grown); the cache context re-bind on the
/// first chunk clears entries without allocating.
fn batch_rate(
    exp: &MemoryExperiment,
    cfg: &MemoryConfig,
    batch: &mut BatchScratch,
    chunks: usize,
) -> f64 {
    // One untimed chunk re-binds the decode caches to this experiment's context
    // and repopulates the popular syndromes.
    black_box(exp.sample_batch_with(cfg, 0, 64, batch));
    let before = allocations();
    let shots_per_sec = 64.0
        * rate(chunks, |chunk| {
            black_box(exp.sample_batch_with(cfg, chunk * 64, 64, batch));
        });
    assert_eq!(
        allocations() - before,
        0,
        "steady-state sample_batch_with must not allocate"
    );
    shots_per_sec
}

fn main() {
    let code = bb_72_12_6().expect("valid");
    let n = code.num_qubits();
    let decoder = BpOsdDecoder::new(code.hz(), 30);
    let iters = 40 * bench::shots(); // 16k iterations by default, 2k in CI quick mode
    let enforce = std::env::var("CYCLONE_ENFORCE").is_ok_and(|v| v == "1");

    // --- BP-only: weight-1 errors, cycled over every qubit. -----------------
    let weight1_syndromes: Vec<Vec<bool>> = (0..n)
        .map(|q| {
            let mut e = vec![false; n];
            e[q] = true;
            code.z_syndrome(&e)
        })
        .collect();
    let mut scratch = DecoderScratch::new();
    for s in &weight1_syndromes {
        let status = decoder.decode_into(s, P, &mut scratch);
        assert_eq!(status.method, DecodeMethod::BeliefPropagation);
    }
    let bp_rate = rate(iters, |i| {
        let s = &weight1_syndromes[i % weight1_syndromes.len()];
        black_box(decoder.decode_into(black_box(s), P, &mut scratch));
    });

    // --- OSD-fallback: syndromes on which BP fails. -------------------------
    let mut rng = StdRng::seed_from_u64(0xC1C1_0DE5);
    let mut fallback_syndromes: Vec<Vec<bool>> = Vec::new();
    while fallback_syndromes.len() < 32 {
        let e: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.08)).collect();
        let s = code.z_syndrome(&e);
        if decoder.decode_into(&s, P, &mut scratch).method == DecodeMethod::OrderedStatistics {
            fallback_syndromes.push(s);
        }
    }
    let osd_rate = rate(iters / 4, |i| {
        let s = &fallback_syndromes[i % fallback_syndromes.len()];
        black_box(decoder.decode_into(black_box(s), P, &mut scratch));
    });

    // --- Scalar full shots, with the zero-allocation check. -----------------
    let model = HardwareNoiseModel::new(NoiseParameters::new(P), 0.0);
    let exp = MemoryExperiment::new(&code, model, 30);
    let mut shot_scratch = ShotScratch::new();
    // Warm up the scratch buffers, including the OSD-fallback path in both sectors
    // (rare at p = 3e-3, so a burst of high-noise shots forces it deliberately).
    let noisy = MemoryExperiment::new(
        &code,
        HardwareNoiseModel::new(NoiseParameters::new(0.08), 0.0),
        30,
    );
    for shot in 0..256usize {
        let mut rng = StdRng::seed_from_u64(0xC1C1_0DE5 ^ shot as u64);
        black_box(noisy.sample_one_with(&mut rng, &mut shot_scratch));
        black_box(exp.sample_one_with(&mut rng, &mut shot_scratch));
    }
    let allocs_before = allocations();
    let shot_rate = rate(iters, |shot| {
        let mut rng = StdRng::seed_from_u64(0xC1C1_0DE5 ^ shot as u64);
        black_box(exp.sample_one_with(&mut rng, &mut shot_scratch));
    });
    let steady_state_allocs = allocations() - allocs_before;
    assert_eq!(
        steady_state_allocs, 0,
        "steady-state sample_one_with must not allocate"
    );

    // --- Per-channel-kind scalar sampling throughput. -----------------------
    // The biased channel exercises syndrome flips + per-bit priors; the
    // "schedule" channel is a fully heterogeneous from_schedule instantiation
    // (distinct data and ancilla idle exposures). Both must also be
    // allocation-free in steady state.
    let channel_rate = |channel: ErrorChannel| -> f64 {
        let exp = MemoryExperiment::with_channel(&code, model, channel, 30);
        let mut scratch = ShotScratch::new();
        for shot in 0..256usize {
            let mut rng = StdRng::seed_from_u64(0xC1C1_0DE5 ^ shot as u64);
            black_box(exp.sample_one_with(&mut rng, &mut scratch));
        }
        let before = allocations();
        let rate = rate(iters, |shot| {
            let mut rng = StdRng::seed_from_u64(0xC1C1_0DE5 ^ shot as u64);
            black_box(exp.sample_one_with(&mut rng, &mut scratch));
        });
        assert_eq!(
            allocations() - before,
            0,
            "steady-state channel sampling must not allocate"
        );
        rate
    };
    let biased_channel = || ErrorChannel::biased(n, code.num_stabilizers(), P, 2.0 * P);
    let schedule_channel = || {
        let data_idle: Vec<f64> = (0..n).map(|q| 1e-2 * (q % 7) as f64 / 6.0).collect();
        let meas_idle: Vec<f64> = (0..code.num_stabilizers())
            .map(|c| 1e-2 * (c % 5) as f64 / 4.0)
            .collect();
        ErrorChannel::from_schedule(&model, &data_idle, &meas_idle)
    };
    let biased_rate = channel_rate(biased_channel());
    let schedule_rate = channel_rate(schedule_channel());

    // --- Bit-sliced batch shots, per channel kind. --------------------------
    // One warm scratch serves every channel: a high-noise burst grows the OSD
    // arenas and decode-cache storage once, then each `batch_rate` re-binds the
    // caches to its channel context allocation-free.
    let cfg = MemoryConfig {
        shots: 0,
        bp_iterations: 30,
        threads: 1,
        seed: 0xC1C1_0DE5,
    };
    let mut batch = BatchScratch::new();
    for chunk in 0..4usize {
        black_box(noisy.sample_batch_with(&cfg, chunk * 64, 64, &mut batch));
    }
    let chunks = (iters / 64).max(8);
    let uniform_batch = batch_rate(&exp, &cfg, &mut batch, chunks);
    let biased_batch = {
        let exp = MemoryExperiment::with_channel(&code, model, biased_channel(), 30);
        batch_rate(&exp, &cfg, &mut batch, chunks)
    };
    let (cache_hits, cache_misses) = batch.cache_stats();
    let schedule_batch = {
        let exp = MemoryExperiment::with_channel(&code, model, schedule_channel(), 30);
        batch_rate(&exp, &cfg, &mut batch, chunks)
    };

    // The headline figures: the batch path is what `MemoryExperiment::run`
    // executes, so the pre-PR speedup and the structured-channel penalty are
    // both computed from it — against the recorded baseline field, at run time.
    let speedup = uniform_batch / PRE_PR_BASELINE_SHOTS_PER_SEC;
    let structured_penalty = uniform_batch / biased_batch.min(schedule_batch);
    let cache_hit_rate = cache_hits as f64 / (cache_hits + cache_misses).max(1) as f64;

    println!("decoder hot path, [[72,12,6]] BB code at p = {P:.0e} ({iters} iterations)");
    println!("  BP-only        {bp_rate:>12.0} decodes/sec");
    println!("  OSD-fallback   {osd_rate:>12.0} decodes/sec");
    println!("  scalar shots   {shot_rate:>12.0} shots/sec (uniform)");
    println!("    biased       {biased_rate:>12.0} shots/sec");
    println!("    schedule     {schedule_rate:>12.0} shots/sec");
    println!("  batch shots    {uniform_batch:>12.0} shots/sec (uniform, 64 lanes/word)");
    println!("    biased       {biased_batch:>12.0} shots/sec");
    println!("    schedule     {schedule_batch:>12.0} shots/sec");
    println!(
        "  decode-cache hit rate (biased batch): {:.1}%",
        100.0 * cache_hit_rate
    );
    println!("  worst structured penalty vs uniform batch: {structured_penalty:.2}x");
    println!("  steady-state heap allocations per shot: {steady_state_allocs}");
    println!(
        "  speedup vs pre-PR baseline ({PRE_PR_BASELINE_SHOTS_PER_SEC:.0} shots/sec): {speedup:.2}x"
    );

    if enforce {
        assert!(
            uniform_batch >= ENFORCE_MIN_UNIFORM_BATCH_SHOTS_PER_SEC,
            "uniform batch throughput regressed: {uniform_batch:.0} < \
             {ENFORCE_MIN_UNIFORM_BATCH_SHOTS_PER_SEC:.0} shots/sec"
        );
        assert!(
            structured_penalty <= ENFORCE_MAX_STRUCTURED_PENALTY,
            "structured-channel penalty regressed: {structured_penalty:.2}x > \
             {ENFORCE_MAX_STRUCTURED_PENALTY:.2}x"
        );
        println!("  CYCLONE_ENFORCE: thresholds hold");
    }

    let json = format!(
        "{{\n  \"code\": \"{}\",\n  \"p\": {P},\n  \"iterations\": {iters},\n  \
         \"bp_only_decodes_per_sec\": {bp_rate:.1},\n  \
         \"osd_fallback_decodes_per_sec\": {osd_rate:.1},\n  \
         \"full_shot_shots_per_sec\": {shot_rate:.1},\n  \
         \"channel_shots_per_sec\": {{\n    \"uniform\": {shot_rate:.1},\n    \
         \"biased\": {biased_rate:.1},\n    \"schedule\": {schedule_rate:.1}\n  }},\n  \
         \"batch_shots_per_sec\": {{\n    \"uniform\": {uniform_batch:.1},\n    \
         \"biased\": {biased_batch:.1},\n    \"schedule\": {schedule_batch:.1}\n  }},\n  \
         \"batch_cache_hit_rate\": {cache_hit_rate:.3},\n  \
         \"structured_penalty_vs_uniform\": {structured_penalty:.2},\n  \
         \"steady_state_allocs_per_shot\": {steady_state_allocs},\n  \
         \"pre_pr_baseline_shots_per_sec\": {PRE_PR_BASELINE_SHOTS_PER_SEC:.1},\n  \
         \"speedup_vs_pre_pr\": {speedup:.2}\n}}\n",
        code.descriptor()
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_decoder.json");
    std::fs::write(path, json).expect("write BENCH_decoder.json");
    println!("  wrote {path}");
}
