//! Decoder hot-path throughput on the `[[72,12,6]]` BB code.
//!
//! Measures per-decode and per-shot rates with plain wall-clock timing (the
//! criterion shim's statistics are no richer — see `crates/shims/README.md`):
//!
//! * **BP-only** — decodes of weight-1-error syndromes, which belief propagation
//!   resolves without the OSD fallback;
//! * **OSD-fallback** — decodes of syndromes on which BP fails, exercising the
//!   word-level ordered-statistics path; the warm-started and cold OSD stages
//!   are also timed separately (same syndromes, precomputed BP suspicion), so
//!   the warm-start lever's gain is recorded on every run;
//! * **full-shot (scalar)** — complete Monte-Carlo shots (depolarizing sample +
//!   X and Z decodes + logical checks) via `MemoryExperiment::sample_one_with`;
//! * **full-shot (batch)** — the same shots through the bit-sliced 64-lane path
//!   (`MemoryExperiment::sample_batch_with`: word-level syndrome extraction,
//!   zero-syndrome lane skip, weight-1 fast path, per-syndrome decode cache),
//!   for the uniform, biased, and schedule-shaped channels, with per-channel
//!   weight-1-fast-path and OSD-fallback rates from `BatchStats` deltas.
//!
//! Setting `CYCLONE_DECODE_CACHE_DIR` persists the structured channels' decode
//! caches there and loads them back on the next run: a **cold** run (nothing to
//! load) pays every compulsory syndrome decode once, a **warm** run serves them
//! from the persisted cache. The JSON records which state was measured.
//!
//! A counting global allocator verifies the zero-allocation claim: after warmup,
//! every timed loop — scalar and batch, all channel shapes, cold and warm — must
//! perform **zero** heap allocations (cache load/store and the weight-1 table
//! build happen outside the timed loops). Each run overwrites
//! `BENCH_decoder.json` at the repository root with its measurements, so the
//! file always holds the current commit's numbers and the perf trajectory
//! accumulates in git history (and in CI artifacts). All timed loops are
//! single-threaded — worker parallelism is `MemoryExperiment::run`'s concern,
//! not the hot path's. `CYCLONE_SHOTS` scales the measurement length (CI uses
//! 50), and `CYCLONE_ENFORCE=1` turns the recorded regression thresholds below
//! into hard assertions.

use decoder::bposd::{BpOsdDecoder, DecodeMethod};
use decoder::memory::{BatchScratch, BatchStats, MemoryConfig, MemoryExperiment, ShotScratch};
use decoder::osd::OsdDecoder;
use decoder::scratch::DecoderScratch;
use decoder::simd::{Simd, SimdIsa, SimdMode};
use noise::{ErrorChannel, HardwareNoiseModel, NoiseParameters};
use qec::codes::bb_72_12_6;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Full-shot throughput measured at the pre-refactor commit (`be2e5a4`, allocating
/// `sample_one`, per-decode Tanner rebuild, bit-level OSD) on this container:
/// median of three 20k-shot runs. The recorded baseline field in
/// `BENCH_decoder.json` comes from this constant, and `speedup_vs_pre_pr` is
/// always computed from it at run time — never hand-entered.
const PRE_PR_BASELINE_SHOTS_PER_SEC: f64 = 61_860.0;

/// Regression floor for the batch uniform rate under `CYCLONE_ENFORCE=1`
/// (quick mode included): the original tentpole target for this container, with
/// the measured rate (~4M shots/sec full-length) leaving roughly 3× headroom.
const ENFORCE_MIN_UNIFORM_BATCH_SHOTS_PER_SEC: f64 = 1_000_000.0;

/// Regression ceiling for the worst **cold** structured-channel penalty
/// (`uniform_batch / min(biased_batch, schedule_batch)`) under
/// `CYCLONE_ENFORCE=1`. The cold run is bounded by compulsory decode-cache
/// misses: every first-seen multi-event syndrome pays the full BP-failure +
/// OSD-fallback cost, pinned bit-identical to the scalar decoder. The BP/OSD
/// hot-loop work (word-packed convergence, branchless min-sum signs, row-major
/// total accumulation, warm-started OSD) brought the measured cold penalty from
/// ~28× down to ~20× on this container; 25× is the do-not-regress ceiling.
/// The *warm* run — the persistent decode cache loaded — is held to the much
/// tighter [`ENFORCE_MAX_WARM_STRUCTURED_PENALTY`].
const ENFORCE_MAX_STRUCTURED_PENALTY: f64 = 25.0;

/// Warm-run regression ceiling for the structured-channel penalty: with the
/// persisted caches loaded, compulsory misses vanish (measured ~2× on this
/// container, dominated by the per-shot RNG stream that bit-identity pins).
const ENFORCE_MAX_WARM_STRUCTURED_PENALTY: f64 = 5.0;

/// Warm-run regression floor for the slowest structured-channel batch rate
/// (measured ~2M shots/sec on this container).
const ENFORCE_MIN_WARM_STRUCTURED_BATCH_SHOTS_PER_SEC: f64 = 300_000.0;

/// SIMD-only regression floor for the BP kernel gain, applied under
/// `CYCLONE_ENFORCE=1` when the dispatched ISA is AVX2 (this container's
/// acceptance ISA): `bp_only_decodes_per_sec` must be at least this multiple of
/// the forced-scalar rate measured in the same run. Hosts that dispatch SSE2 or
/// scalar record the honest ratio (or `simd_not_available`) without enforcing.
const ENFORCE_MIN_BP_SIMD_SPEEDUP: f64 = 1.5;

/// SIMD-only ceiling for the worst cold structured-channel penalty under
/// `CYCLONE_ENFORCE=1` on an AVX2 host: the vectorized check pass shrinks the
/// compulsory-miss BP cost, so the cold penalty must sit below the scalar-era
/// 22× (the scalar-safe [`ENFORCE_MAX_STRUCTURED_PENALTY`] ceiling still
/// applies to `CYCLONE_SIMD=off` runs).
const ENFORCE_MAX_SIMD_STRUCTURED_PENALTY: f64 = 22.0;

/// The physical error rate of the acceptance measurement.
const P: f64 = 3e-3;

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Times `iters` calls of `routine` and returns calls per second.
fn rate(iters: usize, mut routine: impl FnMut(usize)) -> f64 {
    let start = Instant::now();
    for i in 0..iters {
        routine(i);
    }
    iters as f64 / start.elapsed().as_secs_f64()
}

/// What one channel's batch measurement produced: the steady-state rate plus
/// the `BatchStats` / cache-counter deltas of its lanes over the timed loop.
struct ChannelMeasurement {
    shots_per_sec: f64,
    stats: BatchStats,
    cache_hits: u64,
    cache_misses: u64,
}

impl ChannelMeasurement {
    fn weight1_fastpath_rate(&self) -> f64 {
        self.stats.weight1_hits as f64 / self.stats.active_lanes.max(1) as f64
    }

    fn osd_fallback_rate(&self) -> f64 {
        self.stats.osd_fallbacks as f64 / self.stats.active_lanes.max(1) as f64
    }

    fn cache_hit_rate(&self) -> f64 {
        self.cache_hits as f64 / (self.cache_hits + self.cache_misses).max(1) as f64
    }
}

/// Measures steady-state batch throughput (shots/sec) for one experiment, and
/// asserts the timed loop is allocation-free. `batch` arrives warm (buffers and
/// decode caches sized, OSD arenas grown); the cache context re-bind and the
/// weight-1 table build happen on the first (untimed) chunk, which never
/// allocates in the timed loop that follows.
fn batch_rate(
    exp: &MemoryExperiment,
    cfg: &MemoryConfig,
    batch: &mut BatchScratch,
    chunks: usize,
) -> ChannelMeasurement {
    // One untimed chunk re-binds the decode caches to this experiment's context
    // (which zeroes the cache counters when the context changes), builds the
    // weight-1 table, and repopulates the popular syndromes. The stat baselines
    // are captured *after* it, so the deltas cover exactly the timed loop.
    black_box(exp.sample_batch_with(cfg, 0, 64, batch));
    let stats0 = batch.stats();
    let (hits0, misses0) = batch.cache_stats();
    let before = allocations();
    let shots_per_sec = 64.0
        * rate(chunks, |chunk| {
            black_box(exp.sample_batch_with(cfg, chunk * 64, 64, batch));
        });
    assert_eq!(
        allocations() - before,
        0,
        "steady-state sample_batch_with must not allocate"
    );
    let stats1 = batch.stats();
    let (hits1, misses1) = batch.cache_stats();
    ChannelMeasurement {
        shots_per_sec,
        stats: BatchStats {
            active_lanes: stats1.active_lanes - stats0.active_lanes,
            weight1_hits: stats1.weight1_hits - stats0.weight1_hits,
            decoded: stats1.decoded - stats0.decoded,
            osd_fallbacks: stats1.osd_fallbacks - stats0.osd_fallbacks,
        },
        cache_hits: hits1 - hits0,
        cache_misses: misses1 - misses0,
    }
}

fn main() {
    let code = bb_72_12_6().expect("valid");
    let n = code.num_qubits();
    let decoder = BpOsdDecoder::new(code.hz(), 30);
    let iters = 40 * bench::shots(); // 16k iterations by default, 2k in CI quick mode
    let enforce = std::env::var("CYCLONE_ENFORCE").is_ok_and(|v| v == "1");
    let decode_cache_dir = std::env::var("CYCLONE_DECODE_CACHE_DIR")
        .ok()
        .filter(|s| !s.trim().is_empty())
        .map(PathBuf::from);

    // --- BP-only: weight-1 errors, cycled over every qubit. -----------------
    let weight1_syndromes: Vec<Vec<bool>> = (0..n)
        .map(|q| {
            let mut e = vec![false; n];
            e[q] = true;
            code.z_syndrome(&e)
        })
        .collect();
    let mut scratch = DecoderScratch::new();
    for s in &weight1_syndromes {
        let status = decoder.decode_into(s, P, &mut scratch);
        assert_eq!(status.method, DecodeMethod::BeliefPropagation);
    }
    let before = allocations();
    let bp_rate = rate(iters, |i| {
        let s = &weight1_syndromes[i % weight1_syndromes.len()];
        black_box(decoder.decode_into(black_box(s), P, &mut scratch));
    });
    assert_eq!(
        allocations() - before,
        0,
        "steady-state BP-only decode_into must not allocate (dispatched kernel)"
    );

    // --- BP-only again, kernel dispatch pinned to the scalar reference. -----
    // Same syndromes, same run, so `bp_rate / bp_scalar_rate` is an honest
    // same-host measure of the SIMD check-pass gain (the property suite pins
    // the two paths bit-identical, so this is purely a throughput ratio).
    let simd = decoder.simd();
    let scalar_decoder = BpOsdDecoder::new(code.hz(), 30).with_simd(Simd::with_mode(SimdMode::Off));
    let mut scalar_scratch = DecoderScratch::new();
    for s in &weight1_syndromes {
        let status = scalar_decoder.decode_into(s, P, &mut scalar_scratch);
        assert_eq!(status.method, DecodeMethod::BeliefPropagation);
    }
    let before = allocations();
    let bp_scalar_rate = rate(iters, |i| {
        let s = &weight1_syndromes[i % weight1_syndromes.len()];
        black_box(scalar_decoder.decode_into(black_box(s), P, &mut scalar_scratch));
    });
    assert_eq!(
        allocations() - before,
        0,
        "steady-state BP-only decode_into must not allocate (scalar kernel)"
    );
    let bp_simd_speedup = bp_rate / bp_scalar_rate;

    // --- OSD-fallback: syndromes on which BP fails. -------------------------
    let mut rng = StdRng::seed_from_u64(0xC1C1_0DE5);
    let mut fallback_syndromes: Vec<Vec<bool>> = Vec::new();
    while fallback_syndromes.len() < 32 {
        let e: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.08)).collect();
        let s = code.z_syndrome(&e);
        if decoder.decode_into(&s, P, &mut scratch).method == DecodeMethod::OrderedStatistics {
            fallback_syndromes.push(s);
        }
    }
    let osd_rate = rate(iters / 4, |i| {
        let s = &fallback_syndromes[i % fallback_syndromes.len()];
        black_box(decoder.decode_into(black_box(s), P, &mut scratch));
    });

    // --- OSD stage alone, warm-started vs cold. -----------------------------
    // Same fallback syndromes, BP suspicion precomputed, so the two timings
    // isolate exactly the warm-start lever (column-permutation reuse +
    // early-exit elimination); the property suite pins them bit-identical.
    let suspicions: Vec<Vec<f64>> = fallback_syndromes
        .iter()
        .map(|s| {
            decoder.decode_into(s, P, &mut scratch);
            scratch.llrs().iter().map(|&l| -l).collect()
        })
        .collect();
    let osd_only = OsdDecoder::new(code.hz().clone());
    let mut warm_scratch = DecoderScratch::new();
    let mut cold_scratch = DecoderScratch::new();
    for (s, susp) in fallback_syndromes.iter().zip(&suspicions) {
        assert!(osd_only.decode_into(s, susp, &mut warm_scratch));
        assert!(osd_only.decode_into_cold(s, susp, &mut cold_scratch));
    }
    let before = allocations();
    let osd_warm_rate = rate(iters / 4, |i| {
        let k = i % fallback_syndromes.len();
        black_box(osd_only.decode_into(
            black_box(&fallback_syndromes[k]),
            &suspicions[k],
            &mut warm_scratch,
        ));
    });
    let osd_cold_rate = rate(iters / 4, |i| {
        let k = i % fallback_syndromes.len();
        black_box(osd_only.decode_into_cold(
            black_box(&fallback_syndromes[k]),
            &suspicions[k],
            &mut cold_scratch,
        ));
    });
    assert_eq!(
        allocations() - before,
        0,
        "steady-state OSD decode_into must not allocate"
    );
    let osd_warm_speedup = osd_warm_rate / osd_cold_rate;

    // --- Scalar full shots, with the zero-allocation check. -----------------
    let model = HardwareNoiseModel::new(NoiseParameters::new(P), 0.0);
    let exp = MemoryExperiment::new(&code, model, 30);
    let mut shot_scratch = ShotScratch::new();
    // Warm up the scratch buffers, including the OSD-fallback path in both sectors
    // (rare at p = 3e-3, so a burst of high-noise shots forces it deliberately).
    let noisy = MemoryExperiment::new(
        &code,
        HardwareNoiseModel::new(NoiseParameters::new(0.08), 0.0),
        30,
    );
    for shot in 0..256usize {
        let mut rng = StdRng::seed_from_u64(0xC1C1_0DE5 ^ shot as u64);
        black_box(noisy.sample_one_with(&mut rng, &mut shot_scratch));
        black_box(exp.sample_one_with(&mut rng, &mut shot_scratch));
    }
    let allocs_before = allocations();
    let shot_rate = rate(iters, |shot| {
        let mut rng = StdRng::seed_from_u64(0xC1C1_0DE5 ^ shot as u64);
        black_box(exp.sample_one_with(&mut rng, &mut shot_scratch));
    });
    let steady_state_allocs = allocations() - allocs_before;
    assert_eq!(
        steady_state_allocs, 0,
        "steady-state sample_one_with must not allocate"
    );

    // --- Per-channel-kind scalar sampling throughput. -----------------------
    // The biased channel exercises syndrome flips + per-bit priors; the
    // "schedule" channel is a fully heterogeneous from_schedule instantiation
    // (distinct data and ancilla idle exposures). Both must also be
    // allocation-free in steady state.
    let channel_rate = |channel: ErrorChannel| -> f64 {
        let exp = MemoryExperiment::with_channel(&code, model, channel, 30);
        let mut scratch = ShotScratch::new();
        for shot in 0..256usize {
            let mut rng = StdRng::seed_from_u64(0xC1C1_0DE5 ^ shot as u64);
            black_box(exp.sample_one_with(&mut rng, &mut scratch));
        }
        let before = allocations();
        let rate = rate(iters, |shot| {
            let mut rng = StdRng::seed_from_u64(0xC1C1_0DE5 ^ shot as u64);
            black_box(exp.sample_one_with(&mut rng, &mut scratch));
        });
        assert_eq!(
            allocations() - before,
            0,
            "steady-state channel sampling must not allocate"
        );
        rate
    };
    let biased_channel = || ErrorChannel::biased(n, code.num_stabilizers(), P, 2.0 * P);
    let schedule_channel = || {
        let data_idle: Vec<f64> = (0..n).map(|q| 1e-2 * (q % 7) as f64 / 6.0).collect();
        let meas_idle: Vec<f64> = (0..code.num_stabilizers())
            .map(|c| 1e-2 * (c % 5) as f64 / 4.0)
            .collect();
        ErrorChannel::from_schedule(&model, &data_idle, &meas_idle)
    };
    let biased_rate = channel_rate(biased_channel());
    let schedule_rate = channel_rate(schedule_channel());

    // --- Bit-sliced batch shots, per channel kind. --------------------------
    // One warm scratch serves every channel: a high-noise burst grows the OSD
    // arenas and decode-cache storage once, then each `batch_rate` re-binds the
    // caches to its channel context allocation-free. When
    // CYCLONE_DECODE_CACHE_DIR is set, each structured channel's caches are
    // loaded before and persisted after its measurement (both outside the
    // timed loop), so a rerun with the same directory measures the warm state.
    let cfg = MemoryConfig {
        shots: 0,
        bp_iterations: 30,
        threads: 1,
        seed: 0xC1C1_0DE5,
    };
    let mut batch = BatchScratch::new();
    for chunk in 0..4usize {
        black_box(noisy.sample_batch_with(&cfg, chunk * 64, 64, &mut batch));
    }
    let chunks = (iters / 64).max(8);
    let uniform = batch_rate(&exp, &cfg, &mut batch, chunks);
    let mut entries_loaded = 0usize;
    let mut structured = |channel: ErrorChannel| -> ChannelMeasurement {
        let exp = MemoryExperiment::with_channel(&code, model, channel, 30);
        if let Some(dir) = &decode_cache_dir {
            entries_loaded += exp.load_decode_caches(dir, &mut batch);
        }
        let measurement = batch_rate(&exp, &cfg, &mut batch, chunks);
        if let Some(dir) = &decode_cache_dir {
            exp.store_decode_caches(dir, &batch)
                .expect("persist decode caches");
        }
        measurement
    };
    let biased = structured(biased_channel());
    let schedule = structured(schedule_channel());
    let warm = entries_loaded > 0;
    let cache_evictions = batch.cache_evictions();

    // The headline figures: the batch path is what `MemoryExperiment::run`
    // executes, so the pre-PR speedup and the structured-channel penalty are
    // both computed from it — against the recorded baseline field, at run time.
    let uniform_batch = uniform.shots_per_sec;
    let biased_batch = biased.shots_per_sec;
    let schedule_batch = schedule.shots_per_sec;
    let speedup = uniform_batch / PRE_PR_BASELINE_SHOTS_PER_SEC;
    let structured_min = biased_batch.min(schedule_batch);
    let structured_penalty = uniform_batch / structured_min;
    let cache_hit_rate = biased.cache_hit_rate();

    println!("decoder hot path, [[72,12,6]] BB code at p = {P:.0e} ({iters} iterations)");
    println!(
        "  simd dispatch: {} ({} lanes{})",
        simd.isa_name(),
        simd.lanes(),
        if simd.forced() { ", forced" } else { "" }
    );
    println!("  BP-only        {bp_rate:>12.0} decodes/sec");
    println!(
        "    scalar ref   {bp_scalar_rate:>12.0} decodes/sec ({bp_simd_speedup:.2}x kernel gain)"
    );
    println!("  OSD-fallback   {osd_rate:>12.0} decodes/sec (BP failure + OSD)");
    println!("    OSD warm     {osd_warm_rate:>12.0} decodes/sec (stage alone)");
    println!("    OSD cold     {osd_cold_rate:>12.0} decodes/sec ({osd_warm_speedup:.2}x warm-start gain)");
    println!("  scalar shots   {shot_rate:>12.0} shots/sec (uniform)");
    println!("    biased       {biased_rate:>12.0} shots/sec");
    println!("    schedule     {schedule_rate:>12.0} shots/sec");
    println!("  batch shots    {uniform_batch:>12.0} shots/sec (uniform, 64 lanes/word)");
    for (name, m) in [("biased", &biased), ("schedule", &schedule)] {
        println!(
            "    {name:<9}  {:>12.0} shots/sec (weight-1 fast path {:.1}%, OSD fallback {:.1}% of active lanes)",
            m.shots_per_sec,
            100.0 * m.weight1_fastpath_rate(),
            100.0 * m.osd_fallback_rate(),
        );
    }
    println!(
        "  decode-cache hit rate (biased batch): {:.1}%  ({cache_evictions} conflict evictions)",
        100.0 * cache_hit_rate
    );
    match (&decode_cache_dir, warm) {
        (None, _) => {}
        (Some(dir), false) => println!(
            "  persistent decode cache: cold (nothing to load from {})",
            dir.display()
        ),
        (Some(dir), true) => println!(
            "  persistent decode cache: warm ({entries_loaded} entries loaded from {})",
            dir.display()
        ),
    }
    println!("  worst structured penalty vs uniform batch: {structured_penalty:.2}x");
    println!("  steady-state heap allocations per shot: {steady_state_allocs}");
    println!(
        "  speedup vs pre-PR baseline ({PRE_PR_BASELINE_SHOTS_PER_SEC:.0} shots/sec): {speedup:.2}x"
    );

    if enforce {
        assert!(
            uniform_batch >= ENFORCE_MIN_UNIFORM_BATCH_SHOTS_PER_SEC,
            "uniform batch throughput regressed: {uniform_batch:.0} < \
             {ENFORCE_MIN_UNIFORM_BATCH_SHOTS_PER_SEC:.0} shots/sec"
        );
        assert!(
            structured_penalty <= ENFORCE_MAX_STRUCTURED_PENALTY,
            "structured-channel penalty regressed: {structured_penalty:.2}x > \
             {ENFORCE_MAX_STRUCTURED_PENALTY:.2}x"
        );
        if warm {
            assert!(
                structured_penalty <= ENFORCE_MAX_WARM_STRUCTURED_PENALTY,
                "warm structured-channel penalty regressed: {structured_penalty:.2}x > \
                 {ENFORCE_MAX_WARM_STRUCTURED_PENALTY:.2}x"
            );
            assert!(
                structured_min >= ENFORCE_MIN_WARM_STRUCTURED_BATCH_SHOTS_PER_SEC,
                "warm structured batch throughput regressed: {structured_min:.0} < \
                 {ENFORCE_MIN_WARM_STRUCTURED_BATCH_SHOTS_PER_SEC:.0} shots/sec"
            );
        }
        // SIMD-only thresholds are tied to the acceptance ISA: SSE2 and scalar
        // hosts record honest numbers without gating on them, and a forced
        // `CYCLONE_SIMD=off` enforce run stays on the scalar-safe ceilings.
        if simd.isa() == SimdIsa::Avx2 {
            assert!(
                bp_simd_speedup >= ENFORCE_MIN_BP_SIMD_SPEEDUP,
                "AVX2 BP kernel gain regressed: {bp_simd_speedup:.2}x < \
                 {ENFORCE_MIN_BP_SIMD_SPEEDUP:.2}x vs same-run scalar reference"
            );
            assert!(
                structured_penalty <= ENFORCE_MAX_SIMD_STRUCTURED_PENALTY,
                "AVX2 structured-channel penalty regressed: {structured_penalty:.2}x > \
                 {ENFORCE_MAX_SIMD_STRUCTURED_PENALTY:.2}x"
            );
        }
        println!(
            "  CYCLONE_ENFORCE: thresholds hold ({}{})",
            if warm { "cold + warm" } else { "cold" },
            if simd.isa() == SimdIsa::Avx2 {
                " + avx2"
            } else {
                ""
            }
        );
    }

    let channel_stats = |m: &ChannelMeasurement| {
        format!(
            "{{\n      \"weight1_fastpath_rate\": {:.3},\n      \
             \"osd_fallback_rate\": {:.3},\n      \"cache_hit_rate\": {:.3}\n    }}",
            m.weight1_fastpath_rate(),
            m.osd_fallback_rate(),
            m.cache_hit_rate(),
        )
    };
    // Mirrors the sweep bench's `scaling_not_measurable` convention: a host
    // (or a forced `CYCLONE_SIMD=off` run) without a vector ISA records an
    // honest marker instead of a ~1.0x ratio that would read as a regression.
    let speedup_field = if simd.is_vectorized() {
        format!("{bp_simd_speedup:.2}")
    } else {
        "\"simd_not_available\"".to_owned()
    };
    let json = format!(
        "{{\n  \"code\": \"{}\",\n  \"p\": {P},\n  \"iterations\": {iters},\n  \
         \"simd\": {{\n    \"isa\": \"{}\",\n    \"forced\": {},\n    \"lanes\": {}\n  }},\n  \
         \"bp_only_decodes_per_sec\": {bp_rate:.1},\n  \
         \"bp_scalar_decodes_per_sec\": {bp_scalar_rate:.1},\n  \
         \"bp_simd_speedup\": {speedup_field},\n  \
         \"osd_fallback_decodes_per_sec\": {osd_rate:.1},\n  \
         \"osd_stage_decodes_per_sec\": {{\n    \"warm\": {osd_warm_rate:.1},\n    \
         \"cold\": {osd_cold_rate:.1},\n    \"warm_start_speedup\": {osd_warm_speedup:.2}\n  }},\n  \
         \"full_shot_shots_per_sec\": {shot_rate:.1},\n  \
         \"channel_shots_per_sec\": {{\n    \"uniform\": {shot_rate:.1},\n    \
         \"biased\": {biased_rate:.1},\n    \"schedule\": {schedule_rate:.1}\n  }},\n  \
         \"batch_shots_per_sec\": {{\n    \"uniform\": {uniform_batch:.1},\n    \
         \"biased\": {biased_batch:.1},\n    \"schedule\": {schedule_batch:.1}\n  }},\n  \
         \"batch_channel_stats\": {{\n    \"biased\": {},\n    \"schedule\": {}\n  }},\n  \
         \"batch_cache_evictions\": {cache_evictions},\n  \
         \"decode_cache\": {{\n    \"persistent\": {},\n    \
         \"entries_loaded\": {entries_loaded},\n    \"warm\": {warm}\n  }},\n  \
         \"structured_penalty_vs_uniform\": {structured_penalty:.2},\n  \
         \"steady_state_allocs_per_shot\": {steady_state_allocs},\n  \
         \"pre_pr_baseline_shots_per_sec\": {PRE_PR_BASELINE_SHOTS_PER_SEC:.1},\n  \
         \"speedup_vs_pre_pr\": {speedup:.2}\n}}\n",
        code.descriptor(),
        simd.isa_name(),
        simd.forced(),
        simd.lanes(),
        channel_stats(&biased),
        channel_stats(&schedule),
        decode_cache_dir.is_some(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_decoder.json");
    // cyclone-lint: allow(io-unwrap) -- bench artifact write is fail-fast by design: a partial BENCH_decoder.json must abort the run, not pass CI
    std::fs::write(path, json).expect("write BENCH_decoder.json");
    println!("  wrote {path}");
}
