//! Criterion micro-benchmarks of the substrates: code construction, schedule
//! generation, baseline and Cyclone compilation, BP+OSD decoding, and Pauli-frame
//! sampling. These measure the library's own performance (not the simulated hardware
//! times of the figure benches).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use cyclone::{CycloneCodesign, CycloneConfig};
use decoder::bposd::BpOsdDecoder;
use decoder::pauli::{CircuitNoise, PauliFrameSimulator};
use qccd::compiler::baseline::compile_baseline;
use qccd::timing::OperationTimes;
use qccd::topology::baseline_grid;
use qec::codes::{bb_72_12_6, hgp_225_9_6};
use qec::schedule::{max_parallel_schedule, parallel_xz_schedule, serial_schedule};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_code_construction(c: &mut Criterion) {
    c.bench_function("construct bb_72_12_6", |b| {
        b.iter(|| bb_72_12_6().expect("valid"))
    });
}

fn bench_schedules(c: &mut Criterion) {
    let code = bb_72_12_6().expect("valid");
    c.bench_function("max_parallel_schedule bb72", |b| {
        b.iter(|| max_parallel_schedule(&code))
    });
}

fn bench_cyclone_compile(c: &mut Criterion) {
    let code = hgp_225_9_6().expect("valid");
    let times = OperationTimes::default();
    c.bench_function("cyclone compile hgp225", |b| {
        b.iter(|| CycloneCodesign::new(&code, CycloneConfig::base()).compile(&times))
    });
}

fn bench_baseline_compile(c: &mut Criterion) {
    let code = bb_72_12_6().expect("valid");
    let times = OperationTimes::default();
    let topo = baseline_grid(code.num_qubits(), 5);
    let sched = serial_schedule(&code);
    c.bench_function("baseline compile bb72", |b| {
        b.iter(|| compile_baseline(&code, &topo, &times, &sched))
    });
}

fn bench_decoder(c: &mut Criterion) {
    let code = bb_72_12_6().expect("valid");
    let decoder = BpOsdDecoder::new(code.hz(), 30);
    let n = code.num_qubits();
    let mut rng = StdRng::seed_from_u64(1);
    c.bench_function("bp+osd decode bb72 p=1e-2", |b| {
        b.iter_batched(
            || {
                let e: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.01)).collect();
                code.z_syndrome(&e)
            },
            |syndrome| decoder.decode(&syndrome, 0.01),
            BatchSize::SmallInput,
        )
    });
}

fn bench_pauli_frame(c: &mut Criterion) {
    let code = bb_72_12_6().expect("valid");
    let sched = parallel_xz_schedule(&code);
    let sim = PauliFrameSimulator::new(&code, &sched, CircuitNoise::uniform(1e-3));
    let mut rng = StdRng::seed_from_u64(2);
    c.bench_function("pauli frame round bb72", |b| {
        b.iter(|| sim.simulate_fresh_round(&mut rng))
    });
}

criterion_group!(
    name = substrates;
    config = Criterion::default().sample_size(10);
    targets = bench_code_construction,
        bench_schedules,
        bench_cyclone_compile,
        bench_baseline_compile,
        bench_decoder,
        bench_pauli_frame
);
criterion_main!(substrates);
