//! Fig. 16 — relative spacetime cost (traps × execution time × ancilla qubits) of the
//! baseline grid vs base Cyclone for every code in the catalog.

use bench::Table;
use cyclone::experiments::fig16_spacetime;
use qccd::timing::OperationTimes;

fn main() {
    bench::runner::figure(
        "fig16_spacetime",
        "Fig. 16: spacetime cost (traps x execution time x ancillas), baseline vs Cyclone",
        |_ctx| {
            let codes: Vec<_> = bench::catalog().into_iter().map(|e| e.code).collect();
            let rows = fig16_spacetime(&codes, &OperationTimes::default());
            let mut table = Table::new(&[
                "code",
                "baseline spacetime",
                "cyclone spacetime",
                "improvement",
            ]);
            for r in rows {
                table.row(vec![
                    r.code,
                    format!("{:.3e}", r.baseline_spacetime),
                    format!("{:.3e}", r.cyclone_spacetime),
                    format!("{:.1}x", r.improvement),
                ]);
            }
            table
        },
    );
}
