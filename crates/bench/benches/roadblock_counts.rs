//! Roadblock census (the headline §IV claim): for every code in the catalog,
//! count shuttling roadblock events and the total time spent waiting on them
//! under the static baseline compiler vs the Cyclone codesign. Cyclone must
//! report exactly zero.

use bench::{ms, Table};
use cyclone::experiments::{baseline_round, cyclone_round};
use qccd::timing::OperationTimes;

fn main() {
    bench::runner::figure(
        "roadblock_counts",
        "Roadblock census: baseline grid vs Cyclone",
        |_ctx| {
            let times = OperationTimes::default();
            let mut table = Table::new(&[
                "code",
                "family",
                "B roadblocks",
                "B wait (ms)",
                "C roadblocks",
                "C wait (ms)",
            ]);
            for entry in bench::catalog() {
                let base = baseline_round(&entry.code, &times);
                let cyc = cyclone_round(&entry.code, &times);
                assert_eq!(
                    cyc.roadblock_events, 0,
                    "{}: Cyclone must be roadblock-free",
                    entry.label
                );
                table.row(vec![
                    entry.label,
                    format!("{:?}", entry.family),
                    base.roadblock_events.to_string(),
                    ms(base.breakdown.roadblock_wait),
                    cyc.roadblock_events.to_string(),
                    ms(cyc.breakdown.roadblock_wait),
                ]);
            }
            table
        },
    );
}
