//! Fig. 9 — logical error rate of the mesh junction network as junction crossing times
//! are reduced, against the baseline grid reference (the paper finds the crossover at
//! roughly a 70% reduction).

use bench::runner::FigureReport;
use bench::{ms, sci, sensitivity_code, Table};
use cyclone::experiments::fig9_junction_sensitivity_with;

fn main() {
    let code = sensitivity_code();
    let title = format!(
        "Fig. 9: mesh-junction-network sensitivity to junction crossing time ({})",
        code.descriptor()
    );
    bench::runner::figure("fig09_junction_sensitivity", &title, |ctx| {
        let reductions = [0.0, 0.3, 0.5, 0.7, 0.9];
        let rows = fig9_junction_sensitivity_with(&code, 5e-4, &reductions, &ctx.sweep);
        let mut table = Table::new(&[
            "junction time reduction",
            "mesh exec (ms)",
            "mesh LER",
            "baseline LER",
        ]);
        for r in &rows {
            table.row(vec![
                format!("{:.0}%", r.reduction * 100.0),
                ms(r.mesh_execution_time),
                sci(r.mesh_ler.ler),
                sci(r.baseline_ler.ler),
            ]);
        }
        let note = match rows.iter().find(|r| r.mesh_ler.ler <= r.baseline_ler.ler) {
            Some(cross) => format!(
                "mesh network first beats the baseline at a {:.0}% junction-time reduction",
                cross.reduction * 100.0
            ),
            None => "mesh network never beats the baseline in this sweep".to_string(),
        };
        FigureReport::with_notes(table, vec![note])
    });
}
