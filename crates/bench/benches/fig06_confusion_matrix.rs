//! Fig. 6 — the software (static vs dynamic) × hardware (grid vs circle) confusion
//! matrix, reported as execution times of one syndrome-extraction round.

use bench::runner::FigureReport;
use bench::{ms, sensitivity_code, Table};
use cyclone::experiments::fig6_confusion_matrix;
use qccd::timing::OperationTimes;

fn main() {
    let code = sensitivity_code();
    let title = format!(
        "Fig. 6: software x hardware confusion matrix for {} (execution time)",
        code.descriptor()
    );
    bench::runner::figure("fig06_confusion_matrix", &title, |_ctx| {
        let m = fig6_confusion_matrix(&code, &OperationTimes::default());
        let mut table = Table::new(&["software \\ hardware", "grid (ms)", "circle (ms)"]);
        table.row(vec![
            "static (EJF DAG)".into(),
            ms(m.grid_static),
            ms(m.circle_static),
        ]);
        table.row(vec![
            "dynamic (timeslices)".into(),
            ms(m.grid_dynamic),
            ms(m.circle_dynamic),
        ]);
        FigureReport::with_notes(
            table,
            vec![format!(
                "coordinated circle (Cyclone) is {:.1}x faster than the baseline grid+static cell",
                m.grid_static / m.circle_dynamic
            )],
        )
    });
}
