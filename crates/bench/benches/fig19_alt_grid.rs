//! Fig. 19 — raw execution times of the alternate grid, the baseline grid, and
//! Cyclone across the code catalog.

use bench::{ms, Table};
use cyclone::experiments::fig19_execution_times;
use qccd::timing::OperationTimes;

fn main() {
    bench::runner::figure(
        "fig19_alt_grid",
        "Fig. 19: execution time — alternate grid vs baseline vs Cyclone",
        |_ctx| {
            let codes: Vec<_> = bench::catalog().into_iter().map(|e| e.code).collect();
            let rows = fig19_execution_times(&codes, &OperationTimes::default());
            let mut table = Table::new(&[
                "code",
                "alternate grid (ms)",
                "baseline (ms)",
                "cyclone (ms)",
                "cyclone speedup",
            ]);
            for r in rows {
                table.row(vec![
                    r.code,
                    ms(r.alternate_grid),
                    ms(r.baseline),
                    ms(r.cyclone),
                    format!("{:.1}x", r.baseline / r.cyclone),
                ]);
            }
            table
        },
    );
}
