//! The shared figure runner every bench binary fronts.
//!
//! A figure binary is three lines: pick codes, call its `cyclone::experiments`
//! declaration, format rows into a [`Table`](crate::Table). Everything else —
//! command-line parsing, Monte-Carlo configuration, sweep-cache control, and
//! table/CSV/JSON emission — lives here, so the 17 binaries share one frontend
//! instead of 17 copies of the loop.
//!
//! # Command line
//!
//! Flags can be passed after `--` with `cargo bench -p bench --bench figNN -- ...`:
//!
//! * `--shots N` — Monte-Carlo shots per LER point (`CYCLONE_SHOTS`); the fixed
//!   budget, and the adaptive mode's reference for the default shot cap.
//! * `--threads N` — point-level sweep pool size, 0 = auto (`CYCLONE_THREADS`).
//! * `--full` — run the full code catalog (`CYCLONE_FULL=1`). Full runs sample
//!   **adaptively** by default (see below).
//! * `--quick` — shorthand for `--shots 50`.
//! * `--csv` — CSV output instead of an aligned table (`CYCLONE_CSV=1`).
//! * `--no-cache` — bypass the sweep cache (`CYCLONE_NO_CACHE=1`).
//! * `--cache-dir DIR` — cache directory (`CYCLONE_SWEEP_DIR`, default `sweeps/`
//!   at the repository root).
//! * `--decode-cache-dir DIR` — persist per-context decode caches (syndrome →
//!   correction tables) under DIR across runs (`CYCLONE_DECODE_CACHE_DIR`;
//!   unset = in-memory only). Estimates are bit-identical either way — entries
//!   are pure decoder outputs — so this is purely a warm-start lever.
//!
//! Adaptive (precision-targeted) sampling:
//!
//! * `--target-rse X` — stop each LER point at relative standard error ≤ X
//!   (`CYCLONE_TARGET_RSE`). Setting it enables adaptive mode anywhere; `0`
//!   disables it explicitly. Default when adaptive: 0.1.
//! * `--min-failures N` — require ≥ N failures before stopping
//!   (`CYCLONE_MIN_FAILURES`, default 100).
//! * `--max-shots N` — per-point shot cap (`CYCLONE_MAX_SHOTS`; default
//!   `20 × shots`, so low-LER points may sample *deeper* than the fixed budget).
//! * `--fixed` — force the fixed `--shots` budget even with `--full`
//!   (`CYCLONE_FIXED=1`); the resulting tables are bit-identical to the
//!   pre-adaptive engine.
//!
//! Channel-structured noise:
//!
//! * `--noise uniform|biased:<ratio>|schedule` — the error channel every
//!   Monte-Carlo point samples under (`CYCLONE_NOISE`). `uniform` (the default)
//!   is the historical scalar model, bit-identical to the pre-channel engine.
//!   `biased:<ratio>` adds measurement flips at `<ratio>` times the effective
//!   data rate to every sweep point (cache entries are keyed per channel, so
//!   biased and uniform runs never poison each other). `schedule` requests
//!   per-qubit channels derived from each codesign's compiled idle exposure —
//!   figures that compile profiled rounds (`fig_hetero`) resolve it per point;
//!   figures that only know latencies fall back to uniform and say so.
//!
//! Unknown flags (e.g. the `--bench` cargo appends) are ignored. Flags override the
//! corresponding environment variables for the run.

use crate::Table;
use cyclone::sweep::SweepOptions;
use decoder::memory::{MemoryConfig, PrecisionTarget};
use noise::ChannelSpec;
use serde_json::Value;
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Default relative-standard-error target of adaptive runs (`rse ≈ 1/√failures`,
/// so this pairs naturally with [`DEFAULT_MIN_FAILURES`]).
pub const DEFAULT_TARGET_RSE: f64 = 0.1;

/// Default failure floor of adaptive runs (the classic stop-at-100-failures rule).
pub const DEFAULT_MIN_FAILURES: usize = 100;

/// Default per-point shot cap of adaptive runs, as a multiple of the fixed budget:
/// high-LER points stop orders of magnitude earlier, low-LER points may go this
/// much deeper to reach the target precision.
pub const MAX_SHOTS_FACTOR: usize = 20;

/// The resolved `--noise` / `CYCLONE_NOISE` channel mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NoiseFlag {
    /// The historical scalar model (the default).
    Uniform,
    /// Measurement flips at this ratio of the effective data rate on every point.
    Biased(f64),
    /// Schedule-derived per-qubit channels, resolved by figures that compile
    /// profiled rounds; others fall back to uniform.
    Schedule,
}

impl NoiseFlag {
    /// Parses `uniform`, `biased:<ratio>` (finite, non-negative ratio), or
    /// `schedule`; anything else is malformed (`None`), falling back per the
    /// workspace convention.
    pub fn parse(raw: &str) -> Option<Self> {
        let raw = raw.trim();
        match raw {
            "uniform" => Some(NoiseFlag::Uniform),
            "schedule" => Some(NoiseFlag::Schedule),
            _ => raw.strip_prefix("biased:").and_then(|ratio| {
                ratio
                    .trim()
                    .parse::<f64>()
                    .ok()
                    .filter(|r| r.is_finite() && *r >= 0.0)
                    .map(NoiseFlag::Biased)
            }),
        }
    }
}

/// Everything a figure closure needs: the Monte-Carlo configuration and the sweep
/// options (pool size + cache location) resolved from flags and environment.
#[derive(Debug, Clone)]
pub struct RunContext {
    /// Monte-Carlo configuration for LER points.
    pub config: MemoryConfig,
    /// Sweep execution options (pass to the `*_with` experiment runners; carries
    /// the resolved precision target in `sweep.precision` when adaptive mode is
    /// active, `None` = fixed shot budget, and the default channel spec in
    /// `sweep.channel` when `--noise biased:<ratio>` is active).
    pub sweep: SweepOptions,
    /// CSV output requested (`--csv` / `CYCLONE_CSV`).
    pub csv: bool,
    /// Full code catalog requested (`--full` / `CYCLONE_FULL`).
    pub full: bool,
    /// The requested channel mode (`--noise` / `CYCLONE_NOISE`). `Biased` is
    /// already threaded into [`RunContext::sweep`]; `Schedule` is advisory — a
    /// figure that compiles profiled rounds resolves it per point.
    pub noise: NoiseFlag,
}

impl RunContext {
    /// Resolves the context from the process arguments and environment.
    pub fn from_env() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Self::from_args(&args)
    }

    /// Resolves the context from explicit arguments (tests use this directly).
    pub fn from_args(args: &[String]) -> Self {
        let env = |name: &str| std::env::var(name).ok();
        let mut shots = crate::shots();
        let mut threads = crate::threads();
        let mut no_cache = crate::flag_from(env("CYCLONE_NO_CACHE").as_deref());
        let mut cache_dir = env("CYCLONE_SWEEP_DIR")
            .filter(|s| !s.trim().is_empty())
            .map(PathBuf::from)
            .unwrap_or_else(default_sweep_dir);
        let mut decode_cache_dir = env("CYCLONE_DECODE_CACHE_DIR")
            .filter(|s| !s.trim().is_empty())
            .map(PathBuf::from);
        let mut csv = crate::csv_output();
        let mut full = crate::full_run();
        // `Some(0.0)` is an explicit disable; `None` defers to the `--full`
        // default. A malformed or non-finite value is treated as unset (the
        // workspace's malformed-fallback convention), never as a disable — and a
        // malformed *flag* value keeps whatever the environment resolved to.
        let parse_rse = |s: &str| s.trim().parse::<f64>().ok().filter(|v| v.is_finite());
        let parse_cap = |s: &str| s.trim().parse::<usize>().ok().filter(|&n| n > 0);
        let mut target_rse: Option<f64> = env("CYCLONE_TARGET_RSE").as_deref().and_then(parse_rse);
        let mut min_failures =
            crate::env_parse(env("CYCLONE_MIN_FAILURES").as_deref(), DEFAULT_MIN_FAILURES);
        let mut max_shots: Option<usize> = env("CYCLONE_MAX_SHOTS").as_deref().and_then(parse_cap);
        let mut fixed = crate::flag_from(env("CYCLONE_FIXED").as_deref());
        let mut noise = env("CYCLONE_NOISE")
            .as_deref()
            .and_then(NoiseFlag::parse)
            .unwrap_or(NoiseFlag::Uniform);

        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--shots" => {
                    if let Some(value) = args.get(i + 1) {
                        shots = crate::shots_from(Some(value));
                        i += 1;
                    }
                }
                "--threads" => {
                    if let Some(value) = args.get(i + 1) {
                        threads = crate::threads_from(Some(value));
                        i += 1;
                    }
                }
                "--quick" => shots = 50,
                "--full" => full = true,
                "--csv" => csv = true,
                "--no-cache" => no_cache = true,
                "--cache-dir" => {
                    if let Some(value) = args.get(i + 1) {
                        cache_dir = PathBuf::from(value);
                        i += 1;
                    }
                }
                "--decode-cache-dir" => {
                    if let Some(value) = args.get(i + 1) {
                        decode_cache_dir = Some(PathBuf::from(value));
                        i += 1;
                    }
                }
                "--target-rse" => {
                    if let Some(value) = args.get(i + 1) {
                        target_rse = parse_rse(value).or(target_rse);
                        i += 1;
                    }
                }
                "--min-failures" => {
                    if let Some(value) = args.get(i + 1) {
                        min_failures = crate::env_parse(Some(value), min_failures);
                        i += 1;
                    }
                }
                "--max-shots" => {
                    if let Some(value) = args.get(i + 1) {
                        max_shots = parse_cap(value).or(max_shots);
                        i += 1;
                    }
                }
                "--fixed" => fixed = true,
                "--noise" => {
                    if let Some(value) = args.get(i + 1) {
                        // A malformed value keeps whatever the environment
                        // resolved to (the workspace's malformed-flag rule).
                        noise = NoiseFlag::parse(value).unwrap_or(noise);
                        i += 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }

        let config = MemoryConfig {
            shots,
            bp_iterations: 30,
            threads,
            seed: 0xC1C1_0DE5,
        };
        // Adaptive mode: explicitly requested via a positive --target-rse, or the
        // --full default. --fixed (or --target-rse 0) pins the fixed-shot path,
        // which is bit-identical to the pre-adaptive engine.
        let precision = match (fixed, target_rse, full) {
            (true, _, _) => None,
            (false, Some(rse), _) if rse <= 0.0 => None,
            (false, Some(rse), _) => Some(rse),
            (false, None, true) => Some(DEFAULT_TARGET_RSE),
            (false, None, false) => None,
        }
        .map(|rse| PrecisionTarget {
            target_rse: rse,
            min_failures,
            max_shots: max_shots.unwrap_or_else(|| shots.saturating_mul(MAX_SHOTS_FACTOR)),
        });
        let mut sweep = if no_cache {
            SweepOptions::ephemeral(config)
        } else {
            SweepOptions::cached(config, cache_dir)
        };
        if let Some(target) = precision {
            sweep = sweep.with_precision(target);
        }
        if let NoiseFlag::Biased(ratio) = noise {
            sweep = sweep.with_channel(ChannelSpec::Biased { meas_ratio: ratio });
        }
        if let Some(dir) = decode_cache_dir {
            sweep = sweep.with_decode_cache_dir(dir);
        }
        RunContext {
            config,
            sweep,
            csv,
            full,
            noise,
        }
    }

    /// The cache directory, when caching is enabled.
    pub fn cache_dir(&self) -> Option<&std::path::Path> {
        self.sweep.cache_dir.as_deref()
    }

    /// Re-exports the resolved values into the environment so the env-reading
    /// helpers (code catalog selection, CSV rendering) agree with the flags.
    ///
    /// Only [`figure`] calls this, from a bench binary's single-threaded `main` —
    /// it must NOT be called from library code or tests, where mutating the
    /// process environment races with the parallel test harness.
    fn export_env(&self) {
        std::env::set_var("CYCLONE_SHOTS", self.config.shots.to_string());
        std::env::set_var("CYCLONE_THREADS", self.config.threads.to_string());
        std::env::set_var("CYCLONE_CSV", if self.csv { "1" } else { "0" });
        std::env::set_var("CYCLONE_FULL", if self.full { "1" } else { "0" });
    }
}

/// The default cache directory: `sweeps/` at the repository root.
pub fn default_sweep_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../sweeps"))
}

/// A figure's printable result: the table plus optional trailing note lines
/// (crossover points, best configurations, headline ratios).
#[derive(Debug, Clone)]
pub struct FigureReport {
    /// The figure's table.
    pub table: Table,
    /// Free-form lines printed after the table, each preceded by a blank line.
    pub notes: Vec<String>,
}

impl FigureReport {
    /// A report with trailing notes.
    pub fn with_notes(table: Table, notes: Vec<String>) -> Self {
        FigureReport { table, notes }
    }
}

impl From<Table> for FigureReport {
    fn from(table: Table) -> Self {
        FigureReport {
            table,
            notes: Vec::new(),
        }
    }
}

/// Runs one figure: resolves the context, builds the report, prints it, and (when
/// caching is enabled) records the rendered rows as `sweeps/<name>.table.json` so
/// every figure leaves a machine-readable artifact next to the sweep cache.
pub fn figure<R: Into<FigureReport>>(
    name: &str,
    title: &str,
    build: impl FnOnce(&RunContext) -> R,
) {
    let context = RunContext::from_env();
    context.export_env();
    let report: FigureReport = build(&context).into();
    report.table.print(title);
    if let Some(target) = &context.sweep.precision {
        println!(
            "(adaptive sampling: target rse {}, >={} failures, <={} shots/point)",
            target.target_rse, target.min_failures, target.max_shots
        );
    }
    match context.noise {
        NoiseFlag::Uniform => {}
        NoiseFlag::Biased(ratio) => {
            println!("(noise channel: measurement flips at {ratio}x the data rate on every point)");
        }
        NoiseFlag::Schedule => println!(
            "(noise channel: schedule-derived; honored by figures that compile profiled \
             rounds, e.g. fig_hetero — latency-only figures sample uniformly)"
        ),
    }
    for note in &report.notes {
        println!("\n{note}");
    }
    if let Some(dir) = context.cache_dir() {
        if let Err(err) = write_table_json(dir, name, title, &report.table) {
            eprintln!("warning: could not write {name}.table.json: {err}");
        }
    }
}

/// Serializes a rendered table as `<dir>/<name>.table.json`.
fn write_table_json(
    dir: &std::path::Path,
    name: &str,
    title: &str,
    table: &Table,
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut root = BTreeMap::new();
    root.insert("figure".to_string(), Value::from(name));
    root.insert("title".to_string(), Value::from(title));
    root.insert(
        "headers".to_string(),
        Value::Array(
            table
                .headers()
                .iter()
                .map(|h| Value::from(h.as_str()))
                .collect(),
        ),
    );
    root.insert(
        "rows".to_string(),
        Value::Array(
            table
                .rows()
                .iter()
                .map(|row| Value::Array(row.iter().map(|c| Value::from(c.as_str())).collect()))
                .collect(),
        ),
    );
    let mut text = serde_json::to_string(&Value::Object(root));
    text.push('\n');
    std::fs::write(dir.join(format!("{name}.table.json")), text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_override_defaults() {
        let ctx = RunContext::from_args(&args(&[
            "--shots",
            "77",
            "--threads",
            "3",
            "--no-cache",
            "--ignored-flag",
        ]));
        assert_eq!(ctx.config.shots, 77);
        assert_eq!(ctx.config.threads, 3);
        assert!(ctx.cache_dir().is_none());
        assert_eq!(ctx.config.seed, 0xC1C1_0DE5);
    }

    #[test]
    fn quick_flag_sets_ci_shot_count() {
        let ctx = RunContext::from_args(&args(&["--quick"]));
        assert_eq!(ctx.config.shots, 50);
    }

    #[test]
    fn cache_dir_flag_redirects_the_cache() {
        let ctx = RunContext::from_args(&args(&["--cache-dir", "/tmp/sweep-test"]));
        assert_eq!(
            ctx.cache_dir(),
            Some(std::path::Path::new("/tmp/sweep-test"))
        );
    }

    #[test]
    fn decode_cache_dir_flag_threads_into_sweep_options() {
        // Default: no persistent decode cache (in-memory only).
        let ctx = RunContext::from_args(&args(&["--shots", "100"]));
        assert!(ctx.sweep.decode_cache_dir.is_none());

        let ctx = RunContext::from_args(&args(&["--decode-cache-dir", "/tmp/decode-test"]));
        assert_eq!(
            ctx.sweep.decode_cache_dir.as_deref(),
            Some(std::path::Path::new("/tmp/decode-test"))
        );

        // Orthogonal to the sweep cache: --no-cache disables result caching but
        // leaves the decode cache alone.
        let ctx = RunContext::from_args(&args(&[
            "--no-cache",
            "--decode-cache-dir",
            "/tmp/decode-test",
        ]));
        assert!(ctx.cache_dir().is_none());
        assert!(ctx.sweep.decode_cache_dir.is_some());
    }

    #[test]
    fn malformed_flag_values_fall_back() {
        let ctx = RunContext::from_args(&args(&["--shots", "abc"]));
        assert_eq!(ctx.config.shots, crate::DEFAULT_SHOTS);
        let ctx = RunContext::from_args(&args(&["--threads", "x"]));
        assert_eq!(ctx.config.threads, crate::AUTO_THREADS);
    }

    #[test]
    fn default_runs_stay_on_the_fixed_path() {
        // No adaptive flags, no --full → precision target absent, so sweeps are
        // bit-identical to the pre-adaptive engine.
        let ctx = RunContext::from_args(&args(&["--shots", "200"]));
        assert!(ctx.sweep.precision.is_none());
    }

    #[test]
    fn malformed_target_rse_defers_to_the_mode_default() {
        // A typo'd value is "unset", never an accidental disable: with --full the
        // adaptive default still applies, without it the run stays fixed.
        let ctx = RunContext::from_args(&args(&["--full", "--target-rse", "O.1"]));
        let target = ctx
            .sweep
            .precision
            .expect("malformed value must not disable --full adaptive");
        assert_eq!(target.target_rse, DEFAULT_TARGET_RSE);
        let ctx = RunContext::from_args(&args(&["--target-rse", "abc"]));
        assert!(ctx.sweep.precision.is_none());
        // Non-finite values are malformed too: NaN must not slip past the
        // disable guard into a stop rule that can never fire.
        let ctx = RunContext::from_args(&args(&["--full", "--target-rse", "nan"]));
        assert_eq!(
            ctx.sweep.precision.map(|t| t.target_rse),
            Some(DEFAULT_TARGET_RSE)
        );
        let ctx = RunContext::from_args(&args(&["--target-rse", "inf"]));
        assert!(ctx.sweep.precision.is_none());
    }

    #[test]
    fn malformed_adaptive_flag_values_keep_earlier_settings() {
        // A malformed --min-failures/--max-shots value falls back to whatever was
        // already resolved (the documented env→flag override never *discards* a
        // valid env setting on a typo'd flag).
        let ctx = RunContext::from_args(&args(&[
            "--shots",
            "400",
            "--target-rse",
            "0.2",
            "--min-failures",
            "4OO",
            "--max-shots",
            "x",
        ]));
        let target = ctx.sweep.precision.expect("adaptive");
        assert_eq!(target.min_failures, DEFAULT_MIN_FAILURES);
        assert_eq!(target.max_shots, 400 * MAX_SHOTS_FACTOR);
    }

    #[test]
    fn full_runs_sample_adaptively_by_default() {
        let ctx = RunContext::from_args(&args(&["--shots", "1000", "--full"]));
        let target = ctx
            .sweep
            .precision
            .expect("--full enables adaptive sampling");
        assert_eq!(target.target_rse, DEFAULT_TARGET_RSE);
        assert_eq!(target.min_failures, DEFAULT_MIN_FAILURES);
        assert_eq!(target.max_shots, 1000 * MAX_SHOTS_FACTOR);
        assert_eq!(ctx.sweep.precision, Some(target));
    }

    #[test]
    fn fixed_flag_pins_the_fixed_path_even_in_full_mode() {
        let ctx = RunContext::from_args(&args(&["--full", "--fixed"]));
        assert!(ctx.full);
        assert!(
            ctx.sweep.precision.is_none(),
            "--fixed must win over the --full default"
        );
        // --target-rse 0 is the explicit-disable spelling of the same thing.
        let ctx = RunContext::from_args(&args(&["--full", "--target-rse", "0"]));
        assert!(ctx.sweep.precision.is_none());
    }

    #[test]
    fn noise_flag_parses_all_three_modes() {
        assert_eq!(NoiseFlag::parse("uniform"), Some(NoiseFlag::Uniform));
        assert_eq!(NoiseFlag::parse(" schedule "), Some(NoiseFlag::Schedule));
        assert_eq!(NoiseFlag::parse("biased:2.5"), Some(NoiseFlag::Biased(2.5)));
        assert_eq!(NoiseFlag::parse("biased: 0 "), Some(NoiseFlag::Biased(0.0)));
        assert_eq!(NoiseFlag::parse("biased:-1"), None);
        assert_eq!(NoiseFlag::parse("biased:nan"), None);
        assert_eq!(NoiseFlag::parse("biased:"), None);
        assert_eq!(NoiseFlag::parse("gaussian"), None);
    }

    #[test]
    fn noise_flag_threads_the_channel_into_sweep_options() {
        // Default: uniform, no channel on the sweep — bit-identical engine.
        let ctx = RunContext::from_args(&args(&["--shots", "100"]));
        assert_eq!(ctx.noise, NoiseFlag::Uniform);
        assert!(ctx.sweep.channel.is_none());

        // biased:<ratio> becomes the engine-wide default channel.
        let ctx = RunContext::from_args(&args(&["--noise", "biased:3"]));
        assert_eq!(ctx.noise, NoiseFlag::Biased(3.0));
        assert_eq!(
            ctx.sweep.channel,
            Some(ChannelSpec::Biased { meas_ratio: 3.0 })
        );

        // schedule is advisory: the sweep default stays uniform, figures that can
        // resolve per-codesign channels read ctx.noise.
        let ctx = RunContext::from_args(&args(&["--noise", "schedule"]));
        assert_eq!(ctx.noise, NoiseFlag::Schedule);
        assert!(ctx.sweep.channel.is_none());

        // Malformed values keep the earlier resolution.
        let ctx = RunContext::from_args(&args(&["--noise", "biased:3", "--noise", "bogus"]));
        assert_eq!(ctx.noise, NoiseFlag::Biased(3.0));
    }

    #[test]
    fn adaptive_flags_resolve_a_precision_target() {
        let ctx = RunContext::from_args(&args(&[
            "--shots",
            "400",
            "--target-rse",
            "0.25",
            "--min-failures",
            "30",
            "--max-shots",
            "9000",
        ]));
        let target = ctx
            .sweep
            .precision
            .expect("--target-rse enables adaptive sampling");
        assert_eq!(target.target_rse, 0.25);
        assert_eq!(target.min_failures, 30);
        assert_eq!(target.max_shots, 9000);
    }
}
