//! The shared figure runner every bench binary fronts.
//!
//! A figure binary is three lines: pick codes, call its `cyclone::experiments`
//! declaration, format rows into a [`Table`](crate::Table). Everything else —
//! command-line parsing, Monte-Carlo configuration, sweep-cache control, and
//! table/CSV/JSON emission — lives here, so the 17 binaries share one frontend
//! instead of 17 copies of the loop.
//!
//! # Command line
//!
//! Flags can be passed after `--` with `cargo bench -p bench --bench figNN -- ...`:
//!
//! * `--shots N` — Monte-Carlo shots per LER point (`CYCLONE_SHOTS`).
//! * `--threads N` — point-level sweep pool size, 0 = auto (`CYCLONE_THREADS`).
//! * `--full` — run the full code catalog (`CYCLONE_FULL=1`).
//! * `--quick` — shorthand for `--shots 50`.
//! * `--csv` — CSV output instead of an aligned table (`CYCLONE_CSV=1`).
//! * `--no-cache` — bypass the sweep cache (`CYCLONE_NO_CACHE=1`).
//! * `--cache-dir DIR` — cache directory (`CYCLONE_SWEEP_DIR`, default `sweeps/`
//!   at the repository root).
//!
//! Unknown flags (e.g. the `--bench` cargo appends) are ignored. Flags override the
//! corresponding environment variables for the run.

use crate::Table;
use cyclone::sweep::SweepOptions;
use decoder::memory::MemoryConfig;
use serde_json::Value;
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Everything a figure closure needs: the Monte-Carlo configuration and the sweep
/// options (pool size + cache location) resolved from flags and environment.
#[derive(Debug, Clone)]
pub struct RunContext {
    /// Monte-Carlo configuration for LER points.
    pub config: MemoryConfig,
    /// Sweep execution options (pass to the `*_with` experiment runners).
    pub sweep: SweepOptions,
    /// CSV output requested (`--csv` / `CYCLONE_CSV`).
    pub csv: bool,
    /// Full code catalog requested (`--full` / `CYCLONE_FULL`).
    pub full: bool,
}

impl RunContext {
    /// Resolves the context from the process arguments and environment.
    pub fn from_env() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Self::from_args(&args)
    }

    /// Resolves the context from explicit arguments (tests use this directly).
    pub fn from_args(args: &[String]) -> Self {
        let mut shots = crate::shots();
        let mut threads = crate::threads();
        let mut no_cache = crate::flag_from(std::env::var("CYCLONE_NO_CACHE").ok().as_deref());
        let mut cache_dir = std::env::var("CYCLONE_SWEEP_DIR")
            .ok()
            .filter(|s| !s.trim().is_empty())
            .map(PathBuf::from)
            .unwrap_or_else(default_sweep_dir);
        let mut csv = crate::csv_output();
        let mut full = crate::full_run();

        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--shots" => {
                    if let Some(value) = args.get(i + 1) {
                        shots = crate::shots_from(Some(value));
                        i += 1;
                    }
                }
                "--threads" => {
                    if let Some(value) = args.get(i + 1) {
                        threads = crate::threads_from(Some(value));
                        i += 1;
                    }
                }
                "--quick" => shots = 50,
                "--full" => full = true,
                "--csv" => csv = true,
                "--no-cache" => no_cache = true,
                "--cache-dir" => {
                    if let Some(value) = args.get(i + 1) {
                        cache_dir = PathBuf::from(value);
                        i += 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }

        let config = MemoryConfig {
            shots,
            bp_iterations: 30,
            threads,
            seed: 0xC1C1_0DE5,
        };
        let sweep = if no_cache {
            SweepOptions::ephemeral(config)
        } else {
            SweepOptions::cached(config, cache_dir)
        };
        RunContext { config, sweep, csv, full }
    }

    /// The cache directory, when caching is enabled.
    pub fn cache_dir(&self) -> Option<&std::path::Path> {
        self.sweep.cache_dir.as_deref()
    }

    /// Re-exports the resolved values into the environment so the env-reading
    /// helpers (code catalog selection, CSV rendering) agree with the flags.
    ///
    /// Only [`figure`] calls this, from a bench binary's single-threaded `main` —
    /// it must NOT be called from library code or tests, where mutating the
    /// process environment races with the parallel test harness.
    fn export_env(&self) {
        std::env::set_var("CYCLONE_SHOTS", self.config.shots.to_string());
        std::env::set_var("CYCLONE_THREADS", self.config.threads.to_string());
        std::env::set_var("CYCLONE_CSV", if self.csv { "1" } else { "0" });
        std::env::set_var("CYCLONE_FULL", if self.full { "1" } else { "0" });
    }
}

/// The default cache directory: `sweeps/` at the repository root.
pub fn default_sweep_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../sweeps"))
}

/// A figure's printable result: the table plus optional trailing note lines
/// (crossover points, best configurations, headline ratios).
#[derive(Debug, Clone)]
pub struct FigureReport {
    /// The figure's table.
    pub table: Table,
    /// Free-form lines printed after the table, each preceded by a blank line.
    pub notes: Vec<String>,
}

impl FigureReport {
    /// A report with trailing notes.
    pub fn with_notes(table: Table, notes: Vec<String>) -> Self {
        FigureReport { table, notes }
    }
}

impl From<Table> for FigureReport {
    fn from(table: Table) -> Self {
        FigureReport {
            table,
            notes: Vec::new(),
        }
    }
}

/// Runs one figure: resolves the context, builds the report, prints it, and (when
/// caching is enabled) records the rendered rows as `sweeps/<name>.table.json` so
/// every figure leaves a machine-readable artifact next to the sweep cache.
pub fn figure<R: Into<FigureReport>>(
    name: &str,
    title: &str,
    build: impl FnOnce(&RunContext) -> R,
) {
    let context = RunContext::from_env();
    context.export_env();
    let report: FigureReport = build(&context).into();
    report.table.print(title);
    for note in &report.notes {
        println!("\n{note}");
    }
    if let Some(dir) = context.cache_dir() {
        if let Err(err) = write_table_json(dir, name, title, &report.table) {
            eprintln!("warning: could not write {name}.table.json: {err}");
        }
    }
}

/// Serializes a rendered table as `<dir>/<name>.table.json`.
fn write_table_json(
    dir: &std::path::Path,
    name: &str,
    title: &str,
    table: &Table,
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut root = BTreeMap::new();
    root.insert("figure".to_string(), Value::from(name));
    root.insert("title".to_string(), Value::from(title));
    root.insert(
        "headers".to_string(),
        Value::Array(table.headers().iter().map(|h| Value::from(h.as_str())).collect()),
    );
    root.insert(
        "rows".to_string(),
        Value::Array(
            table
                .rows()
                .iter()
                .map(|row| Value::Array(row.iter().map(|c| Value::from(c.as_str())).collect()))
                .collect(),
        ),
    );
    let mut text = serde_json::to_string(&Value::Object(root));
    text.push('\n');
    std::fs::write(dir.join(format!("{name}.table.json")), text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_override_defaults() {
        let ctx = RunContext::from_args(&args(&[
            "--shots", "77", "--threads", "3", "--no-cache", "--ignored-flag",
        ]));
        assert_eq!(ctx.config.shots, 77);
        assert_eq!(ctx.config.threads, 3);
        assert!(ctx.cache_dir().is_none());
        assert_eq!(ctx.config.seed, 0xC1C1_0DE5);
    }

    #[test]
    fn quick_flag_sets_ci_shot_count() {
        let ctx = RunContext::from_args(&args(&["--quick"]));
        assert_eq!(ctx.config.shots, 50);
    }

    #[test]
    fn cache_dir_flag_redirects_the_cache() {
        let ctx = RunContext::from_args(&args(&["--cache-dir", "/tmp/sweep-test"]));
        assert_eq!(ctx.cache_dir(), Some(std::path::Path::new("/tmp/sweep-test")));
    }

    #[test]
    fn malformed_flag_values_fall_back() {
        let ctx = RunContext::from_args(&args(&["--shots", "abc"]));
        assert_eq!(ctx.config.shots, crate::DEFAULT_SHOTS);
        let ctx = RunContext::from_args(&args(&["--threads", "x"]));
        assert_eq!(ctx.config.threads, crate::AUTO_THREADS);
    }
}
