//! The shared figure runner every bench binary fronts.
//!
//! A figure binary is three lines: pick codes, call its `cyclone::experiments`
//! declaration, format rows into a [`Table`](crate::Table). Everything else —
//! command-line parsing, Monte-Carlo configuration, sweep-cache control, and
//! table/CSV/JSON emission — lives here, so the 17 binaries share one frontend
//! instead of 17 copies of the loop.
//!
//! # Command line
//!
//! Flags can be passed after `--` with `cargo bench -p bench --bench figNN -- ...`:
//!
//! * `--shots N` — Monte-Carlo shots per LER point (`CYCLONE_SHOTS`); the fixed
//!   budget, and the adaptive mode's reference for the default shot cap.
//! * `--threads N` — point-level sweep pool size, 0 = auto (`CYCLONE_THREADS`).
//! * `--full` — run the full code catalog (`CYCLONE_FULL=1`). Full runs sample
//!   **adaptively** by default (see below).
//! * `--quick` — shorthand for `--shots 50`.
//! * `--csv` — CSV output instead of an aligned table (`CYCLONE_CSV=1`).
//! * `--no-cache` — bypass the sweep cache (`CYCLONE_NO_CACHE=1`).
//! * `--cache-dir DIR` — cache directory (`CYCLONE_SWEEP_DIR`, default `sweeps/`
//!   at the repository root).
//! * `--decode-cache-dir DIR` — persist per-context decode caches (syndrome →
//!   correction tables) under DIR across runs (`CYCLONE_DECODE_CACHE_DIR`;
//!   unset = in-memory only). Estimates are bit-identical either way — entries
//!   are pure decoder outputs — so this is purely a warm-start lever.
//!
//! Distributed (multi-process) sweeps:
//!
//! * `--shards N` — coordinator mode (`CYCLONE_SHARDS`): before the figure
//!   builds, self-exec N worker processes, each computing the deterministic
//!   subset of points its shard owns into a shard-local cache
//!   (`<cache>/shards/<i>-of-<N>/`), then merge the shard caches into the main
//!   cache. The figure's own sweep then runs serially over all-cache-hits, so
//!   output is bit-identical to an unsharded run. Requires caching (`--no-cache`
//!   disables the fleet).
//! * `--shard i/N` — worker mode (`CYCLONE_SHARD`): compute only the points
//!   shard `i` of `N` owns, into the shard-local cache, checkpointing after
//!   every computed point so a killed worker loses at most the in-flight point.
//!   The main cache is consulted read-only for pre-existing hits.
//! * `--checkpoint-every K` — override the checkpoint cadence
//!   (`CYCLONE_CHECKPOINT_EVERY`; worker default 1, `0` = single final write).
//!
//! Adaptive (precision-targeted) sampling:
//!
//! * `--target-rse X` — stop each LER point at relative standard error ≤ X
//!   (`CYCLONE_TARGET_RSE`). Setting it enables adaptive mode anywhere; `0`
//!   disables it explicitly. Default when adaptive: 0.1.
//! * `--min-failures N` — require ≥ N failures before stopping
//!   (`CYCLONE_MIN_FAILURES`, default 100).
//! * `--max-shots N` — per-point shot cap (`CYCLONE_MAX_SHOTS`; default
//!   `20 × shots`, so low-LER points may sample *deeper* than the fixed budget).
//! * `--fixed` — force the fixed `--shots` budget even with `--full`
//!   (`CYCLONE_FIXED=1`); the resulting tables are bit-identical to the
//!   pre-adaptive engine.
//!
//! Channel-structured noise:
//!
//! * `--noise uniform|biased:<ratio>|schedule` — the error channel every
//!   Monte-Carlo point samples under (`CYCLONE_NOISE`). `uniform` (the default)
//!   is the historical scalar model, bit-identical to the pre-channel engine.
//!   `biased:<ratio>` adds measurement flips at `<ratio>` times the effective
//!   data rate to every sweep point (cache entries are keyed per channel, so
//!   biased and uniform runs never poison each other). `schedule` requests
//!   per-qubit channels derived from each codesign's compiled idle exposure —
//!   figures that compile profiled rounds (`fig_hetero`) resolve it per point;
//!   figures that only know latencies fall back to uniform and say so.
//!
//! Unknown flags (e.g. the `--bench` cargo appends) are ignored. Flags override the
//! corresponding environment variables for the run.

use crate::Table;
use cyclone::sweep::{Shard, SweepOptions};
use cyclone::sweep_cache::{merge_files, MergeReport};
use decoder::memory::{MemoryConfig, PrecisionTarget};
use noise::ChannelSpec;
use serde_json::Value;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Default relative-standard-error target of adaptive runs (`rse ≈ 1/√failures`,
/// so this pairs naturally with [`DEFAULT_MIN_FAILURES`]).
pub const DEFAULT_TARGET_RSE: f64 = 0.1;

/// Default failure floor of adaptive runs (the classic stop-at-100-failures rule).
pub const DEFAULT_MIN_FAILURES: usize = 100;

/// Default per-point shot cap of adaptive runs, as a multiple of the fixed budget:
/// high-LER points stop orders of magnitude earlier, low-LER points may go this
/// much deeper to reach the target precision.
pub const MAX_SHOTS_FACTOR: usize = 20;

/// The resolved `--noise` / `CYCLONE_NOISE` channel mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NoiseFlag {
    /// The historical scalar model (the default).
    Uniform,
    /// Measurement flips at this ratio of the effective data rate on every point.
    Biased(f64),
    /// Schedule-derived per-qubit channels, resolved by figures that compile
    /// profiled rounds; others fall back to uniform.
    Schedule,
}

impl NoiseFlag {
    /// Parses `uniform`, `biased:<ratio>` (finite, non-negative ratio), or
    /// `schedule`; anything else is malformed (`None`), falling back per the
    /// workspace convention.
    pub fn parse(raw: &str) -> Option<Self> {
        let raw = raw.trim();
        match raw {
            "uniform" => Some(NoiseFlag::Uniform),
            "schedule" => Some(NoiseFlag::Schedule),
            _ => raw.strip_prefix("biased:").and_then(|ratio| {
                ratio
                    .trim()
                    .parse::<f64>()
                    .ok()
                    .filter(|r| r.is_finite() && *r >= 0.0)
                    .map(NoiseFlag::Biased)
            }),
        }
    }
}

/// Everything a figure closure needs: the Monte-Carlo configuration and the sweep
/// options (pool size + cache location) resolved from flags and environment.
#[derive(Debug, Clone)]
pub struct RunContext {
    /// Monte-Carlo configuration for LER points.
    pub config: MemoryConfig,
    /// Sweep execution options (pass to the `*_with` experiment runners; carries
    /// the resolved precision target in `sweep.precision` when adaptive mode is
    /// active, `None` = fixed shot budget, and the default channel spec in
    /// `sweep.channel` when `--noise biased:<ratio>` is active).
    pub sweep: SweepOptions,
    /// CSV output requested (`--csv` / `CYCLONE_CSV`).
    pub csv: bool,
    /// Full code catalog requested (`--full` / `CYCLONE_FULL`).
    pub full: bool,
    /// The requested channel mode (`--noise` / `CYCLONE_NOISE`). `Biased` is
    /// already threaded into [`RunContext::sweep`]; `Schedule` is advisory — a
    /// figure that compiles profiled rounds resolves it per point.
    pub noise: NoiseFlag,
    /// Requested worker-process count (`--shards` / `CYCLONE_SHARDS`, default 1).
    /// `>= 2` without a shard assignment makes this process a fleet coordinator
    /// (see [`RunContext::run_worker_fleet`]).
    pub shards: usize,
    /// This process's shard assignment (`--shard i/N` / `CYCLONE_SHARD`).
    /// `Some` makes this a worker: [`RunContext::sweep`] is already pointed at
    /// the shard-local cache with the main cache as read-only fallback.
    pub shard: Option<Shard>,
}

impl RunContext {
    /// Resolves the context from the process arguments and environment.
    pub fn from_env() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Self::from_args(&args)
    }

    /// Resolves the context from explicit arguments (tests use this directly).
    pub fn from_args(args: &[String]) -> Self {
        let env = |name: &str| std::env::var(name).ok();
        let mut shots = crate::shots();
        let mut threads = crate::threads();
        let mut no_cache = crate::flag_from(env("CYCLONE_NO_CACHE").as_deref());
        let mut cache_dir = env("CYCLONE_SWEEP_DIR")
            .filter(|s| !s.trim().is_empty())
            .map(PathBuf::from)
            .unwrap_or_else(default_sweep_dir);
        let mut decode_cache_dir = env("CYCLONE_DECODE_CACHE_DIR")
            .filter(|s| !s.trim().is_empty())
            .map(PathBuf::from);
        let mut csv = crate::csv_output();
        let mut full = crate::full_run();
        // `Some(0.0)` is an explicit disable; `None` defers to the `--full`
        // default. A malformed or non-finite value is treated as unset (the
        // workspace's malformed-fallback convention), never as a disable — and a
        // malformed *flag* value keeps whatever the environment resolved to.
        let parse_rse = |s: &str| s.trim().parse::<f64>().ok().filter(|v| v.is_finite());
        let parse_cap = |s: &str| s.trim().parse::<usize>().ok().filter(|&n| n > 0);
        let mut target_rse: Option<f64> = env("CYCLONE_TARGET_RSE").as_deref().and_then(parse_rse);
        let mut min_failures =
            crate::env_parse(env("CYCLONE_MIN_FAILURES").as_deref(), DEFAULT_MIN_FAILURES);
        let mut max_shots: Option<usize> = env("CYCLONE_MAX_SHOTS").as_deref().and_then(parse_cap);
        let mut fixed = crate::flag_from(env("CYCLONE_FIXED").as_deref());
        let mut noise = env("CYCLONE_NOISE")
            .as_deref()
            .and_then(NoiseFlag::parse)
            .unwrap_or(NoiseFlag::Uniform);
        let mut shards = env("CYCLONE_SHARDS")
            .as_deref()
            .and_then(parse_cap)
            .unwrap_or(1);
        let mut shard = env("CYCLONE_SHARD").as_deref().and_then(Shard::parse);
        // `Some(0)` is an explicit single-final-write request; `None` defers to
        // the mode default (workers checkpoint after every point).
        let parse_every = |s: &str| s.trim().parse::<usize>().ok();
        let mut checkpoint: Option<usize> = env("CYCLONE_CHECKPOINT_EVERY")
            .as_deref()
            .and_then(parse_every);

        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--shots" => {
                    if let Some(value) = args.get(i + 1) {
                        shots = crate::shots_from(Some(value));
                        i += 1;
                    }
                }
                "--threads" => {
                    if let Some(value) = args.get(i + 1) {
                        threads = crate::threads_from(Some(value));
                        i += 1;
                    }
                }
                "--quick" => shots = 50,
                "--full" => full = true,
                "--csv" => csv = true,
                "--no-cache" => no_cache = true,
                "--cache-dir" => {
                    if let Some(value) = args.get(i + 1) {
                        cache_dir = PathBuf::from(value);
                        i += 1;
                    }
                }
                "--decode-cache-dir" => {
                    if let Some(value) = args.get(i + 1) {
                        decode_cache_dir = Some(PathBuf::from(value));
                        i += 1;
                    }
                }
                "--target-rse" => {
                    if let Some(value) = args.get(i + 1) {
                        target_rse = parse_rse(value).or(target_rse);
                        i += 1;
                    }
                }
                "--min-failures" => {
                    if let Some(value) = args.get(i + 1) {
                        min_failures = crate::env_parse(Some(value), min_failures);
                        i += 1;
                    }
                }
                "--max-shots" => {
                    if let Some(value) = args.get(i + 1) {
                        max_shots = parse_cap(value).or(max_shots);
                        i += 1;
                    }
                }
                "--fixed" => fixed = true,
                "--shards" => {
                    if let Some(value) = args.get(i + 1) {
                        shards = parse_cap(value).unwrap_or(shards);
                        i += 1;
                    }
                }
                "--shard" => {
                    if let Some(value) = args.get(i + 1) {
                        shard = Shard::parse(value).or(shard);
                        i += 1;
                    }
                }
                "--checkpoint-every" => {
                    if let Some(value) = args.get(i + 1) {
                        checkpoint = parse_every(value).or(checkpoint);
                        i += 1;
                    }
                }
                "--noise" => {
                    if let Some(value) = args.get(i + 1) {
                        // A malformed value keeps whatever the environment
                        // resolved to (the workspace's malformed-flag rule).
                        noise = NoiseFlag::parse(value).unwrap_or(noise);
                        i += 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }

        let config = MemoryConfig {
            shots,
            bp_iterations: 30,
            threads,
            seed: 0xC1C1_0DE5,
        };
        // Adaptive mode: explicitly requested via a positive --target-rse, or the
        // --full default. --fixed (or --target-rse 0) pins the fixed-shot path,
        // which is bit-identical to the pre-adaptive engine.
        let precision = match (fixed, target_rse, full) {
            (true, _, _) => None,
            (false, Some(rse), _) if rse <= 0.0 => None,
            (false, Some(rse), _) => Some(rse),
            (false, None, true) => Some(DEFAULT_TARGET_RSE),
            (false, None, false) => None,
        }
        .map(|rse| PrecisionTarget {
            target_rse: rse,
            min_failures,
            max_shots: max_shots.unwrap_or_else(|| shots.saturating_mul(MAX_SHOTS_FACTOR)),
        });
        let mut sweep = if no_cache {
            SweepOptions::ephemeral(config)
        } else {
            // Workers write a shard-local cache (the main cache stays a
            // read-only fallback), so N processes never race on one file.
            let dir = match shard {
                Some(shard) => shard_cache_dir(&cache_dir, shard),
                None => cache_dir.clone(),
            };
            SweepOptions::cached(config, dir)
        };
        if let Some(target) = precision {
            sweep = sweep.with_precision(target);
        }
        if let NoiseFlag::Biased(ratio) = noise {
            sweep = sweep.with_channel(ChannelSpec::Biased { meas_ratio: ratio });
        }
        if let Some(dir) = decode_cache_dir {
            // One decode-cache directory for the whole fleet: its atomic-rename
            // save path is multi-process safe, and sharing lets workers warm
            // each other's structured-channel caches.
            sweep = sweep.with_decode_cache_dir(dir);
        }
        if let Some(shard) = shard {
            sweep = sweep.with_shard(shard);
            if !no_cache {
                sweep = sweep.with_fallback_cache_dir(cache_dir);
            }
        }
        sweep = sweep.with_checkpoint(checkpoint.unwrap_or(usize::from(shard.is_some())));
        RunContext {
            config,
            sweep,
            csv,
            full,
            noise,
            shards,
            shard,
        }
    }

    /// The cache directory, when caching is enabled. For a worker this is the
    /// shard-local directory; [`RunContext::main_cache_dir`] is the merged view.
    pub fn cache_dir(&self) -> Option<&std::path::Path> {
        self.sweep.cache_dir.as_deref()
    }

    /// The fleet-wide cache directory: the fallback for a worker (its
    /// `cache_dir` is shard-local), the cache dir itself otherwise.
    pub fn main_cache_dir(&self) -> Option<&std::path::Path> {
        self.sweep
            .fallback_cache_dir
            .as_deref()
            .or_else(|| self.cache_dir())
    }

    /// Coordinator step: when `--shards N` (N ≥ 2) was requested, caching is on,
    /// and this process has no shard assignment of its own, self-exec one worker
    /// per shard (same binary, same flags, plus `--shard i/N`), wait for all of
    /// them, and merge their shard-local caches into the main cache directory.
    /// Everything else — including workers, `--no-cache` runs, and plain serial
    /// runs — is a no-op.
    ///
    /// A failed or killed worker is reported but does not abort the run: its
    /// checkpointed points still merge, and the caller's own serial sweep
    /// recomputes whatever is missing. Output therefore stays bit-identical to
    /// an unsharded run no matter how the fleet died.
    ///
    /// # Errors
    ///
    /// Returns an error only when the fleet cannot be launched at all (the
    /// executable path is unknown or the first spawn fails).
    pub fn run_worker_fleet(&self) -> std::io::Result<Vec<(String, MergeReport)>> {
        if self.shards < 2 || self.shard.is_some() {
            return Ok(Vec::new());
        }
        let Some(main_dir) = self.cache_dir().map(Path::to_path_buf) else {
            eprintln!("warning: --shards needs the sweep cache; running serially (--no-cache)");
            return Ok(Vec::new());
        };
        let exe = std::env::current_exe()?;
        let forwarded = forwardable_args(std::env::args().skip(1));
        let mut children = Vec::new();
        for index in 0..self.shards {
            let shard = Shard::new(index, self.shards);
            let spawned = std::process::Command::new(&exe)
                .args(&forwarded)
                .arg("--shard")
                .arg(shard.to_string())
                .env_remove("CYCLONE_SHARDS")
                .env_remove("CYCLONE_SHARD")
                .stdout(std::process::Stdio::piped())
                .stderr(std::process::Stdio::piped())
                .spawn();
            match spawned {
                Ok(child) => children.push((shard, child)),
                Err(err) if children.is_empty() => return Err(err),
                Err(err) => eprintln!("warning: could not spawn shard {shard} worker: {err}"),
            }
        }
        for (shard, child) in children {
            match child.wait_with_output() {
                Ok(output) if output.status.success() => {}
                Ok(output) => {
                    eprintln!(
                        "warning: shard {shard} worker exited with {}",
                        output.status
                    );
                    eprint!("{}", String::from_utf8_lossy(&output.stderr));
                }
                Err(err) => eprintln!("warning: could not wait for shard {shard} worker: {err}"),
            }
        }
        merge_shard_caches(&main_dir)
    }

    /// Re-exports the resolved values into the environment so the env-reading
    /// helpers (code catalog selection, CSV rendering) agree with the flags.
    ///
    /// Only [`figure`] calls this, from a bench binary's single-threaded `main` —
    /// it must NOT be called from library code or tests, where mutating the
    /// process environment races with the parallel test harness.
    fn export_env(&self) {
        std::env::set_var("CYCLONE_SHOTS", self.config.shots.to_string());
        std::env::set_var("CYCLONE_THREADS", self.config.threads.to_string());
        std::env::set_var("CYCLONE_CSV", if self.csv { "1" } else { "0" });
        std::env::set_var("CYCLONE_FULL", if self.full { "1" } else { "0" });
    }
}

/// The default cache directory: `sweeps/` at the repository root.
pub fn default_sweep_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../sweeps"))
}

/// The shard-local cache directory of one worker: `<root>/shards/<i>-of-<N>`.
pub fn shard_cache_dir(root: &Path, shard: Shard) -> PathBuf {
    root.join("shards")
        .join(format!("{}-of-{}", shard.index, shard.total))
}

/// The coordinator's argument list for its workers: its own arguments minus any
/// `--shards`/`--shard` (the coordinator appends the worker's own `--shard`).
fn forwardable_args(args: impl Iterator<Item = String>) -> Vec<String> {
    let mut forwarded = Vec::new();
    let mut skip_value = false;
    for arg in args {
        if skip_value {
            skip_value = false;
            continue;
        }
        if arg == "--shards" || arg == "--shard" {
            skip_value = true;
            continue;
        }
        forwarded.push(arg);
    }
    forwarded
}

/// Folds every shard-local cache under `<main_dir>/shards/*/` back into the
/// main cache directory: files are grouped by name (`<figure>.json`; rendered
/// `*.table.json` artifacts and stray temp files are ignored) and merged with
/// [`merge_files`], so corrupt or incompatible shard files are skipped and
/// reported rather than aborting. Caches left by a *different* shard layout
/// merge just as well — the deterministic partition makes any union valid.
///
/// # Errors
///
/// Returns an error when the shard directories cannot be enumerated; per-file
/// merge failures are reported to stderr and skipped.
pub fn merge_shard_caches(main_dir: &Path) -> std::io::Result<Vec<(String, MergeReport)>> {
    let shard_root = main_dir.join("shards");
    let mut by_name: BTreeMap<String, Vec<PathBuf>> = BTreeMap::new();
    let Ok(shard_dirs) = std::fs::read_dir(&shard_root) else {
        return Ok(Vec::new()); // no shards directory: nothing to merge
    };
    for shard_dir in shard_dirs.flatten() {
        let dir = shard_dir.path();
        if !dir.is_dir() {
            continue;
        }
        for file in std::fs::read_dir(&dir)?.flatten() {
            let path = file.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if name.ends_with(".json") && !name.ends_with(".table.json") && !name.starts_with('.') {
                by_name.entry(name.to_string()).or_default().push(path);
            }
        }
    }
    let mut reports = Vec::new();
    for (name, sources) in by_name {
        match merge_files(&main_dir.join(&name), &sources) {
            Ok(report) => {
                for (path, reason) in &report.sources_skipped {
                    eprintln!("warning: merge skipped {}: {reason}", path.display());
                }
                reports.push((name, report));
            }
            Err(err) => eprintln!("warning: could not merge shard caches for {name}: {err}"),
        }
    }
    Ok(reports)
}

/// A figure's printable result: the table plus optional trailing note lines
/// (crossover points, best configurations, headline ratios).
#[derive(Debug, Clone)]
pub struct FigureReport {
    /// The figure's table.
    pub table: Table,
    /// Free-form lines printed after the table, each preceded by a blank line.
    pub notes: Vec<String>,
}

impl FigureReport {
    /// A report with trailing notes.
    pub fn with_notes(table: Table, notes: Vec<String>) -> Self {
        FigureReport { table, notes }
    }
}

impl From<Table> for FigureReport {
    fn from(table: Table) -> Self {
        FigureReport {
            table,
            notes: Vec::new(),
        }
    }
}

/// Runs one figure: resolves the context, builds the report, prints it, and (when
/// caching is enabled) records the rendered rows as `sweeps/<name>.table.json` so
/// every figure leaves a machine-readable artifact next to the sweep cache.
pub fn figure<R: Into<FigureReport>>(
    name: &str,
    title: &str,
    build: impl FnOnce(&RunContext) -> R,
) {
    let context = RunContext::from_env();
    context.export_env();
    // Coordinator mode: fan the figure's points out across worker processes
    // first, so the build below runs all-cache-hits over the merged result —
    // bit-identical to a serial run, just computed by N cores.
    match context.run_worker_fleet() {
        Ok(merged) => {
            for (file, report) in &merged {
                println!(
                    "(sharded: merged {} across {} shard cache(s) into {file})",
                    report.entries_total, report.sources_merged
                );
            }
        }
        Err(err) => eprintln!("warning: worker fleet failed ({err}); computing serially"),
    }
    let report: FigureReport = build(&context).into();
    report.table.print(title);
    if let Some(shard) = context.shard {
        println!("(worker shard {shard}: skipped points belong to other shards)");
    }
    if let Some(target) = &context.sweep.precision {
        println!(
            "(adaptive sampling: target rse {}, >={} failures, <={} shots/point)",
            target.target_rse, target.min_failures, target.max_shots
        );
    }
    match context.noise {
        NoiseFlag::Uniform => {}
        NoiseFlag::Biased(ratio) => {
            println!("(noise channel: measurement flips at {ratio}x the data rate on every point)");
        }
        NoiseFlag::Schedule => println!(
            "(noise channel: schedule-derived; honored by figures that compile profiled \
             rounds, e.g. fig_hetero — latency-only figures sample uniformly)"
        ),
    }
    for note in &report.notes {
        println!("\n{note}");
    }
    if let Some(dir) = context.cache_dir() {
        if let Err(err) = write_table_json(dir, name, title, &report.table) {
            eprintln!("warning: could not write {name}.table.json: {err}");
        }
    }
}

/// Serializes a rendered table as `<dir>/<name>.table.json`.
fn write_table_json(
    dir: &std::path::Path,
    name: &str,
    title: &str,
    table: &Table,
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut root = BTreeMap::new();
    root.insert("figure".to_string(), Value::from(name));
    root.insert("title".to_string(), Value::from(title));
    root.insert(
        "headers".to_string(),
        Value::Array(
            table
                .headers()
                .iter()
                .map(|h| Value::from(h.as_str()))
                .collect(),
        ),
    );
    root.insert(
        "rows".to_string(),
        Value::Array(
            table
                .rows()
                .iter()
                .map(|row| Value::Array(row.iter().map(|c| Value::from(c.as_str())).collect()))
                .collect(),
        ),
    );
    let mut text = serde_json::to_string(&Value::Object(root));
    text.push('\n');
    std::fs::write(dir.join(format!("{name}.table.json")), text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_override_defaults() {
        let ctx = RunContext::from_args(&args(&[
            "--shots",
            "77",
            "--threads",
            "3",
            "--no-cache",
            "--ignored-flag",
        ]));
        assert_eq!(ctx.config.shots, 77);
        assert_eq!(ctx.config.threads, 3);
        assert!(ctx.cache_dir().is_none());
        assert_eq!(ctx.config.seed, 0xC1C1_0DE5);
    }

    #[test]
    fn quick_flag_sets_ci_shot_count() {
        let ctx = RunContext::from_args(&args(&["--quick"]));
        assert_eq!(ctx.config.shots, 50);
    }

    #[test]
    fn cache_dir_flag_redirects_the_cache() {
        let ctx = RunContext::from_args(&args(&["--cache-dir", "/tmp/sweep-test"]));
        assert_eq!(
            ctx.cache_dir(),
            Some(std::path::Path::new("/tmp/sweep-test"))
        );
    }

    #[test]
    fn decode_cache_dir_flag_threads_into_sweep_options() {
        // Default: no persistent decode cache (in-memory only).
        let ctx = RunContext::from_args(&args(&["--shots", "100"]));
        assert!(ctx.sweep.decode_cache_dir.is_none());

        let ctx = RunContext::from_args(&args(&["--decode-cache-dir", "/tmp/decode-test"]));
        assert_eq!(
            ctx.sweep.decode_cache_dir.as_deref(),
            Some(std::path::Path::new("/tmp/decode-test"))
        );

        // Orthogonal to the sweep cache: --no-cache disables result caching but
        // leaves the decode cache alone.
        let ctx = RunContext::from_args(&args(&[
            "--no-cache",
            "--decode-cache-dir",
            "/tmp/decode-test",
        ]));
        assert!(ctx.cache_dir().is_none());
        assert!(ctx.sweep.decode_cache_dir.is_some());
    }

    #[test]
    fn malformed_flag_values_fall_back() {
        let ctx = RunContext::from_args(&args(&["--shots", "abc"]));
        assert_eq!(ctx.config.shots, crate::DEFAULT_SHOTS);
        let ctx = RunContext::from_args(&args(&["--threads", "x"]));
        assert_eq!(ctx.config.threads, crate::AUTO_THREADS);
    }

    #[test]
    fn default_runs_stay_on_the_fixed_path() {
        // No adaptive flags, no --full → precision target absent, so sweeps are
        // bit-identical to the pre-adaptive engine.
        let ctx = RunContext::from_args(&args(&["--shots", "200"]));
        assert!(ctx.sweep.precision.is_none());
    }

    #[test]
    fn malformed_target_rse_defers_to_the_mode_default() {
        // A typo'd value is "unset", never an accidental disable: with --full the
        // adaptive default still applies, without it the run stays fixed.
        let ctx = RunContext::from_args(&args(&["--full", "--target-rse", "O.1"]));
        let target = ctx
            .sweep
            .precision
            .expect("malformed value must not disable --full adaptive");
        assert_eq!(target.target_rse, DEFAULT_TARGET_RSE);
        let ctx = RunContext::from_args(&args(&["--target-rse", "abc"]));
        assert!(ctx.sweep.precision.is_none());
        // Non-finite values are malformed too: NaN must not slip past the
        // disable guard into a stop rule that can never fire.
        let ctx = RunContext::from_args(&args(&["--full", "--target-rse", "nan"]));
        assert_eq!(
            ctx.sweep.precision.map(|t| t.target_rse),
            Some(DEFAULT_TARGET_RSE)
        );
        let ctx = RunContext::from_args(&args(&["--target-rse", "inf"]));
        assert!(ctx.sweep.precision.is_none());
    }

    #[test]
    fn malformed_adaptive_flag_values_keep_earlier_settings() {
        // A malformed --min-failures/--max-shots value falls back to whatever was
        // already resolved (the documented env→flag override never *discards* a
        // valid env setting on a typo'd flag).
        let ctx = RunContext::from_args(&args(&[
            "--shots",
            "400",
            "--target-rse",
            "0.2",
            "--min-failures",
            "4OO",
            "--max-shots",
            "x",
        ]));
        let target = ctx.sweep.precision.expect("adaptive");
        assert_eq!(target.min_failures, DEFAULT_MIN_FAILURES);
        assert_eq!(target.max_shots, 400 * MAX_SHOTS_FACTOR);
    }

    #[test]
    fn full_runs_sample_adaptively_by_default() {
        let ctx = RunContext::from_args(&args(&["--shots", "1000", "--full"]));
        let target = ctx
            .sweep
            .precision
            .expect("--full enables adaptive sampling");
        assert_eq!(target.target_rse, DEFAULT_TARGET_RSE);
        assert_eq!(target.min_failures, DEFAULT_MIN_FAILURES);
        assert_eq!(target.max_shots, 1000 * MAX_SHOTS_FACTOR);
        assert_eq!(ctx.sweep.precision, Some(target));
    }

    #[test]
    fn fixed_flag_pins_the_fixed_path_even_in_full_mode() {
        let ctx = RunContext::from_args(&args(&["--full", "--fixed"]));
        assert!(ctx.full);
        assert!(
            ctx.sweep.precision.is_none(),
            "--fixed must win over the --full default"
        );
        // --target-rse 0 is the explicit-disable spelling of the same thing.
        let ctx = RunContext::from_args(&args(&["--full", "--target-rse", "0"]));
        assert!(ctx.sweep.precision.is_none());
    }

    #[test]
    fn noise_flag_parses_all_three_modes() {
        assert_eq!(NoiseFlag::parse("uniform"), Some(NoiseFlag::Uniform));
        assert_eq!(NoiseFlag::parse(" schedule "), Some(NoiseFlag::Schedule));
        assert_eq!(NoiseFlag::parse("biased:2.5"), Some(NoiseFlag::Biased(2.5)));
        assert_eq!(NoiseFlag::parse("biased: 0 "), Some(NoiseFlag::Biased(0.0)));
        assert_eq!(NoiseFlag::parse("biased:-1"), None);
        assert_eq!(NoiseFlag::parse("biased:nan"), None);
        assert_eq!(NoiseFlag::parse("biased:"), None);
        assert_eq!(NoiseFlag::parse("gaussian"), None);
    }

    #[test]
    fn noise_flag_threads_the_channel_into_sweep_options() {
        // Default: uniform, no channel on the sweep — bit-identical engine.
        let ctx = RunContext::from_args(&args(&["--shots", "100"]));
        assert_eq!(ctx.noise, NoiseFlag::Uniform);
        assert!(ctx.sweep.channel.is_none());

        // biased:<ratio> becomes the engine-wide default channel.
        let ctx = RunContext::from_args(&args(&["--noise", "biased:3"]));
        assert_eq!(ctx.noise, NoiseFlag::Biased(3.0));
        assert_eq!(
            ctx.sweep.channel,
            Some(ChannelSpec::Biased { meas_ratio: 3.0 })
        );

        // schedule is advisory: the sweep default stays uniform, figures that can
        // resolve per-codesign channels read ctx.noise.
        let ctx = RunContext::from_args(&args(&["--noise", "schedule"]));
        assert_eq!(ctx.noise, NoiseFlag::Schedule);
        assert!(ctx.sweep.channel.is_none());

        // Malformed values keep the earlier resolution.
        let ctx = RunContext::from_args(&args(&["--noise", "biased:3", "--noise", "bogus"]));
        assert_eq!(ctx.noise, NoiseFlag::Biased(3.0));
    }

    #[test]
    fn shard_flags_resolve_worker_and_coordinator_modes() {
        // Default: one shard, no assignment, single final cache write.
        let ctx = RunContext::from_args(&args(&["--shots", "100"]));
        assert_eq!(ctx.shards, 1);
        assert!(ctx.shard.is_none());
        assert!(ctx.sweep.shard.is_none());
        assert_eq!(ctx.sweep.checkpoint, 0);

        // Coordinator: --shards alone never shards the local sweep (the fleet
        // does the sharded work; this process runs the all-hits serial pass).
        let ctx = RunContext::from_args(&args(&["--shards", "4"]));
        assert_eq!(ctx.shards, 4);
        assert!(ctx.shard.is_none());
        assert!(ctx.sweep.shard.is_none());

        // Worker: shard-local cache under the main dir, main dir as read-only
        // fallback, checkpoint after every point.
        let ctx = RunContext::from_args(&args(&[
            "--cache-dir",
            "/tmp/sweep-shard-test",
            "--shard",
            "2/4",
        ]));
        assert_eq!(ctx.shard, Some(Shard::new(2, 4)));
        assert_eq!(ctx.sweep.shard, Some(Shard::new(2, 4)));
        assert_eq!(
            ctx.cache_dir(),
            Some(Path::new("/tmp/sweep-shard-test/shards/2-of-4"))
        );
        assert_eq!(
            ctx.sweep.fallback_cache_dir.as_deref(),
            Some(Path::new("/tmp/sweep-shard-test"))
        );
        assert_eq!(
            ctx.main_cache_dir(),
            Some(Path::new("/tmp/sweep-shard-test"))
        );
        assert_eq!(ctx.sweep.checkpoint, 1);

        // Explicit cadence override, and the 0 = single-final-write spelling.
        let ctx = RunContext::from_args(&args(&["--shard", "0/2", "--checkpoint-every", "5"]));
        assert_eq!(ctx.sweep.checkpoint, 5);
        let ctx = RunContext::from_args(&args(&["--shard", "0/2", "--checkpoint-every", "0"]));
        assert_eq!(ctx.sweep.checkpoint, 0);

        // Malformed values keep earlier resolutions (the workspace convention).
        let ctx = RunContext::from_args(&args(&["--shard", "4/4"]));
        assert!(ctx.shard.is_none(), "out-of-range shard is malformed");
        let ctx = RunContext::from_args(&args(&["--shards", "0"]));
        assert_eq!(ctx.shards, 1);

        // --no-cache disables the sharded cache plumbing but keeps the shard
        // restriction itself.
        let ctx = RunContext::from_args(&args(&["--no-cache", "--shard", "1/3"]));
        assert!(ctx.cache_dir().is_none());
        assert!(ctx.sweep.fallback_cache_dir.is_none());
        assert_eq!(ctx.sweep.shard, Some(Shard::new(1, 3)));
    }

    #[test]
    fn forwardable_args_strip_fleet_topology() {
        let forwarded = forwardable_args(
            args(&[
                "--shots", "50", "--shards", "4", "--noise", "biased:2", "--shard", "1/4",
            ])
            .into_iter(),
        );
        assert_eq!(forwarded, args(&["--shots", "50", "--noise", "biased:2"]));
    }

    #[test]
    fn adaptive_flags_resolve_a_precision_target() {
        let ctx = RunContext::from_args(&args(&[
            "--shots",
            "400",
            "--target-rse",
            "0.25",
            "--min-failures",
            "30",
            "--max-shots",
            "9000",
        ]));
        let target = ctx
            .sweep
            .precision
            .expect("--target-rse enables adaptive sampling");
        assert_eq!(target.target_rse, 0.25);
        assert_eq!(target.min_failures, 30);
        assert_eq!(target.max_shots, 9000);
    }
}
