//! Shared infrastructure for the benchmark harness that regenerates every table and
//! figure of the paper.
//!
//! Each figure has its own `harness = false` bench target under `benches/`; all of
//! them are thin frontends over [`runner`], which handles argument parsing,
//! Monte-Carlo configuration, sweep-cache control, and aligned-table / CSV / JSON
//! output. The helpers here cover code selection and environment parsing.
//!
//! Environment variables (each has a `--flag` equivalent, see [`runner`]):
//!
//! * `CYCLONE_SHOTS` — Monte-Carlo shots per LER point (default 400; the paper samples
//!   until `> 10 / LER` shots, which is far more than a CI run should attempt).
//! * `CYCLONE_THREADS` — worker-thread count for the point-level sweep pool (default
//!   0 = available parallelism). Results are bit-identical at every setting; pin it
//!   in CI or on shared machines to bound CPU use.
//! * `CYCLONE_FULL` — set to `1` to run the full code catalog (including
//!   `[[625,25,8]]` and `[[144,12,12]]`) instead of the quick subset.
//! * `CYCLONE_CSV` — set to `1` to print comma-separated values instead of aligned
//!   text.
//! * `CYCLONE_NO_CACHE` — set to `1` to bypass the `sweeps/<figure>.json` cache.
//! * `CYCLONE_SWEEP_DIR` — cache directory (default `sweeps/` at the repo root).
//! * `CYCLONE_TARGET_RSE` — relative-standard-error target: enables adaptive
//!   (stop-at-precision) sampling; `0` explicitly disables it. `CYCLONE_FULL=1`
//!   runs default to adaptive at 0.1.
//! * `CYCLONE_MIN_FAILURES` — failure floor of the adaptive stop rule (default 100).
//! * `CYCLONE_MAX_SHOTS` — per-point shot cap of adaptive runs (default
//!   20 × `CYCLONE_SHOTS`).
//! * `CYCLONE_FIXED` — set to `1` to force the fixed `CYCLONE_SHOTS` budget even
//!   in `--full` runs (bit-identical to the pre-adaptive engine).
//! * `CYCLONE_NOISE` — error-channel mode: `uniform` (default, the historical
//!   scalar model), `biased:<ratio>` (measurement flips at `<ratio>` times the
//!   data rate on every sweep point), or `schedule` (per-qubit channels from
//!   compiled idle exposure, resolved by figures that compile profiled rounds).
//! * `CYCLONE_SHARDS` — worker-process count for distributed sweeps (default 1 =
//!   in-process only). At `N >= 2` the figure binary becomes a coordinator: it
//!   spawns `N` copies of itself, one per shard, merges their shard-local caches,
//!   and assembles the final output from cache hits — bit-identical to a serial
//!   run at any `N`.
//! * `CYCLONE_SHARD` — `i/N` worker identity (normally set by the coordinator,
//!   not by hand): compute only the points hashing to shard `i` and write them to
//!   a shard-local cache under `<cache-dir>/shards/<i>-of-<N>/`.
//! * `CYCLONE_CHECKPOINT_EVERY` — rewrite the cache after every `K` computed
//!   points (default: 1 for workers, one final write otherwise; `0` explicitly
//!   requests the single final write). A killed worker resumes from its last
//!   checkpoint and loses only in-flight points.

pub mod runner;

use decoder::memory::MemoryConfig;
use qec::codes::{self, CatalogEntry};
use qec::CssCode;
use std::str::FromStr;

/// Default Monte-Carlo shots per logical-error-rate point when `CYCLONE_SHOTS` is
/// unset or malformed.
pub const DEFAULT_SHOTS: usize = 400;

/// Parses an environment value: unset, empty, or malformed input falls back to
/// `default`. All `CYCLONE_*` knobs go through this single parser, so they share the
/// whitespace-trimming and malformed-value semantics.
pub fn env_parse<T: FromStr>(raw: Option<&str>, default: T) -> T {
    raw.and_then(|s| s.trim().parse::<T>().ok())
        .unwrap_or(default)
}

/// Parses a `CYCLONE_SHOTS` value: unset, empty, non-numeric, or zero falls back to
/// [`DEFAULT_SHOTS`] (zero shots would panic the LER estimator).
pub fn shots_from(raw: Option<&str>) -> usize {
    match env_parse(raw, DEFAULT_SHOTS) {
        0 => DEFAULT_SHOTS,
        n => n,
    }
}

/// Worker-thread count meaning "use available parallelism" (the
/// [`decoder::memory::MemoryConfig::threads`] convention).
pub const AUTO_THREADS: usize = 0;

/// Parses a `CYCLONE_THREADS` value: unset, empty, or non-numeric falls back to
/// [`AUTO_THREADS`] (auto-detect); `"0"` is a valid explicit auto-detect request.
pub fn threads_from(raw: Option<&str>) -> usize {
    env_parse(raw, AUTO_THREADS)
}

/// Parses a boolean `CYCLONE_*` flag: only the numeral `1` (modulo surrounding
/// whitespace) enables it.
pub fn flag_from(raw: Option<&str>) -> bool {
    env_parse(raw, 0u8) == 1
}

/// Number of Monte-Carlo shots per logical-error-rate point, honoring `CYCLONE_SHOTS`.
pub fn shots() -> usize {
    shots_from(std::env::var("CYCLONE_SHOTS").ok().as_deref())
}

/// Monte-Carlo worker-thread count, honoring `CYCLONE_THREADS` (0 = auto).
pub fn threads() -> usize {
    threads_from(std::env::var("CYCLONE_THREADS").ok().as_deref())
}

/// Whether to run the full (slow) code catalog, honoring `CYCLONE_FULL`.
pub fn full_run() -> bool {
    flag_from(std::env::var("CYCLONE_FULL").ok().as_deref())
}

/// Whether to emit CSV instead of an aligned table, honoring `CYCLONE_CSV`.
pub fn csv_output() -> bool {
    flag_from(std::env::var("CYCLONE_CSV").ok().as_deref())
}

/// The Monte-Carlo configuration used by every LER bench, honoring `CYCLONE_SHOTS`
/// and `CYCLONE_THREADS`. The estimate itself is thread-count invariant (per-shot
/// RNG streams), so pinning threads only bounds CPU use.
pub fn memory_config() -> MemoryConfig {
    MemoryConfig {
        shots: shots(),
        bp_iterations: 30,
        threads: threads(),
        seed: 0xC1C1_0DE5,
    }
}

/// The physical-error-rate grid used by the LER sweeps (Figs. 14 and 15).
pub fn error_rate_grid() -> Vec<f64> {
    vec![1e-4, 2e-4, 5e-4, 1e-3, 2e-3]
}

/// HGP codes used by the benches: `[[100,4,4]]` and `[[225,9,6]]` by default, the
/// full catalog (adding `[[400,16,6]]` and `[[625,25,8]]`) with `CYCLONE_FULL=1`.
///
/// # Panics
///
/// Panics if the deterministic code constructions fail (they do not).
pub fn hgp_codes() -> Vec<CssCode> {
    if full_run() {
        codes::hgp_catalog()
            .expect("catalog construction")
            .into_iter()
            .map(|e| e.code)
            .collect()
    } else {
        vec![
            codes::hgp_100().expect("construction"),
            codes::hgp_225_9_6().expect("construction"),
        ]
    }
}

/// BB codes used by the benches: `[[72,12,6]]` and `[[90,8,10]]` by default, the full
/// catalog (adding `[[108,8,10]]` and `[[144,12,12]]`) with `CYCLONE_FULL=1`.
///
/// # Panics
///
/// Panics if the deterministic code constructions fail (they do not).
pub fn bb_codes() -> Vec<CssCode> {
    if full_run() {
        codes::bb_catalog()
            .expect("catalog construction")
            .into_iter()
            .map(|e| e.code)
            .collect()
    } else {
        vec![
            codes::bb_72_12_6().expect("construction"),
            codes::bb_90_8_10().expect("construction"),
        ]
    }
}

/// The full labelled catalog (both families), honoring `CYCLONE_FULL`.
///
/// # Panics
///
/// Panics if the deterministic code constructions fail (they do not).
pub fn catalog() -> Vec<CatalogEntry> {
    if full_run() {
        codes::full_catalog().expect("catalog construction")
    } else {
        let mut entries = Vec::new();
        for code in hgp_codes() {
            entries.push(CatalogEntry {
                family: codes::CodeFamily::Hgp,
                label: code.descriptor(),
                code,
            });
        }
        for code in bb_codes() {
            entries.push(CatalogEntry {
                family: codes::CodeFamily::Bb,
                label: code.descriptor(),
                code,
            });
        }
        entries
    }
}

/// The `[[225,9,6]]` code used by most single-code sensitivity studies.
///
/// # Panics
///
/// Panics if the deterministic construction fails (it does not).
pub fn sensitivity_code() -> CssCode {
    codes::hgp_225_9_6().expect("construction")
}

/// A simple column-aligned (or CSV) table printer.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must have the same arity as the headers).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The appended rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table, honoring `CYCLONE_CSV`.
    pub fn render(&self) -> String {
        if csv_output() {
            let mut out = self.headers.join(",");
            out.push('\n');
            for row in &self.rows {
                out.push_str(&row.join(","));
                out.push('\n');
            }
            return out;
        }
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout with a title line.
    pub fn print(&self, title: &str) {
        println!("\n== {title} ==");
        print!("{}", self.render());
    }
}

/// Formats a duration in seconds as milliseconds with two decimals.
pub fn ms(seconds: f64) -> String {
    format!("{:.2}", seconds * 1e3)
}

/// Formats a probability in scientific notation.
pub fn sci(p: f64) -> String {
    format!("{p:.3e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "long header"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("long header"));
        assert!(s.lines().count() >= 3);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn table_rejects_bad_row() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn defaults_are_reasonable() {
        assert!(shots() > 0);
        assert_eq!(error_rate_grid().len(), 5);
    }

    #[test]
    fn env_parse_is_generic_over_fromstr() {
        // usize / u8 / f64 all share the trim + malformed-fallback semantics.
        assert_eq!(env_parse::<usize>(Some(" 42 "), 7), 42);
        assert_eq!(env_parse::<usize>(Some("nope"), 7), 7);
        assert_eq!(env_parse::<usize>(None, 7), 7);
        assert_eq!(env_parse::<u8>(Some("1"), 0), 1);
        assert_eq!(env_parse::<f64>(Some("2.5"), 0.0), 2.5);
        assert_eq!(env_parse::<f64>(Some(""), 1.25), 1.25);
    }

    #[test]
    fn shots_parsing_defaults_and_overrides() {
        // Unset → default.
        assert_eq!(shots_from(None), DEFAULT_SHOTS);
        // Well-formed override.
        assert_eq!(shots_from(Some("50")), 50);
        assert_eq!(shots_from(Some(" 1250 ")), 1250);
        // Malformed values fall back to the default instead of erroring.
        assert_eq!(shots_from(Some("abc")), DEFAULT_SHOTS);
        assert_eq!(shots_from(Some("")), DEFAULT_SHOTS);
        assert_eq!(shots_from(Some("-3")), DEFAULT_SHOTS);
        assert_eq!(shots_from(Some("1e3")), DEFAULT_SHOTS);
        // Zero shots would panic the LER estimator; treat it as malformed.
        assert_eq!(shots_from(Some("0")), DEFAULT_SHOTS);
    }

    #[test]
    fn threads_parsing_defaults_and_overrides() {
        // Unset → auto-detect.
        assert_eq!(threads_from(None), AUTO_THREADS);
        // Explicit pin.
        assert_eq!(threads_from(Some("4")), 4);
        assert_eq!(threads_from(Some(" 12 ")), 12);
        // "0" is a valid explicit auto request, not a malformed value.
        assert_eq!(threads_from(Some("0")), AUTO_THREADS);
        // Malformed values fall back to auto instead of erroring.
        assert_eq!(threads_from(Some("abc")), AUTO_THREADS);
        assert_eq!(threads_from(Some("")), AUTO_THREADS);
        assert_eq!(threads_from(Some("-2")), AUTO_THREADS);
        assert_eq!(threads_from(Some("2.5")), AUTO_THREADS);
    }

    #[test]
    fn flag_parsing_accepts_only_literal_one() {
        assert!(flag_from(Some("1")));
        assert!(flag_from(Some(" 1")));
        assert!(!flag_from(None));
        assert!(!flag_from(Some("0")));
        assert!(!flag_from(Some("true")));
        assert!(!flag_from(Some("yes")));
        assert!(!flag_from(Some("")));
    }

    #[test]
    fn format_helpers() {
        assert_eq!(ms(0.001), "1.00");
        assert!(sci(1.5e-3).contains('e'));
    }
}
