//! The rule families of `cyclone-lint`, as token-stream scans over
//! [`crate::SourceFile`]s. Every per-file check returns `(Finding, suppressed)`
//! pairs so the caller can count honored suppressions instead of dropping them
//! silently — the JSON report records how much of the workspace is annotated.

use crate::scan::Token;
use crate::{FileKind, Finding, SourceFile};
use std::collections::{BTreeMap, BTreeSet};

/// Methods that observe a hash container in iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Sort calls that impose a deterministic order on an iterated result. The
/// rule trusts any of these within the statement or the three lines after the
/// iteration site; whether the comparator is a *total* order is on the author
/// (a stable sort on a partial key still leaks hash order between ties).
const SORT_METHODS: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
];

/// Order-insensitive terminal questions a hash container may answer directly.
const ORDER_FREE_METHODS: &[&str] = &["len", "is_empty", "count", "all", "any", "contains"];

/// Wall-clock / randomized-hash identifiers banned in the decode/sample
/// modules, where every result must be a pure function of the seed.
const WALL_CLOCK_IDENTS: &[&str] = &["Instant", "SystemTime", "RandomState", "thread_rng"];

/// Files where `wall-clock` applies (workspace-relative suffixes).
const WALL_CLOCK_MODULES: &[&str] = &[
    "crates/decoder/src/bp.rs",
    "crates/decoder/src/osd.rs",
    "crates/decoder/src/bposd.rs",
    "crates/decoder/src/memory.rs",
    "crates/decoder/src/cache.rs",
    "crates/cyclone/src/sweep.rs",
];

/// Allocation-constructor methods flagged inside `hot-path` regions.
const HOT_ALLOC_METHODS: &[&str] = &["to_vec", "to_string", "to_owned", "clone", "collect"];

/// `Type::ctor` pairs flagged inside `hot-path` regions.
const HOT_ALLOC_TYPES: &[&str] = &[
    "Vec", "String", "Box", "HashMap", "HashSet", "BTreeMap", "BTreeSet", "VecDeque",
];
const HOT_ALLOC_CTORS: &[&str] = &["new", "from", "with_capacity"];

/// Macros flagged inside `hot-path` regions.
const HOT_ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Identifiers that mark a statement as file I/O for the `io-unwrap` rule.
const IO_MARKERS: &[&str] = &[
    "fs",
    "File",
    "OpenOptions",
    "read_to_string",
    "read_dir",
    "create_dir",
    "create_dir_all",
    "remove_file",
    "remove_dir",
    "remove_dir_all",
    "write_all",
    "read_exact",
    "read_line",
    "flush",
    "BufReader",
    "BufWriter",
    "current_exe",
];

/// Runs every per-file rule. Returns `(finding, suppressed)` pairs.
pub fn lint_file(file: &SourceFile) -> Vec<(Finding, bool)> {
    let mut out = Vec::new();
    unordered_iter(file, &mut out);
    wall_clock(file, &mut out);
    hot_path_alloc(file, &mut out);
    io_unwrap(file, &mut out);
    unsafe_safety(file, &mut out);
    out
}

fn push(
    out: &mut Vec<(Finding, bool)>,
    file: &SourceFile,
    rule: &'static str,
    line: usize,
    message: String,
) {
    let suppressed = file.allowed(rule, line);
    out.push((
        Finding {
            rule,
            path: file.path.clone(),
            line,
            message,
        },
        suppressed,
    ));
}

/// Indices of the tokens bounding the statement containing token `at`:
/// backwards and forwards to the nearest `;`, `{`, or `}` (exclusive).
fn statement_bounds(tokens: &[Token], at: usize) -> (usize, usize) {
    let is_boundary = |t: &Token| !t.ident && matches!(t.text.as_str(), ";" | "{" | "}");
    let mut start = at;
    while start > 0 && !is_boundary(&tokens[start - 1]) {
        start -= 1;
    }
    let mut end = at;
    while end + 1 < tokens.len() && !is_boundary(&tokens[end + 1]) {
        end += 1;
    }
    (start, end)
}

/// Collects identifiers bound to `HashMap`/`HashSet` in this file: `let`
/// bindings (typed or via `HashMap::new()`-style initializers) and
/// `name: ...HashMap<...>` type ascriptions (struct fields, fn params).
fn hash_idents(file: &SourceFile) -> BTreeSet<String> {
    let tokens = &file.tokens;
    let mut idents = BTreeSet::new();
    for (i, tok) in tokens.iter().enumerate() {
        if !tok.ident || (tok.text != "HashMap" && tok.text != "HashSet") {
            continue;
        }
        let (start, _) = statement_bounds(tokens, i);
        // Walk back from the container name looking for who it is bound to.
        let mut j = i;
        while j > start {
            j -= 1;
            let t = &tokens[j];
            if t.ident && t.text == "let" {
                // `let [mut] NAME ...`
                let mut k = j + 1;
                if k < tokens.len() && tokens[k].text == "mut" {
                    k += 1;
                }
                if k < tokens.len() && tokens[k].ident {
                    idents.insert(tokens[k].text.clone());
                }
                break;
            }
            // `NAME : ...HashMap` — a single colon (not `::`) directly after an
            // identifier is a type ascription for that identifier.
            if !t.ident && t.text == ":" {
                let double = (j > start && tokens[j - 1].text == ":")
                    || (j + 1 < tokens.len() && tokens[j + 1].text == ":");
                if !double && j > start && tokens[j - 1].ident {
                    idents.insert(tokens[j - 1].text.clone());
                    // Keep walking: a `let` earlier in the statement wins, but
                    // recording the ascribed name too is harmless.
                }
            }
        }
    }
    idents
}

/// Rule `unordered-iter`: see the crate docs. Applies to non-test lines of
/// library/binary code.
fn unordered_iter(file: &SourceFile, out: &mut Vec<(Finding, bool)>) {
    if !matches!(file.kind, FileKind::Lib | FileKind::Bin) {
        return;
    }
    let names = hash_idents(file);
    if names.is_empty() {
        return;
    }
    let tokens = &file.tokens;
    let mut sites: Vec<(usize, String, String)> = Vec::new(); // (token idx, ident, how)
    for (i, tok) in tokens.iter().enumerate() {
        if !tok.ident {
            continue;
        }
        // `name.method(` with method in ITER_METHODS.
        if ITER_METHODS.contains(&tok.text.as_str())
            && i >= 2
            && tokens[i - 1].text == "."
            && tokens[i - 2].ident
            && names.contains(&tokens[i - 2].text)
            && tokens.get(i + 1).is_some_and(|t| t.text == "(")
        {
            sites.push((i, tokens[i - 2].text.clone(), format!(".{}()", tok.text)));
        }
        // `for PAT in [&][mut] [path.]name {` — direct iteration.
        if tok.text == "in" {
            let mut j = i + 1;
            let mut last_ident: Option<usize> = None;
            while j < tokens.len() {
                let t = &tokens[j];
                if t.ident {
                    last_ident = Some(j);
                    j += 1;
                    continue;
                }
                match t.text.as_str() {
                    "&" | "." => {
                        j += 1;
                        continue;
                    }
                    "{" => break,
                    _ => {
                        last_ident = None;
                        break;
                    }
                }
            }
            if let Some(k) = last_ident {
                if names.contains(&tokens[k].text) {
                    sites.push((k, tokens[k].text.clone(), "for-loop iteration".to_string()));
                }
            }
        }
    }
    for (idx, name, how) in sites {
        let line = tokens[idx].line;
        if file.test_line(line) {
            continue;
        }
        let (start, end) = statement_bounds(tokens, idx);
        let stmt = &tokens[start..=end];
        // Collecting into an ordered container fixes the order.
        if stmt
            .iter()
            .any(|t| t.ident && (t.text == "BTreeMap" || t.text == "BTreeSet"))
        {
            continue;
        }
        // An order-insensitive terminal on the same statement is fine.
        if stmt
            .iter()
            .skip_while(|t| t.line < line)
            .any(|t| t.ident && ORDER_FREE_METHODS.contains(&t.text.as_str()))
        {
            continue;
        }
        // A sort within the statement or the next three lines imposes order.
        let sorted_nearby = tokens
            .iter()
            .skip(start)
            .take_while(|t| t.line <= line + 3)
            .any(|t| t.ident && SORT_METHODS.contains(&t.text.as_str()));
        if sorted_nearby {
            continue;
        }
        push(
            out,
            file,
            "unordered-iter",
            line,
            format!(
                "{how} over hash container `{name}` leaks randomized iteration order; \
                 sort the result, use a BTreeMap/BTreeSet, or annotate why order cannot matter"
            ),
        );
    }
}

/// Rule `wall-clock`: bans wall-clock and randomized-hash sources in the
/// decode/sample modules.
fn wall_clock(file: &SourceFile, out: &mut Vec<(Finding, bool)>) {
    if !WALL_CLOCK_MODULES
        .iter()
        .any(|m| file.path.ends_with(m) || file.path == *m)
    {
        return;
    }
    for tok in &file.tokens {
        if tok.ident && WALL_CLOCK_IDENTS.contains(&tok.text.as_str()) && !file.test_line(tok.line)
        {
            push(
                out,
                file,
                "wall-clock",
                tok.line,
                format!(
                    "`{}` in a decode/sample module breaks seed-determinism \
                     (results must be pure functions of the configured seed)",
                    tok.text
                ),
            );
        }
    }
}

/// Rule `hot-path-alloc`: flags allocation constructors inside
/// `// cyclone-lint: hot-path` regions.
fn hot_path_alloc(file: &SourceFile, out: &mut Vec<(Finding, bool)>) {
    if !file.is_hot.iter().any(|&h| h) {
        return;
    }
    let tokens = &file.tokens;
    for (i, tok) in tokens.iter().enumerate() {
        if !tok.ident || !file.is_hot.get(tok.line - 1).copied().unwrap_or(false) {
            continue;
        }
        let text = tok.text.as_str();
        // `.method(` allocation constructors.
        if HOT_ALLOC_METHODS.contains(&text)
            && i >= 1
            && tokens[i - 1].text == "."
            && tokens.get(i + 1).is_some_and(|t| t.text == "(")
        {
            push(
                out,
                file,
                "hot-path-alloc",
                tok.line,
                format!(".{text}() allocates inside a hot-path region"),
            );
            continue;
        }
        // `Type::ctor` pairs.
        if HOT_ALLOC_TYPES.contains(&text)
            && tokens.get(i + 1).is_some_and(|t| t.text == ":")
            && tokens.get(i + 2).is_some_and(|t| t.text == ":")
            && tokens
                .get(i + 3)
                .is_some_and(|t| t.ident && HOT_ALLOC_CTORS.contains(&t.text.as_str()))
        {
            push(
                out,
                file,
                "hot-path-alloc",
                tok.line,
                format!(
                    "{}::{} allocates inside a hot-path region",
                    text,
                    tokens[i + 3].text
                ),
            );
            continue;
        }
        // `vec![...]` / `format!(...)`.
        if HOT_ALLOC_MACROS.contains(&text) && tokens.get(i + 1).is_some_and(|t| t.text == "!") {
            push(
                out,
                file,
                "hot-path-alloc",
                tok.line,
                format!("{text}! allocates inside a hot-path region"),
            );
        }
    }
}

/// Rule `io-unwrap`: bare `.unwrap()` / `.expect(...)` on statements that
/// perform file I/O, outside tests and examples.
fn io_unwrap(file: &SourceFile, out: &mut Vec<(Finding, bool)>) {
    if !matches!(file.kind, FileKind::Lib | FileKind::Bin | FileKind::Bench) {
        return;
    }
    let tokens = &file.tokens;
    for (i, tok) in tokens.iter().enumerate() {
        if !tok.ident || (tok.text != "unwrap" && tok.text != "expect") {
            continue;
        }
        if i == 0 || tokens[i - 1].text != "." || !tokens.get(i + 1).is_some_and(|t| t.text == "(")
        {
            continue;
        }
        if file.test_line(tok.line) {
            continue;
        }
        let (start, end) = statement_bounds(tokens, i);
        let touches_io = tokens[start..=end]
            .iter()
            .any(|t| t.ident && IO_MARKERS.contains(&t.text.as_str()));
        if !touches_io {
            continue;
        }
        push(
            out,
            file,
            "io-unwrap",
            tok.line,
            format!(
                ".{}() on a file-I/O result panics on corrupt or missing input; \
                 propagate the error (cache files must degrade to recompute) or annotate why \
                 failing fast is the contract",
                tok.text
            ),
        );
    }
}

/// Whether a line's comment text argues safety: a `SAFETY:` tag (block-level
/// convention) or a `# Safety` doc section (the rustdoc convention for
/// `unsafe fn`).
fn comment_argues_safety(comment: &str) -> bool {
    comment.contains("SAFETY") || comment.contains("# Safety")
}

/// Whether 1-based `line` has an adjacent safety argument: a qualifying comment
/// on the line itself, or on the unbroken run of comment-only, blank, and
/// attribute lines directly above it (so `/// # Safety` doc sections and
/// `// SAFETY:` comments above `#[target_feature]` attributes both count).
fn has_adjacent_safety(file: &SourceFile, line: usize) -> bool {
    if file
        .lines
        .get(line - 1)
        .is_some_and(|l| comment_argues_safety(&l.comment))
    {
        return true;
    }
    let mut idx = line - 1; // 0-based index of the `unsafe` line itself
    while idx > 0 {
        idx -= 1;
        let l = &file.lines[idx];
        if comment_argues_safety(&l.comment) {
            return true;
        }
        let code = l.code.trim();
        if !(code.is_empty() || code.starts_with('#')) {
            return false;
        }
    }
    false
}

/// Rule `unsafe-safety`: every `unsafe` occurrence (block, fn, impl) in
/// non-test library/binary code needs an adjacent safety argument — a
/// `// SAFETY:` comment on the same line or directly above it, or a
/// `/// # Safety` doc section on the item. Benches and tests are exempt
/// (matching the other code-shape rules); the SIMD kernels are the workspace's
/// sanctioned `unsafe` surface and model the expected form.
fn unsafe_safety(file: &SourceFile, out: &mut Vec<(Finding, bool)>) {
    if !matches!(file.kind, FileKind::Lib | FileKind::Bin) {
        return;
    }
    let mut last_line = 0usize;
    for tok in &file.tokens {
        if !tok.ident || tok.text != "unsafe" || tok.line == last_line {
            continue;
        }
        if file.test_line(tok.line) {
            continue;
        }
        last_line = tok.line;
        if has_adjacent_safety(file, tok.line) {
            continue;
        }
        push(
            out,
            file,
            "unsafe-safety",
            tok.line,
            "`unsafe` without an adjacent safety argument; add a `// SAFETY:` comment \
             (or a `/// # Safety` doc section) stating the invariant that makes this sound"
                .to_string(),
        );
    }
}

/// Rule `config-registry`: every `CYCLONE_*` env var referenced by non-test
/// code must appear in the README env table, and vice versa.
///
/// Code references are collected from string literals only (env vars are
/// always read via string names; prose in comments does not count as a
/// reference). Documented vars are rows of any markdown table whose first cell
/// is a backticked `CYCLONE_*` name.
pub fn config_registry(files: &[SourceFile], readme_path: &str, readme_text: &str) -> Vec<Finding> {
    let mut referenced: BTreeMap<String, (String, usize)> = BTreeMap::new();
    for file in files {
        for (idx, line) in file.lines.iter().enumerate() {
            if file.test_line(idx + 1) {
                continue;
            }
            for s in &line.strings {
                for var in extract_vars(s) {
                    referenced
                        .entry(var)
                        .or_insert_with(|| (file.path.clone(), idx + 1));
                }
            }
        }
    }
    let mut documented: BTreeMap<String, usize> = BTreeMap::new();
    for (idx, line) in readme_text.lines().enumerate() {
        let trimmed = line.trim_start();
        let Some(cell) = trimmed.strip_prefix('|') else {
            continue;
        };
        let cell = cell.trim_start();
        let Some(name) = cell.strip_prefix('`') else {
            continue;
        };
        let Some(close) = name.find('`') else {
            continue;
        };
        let name = &name[..close];
        if name.starts_with("CYCLONE_") && name.len() > "CYCLONE_".len() {
            documented.entry(name.to_string()).or_insert(idx + 1);
        }
    }
    let mut findings = Vec::new();
    for (var, (path, line)) in &referenced {
        if !documented.contains_key(var) {
            findings.push(Finding {
                rule: "config-registry",
                path: path.clone(),
                line: *line,
                message: format!(
                    "`{var}` is read by code but has no row in the {readme_path} env table"
                ),
            });
        }
    }
    for (var, line) in &documented {
        if !referenced.contains_key(var) {
            findings.push(Finding {
                rule: "config-registry",
                path: readme_path.to_string(),
                line: *line,
                message: format!(
                    "`{var}` is documented in the env table but no non-test code references it"
                ),
            });
        }
    }
    findings
}

/// Extracts complete `CYCLONE_[A-Z0-9_]+` names from a string literal.
fn extract_vars(s: &str) -> Vec<String> {
    let mut vars = Vec::new();
    let bytes = s.as_bytes();
    let mut i = 0;
    while let Some(pos) = s[i..].find("CYCLONE_") {
        let start = i + pos;
        // Must not be the tail of a longer identifier.
        if start > 0 && (bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_') {
            i = start + "CYCLONE_".len();
            continue;
        }
        let mut end = start + "CYCLONE_".len();
        while end < bytes.len()
            && (bytes[end].is_ascii_uppercase()
                || bytes[end].is_ascii_digit()
                || bytes[end] == b'_')
        {
            end += 1;
        }
        if end > start + "CYCLONE_".len() {
            vars.push(s[start..end].trim_end_matches('_').to_string());
        }
        i = end;
    }
    vars
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_vars_finds_complete_names() {
        assert_eq!(
            extract_vars("set CYCLONE_SHOTS or CYCLONE_THREADS"),
            vec!["CYCLONE_SHOTS".to_string(), "CYCLONE_THREADS".to_string()]
        );
        // Bare prefix and identifier tails do not count.
        assert!(extract_vars("the CYCLONE_ prefix").is_empty());
        assert!(extract_vars("NOT_CYCLONE_SHOTS").is_empty());
        // Trailing underscores are not part of a name.
        assert_eq!(extract_vars("CYCLONE_SHOTS_"), vec!["CYCLONE_SHOTS"]);
    }
}
