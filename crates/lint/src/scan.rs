//! Lexical layer of `cyclone-lint`: a hand-rolled scanner that splits Rust
//! source into per-line code text, comment text, and string-literal contents,
//! plus a flat identifier/punctuation token stream over the code text.
//!
//! The scanner understands exactly as much Rust as the rules need: line and
//! (nested) block comments, ordinary/byte/raw string literals, char literals,
//! and lifetimes (so `'a` is not mistaken for an unterminated char). It does
//! not parse — rules work on tokens and line classifications, which keeps the
//! linter dependency-free and fast, at the cost of being a *textual* analysis:
//! suppressions exist precisely because a textual rule can be wrong about
//! intent (see `// cyclone-lint: allow(...)` in [`Directive`]).

/// One physical source line, split into its lexical constituents.
#[derive(Debug, Default, Clone)]
pub struct Line {
    /// Code text with comments removed and every string/char literal replaced
    /// by an empty literal (`""`), so token scans never see literal contents.
    pub code: String,
    /// Concatenated comment text of the line (line, block, and doc comments).
    pub comment: String,
    /// Contents of string literals that *start* on this line.
    pub strings: Vec<String>,
}

/// Splits `source` into [`Line`]s. Never fails: unterminated constructs simply
/// run to end of file, which is what rustc would reject anyway.
pub fn split_lines(source: &str) -> Vec<Line> {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str { raw_hashes: Option<u32> },
        Char,
    }
    let mut lines = Vec::new();
    let mut line = Line::default();
    let mut state = State::Code;
    let mut chars = source.chars().peekable();
    let mut current_string = String::new();
    while let Some(c) = chars.next() {
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            if let State::Str { .. } = state {
                current_string.push('\n');
            }
            lines.push(std::mem::take(&mut line));
            continue;
        }
        match state {
            State::Code => match c {
                '/' if chars.peek() == Some(&'/') => {
                    chars.next();
                    state = State::LineComment;
                }
                '/' if chars.peek() == Some(&'*') => {
                    chars.next();
                    state = State::BlockComment(1);
                }
                '"' => {
                    line.code.push_str("\"\"");
                    current_string.clear();
                    state = State::Str { raw_hashes: None };
                }
                'r' | 'b' if matches!(chars.peek(), Some('"' | '#' | 'r')) => {
                    // Possible raw/byte string prefix: consume `r`, `b"`, `br`,
                    // `r#...#"`. Fall back to plain code chars when it is not
                    // actually a string start (e.g. `b # x` cannot occur; an
                    // identifier ending in r/b followed by " is not valid Rust).
                    let mut prefix = String::new();
                    prefix.push(c);
                    if c == 'b' && chars.peek() == Some(&'r') {
                        prefix.push('r');
                        chars.next();
                    }
                    let mut hashes = 0u32;
                    while chars.peek() == Some(&'#') {
                        hashes += 1;
                        chars.next();
                    }
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        line.code.push_str("\"\"");
                        current_string.clear();
                        state = State::Str {
                            raw_hashes: Some(hashes),
                        };
                    } else {
                        line.code.push_str(&prefix);
                        for _ in 0..hashes {
                            line.code.push('#');
                        }
                    }
                }
                '\'' => {
                    // Distinguish char literals from lifetimes: a lifetime is
                    // `'` + ident-start not followed by a closing quote.
                    let mut ahead = chars.clone();
                    let first = ahead.next();
                    let second = ahead.next();
                    let is_lifetime = matches!(first, Some(f) if f.is_alphabetic() || f == '_')
                        && second != Some('\'');
                    if is_lifetime {
                        line.code.push('\'');
                    } else {
                        line.code.push_str("\"\"");
                        state = State::Char;
                    }
                }
                _ => line.code.push(c),
            },
            State::LineComment => line.comment.push(c),
            State::BlockComment(depth) => match c {
                '*' if chars.peek() == Some(&'/') => {
                    chars.next();
                    if depth == 1 {
                        state = State::Code;
                    } else {
                        state = State::BlockComment(depth - 1);
                    }
                }
                '/' if chars.peek() == Some(&'*') => {
                    chars.next();
                    state = State::BlockComment(depth + 1);
                }
                _ => line.comment.push(c),
            },
            State::Str { raw_hashes: None } => match c {
                '\\' => {
                    current_string.push(c);
                    if let Some(&esc) = chars.peek() {
                        current_string.push(esc);
                        chars.next();
                        // A `\`-newline continuation still ends a physical
                        // line; swallowing it here would shift every later
                        // line number in the file.
                        if esc == '\n' {
                            lines.push(std::mem::take(&mut line));
                        }
                    }
                }
                '"' => {
                    line.strings.push(std::mem::take(&mut current_string));
                    state = State::Code;
                }
                _ => current_string.push(c),
            },
            State::Str {
                raw_hashes: Some(h),
            } => {
                if c == '"' {
                    let mut ahead = chars.clone();
                    let mut seen = 0u32;
                    while seen < h && ahead.peek() == Some(&'#') {
                        ahead.next();
                        seen += 1;
                    }
                    if seen == h {
                        for _ in 0..h {
                            chars.next();
                        }
                        line.strings.push(std::mem::take(&mut current_string));
                        state = State::Code;
                        continue;
                    }
                }
                current_string.push(c);
            }
            State::Char => match c {
                // Skip the escaped char — but never a newline: it must flow
                // through the top-of-loop line handling to keep line numbers
                // aligned.
                '\\' if chars.peek() != Some(&'\n') => {
                    chars.next();
                }
                '\'' => state = State::Code,
                _ => {}
            },
        }
    }
    if !line.code.is_empty() || !line.comment.is_empty() || !line.strings.is_empty() {
        lines.push(line);
    }
    lines
}

/// A `// cyclone-lint: ...` comment directive.
#[derive(Debug, Clone, PartialEq)]
pub enum Directive {
    /// `allow(<rule>[, <rule>...]) -- <reason>`: suppress the named rules on
    /// this line and the next code line. The reason is mandatory.
    Allow { rules: Vec<String>, reason: String },
    /// `hot-path`: opens a no-allocation region.
    HotPath,
    /// `end-hot-path`: closes the region opened by the last `hot-path`.
    EndHotPath,
}

/// The marker every directive comment must contain.
pub const MARKER: &str = "cyclone-lint:";

/// Parses the directive in a comment, if any. Returns `Some(Err(reason))` for
/// a comment that names the marker but does not parse — malformed directives
/// are findings, never silently ignored (a typo'd `allow` must not lint clean).
///
/// A directive must *start* its comment (after doc-comment sigils); a marker
/// quoted mid-prose — documentation talking about the syntax — is not one.
pub fn parse_directive(comment: &str) -> Option<Result<Directive, String>> {
    let head =
        comment.trim_start_matches(|c: char| c.is_whitespace() || c == '/' || c == '!' || c == '*');
    if !head.starts_with(MARKER) {
        return None;
    }
    let body = head[MARKER.len()..].trim();
    if body == "hot-path" {
        return Some(Ok(Directive::HotPath));
    }
    if body == "end-hot-path" {
        return Some(Ok(Directive::EndHotPath));
    }
    if let Some(rest) = body.strip_prefix("allow(") {
        let Some(close) = rest.find(')') else {
            return Some(Err("unclosed `allow(` directive".to_string()));
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            return Some(Err("`allow()` names no rules".to_string()));
        }
        let tail = rest[close + 1..].trim();
        let Some(reason) = tail.strip_prefix("--") else {
            return Some(Err(
                "`allow(...)` needs a reason: `-- <why this is sound>`".to_string()
            ));
        };
        let reason = reason.trim();
        if reason.is_empty() {
            return Some(Err("`allow(...) --` has an empty reason".to_string()));
        }
        return Some(Ok(Directive::Allow {
            rules,
            reason: reason.to_string(),
        }));
    }
    Some(Err(format!(
        "unknown directive `{}` (expected `allow(...) -- reason`, `hot-path`, or `end-hot-path`)",
        body.split_whitespace().next().unwrap_or("")
    )))
}

/// One token of the code text: an identifier (including keywords and number
/// literals — rules only ever match known names) or a single punctuation char.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token text; punctuation tokens are one char long.
    pub text: String,
    /// 1-based source line.
    pub line: usize,
    /// Whether this is an identifier-like token.
    pub ident: bool,
}

/// Tokenizes the code text of `lines` (strings are already blanked to `""` by
/// [`split_lines`], so literal contents never produce identifiers).
pub fn tokenize(lines: &[Line]) -> Vec<Token> {
    let mut tokens = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let mut chars = line.code.chars().peekable();
        while let Some(c) = chars.next() {
            if c.is_whitespace() {
                continue;
            }
            if c.is_alphanumeric() || c == '_' {
                let mut text = String::new();
                text.push(c);
                while let Some(&n) = chars.peek() {
                    if n.is_alphanumeric() || n == '_' {
                        text.push(n);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    text,
                    line: idx + 1,
                    ident: true,
                });
            } else {
                tokens.push(Token {
                    text: c.to_string(),
                    line: idx + 1,
                    ident: false,
                });
            }
        }
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_separated() {
        let src = "let x = \"a // not comment\"; // real comment\nlet y = 1; /* block\nstill block */ let z = 2;\n";
        let lines = split_lines(src);
        assert_eq!(lines.len(), 3);
        assert!(lines[0].code.contains("let x"));
        assert!(!lines[0].code.contains("not comment"));
        assert_eq!(lines[0].strings, vec!["a // not comment".to_string()]);
        assert_eq!(lines[0].comment.trim(), "real comment");
        assert!(lines[1].comment.contains("block"));
        assert!(lines[2].code.contains("let z"));
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let src = "let s = r#\"raw \"quoted\" text\"#;\nfn f<'a>(x: &'a str) -> char { 'y' }\n";
        let lines = split_lines(src);
        assert_eq!(lines[0].strings, vec!["raw \"quoted\" text".to_string()]);
        assert!(lines[1].code.contains("'a"));
        assert!(!lines[1].code.contains('y'));
    }

    #[test]
    fn directives_parse_and_reject() {
        assert_eq!(
            parse_directive(" cyclone-lint: hot-path"),
            Some(Ok(Directive::HotPath))
        );
        let allow =
            parse_directive(" cyclone-lint: allow(io-unwrap, wall-clock) -- benches are fail-fast");
        match allow {
            Some(Ok(Directive::Allow { rules, reason })) => {
                assert_eq!(rules, vec!["io-unwrap", "wall-clock"]);
                assert_eq!(reason, "benches are fail-fast");
            }
            other => panic!("unexpected parse: {other:?}"),
        }
        assert!(matches!(
            parse_directive(" cyclone-lint: allow(io-unwrap)"),
            Some(Err(_))
        ));
        assert!(matches!(
            parse_directive(" cyclone-lint: allow(io-unwrap) -- "),
            Some(Err(_))
        ));
        assert!(matches!(
            parse_directive(" cyclone-lint: hotpath"),
            Some(Err(_))
        ));
        assert_eq!(parse_directive("ordinary comment"), None);
    }

    #[test]
    fn string_line_continuations_keep_line_numbers() {
        let src = "let s = \"first \\\n  second\";\nlet t = 1;\n";
        let lines = split_lines(src);
        assert_eq!(lines.len(), 3);
        assert!(lines[2].code.contains("let t"));
        let toks = tokenize(&lines);
        let t = toks.iter().find(|t| t.text == "t").expect("token t");
        assert_eq!(t.line, 3);
    }

    #[test]
    fn tokenizer_splits_idents_and_punct() {
        let lines = split_lines("foo.bar::<Baz>(1);\n");
        let toks = tokenize(&lines);
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            vec!["foo", ".", "bar", ":", ":", "<", "Baz", ">", "(", "1", ")", ";"]
        );
    }
}
