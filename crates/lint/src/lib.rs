//! `cyclone-lint`: offline workspace static analysis for the Cyclone repo's
//! three load-bearing invariants — bit-identical results at any thread/shard
//! count, zero steady-state allocations in decode hot paths, and a complete
//! `CYCLONE_*` configuration registry — plus the I/O unwrap policy that keeps
//! cache corruption from panicking sweeps.
//!
//! Rule families (names are what `allow(...)` takes):
//!
//! * `unordered-iter` — iterating, draining, or collecting a `HashMap`/`HashSet`
//!   in non-test library code, unless the site visibly sorts the result (or
//!   collects into a `BTreeMap`/`BTreeSet`, or only asks an order-insensitive
//!   question like `.len()`/`.contains()`). This is the PR 3 bug class: the
//!   baseline/dynamic compilers once drained ancilla maps in randomized order
//!   and perturbed figure tables in the last bit.
//! * `wall-clock` — `Instant::now`/`SystemTime`/`RandomState`/`thread_rng`
//!   inside the decode/sample modules (`decoder::{bp,osd,bposd,memory,cache}`,
//!   `cyclone::sweep`), where any wall-clock or randomized-hash input breaks
//!   replayable, seed-deterministic results.
//! * `hot-path-alloc` — allocation constructors (`Vec::new`, `vec!`,
//!   `.to_vec()`, `.collect()`, `format!`, `String::from`, `.clone()`, ...)
//!   inside a `// cyclone-lint: hot-path` ... `// cyclone-lint: end-hot-path`
//!   region. The counting-allocator bench enforces zero steady-state allocation
//!   at runtime; this rule catches the regression at review time. Length-ensure
//!   idioms (`clear`/`resize`/`extend` on reused buffers) are deliberately not
//!   flagged — they are the sanctioned way to size scratch space.
//! * `config-registry` — every `CYCLONE_*` env var referenced by non-test code
//!   must have a row in the README env table, and every documented row must
//!   still be referenced by code.
//! * `io-unwrap` — bare `.unwrap()`/`.expect(...)` on a statement that performs
//!   file I/O, in non-test code. Cache and sweep files are throwaway inputs;
//!   corrupt ones must degrade to recompute, not panic.
//! * `unsafe-safety` — an `unsafe` block, fn, or impl in non-test library code
//!   without an adjacent safety argument: a `// SAFETY:` comment on or directly
//!   above the line, or a `/// # Safety` doc section on the item. The SIMD
//!   check-pass kernels (`decoder::simd`) are the workspace's sanctioned
//!   `unsafe` surface; every new entry must carry its soundness argument.
//! * `annotation` — malformed suppressions: `allow` without a reason, unknown
//!   rule names, unbalanced hot-path markers. Suppressions are part of the
//!   contract, so their syntax is linted too.
//!
//! Suppression: `// cyclone-lint: allow(<rule>[, <rule>...]) -- <reason>` on
//! the offending line or the line above it. The reason is mandatory.

pub mod rules;
pub mod scan;

use scan::{parse_directive, Directive, Line, Token, MARKER};
use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// The rule families, by `allow(...)` name.
pub const RULE_NAMES: &[&str] = &[
    "unordered-iter",
    "wall-clock",
    "hot-path-alloc",
    "config-registry",
    "io-unwrap",
    "unsafe-safety",
    "annotation",
];

/// What kind of source a file is; decides which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code under `src/` — every rule applies.
    Lib,
    /// A binary under `src/bin/` — treated like library code.
    Bin,
    /// A bench target — artifact writers; `io-unwrap` applies, iteration rules
    /// do not (benches are not shipped library surface).
    Bench,
    /// Example code — exempt from everything but hot-path markers it opts into.
    Example,
    /// Integration-test code — exempt like `#[cfg(test)]` modules.
    Test,
}

impl FileKind {
    /// Classifies a workspace-relative path (slash-separated).
    pub fn of(path: &str) -> Self {
        if path.contains("/tests/") {
            FileKind::Test
        } else if path.contains("/benches/") {
            FileKind::Bench
        } else if path.contains("/examples/") || path.starts_with("examples/") {
            FileKind::Example
        } else if path.contains("/src/bin/") || path.ends_with("/main.rs") {
            FileKind::Bin
        } else {
            FileKind::Lib
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule family name (one of [`RULE_NAMES`]).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number (0 for file-level findings).
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Result of linting a set of sources.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// `allow` annotations that actually suppressed at least one finding.
    pub suppressions_used: usize,
}

impl Report {
    /// Whether the workspace is lint-clean.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Serializes the report as machine-readable JSON (schema 1).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '\r' => out.push_str("\\r"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        let mut json = String::from("{\"schema\":1,\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            json.push_str(&format!(
                "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
                esc(f.rule),
                esc(&f.path),
                f.line,
                esc(&f.message)
            ));
        }
        json.push_str(&format!(
            "],\"files_scanned\":{},\"suppressions_used\":{}}}\n",
            self.files_scanned, self.suppressions_used
        ));
        json
    }
}

/// A scanned, classified source file — the input to every per-file rule.
pub struct SourceFile {
    /// Workspace-relative, slash-separated path.
    pub path: String,
    /// What kind of target the file belongs to.
    pub kind: FileKind,
    /// Lexed lines (1-based access via `lines[line - 1]`).
    pub lines: Vec<Line>,
    /// Flat token stream over the code text.
    pub tokens: Vec<Token>,
    /// Per line: inside `#[cfg(test)]` / `#[test]` code (or a `tests/` file).
    pub is_test: Vec<bool>,
    /// Per line: inside a `hot-path` region.
    pub is_hot: Vec<bool>,
    /// Per line: rules suppressed by an `allow` directive covering it.
    pub allows: Vec<BTreeSet<String>>,
}

impl SourceFile {
    /// Lexes and classifies `source`; annotation problems become findings.
    pub fn parse(path: &str, source: &str) -> (Self, Vec<Finding>) {
        let lines = scan::split_lines(source);
        let tokens = scan::tokenize(&lines);
        let kind = FileKind::of(path);
        let n = lines.len();
        let mut findings = Vec::new();

        // Test regions: an attribute line arms the tracker; the first `{` that
        // follows opens a region closed when brace depth returns to its level.
        // Files under tests/ are test code wholesale.
        let mut is_test = vec![kind == FileKind::Test; n];
        let mut depth: i64 = 0;
        let mut armed = false;
        let mut region_floor: Option<i64> = None;
        for (idx, line) in lines.iter().enumerate() {
            if region_floor.is_some() || armed {
                is_test[idx] = true;
            }
            if line.code.contains("#[cfg(test)]") || line.code.contains("#[test]") {
                // An attribute inside an already-open test region is redundant
                // for classification; arming there would leak past the region.
                armed = region_floor.is_none();
                is_test[idx] = true;
            }
            for c in line.code.chars() {
                match c {
                    // A `;` before any `{` means the attribute gated a braceless
                    // item (`#[cfg(test)] use ...;`) — nothing to track.
                    ';' if armed && region_floor.is_none() => armed = false,
                    '{' => {
                        if armed && region_floor.is_none() {
                            region_floor = Some(depth);
                            armed = false;
                        }
                        depth += 1;
                    }
                    '}' => {
                        depth -= 1;
                        if region_floor == Some(depth) {
                            region_floor = None;
                        }
                    }
                    _ => {}
                }
            }
        }

        // Directives: hot-path regions and allow coverage.
        let mut is_hot = vec![false; n];
        let mut allows: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
        let mut hot_open: Option<usize> = None;
        for (idx, line) in lines.iter().enumerate() {
            if let Some(open) = hot_open {
                if open < idx {
                    is_hot[idx] = true;
                }
            }
            let Some(parsed) = parse_directive(&line.comment) else {
                continue;
            };
            match parsed {
                Err(reason) => findings.push(Finding {
                    rule: "annotation",
                    path: path.to_string(),
                    line: idx + 1,
                    message: reason,
                }),
                Ok(Directive::HotPath) => {
                    if hot_open.is_some() {
                        findings.push(Finding {
                            rule: "annotation",
                            path: path.to_string(),
                            line: idx + 1,
                            message: "nested `hot-path` marker (close the previous region first)"
                                .to_string(),
                        });
                    } else {
                        hot_open = Some(idx);
                    }
                }
                Ok(Directive::EndHotPath) => {
                    if hot_open.take().is_none() {
                        findings.push(Finding {
                            rule: "annotation",
                            path: path.to_string(),
                            line: idx + 1,
                            message: "`end-hot-path` without an open `hot-path` region".to_string(),
                        });
                    }
                    is_hot[idx] = false;
                }
                Ok(Directive::Allow { rules, reason: _ }) => {
                    for rule in rules {
                        if !RULE_NAMES.contains(&rule.as_str()) {
                            findings.push(Finding {
                                rule: "annotation",
                                path: path.to_string(),
                                line: idx + 1,
                                message: format!(
                                    "`allow({rule})` names an unknown rule (known: {})",
                                    RULE_NAMES.join(", ")
                                ),
                            });
                            continue;
                        }
                        // Covers the directive's own line and the next line
                        // that contains code (for standalone comment lines).
                        allows[idx].insert(rule.clone());
                        let mut next = idx + 1;
                        while next < n && lines[next].code.trim().is_empty() {
                            next += 1;
                        }
                        if next < n {
                            allows[next].insert(rule);
                        }
                    }
                }
            }
        }
        if let Some(open) = hot_open {
            findings.push(Finding {
                rule: "annotation",
                path: path.to_string(),
                line: open + 1,
                message: "`hot-path` region is never closed (add `end-hot-path`)".to_string(),
            });
        }

        (
            SourceFile {
                path: path.to_string(),
                kind,
                lines,
                tokens,
                is_test,
                is_hot,
                allows,
            },
            findings,
        )
    }

    /// Whether 1-based `line` sits in test code.
    pub fn test_line(&self, line: usize) -> bool {
        self.is_test.get(line - 1).copied().unwrap_or(false)
    }

    /// Whether `rule` is suppressed on 1-based `line`.
    pub fn allowed(&self, rule: &str, line: usize) -> bool {
        self.allows
            .get(line - 1)
            .is_some_and(|set| set.contains(rule))
    }
}

/// Lints in-memory sources plus an optional README. `files` are
/// `(workspace-relative path, contents)` pairs; the README is
/// `(path, contents)`. This is the core the CLI, the fixture tests, and the
/// self-run test all share.
pub fn lint_sources(files: &[(String, String)], readme: Option<(&str, &str)>) -> Report {
    let mut report = Report::default();
    let mut parsed = Vec::new();
    let mut suppressed_total = 0usize;
    for (path, text) in files {
        let (file, annotation_findings) = SourceFile::parse(path, text);
        report.findings.extend(annotation_findings);
        parsed.push(file);
    }
    report.files_scanned = parsed.len();
    for file in &parsed {
        for (finding, was_suppressed) in rules::lint_file(file) {
            if was_suppressed {
                suppressed_total += 1;
            } else {
                report.findings.push(finding);
            }
        }
    }
    if let Some((readme_path, readme_text)) = readme {
        report
            .findings
            .extend(rules::config_registry(&parsed, readme_path, readme_text));
    }
    report.suppressions_used = suppressed_total;
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    report
}

/// Walks `root` (a workspace checkout) and lints every non-shim `.rs` file
/// under `crates/` and `examples/`, plus the root `README.md` registry table.
///
/// # Errors
///
/// Returns any I/O error from walking directories or reading files. A missing
/// `README.md` is an error: the config-registry rule has nothing to check
/// against, and silently skipping it would report a false "clean".
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    for top in ["crates", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(root, &dir, &mut files)?;
        }
    }
    files.sort();
    let mut sources = Vec::new();
    for rel in files {
        let text = std::fs::read_to_string(root.join(&rel))?;
        sources.push((rel, text));
    }
    let readme_path = root.join("README.md");
    let readme = std::fs::read_to_string(&readme_path)?;
    Ok(lint_sources(&sources, Some(("README.md", &readme))))
}

/// Recursively collects workspace-relative `.rs` paths, skipping the vendored
/// shims and build output. Directory entries are sorted so the scan order — and
/// therefore the report — is deterministic across filesystems (the linter holds
/// itself to the invariant it enforces).
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .map(|entry| entry.map(|e| e.path()))
        .collect::<Result<_, _>>()?;
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if path.is_dir() {
            if name == "shims" || name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

/// The directive marker, re-exported for diagnostics.
pub fn marker() -> &'static str {
    MARKER
}
