//! `cyclone-lint` CLI: lints the workspace and exits nonzero on findings, so
//! CI can gate on it. Human-readable text goes to stdout; `--json PATH` writes
//! the machine-readable findings artifact.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
cyclone-lint: offline static analysis for the Cyclone workspace

USAGE:
    cyclone-lint [--root DIR] [--json PATH] [--quiet]

OPTIONS:
    --root DIR    Workspace root to lint (default: current directory)
    --json PATH   Also write machine-readable findings as JSON
    --quiet       Suppress per-finding text output (summary and exit code only)
    --help        Show this help

EXIT CODE: 0 clean, 1 findings, 2 usage or I/O error.

Rules: unordered-iter, wall-clock, hot-path-alloc, config-registry, io-unwrap,
annotation. Suppress one site with
    // cyclone-lint: allow(<rule>[, <rule>...]) -- <reason>
and mark no-allocation regions with
    // cyclone-lint: hot-path ... // cyclone-lint: end-hot-path
";

struct Args {
    root: PathBuf,
    json: Option<PathBuf>,
    quiet: bool,
}

fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        json: None,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--quiet" => args.quiet = true,
            "--root" => {
                args.root = PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--root needs a directory".to_string())?,
                );
            }
            "--json" => {
                args.json = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--json needs a file path".to_string())?,
                ));
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Some(args))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(args)) => args,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(err) => {
            eprintln!("cyclone-lint: {err}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let report = match lint::lint_workspace(&args.root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!(
                "cyclone-lint: failed to scan {}: {err}",
                args.root.display()
            );
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &args.json {
        if let Err(err) = std::fs::write(path, report.to_json()) {
            eprintln!(
                "cyclone-lint: failed to write findings to {}: {err}",
                path.display()
            );
            return ExitCode::from(2);
        }
    }
    if !args.quiet {
        for finding in &report.findings {
            println!("{finding}");
        }
    }
    println!(
        "cyclone-lint: {} finding(s) across {} file(s); {} suppression(s) honored",
        report.findings.len(),
        report.files_scanned,
        report.suppressions_used
    );
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
