//! Fixture tests for every `cyclone-lint` rule family: one snippet that must
//! fire, one allow-annotated (or idiomatically sound) snippet that must not,
//! plus the self-run test asserting the live workspace stays lint-clean.

use lint::{lint_sources, Report};

/// Lints a single in-memory file at `path` with no README.
fn lint_one(path: &str, source: &str) -> Report {
    lint_sources(&[(path.to_string(), source.to_string())], None)
}

fn rules_fired(report: &Report) -> Vec<&str> {
    report.findings.iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------- unordered-iter

#[test]
fn unordered_iter_fires_on_hashmap_for_loop() {
    let src = "
use std::collections::HashMap;
pub fn f(m: &HashMap<u32, u32>) {
    for (k, v) in m.iter() {
        println!(\"{k} {v}\");
    }
}
";
    let report = lint_one("crates/qec/src/lib.rs", src);
    assert_eq!(rules_fired(&report), vec!["unordered-iter"]);
    assert_eq!(report.findings[0].line, 4);
}

#[test]
fn unordered_iter_fires_on_drain_and_values() {
    let src = "
use std::collections::HashMap;
pub fn f(m: &mut HashMap<u32, u32>) -> Vec<u32> {
    let mut out: Vec<u32> = m.values().copied().collect();
    out.extend(m.drain().map(|(_, v)| v));
    out
}
";
    let report = lint_one("crates/qec/src/lib.rs", src);
    assert_eq!(
        rules_fired(&report),
        vec!["unordered-iter", "unordered-iter"]
    );
}

#[test]
fn unordered_iter_suppressed_by_allow_annotation() {
    let src = "
use std::collections::HashMap;
pub fn f(m: &HashMap<u32, u32>) -> u64 {
    // cyclone-lint: allow(unordered-iter) -- summed into a commutative total
    m.values().map(|&v| u64::from(v)).sum()
}
";
    let report = lint_one("crates/qec/src/lib.rs", src);
    assert!(report.clean(), "unexpected findings: {:?}", report.findings);
    assert_eq!(report.suppressions_used, 1);
}

#[test]
fn unordered_iter_not_flagged_when_sorted_or_order_free() {
    let src = "
use std::collections::{HashMap, HashSet};
pub fn f(m: &HashMap<u32, u32>, s: &HashSet<u32>) -> usize {
    let mut keys: Vec<u32> = m.keys().copied().collect();
    keys.sort_unstable();
    let ordered: std::collections::BTreeMap<u32, u32> =
        m.iter().map(|(&k, &v)| (k, v)).collect();
    keys.len() + ordered.len() + s.len() + usize::from(s.contains(&3))
}
";
    let report = lint_one("crates/qec/src/lib.rs", src);
    assert!(report.clean(), "unexpected findings: {:?}", report.findings);
}

#[test]
fn unordered_iter_exempt_in_test_code() {
    let src = "
use std::collections::HashMap;
#[cfg(test)]
mod tests {
    pub fn f(m: &super::HashMap<u32, u32>) {
        for (k, v) in m.iter() {
            println!(\"{k} {v}\");
        }
    }
}
";
    let report = lint_one("crates/qec/src/lib.rs", src);
    assert!(report.clean(), "unexpected findings: {:?}", report.findings);
}

// -------------------------------------------------------------------- wall-clock

#[test]
fn wall_clock_fires_in_decoder_modules() {
    let src = "
pub fn f() -> u64 {
    let started = std::time::Instant::now();
    started.elapsed().as_nanos() as u64
}
";
    let report = lint_one("crates/decoder/src/bp.rs", src);
    assert_eq!(rules_fired(&report), vec!["wall-clock"]);
    assert_eq!(report.findings[0].line, 3);
}

#[test]
fn wall_clock_suppressed_by_allow_annotation() {
    let src = "
pub fn f() -> u64 {
    // cyclone-lint: allow(wall-clock) -- telemetry only, never feeds results
    let started = std::time::Instant::now();
    started.elapsed().as_nanos() as u64
}
";
    let report = lint_one("crates/decoder/src/memory.rs", src);
    assert!(report.clean(), "unexpected findings: {:?}", report.findings);
    assert_eq!(report.suppressions_used, 1);
}

#[test]
fn wall_clock_ignored_outside_banned_modules() {
    let src = "
pub fn f() -> std::time::Instant {
    std::time::Instant::now()
}
";
    let report = lint_one("crates/qccd/src/topology.rs", src);
    assert!(report.clean(), "unexpected findings: {:?}", report.findings);
}

// ---------------------------------------------------------------- hot-path-alloc

#[test]
fn hot_path_alloc_fires_inside_marked_region() {
    let src = "
// cyclone-lint: hot-path
pub fn f(xs: &[u32]) -> Vec<u32> {
    let copy = xs.to_vec();
    let label = format!(\"{}\", copy.len());
    drop(label);
    copy
}
// cyclone-lint: end-hot-path
";
    let report = lint_one("crates/decoder/src/lib.rs", src);
    assert_eq!(
        rules_fired(&report),
        vec!["hot-path-alloc", "hot-path-alloc"]
    );
}

#[test]
fn hot_path_alloc_suppressed_by_allow_annotation() {
    let src = "
// cyclone-lint: hot-path
pub fn f(r: std::ops::Range<usize>) -> std::ops::Range<usize> {
    // cyclone-lint: allow(hot-path-alloc) -- Range clone is a stack copy
    r.clone()
}
// cyclone-lint: end-hot-path
";
    let report = lint_one("crates/decoder/src/lib.rs", src);
    assert!(report.clean(), "unexpected findings: {:?}", report.findings);
    assert_eq!(report.suppressions_used, 1);
}

#[test]
fn hot_path_alloc_ignores_code_outside_region_and_resize_idiom() {
    let src = "
pub fn outside() -> Vec<u32> {
    vec![1, 2, 3]
}
// cyclone-lint: hot-path
pub fn inside(buf: &mut Vec<u32>, n: usize) {
    buf.clear();
    buf.resize(n, 0);
    buf.extend(0..4u32);
}
// cyclone-lint: end-hot-path
";
    let report = lint_one("crates/decoder/src/lib.rs", src);
    assert!(report.clean(), "unexpected findings: {:?}", report.findings);
}

// --------------------------------------------------------------- config-registry

const FAKE_README: &str = "
# Fixture

| variable | default | effect |
| -------- | ------- | ------ |
| `CYCLONE_DOCUMENTED` | unset | documented and used |
| `CYCLONE_STALE` | unset | documented but no longer read by code |
";

#[test]
fn config_registry_flags_undocumented_and_stale_vars() {
    let src = "
pub fn f() -> bool {
    std::env::var(\"CYCLONE_DOCUMENTED\").is_ok() && std::env::var(\"CYCLONE_SECRET\").is_ok()
}
";
    let report = lint_sources(
        &[("crates/qec/src/lib.rs".to_string(), src.to_string())],
        Some(("README.md", FAKE_README)),
    );
    let mut fired = rules_fired(&report);
    fired.sort_unstable();
    assert_eq!(fired, vec!["config-registry", "config-registry"]);
    let messages: String = report
        .findings
        .iter()
        .map(|f| f.message.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(messages.contains("CYCLONE_SECRET"), "{messages}");
    assert!(messages.contains("CYCLONE_STALE"), "{messages}");
}

#[test]
fn config_registry_clean_when_table_matches_code() {
    let src = "
pub fn f() -> bool {
    std::env::var(\"CYCLONE_DOCUMENTED\").is_ok()
}
#[cfg(test)]
mod tests {
    pub fn test_only() -> bool {
        std::env::var(\"CYCLONE_TEST_ONLY\").is_ok()
    }
}
";
    let readme = "
| variable | default | effect |
| -------- | ------- | ------ |
| `CYCLONE_DOCUMENTED` | unset | documented and used |
";
    let report = lint_sources(
        &[("crates/qec/src/lib.rs".to_string(), src.to_string())],
        Some(("README.md", readme)),
    );
    assert!(report.clean(), "unexpected findings: {:?}", report.findings);
}

// --------------------------------------------------------------------- io-unwrap

#[test]
fn io_unwrap_fires_on_bare_fs_expect() {
    let src = "
pub fn f(path: &std::path::Path) -> String {
    std::fs::read_to_string(path).expect(\"read config\")
}
";
    let report = lint_one("crates/cyclone/src/lib.rs", src);
    assert_eq!(rules_fired(&report), vec!["io-unwrap"]);
}

#[test]
fn io_unwrap_suppressed_by_allow_annotation() {
    let src = "
pub fn f(path: &std::path::Path) -> String {
    // cyclone-lint: allow(io-unwrap) -- fixture file is checked in; absence is a build bug
    std::fs::read_to_string(path).expect(\"read config\")
}
";
    let report = lint_one("crates/cyclone/src/lib.rs", src);
    assert!(report.clean(), "unexpected findings: {:?}", report.findings);
    assert_eq!(report.suppressions_used, 1);
}

#[test]
fn io_unwrap_ignores_propagation_and_non_io_unwraps() {
    let src = "
pub fn f(path: &std::path::Path) -> std::io::Result<String> {
    std::fs::read_to_string(path)
}
pub fn g(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}
";
    let report = lint_one("crates/cyclone/src/lib.rs", src);
    assert!(report.clean(), "unexpected findings: {:?}", report.findings);
}

#[test]
fn io_unwrap_exempt_in_test_code() {
    let src = "
pub fn f(path: &std::path::Path) -> String {
    std::fs::read_to_string(path).unwrap()
}
";
    let report = lint_one("crates/cyclone/tests/roundtrip.rs", src);
    assert!(report.clean(), "unexpected findings: {:?}", report.findings);
}

// ----------------------------------------------------------------- unsafe-safety

#[test]
fn unsafe_safety_fires_on_bare_unsafe_block_and_fn() {
    let src = "
pub fn f(xs: &[f64]) -> f64 {
    unsafe { *xs.get_unchecked(0) }
}
pub unsafe fn g(p: *const f64) -> f64 {
    *p
}
";
    let report = lint_one("crates/decoder/src/lib.rs", src);
    assert_eq!(rules_fired(&report), vec!["unsafe-safety", "unsafe-safety"]);
    assert_eq!(report.findings[0].line, 3);
    assert_eq!(report.findings[1].line, 5);
}

#[test]
fn unsafe_safety_satisfied_by_adjacent_comment_or_doc_section() {
    let src = "
pub fn f(xs: &[f64]) -> f64 {
    // SAFETY: caller guarantees xs is non-empty (checked at construction).
    unsafe { *xs.get_unchecked(0) }
}
/// Reads through a raw pointer.
///
/// # Safety
///
/// `p` must be valid for reads and properly aligned.
#[inline]
pub unsafe fn g(p: *const f64) -> f64 {
    *p
}
pub fn h(p: *const f64) -> f64 {
    let v = unsafe { *p }; // SAFETY: p validated by the dispatch above
    v
}
";
    let report = lint_one("crates/decoder/src/lib.rs", src);
    assert!(report.clean(), "unexpected findings: {:?}", report.findings);
}

#[test]
fn unsafe_safety_suppressed_by_allow_annotation() {
    let src = "
pub fn f(xs: &[f64]) -> f64 {
    // cyclone-lint: allow(unsafe-safety) -- soundness argued in the module docs
    unsafe { *xs.get_unchecked(0) }
}
";
    let report = lint_one("crates/decoder/src/lib.rs", src);
    assert!(report.clean(), "unexpected findings: {:?}", report.findings);
    assert_eq!(report.suppressions_used, 1);
}

#[test]
fn unsafe_safety_exempt_in_tests_and_benches() {
    let src = "
pub fn f(p: *const f64) -> f64 {
    unsafe { *p }
}
";
    let report = lint_one("crates/bench/benches/decoder_hotpath.rs", src);
    assert!(report.clean(), "unexpected findings: {:?}", report.findings);
    let src_test = "
#[cfg(test)]
mod tests {
    pub fn f(p: *const f64) -> f64 {
        unsafe { *p }
    }
}
";
    let report = lint_one("crates/decoder/src/lib.rs", src_test);
    assert!(report.clean(), "unexpected findings: {:?}", report.findings);
}

#[test]
fn unsafe_safety_comment_does_not_leak_past_code_lines() {
    // A SAFETY comment separated from the unsafe block by a real code line does
    // not cover it.
    let src = "
pub fn f(xs: &[f64]) -> f64 {
    // SAFETY: this comment belongs to the length check, not the unsafe block.
    let n = xs.len();
    assert!(n > 0);
    unsafe { *xs.get_unchecked(0) }
}
";
    let report = lint_one("crates/decoder/src/lib.rs", src);
    assert_eq!(rules_fired(&report), vec!["unsafe-safety"]);
}

// -------------------------------------------------------------------- annotation

#[test]
fn annotation_fires_on_reasonless_allow_unknown_rule_and_unclosed_region() {
    let src = "
// cyclone-lint: allow(io-unwrap)
pub fn a() {}
// cyclone-lint: allow(made-up-rule) -- not a rule
pub fn b() {}
// cyclone-lint: hot-path
pub fn c() {}
";
    let report = lint_one("crates/qec/src/lib.rs", src);
    assert_eq!(
        rules_fired(&report),
        vec!["annotation", "annotation", "annotation"]
    );
}

#[test]
fn annotation_accepts_well_formed_directives() {
    let src = "
// cyclone-lint: hot-path
pub fn f(x: u32) -> u32 {
    x + 1
}
// cyclone-lint: end-hot-path
// cyclone-lint: allow(io-unwrap) -- reason present, nothing to suppress
pub fn g() {}
";
    let report = lint_one("crates/qec/src/lib.rs", src);
    assert!(report.clean(), "unexpected findings: {:?}", report.findings);
}

// ---------------------------------------------------------------------- self-run

/// The live workspace must stay lint-clean: this is the same check CI runs via
/// `cargo run -p lint`, pinned here so `cargo test` alone catches regressions.
#[test]
fn workspace_is_lint_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = lint::lint_workspace(&root).expect("scan workspace");
    assert!(
        report.clean(),
        "workspace has lint findings:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.files_scanned > 50, "scan looks truncated");
}

#[test]
fn report_json_is_machine_readable() {
    let src = "
pub fn f(path: &std::path::Path) -> String {
    std::fs::read_to_string(path).expect(\"quote \\\" and backslash \\\\\")
}
";
    let report = lint_one("crates/cyclone/src/lib.rs", src);
    let json = report.to_json();
    assert!(json.starts_with("{\"schema\":1,"));
    assert!(json.contains("\"rule\":\"io-unwrap\""));
    assert!(json.contains("\"files_scanned\":1"));
}
