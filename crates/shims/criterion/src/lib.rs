//! Offline API-compatible shim for the `criterion` crate.
//!
//! Implements the subset of the criterion 0.5 API this workspace's
//! `harness = false` bench targets use: [`Criterion::bench_function`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BatchSize`], [`black_box`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros. Instead of the
//! real crate's statistical machinery it takes `sample_size` wall-clock samples
//! per benchmark and prints min / median / max per iteration — enough to spot
//! order-of-magnitude regressions without any dependencies.

use std::time::{Duration, Instant};

/// Re-export point for the `std::hint::black_box` optimization barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched setup output is sized (accepted for API compatibility; the shim
/// runs one routine call per setup call regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Drives the timed routine of one benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, recording one sample per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on inputs built by `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// The benchmark driver handed to every target function.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of samples taken per benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark and prints its timing summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let mut samples = bencher.samples;
        if samples.is_empty() {
            println!("{id:<44} (no samples)");
            return self;
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        println!(
            "{id:<44} min {:>12?}  median {:>12?}  max {:>12?}  ({} samples)",
            samples[0],
            median,
            samples[samples.len() - 1],
            samples.len()
        );
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's two forms:
/// `criterion_group!(name, target, ...)` and
/// `criterion_group!(name = ...; config = ...; targets = ...)`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the `main` function running the given groups (CLI arguments from
/// `cargo bench` are accepted and ignored).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine_sample_size_times() {
        let mut calls = 0usize;
        Criterion::default()
            .sample_size(7)
            .bench_function("counting", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 7);
    }

    #[test]
    fn iter_batched_pairs_setup_with_routine() {
        let mut setups = 0usize;
        let mut runs = 0usize;
        Criterion::default()
            .sample_size(5)
            .bench_function("batched", |b| {
                b.iter_batched(
                    || {
                        setups += 1;
                        setups
                    },
                    |input| {
                        runs += 1;
                        input * 2
                    },
                    BatchSize::SmallInput,
                )
            });
        assert_eq!(setups, 5);
        assert_eq!(runs, 5);
    }

    criterion_group!(simple_group, noop_bench);

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_macro_expands_to_runnable_fn() {
        simple_group();
    }
}
