//! Offline no-op shim for thiserror's `Error` derive.

use proc_macro::TokenStream;

/// No-op stand-in for `thiserror::Error`'s derive. Accepts the real crate's
/// attributes and expands to nothing — error types in this workspace implement
/// `Display` and `std::error::Error` by hand.
#[proc_macro_derive(Error, attributes(error, source, from, backtrace))]
pub fn derive_error(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
