//! Offline no-op shim for serde's derive macros.
//!
//! Nothing in this workspace serializes values yet — the derives exist so type
//! definitions can keep the same `#[derive(Serialize, Deserialize)]` annotations
//! they will need once the real serde is wired in. Both macros accept the full
//! serde attribute namespace and expand to nothing.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
