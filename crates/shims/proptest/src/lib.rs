//! Offline API-compatible shim for the `proptest` crate.
//!
//! Implements the subset of the proptest 1.x API this workspace's property
//! tests use: the [`Strategy`](strategy::Strategy) trait with `prop_map` /
//! `prop_flat_map`, integer and float range strategies, tuple strategies,
//! [`collection::vec`] / [`collection::hash_set`], [`arbitrary::any`], and the
//! [`proptest!`] / [`prop_assert!`] macros.
//!
//! The headline difference from the real crate is **determinism**: instead of
//! OS-entropy seeding with failure-case persistence, every test derives its RNG
//! stream from an explicit seed in [`test_runner::ProptestConfig`] (workspace
//! convention `0xC1C1_0DE5`) combined with a stable hash of the test name. A
//! failing case therefore reproduces bit-for-bit on any machine. Shrinking is
//! not implemented; the failing inputs are reported via the panic message's
//! case index.

/// Strategies: composable recipes for generating test values.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating values of type `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value from `rng`.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates an intermediate value, then draws from the strategy `f`
        /// builds from it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Keeps only values satisfying `pred` (rejection sampling, giving up
        /// after 1000 tries like the real crate's local-reject limit).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                pred,
                whence,
            }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        pred: F,
        whence: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            for _ in 0..1000 {
                let v = self.inner.new_value(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 1000 candidates in a row: {}",
                self.whence
            );
        }
    }

    /// A constant strategy (`Just` in the real crate).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// `any::<T>()` — the "Standard distribution" entry point.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;
    use rand::{Rng, Standard};

    /// Strategy returned by [`any`].
    #[derive(Debug)]
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T> Clone for AnyStrategy<T> {
        fn clone(&self) -> Self {
            AnyStrategy(PhantomData)
        }
    }

    impl<T: Standard> Strategy for AnyStrategy<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            rng.gen()
        }
    }

    /// Generates any value of `T` from its standard distribution.
    pub fn any<T: Standard>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

/// Collection strategies (`vec`, `hash_set`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::collections::HashSet;
    use std::hash::Hash;

    /// A size argument: an exact count or a half-open / inclusive range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.lo..=self.hi)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Generates a `Vec` whose length is drawn from `size` and whose elements
    /// are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`hash_set`].
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            // Like the real crate, duplicates may leave the set below the
            // sampled size; we do not retry forever on small domains.
            let mut set = HashSet::with_capacity(n);
            for _ in 0..n.saturating_mul(4).max(n) {
                if set.len() >= n {
                    break;
                }
                set.insert(self.element.new_value(rng));
            }
            set
        }
    }

    /// Generates a `HashSet` with up to `size` elements drawn from `element`.
    pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S::Value: Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Test-runner configuration and the deterministic RNG.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// The workspace's default property-test seed (shared with `bench`).
    pub const DEFAULT_SEED: u64 = 0xC1C1_0DE5;

    /// Configuration for a `proptest!` block.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ProptestConfig {
        /// Number of cases each test runs.
        pub cases: u32,
        /// Base RNG seed; each test's stream is this XOR a hash of its name.
        pub seed: u64,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                seed: DEFAULT_SEED,
            }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test (default seed).
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }

        /// Overrides the base seed (builder style).
        pub fn with_seed(mut self, seed: u64) -> Self {
            self.seed = seed;
            self
        }
    }

    /// The deterministic RNG handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Derives the stream for one named test from the configured seed.
        pub fn for_test(seed: u64, test_name: &str) -> Self {
            // FNV-1a over the test name keeps streams distinct across tests
            // while staying stable across runs, hosts, and rustc versions.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(seed ^ h))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// One-glob import of everything the `proptest!` macro and strategies need.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property test (panics with the case context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares deterministic property tests.
///
/// Supports the real crate's block form: an optional
/// `#![proptest_config(expr)]` header followed by `#[test] fn name(arg in
/// strategy, ...) { body }` items. Each test loops `config.cases` times,
/// drawing fresh inputs from a deterministic per-test RNG stream.
#[macro_export]
macro_rules! proptest {
    (@impl ($cfg:expr); $($(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(config.seed, stringify!($name));
                for _case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn streams_are_deterministic_per_test_name() {
        let strat = (0usize..100, 0.0f64..1.0);
        let mut a = TestRng::for_test(0xC1C1_0DE5, "some_test");
        let mut b = TestRng::for_test(0xC1C1_0DE5, "some_test");
        let mut c = TestRng::for_test(0xC1C1_0DE5, "other_test");
        let va: Vec<_> = (0..20).map(|_| strat.new_value(&mut a)).collect();
        let vb: Vec<_> = (0..20).map(|_| strat.new_value(&mut b)).collect();
        let vc: Vec<_> = (0..20).map(|_| strat.new_value(&mut c)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64).with_seed(0xC1C1_0DE5))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 0.25f64..0.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.5).contains(&y));
        }

        #[test]
        fn vec_sizes_respect_range(v in crate::collection::vec(any::<bool>(), 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
        }

        #[test]
        fn flat_map_threads_dependencies(pair in (1usize..6).prop_flat_map(|n| {
            crate::collection::vec(0u8..2, n).prop_map(move |v| (n, v))
        })) {
            let (n, v) = pair;
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|&b| b < 2));
        }

        #[test]
        fn hash_sets_bounded(s in crate::collection::hash_set((0usize..8, 0usize..8), 0..30)) {
            prop_assert!(s.len() < 30);
        }
    }
}
