//! Offline API-compatible shim for the `serde_json` crate.
//!
//! Provides a self-contained [`Value`] tree with JSON rendering. Generic
//! `to_string<T: Serialize>` is not offered (the serde shim's traits carry no
//! methods); callers build a [`Value`] explicitly instead.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value tree (object keys are kept sorted for deterministic output).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite double (non-finite values render as `null`, like serde_json).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(BTreeMap<String, Value>),
}

impl Value {
    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => {
                if n.is_finite() {
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Value::String(s) => write_escaped(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

/// Renders a [`Value`] as compact JSON.
pub fn to_string(value: &Value) -> String {
    value.to_string()
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(n)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Number(n as f64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Self {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let mut obj = BTreeMap::new();
        obj.insert("ler".to_string(), Value::Number(1.5e-3));
        obj.insert("code".to_string(), Value::from("bb_72_12_6"));
        obj.insert("shots".to_string(), Value::from(vec![1usize, 2, 3]));
        let v = Value::Object(obj);
        assert_eq!(
            to_string(&v),
            r#"{"code":"bb_72_12_6","ler":0.0015,"shots":[1,2,3]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(to_string(&Value::from("a\"b\n")), r#""a\"b\n""#);
    }

    #[test]
    fn non_finite_numbers_are_null() {
        assert_eq!(to_string(&Value::Number(f64::NAN)), "null");
    }
}
