//! Offline API-compatible shim for the `serde_json` crate.
//!
//! Provides a self-contained [`Value`] tree with JSON rendering and parsing.
//! Generic `to_string<T: Serialize>` is not offered (the serde shim's traits
//! carry no methods); callers build a [`Value`] explicitly instead and read
//! parsed documents back through the [`Value`] accessors.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value tree (object keys are kept sorted for deterministic output).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite double (non-finite values render as `null`, like serde_json).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The number as an `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a `u64`, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element slice, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// Member lookup on objects (`None` for other variants or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => {
                if n.is_finite() {
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Value::String(s) => write_escaped(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

/// Renders a [`Value`] as compact JSON.
pub fn to_string(value: &Value) -> String {
    value.to_string()
}

/// A JSON parse error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the error in the input.
    pub offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for Error {}

/// Parses a JSON document into a [`Value`] (the shim's stand-in for
/// `serde_json::from_str`; it returns the dynamic tree instead of a typed value).
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> Error {
        Error {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("malformed \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by the cache files; map
                            // lone surrogates to the replacement character.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(b) if b < 0x80 => {
                    // ASCII fast path: no UTF-8 validation needed.
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(lead) => {
                    // Consume one multi-byte UTF-8 code point verbatim (validate
                    // only its own bytes, not the whole remaining input).
                    let len = match lead {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid UTF-8 lead byte")),
                    };
                    let end = self.pos + len;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated UTF-8 sequence"));
                    }
                    let s = std::str::from_utf8(&self.bytes[self.pos..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(n)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Number(n as f64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Self {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let mut obj = BTreeMap::new();
        obj.insert("ler".to_string(), Value::Number(1.5e-3));
        obj.insert("code".to_string(), Value::from("bb_72_12_6"));
        obj.insert("shots".to_string(), Value::from(vec![1usize, 2, 3]));
        let v = Value::Object(obj);
        assert_eq!(
            to_string(&v),
            r#"{"code":"bb_72_12_6","ler":0.0015,"shots":[1,2,3]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(to_string(&Value::from("a\"b\n")), r#""a\"b\n""#);
    }

    #[test]
    fn non_finite_numbers_are_null() {
        assert_eq!(to_string(&Value::Number(f64::NAN)), "null");
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str(" true ").unwrap(), Value::Bool(true));
        assert_eq!(from_str("false").unwrap(), Value::Bool(false));
        assert_eq!(from_str("-2.5e-3").unwrap(), Value::Number(-2.5e-3));
        assert_eq!(from_str(r#""a\"b\n""#).unwrap(), Value::from("a\"b\n"));
        assert_eq!(from_str(r#""é""#).unwrap(), Value::from("é"));
    }

    #[test]
    fn parses_nested_structures() {
        let v = from_str(r#"{"pts":[{"p":0.001,"ok":true},{"p":2e-4,"ok":false}],"n":3}"#)
            .expect("valid JSON");
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(3));
        let pts = v.get("pts").and_then(Value::as_array).expect("array");
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[1].get("p").and_then(Value::as_f64), Some(2e-4));
        assert_eq!(pts[0].get("ok").and_then(Value::as_bool), Some(true));
    }

    #[test]
    fn render_parse_roundtrips_exactly() {
        let mut obj = BTreeMap::new();
        obj.insert("ler".to_string(), Value::Number(7.0 / 400.0));
        obj.insert("id".to_string(), Value::from("fig05/[[100,4,4]]/s=1"));
        obj.insert("pts".to_string(), Value::from(vec![1usize, 2, 3]));
        let v = Value::Object(obj);
        // f64 values render via the shortest-roundtrip formatter, so a
        // render→parse cycle reproduces the tree bit-for-bit.
        assert_eq!(from_str(&to_string(&v)).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(from_str("").is_err());
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str(r#"{"a":}"#).is_err());
        assert!(from_str("1 2").is_err());
        assert!(from_str("\"unterminated").is_err());
        assert!(from_str("nul").is_err());
    }

    #[test]
    fn accessors_reject_wrong_variants() {
        assert_eq!(Value::Null.as_f64(), None);
        assert_eq!(Value::Bool(true).as_str(), None);
        assert_eq!(Value::Number(1.5).as_u64(), None);
        assert_eq!(Value::Number(-1.0).as_u64(), None);
        assert_eq!(Value::Number(3.0).as_u64(), Some(3));
        assert_eq!(Value::from("x").get("k"), None);
    }
}
