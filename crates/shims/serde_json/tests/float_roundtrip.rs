//! The sweep cache (`cyclone::sweep`) persists `p` / `latency` / `ler` / `std_err`
//! as JSON numbers and reuses a cached point only when the floats match the spec's
//! bit-for-bit. That makes exact f64 round-tripping (`to_string` → `from_str`) a
//! load-bearing property of this shim: a lossy formatter would silently invalidate
//! (or worse, mismatch) cache entries. These property tests pin it, both for the
//! value distributions the cache actually stores and for arbitrary bit patterns.

use proptest::prelude::*;
use serde_json::{from_str, to_string, Value};

/// Renders `x` as a JSON document and parses it back, returning the recovered f64.
fn round_trip(x: f64) -> f64 {
    let text = to_string(&Value::Number(x));
    match from_str(&text) {
        Ok(Value::Number(y)) => y,
        other => panic!("{x:?} rendered as {text:?} but parsed back as {other:?}"),
    }
}

fn assert_exact(x: f64) {
    let y = round_trip(x);
    assert_eq!(
        y.to_bits(),
        x.to_bits(),
        "f64 round trip lost bits: {x:?} (0x{:016x}) -> {y:?} (0x{:016x})",
        x.to_bits(),
        y.to_bits()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512).with_seed(0xC1C1_0DE5))]

    #[test]
    fn cache_like_probabilities_round_trip_exactly(p in 1e-12f64..1.0) {
        assert_exact(p);
    }

    #[test]
    fn cache_like_latencies_round_trip_exactly(latency in 0.0f64..10.0) {
        assert_exact(latency);
    }

    #[test]
    fn counting_estimates_round_trip_exactly(counts in (1usize..2_000_000, 0usize..2_000_000)) {
        // Exactly the arithmetic `LerEstimate::from_counts` performs: the ler and
        // std_err values the cache stores are derived from shot/failure counts.
        let (shots, failures) = counts;
        let failures = failures.min(shots);
        let ler = if failures == 0 {
            0.5 / shots as f64
        } else {
            failures as f64 / shots as f64
        };
        let std_err = (ler * (1.0 - ler) / shots as f64).sqrt();
        assert_exact(ler);
        assert_exact(std_err);
    }

    #[test]
    fn arbitrary_finite_bit_patterns_round_trip_exactly(bits in any::<u64>()) {
        // Subnormals, negative zero, huge magnitudes — everything finite must
        // survive. (Non-finite values render as `null` by design, like serde_json.)
        let x = f64::from_bits(bits);
        if x.is_finite() {
            assert_exact(x);
        } else {
            assert_eq!(to_string(&Value::Number(x)), "null");
        }
    }

    #[test]
    fn floats_survive_inside_documents(values in proptest::collection::vec(1e-9f64..1.0, 1..8)) {
        // The cache stores floats nested in objects/arrays; the document round
        // trip must be exact too, not just the scalar one.
        let doc = Value::Array(values.iter().map(|&v| Value::Number(v)).collect());
        let parsed = from_str(&to_string(&doc)).expect("valid document");
        let Some(items) = parsed.as_array() else { panic!("array expected") };
        assert_eq!(items.len(), values.len());
        for (orig, item) in values.iter().zip(items) {
            let got = item.as_f64().expect("number");
            assert_eq!(got.to_bits(), orig.to_bits());
        }
    }
}
