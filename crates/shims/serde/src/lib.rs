//! Offline API-compatible shim for the `serde` crate.
//!
//! Provides the `Serialize` / `Deserialize` marker traits plus the re-exported
//! no-op derives, so type definitions keep their real-serde annotations. No
//! serialization actually happens until the real crate is swapped in at the
//! workspace root.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (no methods; the no-op derive does
/// not implement it).
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (no methods; the no-op derive does
/// not implement it).
pub trait Deserialize<'de> {}
