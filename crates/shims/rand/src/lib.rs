//! Offline API-compatible shim for the `rand` crate.
//!
//! Implements the subset of the rand 0.8 API this workspace uses: the
//! [`RngCore`] / [`Rng`] / [`SeedableRng`] traits, [`rngs::StdRng`] (backed by
//! xoshiro256**), and [`seq::SliceRandom`]. The generators are deterministic
//! for a fixed seed, which is all the Monte-Carlo harness relies on.

/// Low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A random generator seedable from a byte array or a `u64`.
pub trait SeedableRng: Sized {
    /// The fixed-size byte seed.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs the generator from a full byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanded with SplitMix64 exactly
    /// like rand 0.8 does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 with the upper 32 bits discarded, matching rand_core.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly from the generator's raw words ("Standard"
/// distribution in real rand).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full integer domain: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        f64::sample(self) < p
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256**).
    ///
    /// The real `StdRng` is ChaCha12; this shim trades the exact stream for a
    /// small, fast, well-tested generator. Everything in-tree only relies on
    /// determinism for a fixed seed, not on a particular stream.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            if s == [0; 4] {
                // xoshiro must not start from the all-zero state.
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    1,
                ];
            }
            StdRng { s }
        }
    }
}

/// Slice sampling and shuffling, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn fixed_seed_reproduces_stream() {
        let mut a = StdRng::seed_from_u64(0xC1C1_0DE5);
        let mut b = StdRng::seed_from_u64(0xC1C1_0DE5);
        let va: Vec<u64> = (0..32).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.gen::<u64>()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_frequency_tracks_p() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let freq = hits as f64 / 20_000.0;
        assert!((freq - 0.25).abs() < 0.02, "freq {freq}");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(5usize..17);
            assert!((5..17).contains(&v));
            let w = rng.gen_range(1..=6u8);
            assert!((1..=6).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0..3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "50 elements should not survive a shuffle in order"
        );
    }

    #[test]
    fn choose_on_empty_is_none() {
        let mut rng = StdRng::seed_from_u64(1);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert_eq!([42u8].choose(&mut rng), Some(&42));
    }
}
