//! Offline API-compatible shim for the `rand_chacha` crate.
//!
//! Unlike the other shims this one implements the real ChaCha block function,
//! so `ChaCha8Rng` / `ChaCha12Rng` / `ChaCha20Rng` are genuine reduced-round
//! ChaCha keystream generators (counter-mode, little-endian word order). The
//! exact output stream is not guaranteed to match the published crate; only
//! determinism for a fixed seed is.

use rand::{RngCore, SeedableRng};

#[derive(Debug, Clone, PartialEq, Eq)]
struct ChaChaCore<const ROUNDS: usize> {
    state: [u32; 16],
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means "exhausted, refill".
    cursor: usize,
}

impl<const ROUNDS: usize> ChaChaCore<ROUNDS> {
    fn new(key: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes(key[4 * i..4 * i + 4].try_into().unwrap());
        }
        // 64-bit block counter in words 12..14, zero nonce in 14..16.
        ChaChaCore {
            state,
            buffer: [0; 16],
            cursor: 16,
        }
    }

    fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(16);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(12);
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(8);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(7);
    }

    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            Self::quarter_round(&mut working, 0, 4, 8, 12);
            Self::quarter_round(&mut working, 1, 5, 9, 13);
            Self::quarter_round(&mut working, 2, 6, 10, 14);
            Self::quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            Self::quarter_round(&mut working, 0, 5, 10, 15);
            Self::quarter_round(&mut working, 1, 6, 11, 12);
            Self::quarter_round(&mut working, 2, 7, 8, 13);
            Self::quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self.buffer.iter_mut().zip(working.iter().zip(&self.state)) {
            *out = w.wrapping_add(s);
        }
        // Advance the 64-bit counter.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.buffer[self.cursor];
        self.cursor += 1;
        w
    }
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct $name {
            core: ChaChaCore<$rounds>,
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                self.core.next_word()
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.core.next_word() as u64;
                let hi = self.core.next_word() as u64;
                lo | (hi << 32)
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                $name {
                    core: ChaChaCore::new(seed),
                }
            }
        }
    };
}

chacha_rng!(ChaCha8Rng, 8, "ChaCha with 8 rounds.");
chacha_rng!(ChaCha12Rng, 12, "ChaCha with 12 rounds.");
chacha_rng!(ChaCha20Rng, 20, "ChaCha with 20 rounds.");

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(0xC1C1_0DE5);
        let mut b = ChaCha8Rng::seed_from_u64(0xC1C1_0DE5);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn rounds_change_the_stream() {
        let mut r8 = ChaCha8Rng::seed_from_u64(1);
        let mut r20 = ChaCha20Rng::seed_from_u64(1);
        assert_ne!(r8.next_u64(), r20.next_u64());
    }

    #[test]
    fn usable_through_the_rng_trait() {
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let v = rng.gen_range(0usize..10);
        assert!(v < 10);
        let p = rng.gen::<f64>();
        assert!((0.0..1.0).contains(&p));
    }

    #[test]
    fn counter_advances_across_blocks() {
        let mut rng = ChaCha20Rng::seed_from_u64(5);
        let first_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first_block, second_block);
    }
}
