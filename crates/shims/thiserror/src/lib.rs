//! Offline API-compatible shim for the `thiserror` crate.
//!
//! Re-exports a no-op `Error` derive so types can keep their real-thiserror
//! annotations; `Display` and `std::error::Error` impls are written by hand
//! until the real crate is swapped in at the workspace root.

pub use thiserror_impl::Error;
