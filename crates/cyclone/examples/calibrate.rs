use cyclone::{CycloneCodesign, CycloneConfig};
use qccd::compiler::baseline::compile_baseline;
use qccd::compiler::dynamic::compile_dynamic;
use qccd::timing::OperationTimes;
use qccd::topology::{baseline_grid, ring};
use qec::codes::{bb_144_12_12, hgp_225_9_6};
use qec::schedule::{max_parallel_schedule, serial_schedule};
use std::time::Instant;

fn main() {
    let times = OperationTimes::default();
    for code in [hgp_225_9_6().unwrap(), bb_144_12_12().unwrap()] {
        println!(
            "=== {} n={} m={} ===",
            code.name(),
            code.num_qubits(),
            code.num_stabilizers()
        );
        let t0 = Instant::now();
        let grid = baseline_grid(code.num_qubits(), 5);
        let b = compile_baseline(&code, &grid, &times, &serial_schedule(&code));
        println!(
            "baseline static EJF: {:.1} ms  (shuttles {}, roadblocks {}, par {:.1})  [{:?}]",
            b.execution_time * 1e3,
            b.num_shuttles,
            b.roadblock_events,
            b.effective_parallelism(),
            t0.elapsed()
        );
        let t0 = Instant::now();
        let d = compile_dynamic(&code, &grid, &times, &max_parallel_schedule(&code));
        println!(
            "grid dynamic:        {:.1} ms  (roadblocks {}, par {:.1}) [{:?}]",
            d.execution_time * 1e3,
            d.roadblock_events,
            d.effective_parallelism(),
            t0.elapsed()
        );
        for x in [code.num_stabilizers() / 2, 64, 9] {
            let t0 = Instant::now();
            let cy = CycloneCodesign::new(&code, CycloneConfig::with_traps(x)).compile(&times);
            println!(
                "cyclone x={:3}:       {:.1} ms  [{:?}]",
                x,
                cy.execution_time * 1e3,
                t0.elapsed()
            );
        }
        // circle + static EJF (confusion matrix corner)
        let m_half = code.num_stabilizers() / 2;
        let cap = code.num_qubits().div_ceil(m_half) + 2;
        let t0 = Instant::now();
        let c = compile_baseline(&code, &ring(m_half, cap), &times, &serial_schedule(&code));
        println!(
            "ring + static EJF:   {:.1} ms [{:?}]",
            c.execution_time * 1e3,
            t0.elapsed()
        );
    }
}
