//! Cross-crate integration tests: codes → schedules → hardware compilation → noise →
//! decoding → logical error rates, exercised end to end the way the paper's evaluation
//! uses them.

use cyclone::experiments::{
    baseline_round, cyclone_round, fig16_spacetime, fig20_compiler_comparison, ler_for_round,
    spatial_summary,
};
use cyclone::{CycloneCodesign, CycloneConfig};
use decoder::memory::MemoryConfig;
use noise::{HardwareNoiseModel, NoiseParameters};
use qccd::compiler::baseline::compile_baseline;
use qccd::compiler::dynamic::compile_dynamic;
use qccd::timing::OperationTimes;
use qccd::topology::baseline_grid;
use qec::classical::ClassicalCode;
use qec::codes::{bb_72_12_6, hgp_225_9_6};
use qec::hgp::square_hypergraph_product;
use qec::schedule::{max_parallel_schedule, serial_schedule};

fn quick_config() -> MemoryConfig {
    MemoryConfig {
        shots: 200,
        bp_iterations: 20,
        threads: 4,
        seed: 99,
    }
}

#[test]
fn end_to_end_cyclone_beats_baseline_on_bb72() {
    let code = bb_72_12_6().expect("valid code");
    let times = OperationTimes::default();
    let base = baseline_round(&code, &times);
    let cyc = cyclone_round(&code, &times);

    // Temporal claim: Cyclone is faster.
    assert!(
        cyc.execution_time < base.execution_time,
        "cyclone {} s should be faster than baseline {} s",
        cyc.execution_time,
        base.execution_time
    );
    // Spatial claims: fewer traps, half the ancillas, constant DACs, no roadblocks.
    assert!(cyc.num_traps < base.num_traps);
    assert_eq!(cyc.num_ancilla * 2, base.num_ancilla);
    assert_eq!(cyc.roadblock_events, 0);
    assert!(
        base.roadblock_events > 0,
        "the baseline should hit roadblocks"
    );

    // Logical-error claim: at a fixed p in the interesting regime Cyclone's LER is
    // no worse than the baseline's (with modest statistics we only require <=).
    let cfg = quick_config();
    let p = 1e-3;
    let base_ler = ler_for_round(&code, &base, p, &cfg);
    let cyc_ler = ler_for_round(&code, &cyc, p, &cfg);
    assert!(
        cyc_ler.ler <= base_ler.ler * 1.25 + 1e-9,
        "cyclone LER {} should not exceed baseline LER {}",
        cyc_ler.ler,
        base_ler.ler
    );
}

#[test]
fn full_pipeline_on_small_hgp_surface_like_code() {
    // HGP of a repetition code = surface-like code; small enough to run the whole
    // pipeline quickly in debug mode.
    let code = square_hypergraph_product(&ClassicalCode::repetition(4)).expect("valid");
    let times = OperationTimes::default();
    let grid = baseline_grid(code.num_qubits(), 5);
    let static_round = compile_baseline(&code, &grid, &times, &serial_schedule(&code));
    let dynamic_round = compile_dynamic(&code, &grid, &times, &max_parallel_schedule(&code));
    let cyc = CycloneCodesign::new(&code, CycloneConfig::base()).compile(&times);

    assert!(static_round.execution_time > 0.0);
    assert!(dynamic_round.execution_time > 0.0);
    assert!(cyc.execution_time > 0.0);
    // Every compiler executes the same number of entangling gates.
    assert_eq!(static_round.num_gates, dynamic_round.num_gates);
    assert_eq!(static_round.num_gates, cyc.num_gates);

    // Couple the latency to the noise model and check the decoherence term reacts.
    let p = 5e-4;
    let slow = HardwareNoiseModel::new(NoiseParameters::new(p), static_round.execution_time);
    let fast = HardwareNoiseModel::new(NoiseParameters::new(p), cyc.execution_time);
    assert!(slow.effective_error_rate() > fast.effective_error_rate());
}

#[test]
fn spacetime_improvement_holds_for_both_families() {
    let times = OperationTimes::default();
    let codes = vec![bb_72_12_6().expect("valid")];
    let rows = fig16_spacetime(&codes, &times);
    for row in rows {
        assert!(
            row.improvement > 2.0,
            "{}: expected a clear spacetime win, got {:.2}x",
            row.code,
            row.improvement
        );
    }
}

#[test]
fn compiler_comparison_shows_cyclone_most_parallel() {
    let code = bb_72_12_6().expect("valid");
    let rows = fig20_compiler_comparison(&code, &OperationTimes::default());
    let cyclone = rows
        .iter()
        .find(|r| r.compiler == "Cyclone")
        .expect("present");
    let baseline = rows
        .iter()
        .find(|r| r.compiler.starts_with("Baseline ("))
        .expect("present");
    assert!(
        cyclone.execution_time < baseline.execution_time,
        "Cyclone should realize a faster schedule"
    );
}

#[test]
fn spatial_summary_matches_topologies() {
    let code = hgp_225_9_6().expect("valid");
    let rows = spatial_summary(std::slice::from_ref(&code));
    let r = &rows[0];
    // Baseline: one trap per data qubit on the 15x15 grid.
    assert_eq!(r.baseline_traps, 225);
    // Cyclone base form: m/2 = 108 traps, 108 ancillas, constant DAC count.
    assert_eq!(r.cyclone_traps, 108);
    assert_eq!(r.cyclone_ancillas, 108);
    assert_eq!(r.cyclone_dacs, 1);
    assert_eq!(r.baseline_dacs, 225);
}

#[test]
fn condensed_cyclone_trades_space_for_time() {
    let code = hgp_225_9_6().expect("valid");
    let times = OperationTimes::default();
    let base = CycloneCodesign::new(&code, CycloneConfig::base());
    let condensed = CycloneCodesign::new(&code, CycloneConfig::with_traps(27));
    let base_round = base.compile(&times);
    let condensed_round = condensed.compile(&times);
    assert!(condensed.num_traps() < base.num_traps());
    assert!(condensed.trap_capacity() > base.trap_capacity());
    // Both execute the full circuit.
    assert_eq!(base_round.num_gates, condensed_round.num_gates);
}
