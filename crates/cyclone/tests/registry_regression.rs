//! Regression pin: every trait-registry codesign produces a `CompiledRound`
//! bit-identical to the pre-refactor free-function entry points.
//!
//! The `Codesign` impls are thin wrappers over `compile_baseline*` /
//! `compile_dynamic` / `CycloneCodesign::compile`; this suite reconstructs each
//! legacy call exactly as the old `figNN_*` runners did and compares the full
//! `CompiledRound` (execution time, component breakdown, every count) with `==`.
//!
//! By default the exhaustive sweep covers the catalog codes that compile in
//! test-profile seconds ([[72,12,6]], [[90,8,10]], [[100,4,4]]) with **all**
//! registered codesigns, plus the cheap codesigns on every remaining catalog code.
//! Set `CYCLONE_FULL=1` to pin all codesigns on the complete catalog (the
//! grid/mesh compilers on [[400,16,6]] and [[625,25,8]] take minutes each in the
//! test profile).

use cyclone::codesign::{CycloneCodesign, CycloneConfig};
use cyclone::standard_registry;
use proptest::prelude::*;
use qccd::compiler::baseline::compile_baseline;
use qccd::compiler::dynamic::compile_dynamic;
use qccd::compiler::variants::{compile_baseline2, compile_baseline3};
use qccd::compiler::CompiledRound;
use qccd::timing::OperationTimes;
use qccd::topology::{alternate_grid, baseline_grid, mesh_junction_network, ring};
use qec::schedule::{max_parallel_schedule, serial_schedule};
use qec::CssCode;

/// The paper's baseline per-trap capacity (what the legacy runners hard-coded).
const CAP: usize = 5;

/// Compiles `label` the way the pre-refactor figure runners did.
fn legacy_compile(label: &str, code: &CssCode, times: &OperationTimes) -> CompiledRound {
    let n = code.num_qubits();
    match label {
        "baseline" => compile_baseline(code, &baseline_grid(n, CAP), times, &serial_schedule(code)),
        "baseline2" => {
            compile_baseline2(code, &baseline_grid(n, CAP), times, &serial_schedule(code))
        }
        "baseline3" => {
            compile_baseline3(code, &baseline_grid(n, CAP), times, &serial_schedule(code))
        }
        "dynamic-grid" => compile_dynamic(
            code,
            &baseline_grid(n, CAP),
            times,
            &max_parallel_schedule(code),
        ),
        "dynamic-mesh" => compile_dynamic(
            code,
            &mesh_junction_network(n, CAP),
            times,
            &max_parallel_schedule(code),
        ),
        "alternate-grid" => {
            compile_baseline(code, &alternate_grid(n, CAP), times, &serial_schedule(code))
        }
        "ring-static" => {
            let a = code.num_x_stabilizers().max(code.num_z_stabilizers());
            compile_baseline(
                code,
                &ring(a, n.div_ceil(a) + 2),
                times,
                &serial_schedule(code),
            )
        }
        "cyclone" => CycloneCodesign::new(code, CycloneConfig::base()).compile(times),
        other => {
            let x: usize = other
                .strip_prefix("cyclone-x")
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| panic!("unmapped codesign label `{other}`"));
            CycloneCodesign::new(code, CycloneConfig::with_traps(x)).compile(times)
        }
    }
}

/// Codesigns that compile in milliseconds on any catalog code (no discrete-event
/// simulation: the lockstep rotation has a closed-form schedule).
fn is_cheap(label: &str) -> bool {
    label.starts_with("cyclone")
}

fn full_run() -> bool {
    std::env::var("CYCLONE_FULL").ok().as_deref().map(str::trim) == Some("1")
}

fn assert_pinned(label: &str, code: &CssCode, times: &OperationTimes) {
    let registry = standard_registry();
    let via_trait = registry
        .get(label)
        .unwrap_or_else(|| panic!("codesign `{label}` not registered"))
        .compile(code, times);
    let legacy = legacy_compile(label, code, times);
    assert_eq!(
        via_trait,
        legacy,
        "codesign `{label}` diverged from the legacy entry point on {}",
        code.descriptor()
    );
}

#[test]
fn registry_codesigns_match_legacy_entry_points_on_catalog() {
    let times = OperationTimes::default();
    let registry = standard_registry();
    let catalog = qec::codes::full_catalog().expect("catalog construction");
    let full = full_run();
    for entry in &catalog {
        // The grid/mesh compilers on the large catalog codes take minutes in the
        // test profile; cover them exhaustively only in CYCLONE_FULL runs.
        let all_codesigns = full || entry.code.num_qubits() <= 100;
        for label in registry.labels() {
            if all_codesigns || is_cheap(label) {
                assert_pinned(label, &entry.code, &times);
            }
        }
    }
}

#[test]
fn registry_codesigns_match_legacy_on_medium_hgp() {
    // One mid-size HGP pin for the DAG compilers (kept out of the catalog loop so
    // its runtime is visible on its own line in test output).
    let times = OperationTimes::default();
    let code = qec::codes::hgp_225_9_6().expect("construction");
    for label in ["baseline", "dynamic-grid"] {
        assert_pinned(label, &code, &times);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12).with_seed(0xC1C1_0DE5))]

    // The pin must hold at any operating point, not just the default timings:
    // random uniform reductions and junction reductions exercise the full
    // `OperationTimes` surface the sensitivity figures sweep.
    #[test]
    fn registry_matches_legacy_under_scaled_times(
        reduction in 0.0f64..0.9,
        junction_reduction in 0.0f64..0.9,
        codesign in 0usize..10,
        code_pick in 0usize..2,
    ) {
        let code = if code_pick == 0 {
            qec::codes::bb_72_12_6().expect("valid")
        } else {
            qec::codes::hgp_100().expect("valid")
        };
        let times = OperationTimes::default()
            .scaled(reduction)
            .with_junction_reduction(junction_reduction);
        let registry = standard_registry();
        let labels = registry.labels();
        let label = labels[codesign % labels.len()];
        assert_pinned(label, &code, &times);
    }
}
