//! Sweep-engine behavior: determinism across pool sizes, cache hit/miss/corruption
//! semantics (fixed and adaptive), torn-write resistance of the cache file, and the
//! `covers_all_gates` invariant for every registered codesign.

use cyclone::standard_registry;
use cyclone::sweep::{run_sweep, ScenarioSpec, SweepOptions};
use decoder::memory::{MemoryConfig, PrecisionTarget};
use noise::{ChannelSpec, ErrorChannel};
use std::path::PathBuf;

fn quick_config(threads: usize) -> MemoryConfig {
    MemoryConfig {
        shots: 60,
        bp_iterations: 12,
        threads,
        seed: 0xC1C1_0DE5,
    }
}

fn tiny_spec(figure: &str) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(figure);
    let bb = spec.code(qec::codes::bb_72_12_6().expect("valid"));
    let hgp = spec.code(qec::codes::hgp_100().expect("valid"));
    spec.point("bb/p=3e-3", bb, 3e-3, 0.01);
    spec.point("bb/p=8e-3", bb, 8e-3, 0.01);
    spec.point("hgp/p=3e-3", hgp, 3e-3, 0.02);
    spec.point("hgp/p=8e-3", hgp, 8e-3, 0.0);
    spec
}

/// A unique scratch directory per test, cleaned up on entry (no timestamps: the
/// test name keys it, the process id separates concurrent suite runs).
fn scratch_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cyclone-sweep-{}-{test}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn sweep_is_deterministic_across_pool_sizes() {
    // The CYCLONE_THREADS knob feeds MemoryConfig::threads; the engine must be
    // bit-identical at 1 and 4 workers.
    let spec = tiny_spec("det");
    let one = run_sweep(&spec, &SweepOptions::ephemeral(quick_config(1)));
    let four = run_sweep(&spec, &SweepOptions::ephemeral(quick_config(4)));
    for (a, b) in one.points.iter().zip(&four.points) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.ler.failures, b.ler.failures, "point {} diverged", a.id);
        assert_eq!(a.ler.ler, b.ler.ler);
        assert_eq!(a.ler.std_err, b.ler.std_err);
    }
}

#[test]
fn cache_round_trip_serves_identical_estimates() {
    let dir = scratch_dir("roundtrip");
    let spec = tiny_spec("roundtrip");
    let options = SweepOptions::cached(quick_config(2), &dir);

    let first = run_sweep(&spec, &options);
    assert_eq!(first.computed, 4);
    assert_eq!(first.cache_hits, 0);
    assert!(
        dir.join("roundtrip.json").is_file(),
        "cache file must be written"
    );

    let second = run_sweep(&spec, &options);
    assert_eq!(second.cache_hits, 4, "second run must be fully cached");
    assert_eq!(second.computed, 0);
    for (a, b) in first.points.iter().zip(&second.points) {
        assert_eq!(a.ler.failures, b.ler.failures);
        assert_eq!(a.ler.ler, b.ler.ler);
        assert_eq!(
            a.ler.std_err, b.ler.std_err,
            "reconstructed estimate must round-trip"
        );
        assert!(b.cached);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_cache_falls_back_to_recompute() {
    let dir = scratch_dir("corrupt");
    let spec = tiny_spec("corrupt");
    let options = SweepOptions::cached(quick_config(2), &dir);
    let first = run_sweep(&spec, &options);

    // Truncated JSON → full recompute, and the file is repaired afterwards.
    std::fs::write(dir.join("corrupt.json"), "{\"figure\": \"corrupt\", \"poi").expect("write");
    let after_corruption = run_sweep(&spec, &options);
    assert_eq!(
        after_corruption.cache_hits, 0,
        "corrupt cache must not serve hits"
    );
    assert_eq!(after_corruption.computed, 4);
    for (a, b) in first.points.iter().zip(&after_corruption.points) {
        assert_eq!(
            a.ler.ler, b.ler.ler,
            "recompute must reproduce the original estimate"
        );
    }
    let repaired = run_sweep(&spec, &options);
    assert_eq!(
        repaired.cache_hits, 4,
        "cache file must be rewritten after corruption"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn changed_configuration_invalidates_the_cache() {
    let dir = scratch_dir("config");
    let spec = tiny_spec("config");
    run_sweep(&spec, &SweepOptions::cached(quick_config(2), &dir));

    // More shots → the quick-run cache must not satisfy the full-shot run.
    let full = run_sweep(
        &spec,
        &SweepOptions::cached(
            MemoryConfig {
                shots: 90,
                ..quick_config(2)
            },
            &dir,
        ),
    );
    assert_eq!(full.cache_hits, 0);
    assert!(full.points.iter().all(|p| p.ler.shots == 90));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn changed_operating_point_recomputes_only_that_point() {
    let dir = scratch_dir("partial");
    let spec = tiny_spec("partial");
    run_sweep(&spec, &SweepOptions::cached(quick_config(2), &dir));

    // Same ids, one point moved to a new latency → 3 hits + 1 recompute.
    let mut moved = ScenarioSpec::new("partial");
    let bb = moved.code(qec::codes::bb_72_12_6().expect("valid"));
    let hgp = moved.code(qec::codes::hgp_100().expect("valid"));
    moved.point("bb/p=3e-3", bb, 3e-3, 0.01);
    moved.point("bb/p=8e-3", bb, 8e-3, 0.25);
    moved.point("hgp/p=3e-3", hgp, 3e-3, 0.02);
    moved.point("hgp/p=8e-3", hgp, 8e-3, 0.0);
    let result = run_sweep(&moved, &SweepOptions::cached(quick_config(2), &dir));
    assert_eq!(result.cache_hits, 3);
    assert_eq!(result.computed, 1);
    assert!(
        !result.points[1].cached,
        "the moved point must be recomputed"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_validates_seeds_above_f64_precision() {
    // Regression: the seed is stored as a decimal string because the JSON shim's
    // numbers are f64 — a seed above 2^53 must still produce cache hits.
    let dir = scratch_dir("bigseed");
    let spec = tiny_spec("bigseed");
    let config = MemoryConfig {
        seed: (1u64 << 53) + 1,
        ..quick_config(2)
    };
    run_sweep(&spec, &SweepOptions::cached(config, &dir));
    let second = run_sweep(&spec, &SweepOptions::cached(config, &dir));
    assert_eq!(
        second.cache_hits, 4,
        "odd 54-bit seed must round-trip the cache"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_cache_dir_is_created() {
    let dir = scratch_dir("mkdir").join("nested/deeper");
    let spec = tiny_spec("mkdir");
    let result = run_sweep(&spec, &SweepOptions::cached(quick_config(2), &dir));
    assert_eq!(result.computed, 4);
    assert!(dir.join("mkdir.json").is_file());
    let _ = std::fs::remove_dir_all(dir.parent().unwrap().parent().unwrap());
}

/// A one-code spec whose points fail often (high p), so loose precision targets
/// stop well before the cap and the adaptive tests stay fast.
fn noisy_spec(figure: &str) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(figure);
    let bb = spec.code(qec::codes::bb_72_12_6().expect("valid"));
    spec.point("bb/p=4e-2", bb, 4e-2, 0.0);
    spec.point("bb/p=6e-2", bb, 6e-2, 0.0);
    spec
}

fn loose_target() -> PrecisionTarget {
    PrecisionTarget::new(0.4, 6, 2_000)
}

#[test]
fn adaptive_sweep_is_deterministic_across_pool_sizes_and_matches_direct_runs() {
    let spec = noisy_spec("adaptive-det");
    let target = loose_target();
    let one = run_sweep(
        &spec,
        &SweepOptions::ephemeral(quick_config(1)).with_precision(target),
    );
    let four = run_sweep(
        &spec,
        &SweepOptions::ephemeral(quick_config(4)).with_precision(target),
    );
    for (a, b) in one.points.iter().zip(&four.points) {
        assert_eq!(
            a.ler, b.ler,
            "adaptive point {} diverged across pool sizes",
            a.id
        );
        assert!(
            a.ler.shots < 2_000,
            "high-failure point {} should stop early",
            a.id
        );
        assert!(target.met_by(a.ler.shots, a.ler.failures));
    }
    // Each adaptive estimate is the fixed estimate of its own shot count (the
    // stop rule chooses the budget, never the sample).
    for (point, outcome) in spec.points.iter().zip(&one.points) {
        let fixed = decoder::memory::logical_error_rate(
            &spec.codes[point.code],
            point.p,
            point.latency,
            &MemoryConfig {
                shots: outcome.ler.shots,
                ..quick_config(1)
            },
        );
        assert_eq!(
            outcome.ler, fixed,
            "{} is not a prefix of the fixed path",
            point.id
        );
    }
}

#[test]
fn disabled_precision_pins_the_fixed_path_bit_identically() {
    // With no precision target the engine must reproduce exactly what the
    // pre-adaptive fixed-budget engine produced (same shots, same failures, same
    // floats) — the regression pin for `--target-rse`-disabled runs.
    let spec = tiny_spec("fixed-pin");
    let config = quick_config(2);
    let result = run_sweep(&spec, &SweepOptions::ephemeral(config));
    for (point, outcome) in spec.points.iter().zip(&result.points) {
        let direct = decoder::memory::logical_error_rate(
            &spec.codes[point.code],
            point.p,
            point.latency,
            &config,
        );
        assert_eq!(
            outcome.ler, direct,
            "point {} diverged from the fixed path",
            point.id
        );
        assert_eq!(outcome.ler.shots, config.shots);
    }
}

#[test]
fn adaptive_request_reuses_sufficiently_precise_cache_entries() {
    let dir = scratch_dir("adaptive-reuse");
    let spec = noisy_spec("adaptive-reuse");
    let target = loose_target();

    // An adaptive run populates the cache with per-point spent shots...
    let adaptive = SweepOptions::cached(quick_config(2), &dir).with_precision(target);
    let first = run_sweep(&spec, &adaptive);
    assert_eq!(first.computed, 2);

    // ... which a second adaptive run reuses wholesale ...
    let second = run_sweep(&spec, &adaptive);
    assert_eq!(
        second.cache_hits, 2,
        "meets-or-exceeds entries must be reused"
    );
    for (a, b) in first.points.iter().zip(&second.points) {
        assert_eq!(a.ler, b.ler);
    }

    // ... and a *looser* target is also satisfied by the same entries.
    let looser = SweepOptions::cached(quick_config(2), &dir)
        .with_precision(PrecisionTarget::new(0.6, 3, 2_000));
    assert_eq!(run_sweep(&spec, &looser).cache_hits, 2);

    // A tighter target is not: every point recomputes.
    let tighter = SweepOptions::cached(quick_config(2), &dir)
        .with_precision(PrecisionTarget::new(0.05, 400, 4_000));
    let retightened = run_sweep(&spec, &tighter);
    assert_eq!(
        retightened.cache_hits, 0,
        "looser cached points must not satisfy a tighter target"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fixed_full_shot_cache_serves_adaptive_requests_but_not_vice_versa() {
    let dir = scratch_dir("adaptive-cross");
    let spec = noisy_spec("adaptive-cross");
    let config = MemoryConfig {
        shots: 400,
        ..quick_config(2)
    };

    // A fixed 400-shot run at p=4e-2 sees ~30+ failures — precise enough for the
    // loose target, so the adaptive request is served from the fixed cache.
    let fixed_run = run_sweep(&spec, &SweepOptions::cached(config, &dir));
    assert!(fixed_run.points.iter().all(|p| p.ler.failures >= 6));
    let adaptive = SweepOptions::cached(config, &dir).with_precision(loose_target());
    let served = run_sweep(&spec, &adaptive);
    assert_eq!(
        served.cache_hits, 2,
        "full-shot entries meet the target and must be reused"
    );
    for (a, b) in fixed_run.points.iter().zip(&served.points) {
        assert_eq!(a.ler, b.ler);
    }

    // The adaptive rewrite records the (still 400-shot) entries; a fixed request
    // with a different budget must recompute rather than accept them.
    let other_budget = run_sweep(
        &spec,
        &SweepOptions::cached(
            MemoryConfig {
                shots: 90,
                ..config
            },
            &dir,
        ),
    );
    assert_eq!(
        other_budget.cache_hits, 0,
        "fixed requests require the exact budget"
    );
    assert!(other_budget.points.iter().all(|p| p.ler.shots == 90));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn per_point_precision_overrides_the_sweep_default() {
    let mut spec = ScenarioSpec::new("per-point");
    let bb = spec.code(qec::codes::bb_72_12_6().expect("valid"));
    spec.point("fixed", bb, 4e-2, 0.0);
    spec.point_precise("adaptive", bb, 4e-2, 0.0, loose_target());
    let config = quick_config(2);
    let result = run_sweep(&spec, &SweepOptions::ephemeral(config));
    assert_eq!(
        result.points[0].ler.shots, config.shots,
        "unannotated point stays fixed"
    );
    assert_ne!(
        result.points[1].ler.shots, config.shots,
        "annotated point samples adaptively"
    );
    assert!(loose_target().met_by(result.points[1].ler.shots, result.points[1].ler.failures));
}

#[test]
fn zero_shot_sweep_produces_empty_estimates_not_phantoms() {
    // Regression companion to the decoder-level fix: a zero-shot sweep must not
    // fabricate 1-shot estimates, and its cache entries must never be reused.
    let dir = scratch_dir("zeroshot");
    let spec = tiny_spec("zeroshot");
    let options = SweepOptions::cached(
        MemoryConfig {
            shots: 0,
            ..quick_config(2)
        },
        &dir,
    );
    let result = run_sweep(&spec, &options);
    assert!(result.points.iter().all(|p| p.ler.is_empty()));
    assert!(result.points.iter().all(|p| !p.ler.is_upper_bound()));
    let again = run_sweep(&spec, &options);
    assert_eq!(
        again.cache_hits, 0,
        "zero-shot entries must never be served from cache"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_writers_never_tear_the_cache_file() {
    // Two sweeps with different Monte-Carlo configurations race on one cache file
    // while readers continuously parse it: with atomic temp-file + rename writes,
    // every observed snapshot is one writer's complete document.
    let dir = scratch_dir("torn");
    let path = dir.join("torn.json");
    let stop = std::sync::atomic::AtomicBool::new(false);
    let writer = |seed: u64| {
        let spec = {
            let mut spec = ScenarioSpec::new("torn");
            let bb = spec.code(qec::codes::bb_72_12_6().expect("valid"));
            spec.point("a", bb, 5e-2, 0.0);
            spec
        };
        let options = SweepOptions::cached(
            MemoryConfig {
                shots: 4,
                seed,
                threads: 1,
                ..quick_config(1)
            },
            &dir,
        );
        for _ in 0..12 {
            run_sweep(&spec, &options);
        }
    };
    std::thread::scope(|scope| {
        let handles = [scope.spawn(|| writer(1)), scope.spawn(|| writer(2))];
        let reader = scope.spawn(|| {
            let mut observed = 0usize;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                if let Ok(text) = std::fs::read_to_string(&path) {
                    assert!(
                        serde_json::from_str(&text).is_ok(),
                        "torn cache file observed ({} bytes): {text:?}",
                        text.len()
                    );
                    observed += 1;
                }
                std::thread::yield_now();
            }
            observed
        });
        for handle in handles {
            handle.join().expect("writer");
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let observed = reader.join().expect("reader");
        assert!(
            observed > 0,
            "reader must have observed the cache file at least once"
        );
    });
    // No stray temp files: every write either published or cleaned up.
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .expect("cache dir exists")
        .filter_map(Result::ok)
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|name| name.contains(".tmp."))
        .collect();
    assert!(
        leftovers.is_empty(),
        "stray temp files left behind: {leftovers:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn schema3_channel_entries_round_trip() {
    // A structured-channel sweep writes schema-3 entries whose channel identity is
    // honored on re-read: same spec → full hits, identical estimates.
    let dir = scratch_dir("channel-roundtrip");
    let spec = noisy_spec("channel-roundtrip");
    let biased = SweepOptions::cached(quick_config(2), &dir)
        .with_channel(ChannelSpec::Biased { meas_ratio: 2.0 });
    let first = run_sweep(&spec, &biased);
    assert_eq!(first.computed, 2);
    let text = std::fs::read_to_string(dir.join("channel-roundtrip.json")).expect("cache written");
    let doc = serde_json::from_str(&text).expect("valid JSON");
    assert_eq!(
        doc.get("schema").and_then(serde_json::Value::as_u64),
        Some(3)
    );
    assert!(
        text.contains("\"channel\":\"biased:2\""),
        "entries must record the channel id: {text}"
    );

    let second = run_sweep(&spec, &biased);
    assert_eq!(
        second.cache_hits, 2,
        "same channel must be served from cache"
    );
    for (a, b) in first.points.iter().zip(&second.points) {
        assert_eq!(a.ler, b.ler);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn channel_mismatch_invalidates_cached_points() {
    let dir = scratch_dir("channel-mismatch");
    let spec = noisy_spec("channel-mismatch");
    let config = quick_config(2);

    // Uniform entries do not serve a biased request ...
    run_sweep(&spec, &SweepOptions::cached(config, &dir));
    let biased =
        SweepOptions::cached(config, &dir).with_channel(ChannelSpec::Biased { meas_ratio: 3.0 });
    let crossed = run_sweep(&spec, &biased);
    assert_eq!(
        crossed.cache_hits, 0,
        "uniform entries must not satisfy a biased request"
    );

    // ... a biased cache does not serve a different ratio or a uniform request ...
    let other_ratio =
        SweepOptions::cached(config, &dir).with_channel(ChannelSpec::Biased { meas_ratio: 0.5 });
    assert_eq!(run_sweep(&spec, &other_ratio).cache_hits, 0);
    let uniform_again = run_sweep(&spec, &SweepOptions::cached(config, &dir));
    assert_eq!(
        uniform_again.cache_hits, 0,
        "biased entries must not satisfy a uniform request"
    );

    // ... and two explicit channels with different rates have distinct identities.
    let code = qec::codes::bb_72_12_6().expect("valid");
    let (n, m) = (code.num_qubits(), code.num_stabilizers());
    let explicit_a = SweepOptions::cached(config, &dir).with_channel(ChannelSpec::Explicit(
        ErrorChannel::biased(n, m, 0.04, 0.01),
    ));
    let explicit_b = SweepOptions::cached(config, &dir).with_channel(ChannelSpec::Explicit(
        ErrorChannel::biased(n, m, 0.04, 0.02),
    ));
    let a1 = run_sweep(&spec, &explicit_a);
    assert_eq!(a1.cache_hits, 0);
    assert_eq!(
        run_sweep(&spec, &explicit_a).cache_hits,
        2,
        "identical explicit channel must hit"
    );
    assert_eq!(
        run_sweep(&spec, &explicit_b).cache_hits,
        0,
        "different rates, different digest"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn biased_points_see_more_failures_than_uniform_under_the_same_seeds() {
    // End-to-end sanity of the channel plumbing through the engine: measurement
    // noise makes decoding strictly harder at matched data rates.
    let spec = noisy_spec("channel-effect");
    let config = quick_config(2);
    let uniform = run_sweep(&spec, &SweepOptions::ephemeral(config));
    let biased = run_sweep(
        &spec,
        &SweepOptions::ephemeral(config).with_channel(ChannelSpec::Biased { meas_ratio: 10.0 }),
    );
    let uniform_failures: usize = uniform.points.iter().map(|p| p.ler.failures).sum();
    let biased_failures: usize = biased.points.iter().map(|p| p.ler.failures).sum();
    assert!(
        biased_failures > uniform_failures,
        "heavy measurement bias ({biased_failures}) should exceed uniform ({uniform_failures})"
    );
}

/// Writes a hand-crafted pre-schema-3 cache file (optionally with a `schema` header,
/// as schema 2 had; schema 1 had none) whose entries carry no `channel` field.
fn write_legacy_cache(
    dir: &std::path::Path,
    figure: &str,
    schema: Option<u64>,
    config: &MemoryConfig,
) {
    std::fs::create_dir_all(dir).expect("mkdir");
    let schema_field = schema.map_or(String::new(), |s| format!("\"schema\":{s},"));
    let text = format!(
        "{{{schema_field}\"figure\":\"{figure}\",\"seed\":\"{}\",\"shots\":{},\"bp_iterations\":{},\
         \"points\":[\
         {{\"id\":\"bb/p=4e-2\",\"p\":0.04,\"latency\":0,\"shots\":{},\"failures\":9,\"ler\":0.15,\"std_err\":0.046}},\
         {{\"id\":\"bb/p=6e-2\",\"p\":0.06,\"latency\":0,\"shots\":{},\"failures\":21,\"ler\":0.35,\"std_err\":0.061}}\
         ]}}\n",
        config.seed, config.shots, config.bp_iterations, config.shots, config.shots
    );
    std::fs::write(dir.join(format!("{figure}.json")), text).expect("write legacy cache");
}

#[test]
fn legacy_schema_1_and_2_caches_serve_uniform_requests_only() {
    // Pre-channel cache files (schema 1: no header at all; schema 2: header but no
    // per-entry channel) stay readable unmigrated: their entries were all sampled
    // under the uniform channel, so they hit for uniform requests and are
    // invalidated for structured ones.
    let config = quick_config(2);
    for (name, schema) in [("legacy-s1", None), ("legacy-s2", Some(2u64))] {
        let dir = scratch_dir(name);
        let spec = noisy_spec(name);
        write_legacy_cache(&dir, name, schema, &config);

        let uniform = run_sweep(&spec, &SweepOptions::cached(config, &dir));
        assert_eq!(
            uniform.cache_hits, 2,
            "{name}: legacy entries must serve uniform requests"
        );
        assert_eq!(
            uniform.points[0].ler.failures, 9,
            "{name}: counts come from the legacy file"
        );
        assert_eq!(uniform.points[1].ler.failures, 21);

        write_legacy_cache(&dir, name, schema, &config);
        let biased = run_sweep(
            &spec,
            &SweepOptions::cached(config, &dir)
                .with_channel(ChannelSpec::Biased { meas_ratio: 2.0 }),
        );
        assert_eq!(
            biased.cache_hits, 0,
            "{name}: legacy entries must not serve structured requests"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn per_point_channel_overrides_the_sweep_default() {
    let mut spec = ScenarioSpec::new("per-point-channel");
    let bb = spec.code(qec::codes::bb_72_12_6().expect("valid"));
    spec.point("uniform", bb, 4e-2, 0.0);
    spec.point_channel(
        "biased",
        bb,
        4e-2,
        0.0,
        ChannelSpec::Biased { meas_ratio: 10.0 },
    );
    let result = run_sweep(&spec, &SweepOptions::ephemeral(quick_config(2)));
    let direct = decoder::memory::logical_error_rate(&spec.codes[0], 4e-2, 0.0, &quick_config(2));
    assert_eq!(
        result.points[0].ler, direct,
        "unannotated point stays uniform"
    );
    assert!(
        result.points[1].ler.failures > result.points[0].ler.failures,
        "annotated point samples under its own biased channel"
    );
}

#[test]
fn every_registered_codesign_covers_all_gates() {
    // The Cyclone-specific invariant generalized through the trait: every codesign
    // must execute each stabilizer-support gate exactly once, on both code
    // families. (The expensive grid/mesh codesigns are exercised on the small
    // catalog codes; CYCLONE_FULL=1 in the regression suite covers the rest.)
    let registry = standard_registry();
    for code in [
        qec::codes::bb_72_12_6().expect("valid"),
        qec::codes::hgp_100().expect("valid"),
    ] {
        for design in registry.iter() {
            assert!(
                design.covers_all_gates(&code),
                "codesign `{}` missed gates on {}",
                design.name(),
                code.descriptor()
            );
        }
    }
}

#[test]
fn decode_cache_dir_is_bit_identical_and_persists_files() {
    // The persistent decode cache memoizes pure decoder outputs, so enabling it
    // (cold or warm) must never change an estimate — under a structured channel
    // that exercises the OSD fallback as well as under uniform noise.
    let dir = scratch_dir("decode-cache");
    let spec = tiny_spec("decode-cache");
    let config = quick_config(2);
    let channel = ChannelSpec::Biased { meas_ratio: 4.0 };

    let plain = run_sweep(
        &spec,
        &SweepOptions::ephemeral(config).with_channel(channel.clone()),
    );
    let writing = run_sweep(
        &spec,
        &SweepOptions::ephemeral(config)
            .with_channel(channel.clone())
            .with_decode_cache_dir(&dir),
    );
    let files: Vec<_> = std::fs::read_dir(&dir)
        .expect("decode cache dir created")
        .collect();
    assert!(!files.is_empty(), "cold run persisted decode caches");
    let warm = run_sweep(
        &spec,
        &SweepOptions::ephemeral(config)
            .with_channel(channel)
            .with_decode_cache_dir(&dir),
    );
    for ((a, b), c) in plain.points.iter().zip(&writing.points).zip(&warm.points) {
        assert_eq!(
            a.ler.failures, b.ler.failures,
            "cold run diverged at {}",
            a.id
        );
        assert_eq!(a.ler.ler, b.ler.ler);
        assert_eq!(
            a.ler.failures, c.ler.failures,
            "warm run diverged at {}",
            a.id
        );
        assert_eq!(a.ler.ler, c.ler.ler);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
