//! Sweep-engine behavior: determinism across pool sizes, cache hit/miss/corruption
//! semantics, and the `covers_all_gates` invariant for every registered codesign.

use cyclone::standard_registry;
use cyclone::sweep::{run_sweep, ScenarioSpec, SweepOptions};
use decoder::memory::MemoryConfig;
use std::path::PathBuf;

fn quick_config(threads: usize) -> MemoryConfig {
    MemoryConfig {
        shots: 60,
        bp_iterations: 12,
        threads,
        seed: 0xC1C1_0DE5,
    }
}

fn tiny_spec(figure: &str) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(figure);
    let bb = spec.code(qec::codes::bb_72_12_6().expect("valid"));
    let hgp = spec.code(qec::codes::hgp_100().expect("valid"));
    spec.point("bb/p=3e-3", bb, 3e-3, 0.01);
    spec.point("bb/p=8e-3", bb, 8e-3, 0.01);
    spec.point("hgp/p=3e-3", hgp, 3e-3, 0.02);
    spec.point("hgp/p=8e-3", hgp, 8e-3, 0.0);
    spec
}

/// A unique scratch directory per test, cleaned up on entry (no timestamps: the
/// test name keys it, the process id separates concurrent suite runs).
fn scratch_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cyclone-sweep-{}-{test}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn sweep_is_deterministic_across_pool_sizes() {
    // The CYCLONE_THREADS knob feeds MemoryConfig::threads; the engine must be
    // bit-identical at 1 and 4 workers.
    let spec = tiny_spec("det");
    let one = run_sweep(&spec, &SweepOptions::ephemeral(quick_config(1)));
    let four = run_sweep(&spec, &SweepOptions::ephemeral(quick_config(4)));
    for (a, b) in one.points.iter().zip(&four.points) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.ler.failures, b.ler.failures, "point {} diverged", a.id);
        assert_eq!(a.ler.ler, b.ler.ler);
        assert_eq!(a.ler.std_err, b.ler.std_err);
    }
}

#[test]
fn cache_round_trip_serves_identical_estimates() {
    let dir = scratch_dir("roundtrip");
    let spec = tiny_spec("roundtrip");
    let options = SweepOptions::cached(quick_config(2), &dir);

    let first = run_sweep(&spec, &options);
    assert_eq!(first.computed, 4);
    assert_eq!(first.cache_hits, 0);
    assert!(dir.join("roundtrip.json").is_file(), "cache file must be written");

    let second = run_sweep(&spec, &options);
    assert_eq!(second.cache_hits, 4, "second run must be fully cached");
    assert_eq!(second.computed, 0);
    for (a, b) in first.points.iter().zip(&second.points) {
        assert_eq!(a.ler.failures, b.ler.failures);
        assert_eq!(a.ler.ler, b.ler.ler);
        assert_eq!(a.ler.std_err, b.ler.std_err, "reconstructed estimate must round-trip");
        assert!(b.cached);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_cache_falls_back_to_recompute() {
    let dir = scratch_dir("corrupt");
    let spec = tiny_spec("corrupt");
    let options = SweepOptions::cached(quick_config(2), &dir);
    let first = run_sweep(&spec, &options);

    // Truncated JSON → full recompute, and the file is repaired afterwards.
    std::fs::write(dir.join("corrupt.json"), "{\"figure\": \"corrupt\", \"poi").expect("write");
    let after_corruption = run_sweep(&spec, &options);
    assert_eq!(after_corruption.cache_hits, 0, "corrupt cache must not serve hits");
    assert_eq!(after_corruption.computed, 4);
    for (a, b) in first.points.iter().zip(&after_corruption.points) {
        assert_eq!(a.ler.ler, b.ler.ler, "recompute must reproduce the original estimate");
    }
    let repaired = run_sweep(&spec, &options);
    assert_eq!(repaired.cache_hits, 4, "cache file must be rewritten after corruption");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn changed_configuration_invalidates_the_cache() {
    let dir = scratch_dir("config");
    let spec = tiny_spec("config");
    run_sweep(&spec, &SweepOptions::cached(quick_config(2), &dir));

    // More shots → the quick-run cache must not satisfy the full-shot run.
    let full = run_sweep(
        &spec,
        &SweepOptions::cached(MemoryConfig { shots: 90, ..quick_config(2) }, &dir),
    );
    assert_eq!(full.cache_hits, 0);
    assert!(full.points.iter().all(|p| p.ler.shots == 90));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn changed_operating_point_recomputes_only_that_point() {
    let dir = scratch_dir("partial");
    let spec = tiny_spec("partial");
    run_sweep(&spec, &SweepOptions::cached(quick_config(2), &dir));

    // Same ids, one point moved to a new latency → 3 hits + 1 recompute.
    let mut moved = ScenarioSpec::new("partial");
    let bb = moved.code(qec::codes::bb_72_12_6().expect("valid"));
    let hgp = moved.code(qec::codes::hgp_100().expect("valid"));
    moved.point("bb/p=3e-3", bb, 3e-3, 0.01);
    moved.point("bb/p=8e-3", bb, 8e-3, 0.25);
    moved.point("hgp/p=3e-3", hgp, 3e-3, 0.02);
    moved.point("hgp/p=8e-3", hgp, 8e-3, 0.0);
    let result = run_sweep(&moved, &SweepOptions::cached(quick_config(2), &dir));
    assert_eq!(result.cache_hits, 3);
    assert_eq!(result.computed, 1);
    assert!(!result.points[1].cached, "the moved point must be recomputed");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_validates_seeds_above_f64_precision() {
    // Regression: the seed is stored as a decimal string because the JSON shim's
    // numbers are f64 — a seed above 2^53 must still produce cache hits.
    let dir = scratch_dir("bigseed");
    let spec = tiny_spec("bigseed");
    let config = MemoryConfig {
        seed: (1u64 << 53) + 1,
        ..quick_config(2)
    };
    run_sweep(&spec, &SweepOptions::cached(config, &dir));
    let second = run_sweep(&spec, &SweepOptions::cached(config, &dir));
    assert_eq!(second.cache_hits, 4, "odd 54-bit seed must round-trip the cache");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_cache_dir_is_created() {
    let dir = scratch_dir("mkdir").join("nested/deeper");
    let spec = tiny_spec("mkdir");
    let result = run_sweep(&spec, &SweepOptions::cached(quick_config(2), &dir));
    assert_eq!(result.computed, 4);
    assert!(dir.join("mkdir.json").is_file());
    let _ = std::fs::remove_dir_all(dir.parent().unwrap().parent().unwrap());
}

#[test]
fn every_registered_codesign_covers_all_gates() {
    // The Cyclone-specific invariant generalized through the trait: every codesign
    // must execute each stabilizer-support gate exactly once, on both code
    // families. (The expensive grid/mesh codesigns are exercised on the small
    // catalog codes; CYCLONE_FULL=1 in the regression suite covers the rest.)
    let registry = standard_registry();
    for code in [
        qec::codes::bb_72_12_6().expect("valid"),
        qec::codes::hgp_100().expect("valid"),
    ] {
        for design in registry.iter() {
            assert!(
                design.covers_all_gates(&code),
                "codesign `{}` missed gates on {}",
                design.name(),
                code.descriptor()
            );
        }
    }
}
