//! Distributed-sweep invariants: deterministic shard partitioning, shard-cache
//! merging back to the bit-identical single-process result (any layout,
//! including empty shards), merge commutativity/idempotence on real caches,
//! corrupt-shard fallback, resume-after-kill, and the read-only main-cache
//! fallback workers use.

use cyclone::sweep::{run_sweep, shard_of, ScenarioSpec, Shard, SweepOptions};
use cyclone::sweep_cache::{merge_files, verify_file};
use decoder::memory::MemoryConfig;
use proptest::prelude::*;
use std::path::{Path, PathBuf};

fn quick_config(threads: usize) -> MemoryConfig {
    MemoryConfig {
        shots: 60,
        bp_iterations: 12,
        threads,
        seed: 0xC1C1_0DE5,
    }
}

fn tiny_spec(figure: &str) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(figure);
    let bb = spec.code(qec::codes::bb_72_12_6().expect("valid"));
    let hgp = spec.code(qec::codes::hgp_100().expect("valid"));
    spec.point("bb/p=3e-3", bb, 3e-3, 0.01);
    spec.point("bb/p=8e-3", bb, 8e-3, 0.01);
    spec.point("hgp/p=3e-3", hgp, 3e-3, 0.02);
    spec.point("hgp/p=8e-3", hgp, 8e-3, 0.0);
    spec
}

/// A unique scratch directory per test, cleaned up on entry (no timestamps: the
/// test name keys it, the process id separates concurrent suite runs).
fn scratch_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cyclone-sharded-{}-{test}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn shard_dir(root: &Path, shard: Shard) -> PathBuf {
    root.join("shards")
        .join(format!("{}-of-{}", shard.index, shard.total))
}

/// Runs every shard of an N-way layout (each into its own shard-local cache),
/// merges the shard caches into `<root>/<figure>.json`, and returns the number
/// of points each shard computed.
fn run_fleet(spec: &ScenarioSpec, root: &Path, total: usize, threads: usize) -> Vec<usize> {
    let mut computed = Vec::new();
    let mut sources = Vec::new();
    for index in 0..total {
        let shard = Shard::new(index, total);
        let dir = shard_dir(root, shard);
        let options = SweepOptions::cached(quick_config(threads), &dir)
            .with_shard(shard)
            .with_checkpoint(1)
            .with_fallback_cache_dir(root);
        let result = run_sweep(spec, &options);
        assert_eq!(
            result.computed + result.cache_hits + result.skipped,
            spec.points.len()
        );
        computed.push(result.computed);
        sources.push(dir.join(format!("{}.json", spec.figure)));
    }
    merge_files(&root.join(format!("{}.json", spec.figure)), &sources).expect("merge shards");
    computed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8).with_seed(0xC1C1_0DE5))]

    /// Any shard layout — including N larger than the point count, which leaves
    /// some shards empty — partitions the spec (each point computed exactly
    /// once) and merges back to estimates bit-identical to the single-process
    /// run, served entirely from the merged cache.
    #[test]
    fn any_shard_layout_merges_to_the_single_process_result(layout in 0usize..4, threads in 1usize..3) {
        let total = [1, 2, 3, 7][layout];
        let figure = format!("layout-{total}-{threads}");
        let spec = tiny_spec(&figure);
        let reference = run_sweep(&spec, &SweepOptions::ephemeral(quick_config(1)));

        let root = scratch_dir(&figure);
        let computed = run_fleet(&spec, &root, total, threads);
        prop_assert_eq!(computed.iter().sum::<usize>(), spec.points.len());
        for point in &spec.points {
            let owner = shard_of(&point.id, total);
            prop_assert!(owner < total);
        }

        let merged = run_sweep(&spec, &SweepOptions::cached(quick_config(1), &root));
        prop_assert_eq!(merged.cache_hits, spec.points.len(), "merged cache must serve every point");
        prop_assert_eq!(merged.computed, 0);
        for (a, b) in reference.points.iter().zip(&merged.points) {
            prop_assert_eq!(&a.id, &b.id);
            prop_assert_eq!(a.ler.shots, b.ler.shots, "point {} diverged", a.id);
            prop_assert_eq!(a.ler.failures, b.ler.failures);
            prop_assert_eq!(a.ler.ler, b.ler.ler);
            prop_assert_eq!(a.ler.std_err, b.ler.std_err);
        }
        let _ = std::fs::remove_dir_all(&root);
    }
}

#[test]
fn merge_of_real_shard_caches_is_commutative_and_idempotent() {
    let spec = tiny_spec("commute");
    let root = scratch_dir("commute");
    run_fleet(&spec, &root, 3, 2);
    let sources: Vec<PathBuf> = (0..3)
        .map(|i| shard_dir(&root, Shard::new(i, 3)).join("commute.json"))
        .collect();

    let forward = root.join("forward.json");
    let reverse = root.join("reverse.json");
    merge_files(&forward, &sources).expect("forward merge");
    let mut reversed = sources.clone();
    reversed.reverse();
    merge_files(&reverse, &reversed).expect("reverse merge");
    let forward_text = std::fs::read_to_string(&forward).expect("read");
    assert_eq!(
        forward_text,
        std::fs::read_to_string(&reverse).expect("read"),
        "merge order must not matter"
    );
    // Merging the same sources into an existing destination changes nothing.
    merge_files(&forward, &sources).expect("re-merge");
    assert_eq!(
        forward_text,
        std::fs::read_to_string(&forward).expect("read")
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn corrupt_shard_file_is_skipped_and_recomputed() {
    let spec = tiny_spec("corrupt-shard");
    let reference = run_sweep(&spec, &SweepOptions::ephemeral(quick_config(1)));
    let root = scratch_dir("corrupt-shard");
    run_fleet(&spec, &root, 3, 2);

    // Corrupt one shard's cache, then rebuild the merged file from scratch: the
    // merge must skip (and report) the bad shard, not fail, and the final
    // cached run recomputes exactly the lost points back to the reference.
    let bad = shard_dir(&root, Shard::new(1, 3)).join("corrupt-shard.json");
    std::fs::write(&bad, "{\"figure\": \"corrupt-shard\", \"poi").expect("corrupt");
    let merged_path = root.join("corrupt-shard.json");
    std::fs::remove_file(&merged_path).expect("drop merged file");
    let sources: Vec<PathBuf> = (0..3)
        .map(|i| shard_dir(&root, Shard::new(i, 3)).join("corrupt-shard.json"))
        .collect();
    let report = merge_files(&merged_path, &sources).expect("merge with corruption");
    assert_eq!(report.sources_merged, 2);
    assert_eq!(report.sources_skipped.len(), 1);
    assert_eq!(report.sources_skipped[0].0, bad);

    let lost = spec
        .points
        .iter()
        .filter(|p| shard_of(&p.id, 3) == 1)
        .count();
    let repaired = run_sweep(&spec, &SweepOptions::cached(quick_config(2), &root));
    assert_eq!(
        repaired.computed, lost,
        "only the corrupt shard's points recompute"
    );
    assert_eq!(repaired.cache_hits, spec.points.len() - lost);
    for (a, b) in reference.points.iter().zip(&repaired.points) {
        assert_eq!(a.ler.failures, b.ler.failures, "point {} diverged", a.id);
        assert_eq!(a.ler.ler, b.ler.ler);
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn killed_worker_resumes_from_its_checkpoints() {
    let figure = "resume";
    let full = tiny_spec(figure);
    let reference = run_sweep(&full, &SweepOptions::ephemeral(quick_config(1)));
    let root = scratch_dir(figure);
    let shard = Shard::new(0, 1); // one shard owns everything: every point checkpoints
    let dir = shard_dir(&root, shard);

    // A "killed" worker: same figure, but only a prefix of the points ran before
    // the kill. Checkpointing after every point means the prefix is already
    // published as a valid cache file.
    let mut prefix = ScenarioSpec::new(figure);
    let bb = prefix.code(qec::codes::bb_72_12_6().expect("valid"));
    prefix.point("bb/p=3e-3", bb, 3e-3, 0.01);
    prefix.point("bb/p=8e-3", bb, 8e-3, 0.01);
    let options = SweepOptions::cached(quick_config(2), &dir)
        .with_shard(shard)
        .with_checkpoint(1)
        .with_fallback_cache_dir(&root);
    let partial = run_sweep(&prefix, &options);
    assert_eq!(partial.computed, 2);
    let shard_file = dir.join(format!("{figure}.json"));
    verify_file(&shard_file).expect("checkpointed shard cache must be valid mid-run");

    // The resumed worker reruns the full spec: checkpointed points are cache
    // hits (nothing lost), only the in-flight remainder computes.
    let resumed = run_sweep(&full, &options);
    assert_eq!(
        resumed.cache_hits, 2,
        "checkpointed points must survive the kill"
    );
    assert_eq!(resumed.computed, full.points.len() - 2);

    merge_files(&root.join(format!("{figure}.json")), &[shard_file]).expect("merge");
    let merged = run_sweep(&full, &SweepOptions::cached(quick_config(1), &root));
    assert_eq!(merged.cache_hits, full.points.len());
    for (a, b) in reference.points.iter().zip(&merged.points) {
        assert_eq!(a.ler.failures, b.ler.failures, "point {} diverged", a.id);
        assert_eq!(a.ler.ler, b.ler.ler);
        assert_eq!(a.ler.std_err, b.ler.std_err);
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn workers_reuse_the_main_cache_read_only() {
    let spec = tiny_spec("fallback");
    let root = scratch_dir("fallback");
    // A pre-existing serial run fills the main cache.
    let serial = run_sweep(&spec, &SweepOptions::cached(quick_config(2), &root));
    assert_eq!(serial.computed, spec.points.len());
    let main_file = root.join("fallback.json");
    let main_before = std::fs::read_to_string(&main_file).expect("read main cache");

    // Every worker of a 2-way fleet then sees all of its points as fallback
    // hits: nothing recomputes, and the main cache file is never touched.
    for index in 0..2 {
        let shard = Shard::new(index, 2);
        let options = SweepOptions::cached(quick_config(2), shard_dir(&root, shard))
            .with_shard(shard)
            .with_checkpoint(1)
            .with_fallback_cache_dir(&root);
        let result = run_sweep(&spec, &options);
        assert_eq!(result.computed, 0, "fallback must serve shard {index}");
        assert_eq!(result.cache_hits, spec.points.len());
    }
    assert_eq!(
        main_before,
        std::fs::read_to_string(&main_file).expect("read main cache"),
        "workers must never write the main cache"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn skipped_points_are_marked_and_kept_out_of_the_cache() {
    let spec = tiny_spec("skipped");
    let root = scratch_dir("skipped");
    let shard = Shard::new(0, 7); // 7 shards over 4 points: this one owns a strict subset
    let owned = spec.points.iter().filter(|p| shard.contains(&p.id)).count();
    let options = SweepOptions::cached(quick_config(2), shard_dir(&root, shard))
        .with_shard(shard)
        .with_fallback_cache_dir(&root);
    let result = run_sweep(&spec, &options);
    assert_eq!(result.computed, owned);
    assert_eq!(result.skipped, spec.points.len() - owned);
    for point in &result.points {
        if point.skipped {
            assert_eq!(
                point.ler.shots, 0,
                "skipped points carry the empty estimate"
            );
            assert!(!point.cached);
        }
    }
    // The shard cache holds exactly the owned points — skipped placeholders
    // must not pollute it.
    let text =
        std::fs::read_to_string(shard_dir(&root, shard).join("skipped.json")).expect("shard cache");
    for point in &spec.points {
        assert_eq!(
            text.contains(&format!("\"{}\"", point.id)),
            shard.contains(&point.id),
            "cache membership of {} must follow ownership",
            point.id
        );
    }
    let _ = std::fs::remove_dir_all(&root);
}
