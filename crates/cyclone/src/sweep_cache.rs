//! Offline composition of sweep cache files: `merge`, `stats`, and `verify`
//! over the `sweeps/<figure>.json` format written by [`crate::run_sweep`].
//!
//! Sharded fleets (see `bench::runner`) leave one cache file per shard; this
//! module folds them back into a single file. The merge is a **union of point
//! sets** with conflicts resolved by the same meets-or-exceeds order the sweep
//! engine's reuse rules apply: an entry with strictly more recorded shots
//! replaces one with fewer, and ties keep the incumbent. Because every entry is
//! produced by per-shot seeded RNG streams, two entries with equal shot counts
//! for the same point are bit-identical, which makes the merge commutative and
//! idempotent — shards can be folded in any order, any number of times, and the
//! result is the same file.
//!
//! Compatibility is decided at the header level: files must agree on `figure`,
//! `seed`, and `bp_iterations` (the same identity [`crate::run_sweep`]'s loader
//! checks). A source that disagrees — or does not parse — is *skipped and
//! reported*, never silently folded in, and never aborts the merge of the
//! remaining sources. Schema-1 and schema-2 files are accepted as sources:
//! their entries simply lack the `channel` field and read back as `"uniform"`,
//! exactly the channel those entries were sampled under.

use crate::sweep::{atomic_write, CACHE_SCHEMA};
use serde_json::Value;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One cache file parsed into its header and per-id entries.
#[derive(Debug, Clone)]
struct ParsedCache {
    /// Every header field except `points` (kept verbatim so merged output
    /// preserves `mode`/`target_*` context from the reference file).
    header: BTreeMap<String, Value>,
    /// Entries by point id; the `usize` is the recorded shot count used for
    /// conflict resolution.
    entries: BTreeMap<String, (usize, Value)>,
}

impl ParsedCache {
    fn figure(&self) -> &str {
        self.header
            .get("figure")
            .and_then(Value::as_str)
            .unwrap_or_default()
    }

    fn seed(&self) -> &str {
        self.header
            .get("seed")
            .and_then(Value::as_str)
            .unwrap_or_default()
    }

    fn bp_iterations(&self) -> u64 {
        self.header
            .get("bp_iterations")
            .and_then(Value::as_u64)
            .unwrap_or_default()
    }

    /// Whether `other` may be merged into this cache: same figure, same seed,
    /// same BP iteration cap — the identity [`crate::run_sweep`]'s loader
    /// checks before reusing any entry.
    fn compatible_with(&self, other: &ParsedCache) -> Option<String> {
        if self.figure() != other.figure() {
            return Some(format!(
                "figure `{}` does not match `{}`",
                other.figure(),
                self.figure()
            ));
        }
        if self.seed() != other.seed() {
            return Some(format!(
                "seed {} does not match {}",
                other.seed(),
                self.seed()
            ));
        }
        if self.bp_iterations() != other.bp_iterations() {
            return Some(format!(
                "bp_iterations {} does not match {}",
                other.bp_iterations(),
                self.bp_iterations()
            ));
        }
        None
    }
}

/// Parses one cache file, rejecting anything [`verify_file`] would reject.
fn parse_cache(path: &Path) -> Result<ParsedCache, String> {
    let text = std::fs::read_to_string(path).map_err(|err| format!("unreadable: {err}"))?;
    let doc = serde_json::from_str(&text).map_err(|err| format!("malformed JSON: {err}"))?;
    let Some(root) = doc.as_object() else {
        return Err("root is not an object".to_string());
    };
    let mut header = root.clone();
    let points = header.remove("points");
    if header.get("figure").and_then(Value::as_str).is_none() {
        return Err("missing string header field `figure`".to_string());
    }
    if header.get("seed").and_then(Value::as_str).is_none() {
        return Err(
            "missing string header field `seed` (u64 stored as decimal string)".to_string(),
        );
    }
    if header
        .get("bp_iterations")
        .and_then(Value::as_u64)
        .is_none()
    {
        return Err("missing numeric header field `bp_iterations`".to_string());
    }
    let Some(points) = points.as_ref().and_then(Value::as_array) else {
        return Err("missing array field `points`".to_string());
    };
    let mut entries = BTreeMap::new();
    for (index, entry) in points.iter().enumerate() {
        let Some(id) = entry.get("id").and_then(Value::as_str) else {
            return Err(format!("entry {index} has no string `id`"));
        };
        let (Some(_), Some(_), Some(shots), Some(failures)) = (
            entry.get("p").and_then(Value::as_f64),
            entry.get("latency").and_then(Value::as_f64),
            entry.get("shots").and_then(Value::as_u64),
            entry.get("failures").and_then(Value::as_u64),
        ) else {
            return Err(format!(
                "entry `{id}` is missing one of p/latency/shots/failures"
            ));
        };
        if failures > shots {
            return Err(format!(
                "entry `{id}` records {failures} failures out of {shots} shots"
            ));
        }
        if entries
            .insert(id.to_string(), (shots as usize, entry.clone()))
            .is_some()
        {
            return Err(format!("duplicate entry id `{id}`"));
        }
    }
    Ok(ParsedCache { header, entries })
}

/// What one [`merge_files`] call did.
#[derive(Debug, Clone, Default)]
pub struct MergeReport {
    /// Sources whose entries were folded in.
    pub sources_merged: usize,
    /// Sources left out, with the reason (corrupt file, incompatible header).
    pub sources_skipped: Vec<(PathBuf, String)>,
    /// Entries newly added to the destination.
    pub entries_added: usize,
    /// Destination entries replaced by a strictly-more-shots source entry.
    pub entries_upgraded: usize,
    /// Entry count of the written destination file.
    pub entries_total: usize,
}

/// Merges `sources` into `dest`, writing the union atomically.
///
/// The reference header (figure/seed/bp_iterations that every folded source
/// must match) comes from `dest` when it exists and parses, else from the first
/// parseable source. A corrupt `dest` is treated as absent — the merge rebuilds
/// it from the sources rather than failing. Conflicting entries resolve to the
/// one with strictly more recorded shots; ties keep the incumbent. Entries with
/// zero recorded shots are dropped (the sweep engine's loader skips them
/// anyway).
///
/// # Errors
///
/// Returns an error when no input (destination or source) parses as a cache
/// file — there is nothing to write — or when writing the destination fails.
/// Per-source problems are reported in [`MergeReport::sources_skipped`], not as
/// errors.
pub fn merge_files(dest: &Path, sources: &[PathBuf]) -> std::io::Result<MergeReport> {
    let mut report = MergeReport::default();
    // A missing or corrupt destination is rebuilt from the sources.
    let mut merged: Option<ParsedCache> = parse_cache(dest).ok();
    for source in sources {
        let parsed = match parse_cache(source) {
            Ok(parsed) => parsed,
            Err(reason) => {
                report.sources_skipped.push((source.clone(), reason));
                continue;
            }
        };
        let Some(merged) = merged.as_mut() else {
            // No destination yet: the first parseable source becomes the
            // reference, and all of its entries are new.
            report.entries_added += parsed.entries.len();
            merged = Some(parsed);
            report.sources_merged += 1;
            continue;
        };
        if let Some(reason) = merged.compatible_with(&parsed) {
            report.sources_skipped.push((source.clone(), reason));
            continue;
        }
        for (id, (shots, entry)) in parsed.entries {
            match merged.entries.get(&id) {
                Some(&(existing, _)) if existing >= shots => {}
                Some(_) => {
                    merged.entries.insert(id, (shots, entry));
                    report.entries_upgraded += 1;
                }
                None => {
                    merged.entries.insert(id, (shots, entry));
                    report.entries_added += 1;
                }
            }
        }
        report.sources_merged += 1;
    }
    let Some(mut merged) = merged else {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!(
                "no parseable cache file among {} and {} source(s)",
                dest.display(),
                sources.len()
            ),
        ));
    };
    merged.entries.retain(|_, (shots, _)| *shots > 0);
    report.entries_total = merged.entries.len();

    let mut root = merged.header;
    root.insert("schema".to_string(), Value::from(CACHE_SCHEMA as usize));
    root.insert(
        "points".to_string(),
        Value::Array(
            merged
                .entries
                .into_values()
                .map(|(_, entry)| entry)
                .collect(),
        ),
    );
    let mut text = serde_json::to_string(&Value::Object(root));
    text.push('\n');
    atomic_write(dest, &text)?;
    Ok(report)
}

/// Summary statistics of one cache file.
#[derive(Debug, Clone)]
pub struct CacheStats {
    /// Schema tag recorded in the file (0 when absent — schema-1 files predate
    /// the field).
    pub schema: u64,
    /// The figure the cache belongs to.
    pub figure: String,
    /// The RNG seed (decimal string, as stored).
    pub seed: String,
    /// The BP iteration cap the entries were decoded under.
    pub bp_iterations: u64,
    /// Sampling mode recorded in the header (`fixed`, `adaptive`, or `unknown`
    /// for schema-1 files).
    pub mode: String,
    /// Number of point entries.
    pub entries: usize,
    /// Total Monte-Carlo shots recorded across all entries.
    pub total_shots: usize,
    /// Total failures recorded across all entries.
    pub total_failures: usize,
}

/// Parses `path` and summarizes it.
///
/// # Errors
///
/// Returns the same validation failures as [`verify_file`], as a human-readable
/// reason.
pub fn stats_file(path: &Path) -> Result<CacheStats, String> {
    let parsed = parse_cache(path)?;
    let total_shots = parsed.entries.values().map(|(shots, _)| *shots).sum();
    let total_failures = parsed
        .entries
        .values()
        .filter_map(|(_, entry)| entry.get("failures").and_then(Value::as_u64))
        .sum::<u64>() as usize;
    Ok(CacheStats {
        schema: parsed
            .header
            .get("schema")
            .and_then(Value::as_u64)
            .unwrap_or(0),
        figure: parsed.figure().to_string(),
        seed: parsed.seed().to_string(),
        bp_iterations: parsed.bp_iterations(),
        mode: parsed
            .header
            .get("mode")
            .and_then(Value::as_str)
            .unwrap_or("unknown")
            .to_string(),
        entries: parsed.entries.len(),
        total_shots,
        total_failures,
    })
}

/// Validates that `path` is a structurally sound cache file: parseable JSON
/// with the required header fields, a `points` array whose entries all carry
/// `id`/`p`/`latency`/`shots`/`failures`, no duplicate ids, and no entry with
/// more failures than shots.
///
/// # Errors
///
/// Returns a human-readable reason when any check fails.
pub fn verify_file(path: &Path) -> Result<(), String> {
    parse_cache(path).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(test: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cyclone-sweep-cache-{}-{test}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    fn cache_text(figure: &str, entries: &[(&str, usize, usize)]) -> String {
        let points: Vec<String> = entries
            .iter()
            .map(|(id, shots, failures)| {
                format!(
                    "{{\"id\":\"{id}\",\"p\":0.001,\"latency\":0.0,\"channel\":\"uniform\",\
                     \"shots\":{shots},\"failures\":{failures},\"ler\":0.1,\"std_err\":0.01}}"
                )
            })
            .collect();
        format!(
            "{{\"schema\":3,\"figure\":\"{figure}\",\"seed\":\"3250654693\",\"shots\":60,\
             \"bp_iterations\":12,\"mode\":\"fixed\",\"points\":[{}]}}\n",
            points.join(",")
        )
    }

    #[test]
    fn merge_unions_and_prefers_more_shots() {
        let dir = scratch_dir("union");
        let a = dir.join("a.json");
        let b = dir.join("b.json");
        let dest = dir.join("merged.json");
        std::fs::write(&a, cache_text("fig", &[("p0", 100, 3), ("p1", 50, 1)])).unwrap();
        std::fs::write(&b, cache_text("fig", &[("p1", 200, 4), ("p2", 80, 2)])).unwrap();
        let report = merge_files(&dest, &[a, b]).expect("merge");
        assert_eq!(report.sources_merged, 2);
        assert!(report.sources_skipped.is_empty());
        assert_eq!(report.entries_total, 3);
        assert_eq!(report.entries_added, 3);
        assert_eq!(report.entries_upgraded, 1);
        let stats = stats_file(&dest).expect("stats");
        assert_eq!(stats.entries, 3);
        assert_eq!(stats.total_shots, 100 + 200 + 80);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_skips_incompatible_and_corrupt_sources() {
        let dir = scratch_dir("skip");
        let good = dir.join("good.json");
        let other_figure = dir.join("other.json");
        let corrupt = dir.join("corrupt.json");
        let dest = dir.join("merged.json");
        std::fs::write(&good, cache_text("fig", &[("p0", 100, 3)])).unwrap();
        std::fs::write(&other_figure, cache_text("not-fig", &[("p9", 10, 0)])).unwrap();
        std::fs::write(&corrupt, "{\"schema\":3,").unwrap();
        let report = merge_files(&dest, &[good, other_figure, corrupt]).expect("merge");
        assert_eq!(report.sources_merged, 1);
        assert_eq!(report.sources_skipped.len(), 2);
        assert_eq!(report.entries_total, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_is_idempotent_and_commutative_bytewise() {
        let dir = scratch_dir("commute");
        let a = dir.join("a.json");
        let b = dir.join("b.json");
        std::fs::write(&a, cache_text("fig", &[("p0", 100, 3), ("p1", 50, 1)])).unwrap();
        std::fs::write(&b, cache_text("fig", &[("p1", 50, 1), ("p2", 80, 2)])).unwrap();
        let ab = dir.join("ab.json");
        let ba = dir.join("ba.json");
        merge_files(&ab, &[a.clone(), b.clone()]).expect("merge ab");
        merge_files(&ba, &[b.clone(), a.clone()]).expect("merge ba");
        let ab_text = std::fs::read_to_string(&ab).unwrap();
        assert_eq!(ab_text, std::fs::read_to_string(&ba).unwrap());
        // Folding the same sources in again changes nothing.
        merge_files(&ab, &[a, b]).expect("re-merge");
        assert_eq!(ab_text, std::fs::read_to_string(&ab).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_with_nothing_parseable_errors() {
        let dir = scratch_dir("nothing");
        let corrupt = dir.join("corrupt.json");
        std::fs::write(&corrupt, "not json").unwrap();
        let err = merge_files(&dir.join("merged.json"), &[corrupt]);
        assert!(err.is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_rejects_structural_problems() {
        let dir = scratch_dir("verify");
        let valid = dir.join("valid.json");
        std::fs::write(&valid, cache_text("fig", &[("p0", 100, 3)])).unwrap();
        assert!(verify_file(&valid).is_ok());
        let impossible = dir.join("impossible.json");
        std::fs::write(&impossible, cache_text("fig", &[("p0", 10, 11)])).unwrap();
        assert!(verify_file(&impossible).is_err_and(|reason| reason.contains("failures")));
        let dup = dir.join("dup.json");
        std::fs::write(&dup, cache_text("fig", &[("p0", 10, 1), ("p0", 10, 1)])).unwrap();
        assert!(verify_file(&dup).is_err_and(|reason| reason.contains("duplicate")));
        assert!(verify_file(&dir.join("missing.json")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
