//! The Cyclone codesign: a ring of traps with lockstep ancilla rotation.
//!
//! Cyclone (§IV of the paper) couples:
//!
//! * **hardware** — a ring topology with at most `m/2` traps (one L-shaped, degree-2
//!   junction between adjacent traps), and
//! * **software** — a symmetric schedule in which every ancilla moves one trap
//!   clockwise in lockstep after finishing the gates it can perform locally.
//!
//! Stabilizers are assigned dynamically in the non-edge-colorable order: all X
//! stabilizers are measured during the first full rotation and all Z stabilizers
//! during the second, so exactly two rotations complete a syndrome-extraction round.
//! Because every trap performs the same movement at the same time there are no
//! roadblocks, total movement is bounded, and a single broadcast control signal
//! suffices.

use qccd::compiler::{CompiledRound, ComponentTimes, IdleExposure};
use qccd::timing::OperationTimes;
use qccd::topology::ring;
use qccd::{Topology, TopologyKind};
use qec::{CssCode, StabKind};
use serde::{Deserialize, Serialize};

/// Configuration of a Cyclone instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycloneConfig {
    /// Number of traps on the ring. `None` selects the base form,
    /// `max(|X|, |Z|)` traps (one ancilla per trap).
    pub num_traps: Option<usize>,
    /// Explicit per-trap ion capacity. `None` selects the "tight" capacity
    /// `⌈n/x⌉ + ⌈a/x⌉` (data plus resident ancillas).
    pub trap_capacity: Option<usize>,
}

impl CycloneConfig {
    /// The base Cyclone configuration (one ancilla per trap, tight capacity).
    pub fn base() -> Self {
        Self::default()
    }

    /// A condensed Cyclone with exactly `x` traps and tight capacity.
    pub fn with_traps(x: usize) -> Self {
        CycloneConfig {
            num_traps: Some(x),
            trap_capacity: None,
        }
    }
}

/// A Cyclone codesign instantiated for one code.
#[derive(Debug, Clone)]
pub struct CycloneCodesign {
    code_name: String,
    /// Number of traps `x`.
    num_traps: usize,
    /// Per-trap capacity.
    capacity: usize,
    /// Number of ancillas (reused between the X and Z rotations): `max(|X|, |Z|)`.
    num_ancilla: usize,
    /// Balanced partition: `data_partition[t]` lists the data qubits resident in trap `t`.
    data_partition: Vec<Vec<usize>>,
    /// Number of ancillas homed in each trap.
    ancilla_per_trap: Vec<usize>,
    /// Stabilizer supports per sector (copied out of the code for scheduling).
    x_supports: Vec<Vec<usize>>,
    z_supports: Vec<Vec<usize>>,
    /// The ring topology.
    topology: Topology,
}

impl CycloneCodesign {
    /// Builds a Cyclone codesign for `code` with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the requested trap count is zero.
    pub fn new(code: &CssCode, config: CycloneConfig) -> Self {
        let num_ancilla = code.num_x_stabilizers().max(code.num_z_stabilizers());
        let x = config.num_traps.unwrap_or(num_ancilla).max(1);
        let n = code.num_qubits();
        let tight_capacity = n.div_ceil(x) + num_ancilla.div_ceil(x);
        let capacity = config
            .trap_capacity
            .unwrap_or(tight_capacity)
            .max(tight_capacity);

        // Balanced data partition: consecutive qubits dealt into traps as evenly as
        // possible (the paper only requires the partition to be balanced).
        let mut data_partition: Vec<Vec<usize>> = vec![Vec::new(); x];
        for q in 0..n {
            data_partition[q % x].push(q);
        }
        // Ancillas distributed as evenly as possible.
        let mut ancilla_per_trap = vec![num_ancilla / x; x];
        for item in ancilla_per_trap.iter_mut().take(num_ancilla % x) {
            *item += 1;
        }

        let x_supports = code
            .sector_stabilizers(StabKind::X)
            .into_iter()
            .map(|s| s.support)
            .collect();
        let z_supports = code
            .sector_stabilizers(StabKind::Z)
            .into_iter()
            .map(|s| s.support)
            .collect();

        CycloneCodesign {
            code_name: code.name().to_string(),
            num_traps: x,
            capacity,
            num_ancilla,
            data_partition,
            ancilla_per_trap,
            x_supports,
            z_supports,
            topology: ring(x, capacity),
        }
    }

    /// The ring topology of this instance.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Number of traps `x`.
    pub fn num_traps(&self) -> usize {
        self.num_traps
    }

    /// Per-trap ion capacity.
    pub fn trap_capacity(&self) -> usize {
        self.capacity
    }

    /// Number of ancilla qubits (reused across the two rotations).
    pub fn num_ancilla(&self) -> usize {
        self.num_ancilla
    }

    /// The balanced data partition (`[trap] -> data qubits`).
    pub fn data_partition(&self) -> &[Vec<usize>] {
        &self.data_partition
    }

    /// Assigns stabilizers of one sector to ancilla slots.
    ///
    /// Ancilla slots are numbered `0..num_ancilla` in trap order; slot `j` handles
    /// stabilizer `j` of the sector (when the sector has fewer stabilizers than slots
    /// the extra ancillas idle).
    fn sector_supports(&self, sector: StabKind) -> &[Vec<usize>] {
        match sector {
            StabKind::X => &self.x_supports,
            StabKind::Z => &self.z_supports,
        }
    }

    /// Home trap of ancilla slot `j` (before any rotation).
    fn ancilla_home(&self, slot: usize) -> usize {
        // Slots are dealt to traps in order: trap 0 gets the first `ancilla_per_trap[0]`
        // slots, and so on.
        let mut remaining = slot;
        for (trap, &count) in self.ancilla_per_trap.iter().enumerate() {
            if remaining < count {
                return trap;
            }
            remaining -= count;
        }
        self.num_traps - 1
    }

    /// Simulates one lockstep rotation measuring `sector`, returning
    /// `(rotation_time, breakdown, gates_executed)`.
    ///
    /// When `profile` is given, per-qubit busy time (gate time for data qubits,
    /// gate + measurement time for ancilla slots) is accumulated into it; the
    /// timing math itself is untouched, so profiled and unprofiled runs are
    /// bit-identical.
    fn simulate_rotation(
        &self,
        sector: StabKind,
        times: &OperationTimes,
        mut profile: Option<&mut RotationProfile>,
    ) -> (f64, ComponentTimes, usize) {
        let supports = self.sector_supports(sector);
        let x = self.num_traps;
        // Chain length for gate-time purposes: resident data + resident ancillas.
        let chain_len: Vec<usize> = (0..x)
            .map(|t| self.data_partition[t].len() + self.ancilla_per_trap[t])
            .collect();
        let mut breakdown = ComponentTimes::default();
        let mut total = 0.0f64;
        let mut gates_executed = 0usize;

        // Per-step shuttle: every ancilla is swapped to the trap edge, split, moved
        // across the L-junction, and merged into the next trap — all in parallel.
        // With more than one ancilla per trap the swaps/splits serialize within the
        // trap, so the step charges `ancillas_in_trap` swap+split+merge sequences.
        let max_anc_per_trap = self
            .ancilla_per_trap
            .iter()
            .copied()
            .max()
            .unwrap_or(1)
            .max(1);
        let junction_cross = times.junction_crossing(2);

        for step in 0..x {
            // Gate phase: ancilla slot j currently sits at trap (home_j + step) mod x
            // and performs gates with every resident data qubit in its stabilizer's
            // support. Traps execute one gate at a time, so the phase lasts as long as
            // the busiest trap.
            let mut gates_in_trap = vec![0usize; x];
            for (slot, support) in supports.iter().enumerate() {
                let trap = (self.ancilla_home(slot) + step) % x;
                let here = &self.data_partition[trap];
                let g = times.two_qubit_gate(chain_len[trap]);
                let mut count = 0usize;
                for d in support {
                    if here.contains(d) {
                        count += 1;
                        if let Some(p) = profile.as_deref_mut() {
                            p.data_busy[*d] += g;
                            p.ancilla_busy[slot] += g;
                        }
                    }
                }
                gates_in_trap[trap] += count;
                gates_executed += count;
            }
            let mut phase = 0.0f64;
            for t in 0..x {
                let g = times.two_qubit_gate(chain_len[t]);
                let trap_time = gates_in_trap[t] as f64 * g;
                breakdown.gate += trap_time;
                phase = phase.max(trap_time);
            }
            total += phase;

            // Rotation phase (skipped after the final step of the rotation only in the
            // sense that the ancilla returns to its home; the paper keeps the movement
            // symmetric, so we charge it every step).
            let per_ancilla_swap = times.swap(chain_len.iter().copied().max().unwrap_or(2), 1);
            let moving = max_anc_per_trap as f64;
            // Critical path: the trap with the most resident ancillas serializes its
            // swap/split/merge sequences; movement across the L-junction overlaps.
            let swap_time = moving * per_ancilla_swap;
            let split_time = moving * times.split;
            let merge_time = moving * times.merge;
            let move_time = moving * (2.0 * times.shuttle_move + junction_cross);
            // Resource-time breakdown: every ancilla in the machine performs one
            // swap + split + move + junction crossing + merge this step.
            let all = self.num_ancilla as f64;
            breakdown.swap += all * per_ancilla_swap;
            breakdown.split += all * times.split;
            breakdown.merge += all * times.merge;
            breakdown.shuttle_move += all * 2.0 * times.shuttle_move;
            breakdown.junction += all * junction_cross;
            total += swap_time + split_time + merge_time + move_time;
        }

        // Measurement phase: every ancilla is measured (and re-prepared) in place;
        // ancillas sharing a trap serialize.
        let meas = times.measurement + times.preparation;
        let meas_phase = max_anc_per_trap as f64 * meas;
        breakdown.measurement += meas * self.num_ancilla as f64;
        total += meas_phase;
        if let Some(p) = profile {
            for busy in &mut p.ancilla_busy {
                *busy += meas;
            }
        }

        (total, breakdown, gates_executed)
    }

    /// Compiles one full round (two rotations: X then Z) and returns the timed result.
    pub fn compile(&self, times: &OperationTimes) -> CompiledRound {
        let (tx, bx, gx) = self.simulate_rotation(StabKind::X, times, None);
        let (tz, bz, gz) = self.simulate_rotation(StabKind::Z, times, None);
        self.assemble_round(tx, bx, gx, tz, bz, gz)
    }

    /// [`CycloneCodesign::compile`] plus the per-qubit [`IdleExposure`] of the round.
    ///
    /// Cyclone has no discrete-event simulator, so the profile is analytic: a qubit
    /// is busy while it is being gated (and, for ancillas, measured); the lockstep
    /// rotation itself — swaps, splits, junction crossings, merges — counts as
    /// exposure, exactly like shuttling in `qccd::compiler::sim`. Each sector's
    /// ancilla exposure covers the rotation that measures it (the ancilla ions are
    /// re-prepared between the X and Z rotations).
    pub fn compile_profiled(&self, times: &OperationTimes) -> (CompiledRound, IdleExposure) {
        let n = self.data_partition.iter().map(Vec::len).sum::<usize>();
        let mut px = RotationProfile::new(n, self.num_ancilla);
        let mut pz = RotationProfile::new(n, self.num_ancilla);
        let (tx, bx, gx) = self.simulate_rotation(StabKind::X, times, Some(&mut px));
        let (tz, bz, gz) = self.simulate_rotation(StabKind::Z, times, Some(&mut pz));
        let round = self.assemble_round(tx, bx, gx, tz, bz, gz);
        let horizon = round.execution_time;
        let data = (0..n)
            .map(|q| (horizon - px.data_busy[q] - pz.data_busy[q]).max(0.0))
            .collect();
        let x_ancilla = (0..self.x_supports.len())
            .map(|j| (tx - px.ancilla_busy[j]).max(0.0))
            .collect();
        let z_ancilla = (0..self.z_supports.len())
            .map(|j| (tz - pz.ancilla_busy[j]).max(0.0))
            .collect();
        (
            round,
            IdleExposure {
                data,
                x_ancilla,
                z_ancilla,
                horizon,
            },
        )
    }

    fn assemble_round(
        &self,
        tx: f64,
        bx: ComponentTimes,
        gx: usize,
        tz: f64,
        bz: ComponentTimes,
        gz: usize,
    ) -> CompiledRound {
        let mut breakdown = bx;
        breakdown.accumulate(&bz);
        CompiledRound {
            codesign: format!("Cyclone x={} ({})", self.num_traps, self.code_name),
            execution_time: tx + tz,
            breakdown,
            num_gates: gx + gz,
            num_shuttles: 2 * self.num_traps * self.num_ancilla.div_ceil(self.num_traps),
            num_rebalances: 0,
            roadblock_events: 0,
            num_traps: self.num_traps,
            num_junctions: self.topology.num_junctions(),
            num_ancilla: self.num_ancilla,
        }
    }

    /// The closed-form worst-case execution time
    /// `2·x·(s + ⌈a/x⌉·(t_swap + g·⌈n/x⌉)) + 2·⌈a/x⌉·t_meas`,
    /// where `s` is the per-step shuttle cost, `a = max(|X|,|Z|)` the ancilla count and
    /// `n` the number of data qubits (§IV-A).
    pub fn worst_case_execution_time(&self, times: &OperationTimes, num_data: usize) -> f64 {
        let x = self.num_traps as f64;
        let anc_per_trap = self.num_ancilla.div_ceil(self.num_traps) as f64;
        let data_per_trap = num_data.div_ceil(self.num_traps) as f64;
        let chain =
            (num_data.div_ceil(self.num_traps) + self.num_ancilla.div_ceil(self.num_traps)).max(2);
        let s = times.split + 2.0 * times.shuttle_move + times.junction_crossing(2) + times.merge;
        let g = times.two_qubit_gate(chain);
        let t_swap = times.swap(chain, 1);
        let per_step = anc_per_trap * (s + t_swap) + anc_per_trap * data_per_trap * g;
        2.0 * x * per_step + 2.0 * anc_per_trap * (times.measurement + times.preparation)
    }

    /// Verifies the Cyclone invariant that two rotations execute every gate of the
    /// syndrome-extraction circuit exactly once.
    pub fn covers_all_gates(&self, code: &CssCode) -> bool {
        let expected: usize = code.stabilizers().iter().map(|s| s.support.len()).sum();
        let times = OperationTimes::default();
        let round = self.compile(&times);
        round.num_gates == expected
    }
}

/// Per-qubit busy-time accumulator of one lockstep rotation (see
/// [`CycloneCodesign::compile_profiled`]).
#[derive(Debug, Clone)]
struct RotationProfile {
    /// Gate time accumulated on each data qubit.
    data_busy: Vec<f64>,
    /// Gate + measurement time accumulated on each ancilla slot.
    ancilla_busy: Vec<f64>,
}

impl RotationProfile {
    fn new(num_data: usize, num_ancilla: usize) -> Self {
        RotationProfile {
            data_busy: vec![0.0; num_data],
            ancilla_busy: vec![0.0; num_ancilla],
        }
    }
}

/// True when the topology produced by a Cyclone config is a physically realizable ring.
pub fn is_valid_cyclone_topology(topology: &Topology) -> bool {
    topology.kind() == TopologyKind::Ring && topology.is_physically_realizable()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qec::codes::{bb_72_12_6, hgp_225_9_6};

    #[test]
    fn base_cyclone_has_half_m_traps() {
        let code = bb_72_12_6().expect("valid");
        let design = CycloneCodesign::new(&code, CycloneConfig::base());
        assert_eq!(design.num_traps(), code.num_stabilizers() / 2);
        assert_eq!(design.num_ancilla(), code.num_stabilizers() / 2);
        assert!(is_valid_cyclone_topology(design.topology()));
    }

    #[test]
    fn cyclone_covers_all_gates() {
        let code = bb_72_12_6().expect("valid");
        for x in [4, 9, 12, 36] {
            let design = CycloneCodesign::new(&code, CycloneConfig::with_traps(x));
            assert!(design.covers_all_gates(&code), "x={x} missed gates");
        }
    }

    #[test]
    fn cyclone_has_no_roadblocks_or_rebalances() {
        let code = bb_72_12_6().expect("valid");
        let design = CycloneCodesign::new(&code, CycloneConfig::base());
        let round = design.compile(&OperationTimes::default());
        assert_eq!(round.roadblock_events, 0);
        assert_eq!(round.num_rebalances, 0);
        assert!(round.execution_time > 0.0);
    }

    #[test]
    fn execution_time_within_worst_case_bound() {
        let code = hgp_225_9_6().expect("valid");
        for x in [27, 54, 108] {
            let design = CycloneCodesign::new(&code, CycloneConfig::with_traps(x));
            let round = design.compile(&OperationTimes::default());
            let bound =
                design.worst_case_execution_time(&OperationTimes::default(), code.num_qubits());
            assert!(
                round.execution_time <= bound * 1.001,
                "x={x}: simulated {} exceeds bound {}",
                round.execution_time,
                bound
            );
        }
    }

    #[test]
    fn fewer_traps_fewer_steps_more_gate_serialization() {
        let code = bb_72_12_6().expect("valid");
        let times = OperationTimes::default();
        let sparse = CycloneCodesign::new(&code, CycloneConfig::with_traps(36)).compile(&times);
        let dense = CycloneCodesign::new(&code, CycloneConfig::with_traps(6)).compile(&times);
        // Shuttling dominates the sparse design and gate serialization the dense one;
        // both must at least charge the same total gate work.
        assert!(sparse.breakdown.split > dense.breakdown.split);
        assert!(dense.breakdown.gate >= sparse.breakdown.gate * 0.9);
    }

    #[test]
    fn profiled_compile_is_bit_identical_and_bounded() {
        let code = bb_72_12_6().expect("valid");
        let times = OperationTimes::default();
        for x in [6, 12, 36] {
            let design = CycloneCodesign::new(&code, CycloneConfig::with_traps(x));
            let plain = design.compile(&times);
            let (round, exposure) = design.compile_profiled(&times);
            assert_eq!(plain, round, "x={x}: profiling perturbed the round");
            assert_eq!(exposure.horizon, round.execution_time);
            assert_eq!(exposure.data.len(), code.num_qubits());
            assert_eq!(exposure.x_ancilla.len(), code.num_x_stabilizers());
            assert_eq!(exposure.z_ancilla.len(), code.num_z_stabilizers());
            for &t in exposure.data.iter() {
                assert!(
                    (0.0..=exposure.horizon).contains(&t),
                    "x={x}: data exposure {t}"
                );
            }
            // Every data qubit participates in gates, so exposure < horizon.
            assert!(exposure.data.iter().all(|&t| t < exposure.horizon));
            // Ancilla exposure is bounded by its own rotation, which is shorter
            // than the full round.
            assert!(exposure.x_ancilla.iter().all(|&t| t < exposure.horizon));
        }
    }

    #[test]
    fn balanced_partition_sizes() {
        let code = hgp_225_9_6().expect("valid");
        let design = CycloneCodesign::new(&code, CycloneConfig::with_traps(10));
        let sizes: Vec<usize> = design.data_partition().iter().map(Vec::len).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1, "partition must be balanced: {sizes:?}");
        assert_eq!(sizes.iter().sum::<usize>(), 225);
    }
}
