//! [`Codesign`] impls for the Cyclone compilers and the standard registry of every
//! codesign the evaluation compares.
//!
//! The `qccd` crate defines the trait and the grid/mesh/ring baselines; this module
//! layers the ring-rotation Cyclone codesigns on top and assembles the full
//! [`CodesignRegistry`]. Adding a topology or policy to the whole evaluation is one
//! impl plus one `register` call here.

use crate::codesign::{CycloneCodesign, CycloneConfig};
use qccd::compiler::codesign::qccd_codesigns;
use qccd::compiler::{Codesign, CodesignRegistry, CompiledRound, IdleExposure};
use qccd::timing::OperationTimes;
use qec::CssCode;

/// The Cyclone codesign as a code-independent [`Codesign`]: the ring topology and
/// lockstep rotation schedule are instantiated per code at compile time.
#[derive(Debug, Clone)]
pub struct Cyclone {
    config: CycloneConfig,
    name: String,
}

impl Cyclone {
    /// The base form (one ancilla per trap, tight capacity), labelled `"cyclone"`.
    pub fn base() -> Self {
        Cyclone {
            config: CycloneConfig::base(),
            name: "cyclone".to_string(),
        }
    }

    /// A condensed ("tight") variant with exactly `x` traps, labelled
    /// `"cyclone-x{x}"` (§IV-A / Fig. 13: fewer traps, denser chains).
    pub fn condensed(x: usize) -> Self {
        Cyclone {
            config: CycloneConfig::with_traps(x),
            name: format!("cyclone-x{x}"),
        }
    }

    /// The underlying per-code compiler (exposes trap/ancilla counts and the
    /// closed-form bound beyond what [`Codesign::compile`] returns).
    pub fn instantiate(&self, code: &CssCode) -> CycloneCodesign {
        CycloneCodesign::new(code, self.config)
    }

    /// The configuration this wrapper instantiates per code.
    pub fn config(&self) -> CycloneConfig {
        self.config
    }
}

impl Codesign for Cyclone {
    fn name(&self) -> &str {
        &self.name
    }

    fn compile(&self, code: &CssCode, times: &OperationTimes) -> CompiledRound {
        self.instantiate(code).compile(times)
    }

    fn compile_profiled(
        &self,
        code: &CssCode,
        times: &OperationTimes,
    ) -> (CompiledRound, Option<IdleExposure>) {
        let (round, exposure) = self.instantiate(code).compile_profiled(times);
        (round, Some(exposure))
    }
}

/// Trap counts of the condensed Cyclone variants registered by default. These are
/// code-independent labels; per-code "tight" sweeps (Fig. 13) enumerate their own
/// counts via [`crate::condensed::default_trap_counts`].
pub const CONDENSED_TRAPS: [usize; 2] = [4, 16];

/// The full registry the evaluation compares: the grid/mesh/ring baselines from
/// `qccd` plus base Cyclone and the default condensed variants.
///
/// Labels: `baseline`, `baseline2`, `baseline3`, `dynamic-grid`, `dynamic-mesh`,
/// `alternate-grid`, `ring-static`, `cyclone`, `cyclone-x4`, `cyclone-x16`.
pub fn standard_registry() -> CodesignRegistry {
    let mut registry = CodesignRegistry::new();
    for design in qccd_codesigns() {
        registry.register(design);
    }
    registry.register(Box::new(Cyclone::base()));
    for x in CONDENSED_TRAPS {
        registry.register(Box::new(Cyclone::condensed(x)));
    }
    registry
}

#[cfg(test)]
mod tests {
    use super::*;
    use qec::codes::bb_72_12_6;

    #[test]
    fn standard_registry_has_all_labels() {
        let reg = standard_registry();
        for label in [
            "baseline",
            "baseline2",
            "baseline3",
            "dynamic-grid",
            "dynamic-mesh",
            "alternate-grid",
            "ring-static",
            "cyclone",
            "cyclone-x4",
            "cyclone-x16",
        ] {
            assert!(reg.get(label).is_some(), "missing codesign `{label}`");
        }
        assert_eq!(reg.len(), 10);
    }

    #[test]
    fn cyclone_trait_matches_direct_compiler() {
        let code = bb_72_12_6().expect("valid");
        let times = OperationTimes::default();
        let direct = CycloneCodesign::new(&code, CycloneConfig::base()).compile(&times);
        let via_trait = standard_registry()
            .get("cyclone")
            .expect("registered")
            .compile(&code, &times);
        assert_eq!(direct, via_trait);
    }

    #[test]
    fn condensed_wrapper_sets_trap_count() {
        let code = bb_72_12_6().expect("valid");
        let design = Cyclone::condensed(9);
        assert_eq!(design.name(), "cyclone-x9");
        assert_eq!(design.instantiate(&code).num_traps(), 9);
    }
}
