//! Condensed ("tight") Cyclone variants: trading trap count for trap density.
//!
//! §IV-A and Fig. 13 of the paper explore Cyclone instances with `x < m/2` traps where
//! the per-trap capacity is the minimum needed to fit the code
//! (`⌈n/x⌉ + ⌈a/x⌉` ions). Fewer traps mean fewer rotation steps (less shuttling) but
//! more ancillas and data per trap, so gates serialize within traps and FM gate times
//! degrade with chain length — producing the sweet spot the paper reports.

use crate::codesign::{CycloneCodesign, CycloneConfig};
use qccd::timing::OperationTimes;
use qec::CssCode;
use serde::{Deserialize, Serialize};

/// One point of the trap-count / capacity sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrapSweepPoint {
    /// Number of traps `x`.
    pub num_traps: usize,
    /// Tight per-trap ion capacity used for this point.
    pub trap_capacity: usize,
    /// Chain length (ions per trap) seen by the gate-time model.
    pub ions_per_trap: usize,
    /// Simulated execution time of one syndrome-extraction round, seconds.
    pub execution_time: f64,
}

/// Sweeps Cyclone over the given trap counts using tight capacities, returning one
/// point per value of `x`.
pub fn trap_capacity_sweep(
    code: &CssCode,
    trap_counts: &[usize],
    times: &OperationTimes,
) -> Vec<TrapSweepPoint> {
    trap_counts
        .iter()
        .map(|&x| {
            let design = CycloneCodesign::new(code, CycloneConfig::with_traps(x));
            let round = design.compile(times);
            TrapSweepPoint {
                num_traps: design.num_traps(),
                trap_capacity: design.trap_capacity(),
                ions_per_trap: design.trap_capacity(),
                execution_time: round.execution_time,
            }
        })
        .collect()
}

/// The default sweep of trap counts used for a code: divisors-ish spread between one
/// trap and the base form `a = max(|X|,|Z|)`.
pub fn default_trap_counts(code: &CssCode) -> Vec<usize> {
    let a = code.num_x_stabilizers().max(code.num_z_stabilizers());
    let mut counts = vec![1, 2, 4, 9, 16, 25, 36, 49, 64, 81, 100];
    counts.retain(|&x| x < a);
    counts.push(a);
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// Returns the sweep point with the lowest execution time (the "ideal" Cyclone).
pub fn best_configuration(points: &[TrapSweepPoint]) -> Option<&TrapSweepPoint> {
    points.iter().min_by(|a, b| {
        a.execution_time
            .partial_cmp(&b.execution_time)
            .expect("finite times")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qec::codes::hgp_225_9_6;

    #[test]
    fn sweep_covers_requested_counts() {
        let code = hgp_225_9_6().expect("valid");
        let times = OperationTimes::default();
        let points = trap_capacity_sweep(&code, &[9, 27, 54, 108], &times);
        assert_eq!(points.len(), 4);
        assert!(points.iter().all(|p| p.execution_time > 0.0));
    }

    #[test]
    fn single_trap_is_terrible() {
        let code = hgp_225_9_6().expect("valid");
        let times = OperationTimes::default();
        let points = trap_capacity_sweep(&code, &[1, 108], &times);
        assert!(
            points[0].execution_time > 10.0 * points[1].execution_time,
            "one giant trap ({:.3}s) must be far slower than the base form ({:.3}s)",
            points[0].execution_time,
            points[1].execution_time
        );
    }

    #[test]
    fn best_configuration_is_minimum() {
        let code = hgp_225_9_6().expect("valid");
        let times = OperationTimes::default();
        let points = trap_capacity_sweep(&code, &default_trap_counts(&code), &times);
        let best = best_configuration(&points).expect("nonempty sweep");
        assert!(points
            .iter()
            .all(|p| best.execution_time <= p.execution_time));
    }

    #[test]
    fn default_counts_end_at_base_form() {
        let code = hgp_225_9_6().expect("valid");
        let counts = default_trap_counts(&code);
        assert_eq!(*counts.last().unwrap(), 108);
        assert!(counts.contains(&1));
    }
}
