//! Independent / concurrent loop analysis (§IV-C).
//!
//! Cyclone routes every ancilla around a single global loop. One might hope to split
//! the stabilizers into groups with disjoint data supports and give each group its own
//! smaller loop executing in parallel. This module checks whether such a split exists
//! (it does for local topological codes, but not for HGP or BB codes, whose stabilizer
//! interaction graphs are connected) and quantifies the penalty of forcing a split
//! anyway: stabilizers that straddle two loops must traverse both, adding shuttling
//! and destroying the single-loop symmetry.

use qec::{CssCode, StabKind};

/// A reference to one stabilizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StabRef {
    /// Sector of the stabilizer.
    pub kind: StabKind,
    /// Index within its sector.
    pub index: usize,
}

/// Groups stabilizers into connected components of the "shares a data qubit" graph.
///
/// A result with a single component means no independent loops exist — the case for
/// every HGP and BB code in the paper.
pub fn loop_decomposition(code: &CssCode) -> Vec<Vec<StabRef>> {
    let stabs = code.stabilizers();
    let m = stabs.len();
    // Union-find over stabilizers, joined through shared data qubits.
    let mut parent: Vec<usize> = (0..m).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }
    let mut owner_of_qubit: Vec<Option<usize>> = vec![None; code.num_qubits()];
    for (i, s) in stabs.iter().enumerate() {
        for &q in &s.support {
            match owner_of_qubit[q] {
                None => owner_of_qubit[q] = Some(i),
                Some(j) => {
                    let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                    if a != b {
                        parent[a] = b;
                    }
                }
            }
        }
    }
    // BTreeMap, not HashMap: the stable length sort below leaves equal-length
    // groups in map-iteration order, so a hash map would leak its randomized
    // order into the result (the PR 3 bug class `cyclone-lint` now flags).
    // Root order is deterministic, making ties resolve to ascending root.
    let mut groups: std::collections::BTreeMap<usize, Vec<StabRef>> = Default::default();
    for (i, s) in stabs.iter().enumerate() {
        let root = find(&mut parent, i);
        groups.entry(root).or_default().push(StabRef {
            kind: s.kind,
            index: s.index,
        });
    }
    let mut out: Vec<Vec<StabRef>> = groups.into_values().collect();
    out.sort_by_key(|g| std::cmp::Reverse(g.len()));
    out
}

/// Whether the code admits at least two independent loops (disjoint-support stabilizer
/// groups). HGP and BB codes return `false`.
pub fn admits_independent_loops(code: &CssCode) -> bool {
    loop_decomposition(code).len() > 1
}

/// Counts how many stabilizers would straddle both halves if the data qubits were cut
/// into two contiguous halves (the natural "split the ring in two" attempt). Straddling
/// stabilizers force their ancillas to traverse both loops, which is what makes forced
/// splits slower than the single global loop.
pub fn straddling_stabilizers_for_even_split(code: &CssCode) -> usize {
    let half = code.num_qubits() / 2;
    code.stabilizers()
        .iter()
        .filter(|s| {
            let lo = s.support.iter().any(|&q| q < half);
            let hi = s.support.iter().any(|&q| q >= half);
            lo && hi
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qec::codes::{bb_72_12_6, hgp_225_9_6};
    use qec::linalg::BitMat;
    use qec::CssCode;

    #[test]
    fn hgp_and_bb_have_single_global_loop() {
        for code in [hgp_225_9_6().expect("valid"), bb_72_12_6().expect("valid")] {
            assert!(
                !admits_independent_loops(&code),
                "{} unexpectedly splits",
                code.name()
            );
            assert_eq!(loop_decomposition(&code).len(), 1);
        }
    }

    #[test]
    fn disconnected_code_splits() {
        // Two disjoint copies of a 4-qubit check pattern form two independent loops.
        let hx = BitMat::from_dense(&[vec![1, 1, 0, 0], vec![0, 0, 1, 1]]);
        let hz = BitMat::from_dense(&[vec![1, 1, 0, 0], vec![0, 0, 1, 1]]);
        let code = CssCode::new("two-blocks", hx, hz, false, None).expect("valid");
        assert!(admits_independent_loops(&code));
        assert_eq!(loop_decomposition(&code).len(), 2);
    }

    #[test]
    fn forced_split_straddles_many_stabilizers() {
        let code = hgp_225_9_6().expect("valid");
        let straddling = straddling_stabilizers_for_even_split(&code);
        // Long-range HGP connections mean a large fraction of stabilizers straddle.
        assert!(
            straddling * 4 > code.num_stabilizers(),
            "only {straddling} of {} stabilizers straddle",
            code.num_stabilizers()
        );
    }
}
