//! Cyclone: a roadblock-free, highly parallel QCCD hardware/software codesign for
//! fault-tolerant quantum memory.
//!
//! This crate is the primary contribution of the reproduced paper (HPCA 2026): a ring
//! of ion traps around which ancilla qubits rotate in lockstep, measuring all X
//! stabilizers in the first full rotation and all Z stabilizers in the second. The
//! codesign eliminates shuttling roadblocks, bounds total movement, needs only a
//! constant number of DAC channel groups, and — because faster syndrome extraction
//! means less decoherence — improves logical error rates by orders of magnitude over
//! 2D-grid baselines for hypergraph product and bivariate bicycle codes.
//!
//! * [`codesign`] — the Cyclone compiler and its closed-form runtime bound.
//! * [`condensed`] — "tight" variants trading trap count for trap density (Fig. 13).
//! * [`split_loops`] — the independent-loop analysis of §IV-C.
//! * [`registry`] — [`qccd::compiler::Codesign`] impls for Cyclone and the standard
//!   registry of every codesign the evaluation compares.
//! * [`sweep`] — the parallel, cache-backed scenario sweep engine, with
//!   deterministic work-sharding for multi-process fleets.
//! * [`sweep_cache`] — offline merge/stats/verify over sweep cache files (also
//!   exposed as the `sweep-cache` CLI), so shard-local caches compose.
//! * [`experiments`] — declarative scenario specs that regenerate every figure of
//!   the evaluation through the sweep engine.
//!
//! # Quick example
//!
//! ```
//! use cyclone::{CycloneCodesign, CycloneConfig};
//! use qccd::timing::OperationTimes;
//! use qec::codes::bb_72_12_6;
//!
//! let code = bb_72_12_6()?;
//! let design = CycloneCodesign::new(&code, CycloneConfig::base());
//! let round = design.compile(&OperationTimes::default());
//! assert_eq!(round.roadblock_events, 0);
//! println!("one round of syndrome extraction takes {:.2} ms", round.execution_time * 1e3);
//! # Ok::<(), qec::QecError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod codesign;
pub mod condensed;
pub mod experiments;
pub mod registry;
pub mod split_loops;
pub mod sweep;
pub mod sweep_cache;

pub use codesign::{CycloneCodesign, CycloneConfig};
pub use condensed::{best_configuration, default_trap_counts, trap_capacity_sweep, TrapSweepPoint};
pub use registry::{standard_registry, Cyclone};
pub use sweep::{run_sweep, shard_of, ScenarioSpec, Shard, SweepOptions, SweepResult};
