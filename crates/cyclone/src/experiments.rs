//! Experiment runners that regenerate every figure of the paper's evaluation.
//!
//! Each function returns plain data rows; the `bench` crate's binaries print them as
//! the tables/series of the corresponding figure, and `EXPERIMENTS.md` records the
//! paper-vs-measured comparison. All Monte-Carlo experiments take an explicit
//! [`MemoryConfig`] so shot counts can be scaled from quick smoke runs to
//! publication-quality sampling.

use crate::codesign::{CycloneCodesign, CycloneConfig};
use decoder::memory::{logical_error_rate, LerEstimate, MemoryConfig, MemoryExperiment};
use noise::{HardwareNoiseModel, NoiseParameters};
use qccd::compiler::baseline::{compile_baseline, compile_baseline_with_placement};
use qccd::compiler::dynamic::compile_dynamic;
use qccd::compiler::variants::{compile_baseline2, compile_baseline3};
use qccd::compiler::CompiledRound;
use qccd::placement::greedy_cluster_placement;
use qccd::timing::{OperationTimes, SwapKind};
use qccd::topology::{alternate_grid, baseline_grid, mesh_junction_network, ring};
use qccd::wiring::wiring_cost;
use qec::codes::CatalogEntry;
use qec::schedule::{max_parallel_schedule, parallel_speedup, serial_schedule};
use qec::CssCode;
use serde::{Deserialize, Serialize};

/// Default per-trap capacity of the baseline grid (the paper's value).
pub const BASELINE_CAPACITY: usize = 5;

/// Compiles the baseline codesign (grid + greedy cluster mapping + static EJF) for a
/// code with the given operation times.
pub fn baseline_round(code: &CssCode, times: &OperationTimes) -> CompiledRound {
    let topo = baseline_grid(code.num_qubits(), BASELINE_CAPACITY);
    compile_baseline(code, &topo, times, &serial_schedule(code))
}

/// Compiles the base Cyclone codesign for a code with the given operation times.
pub fn cyclone_round(code: &CssCode, times: &OperationTimes) -> CompiledRound {
    CycloneCodesign::new(code, CycloneConfig::base()).compile(times)
}

/// Estimates the logical error rate of a code whose syndrome-extraction round takes
/// `round.execution_time` seconds, at physical error rate `p`.
pub fn ler_for_round(
    code: &CssCode,
    round: &CompiledRound,
    p: f64,
    config: &MemoryConfig,
) -> LerEstimate {
    logical_error_rate(code, p, round.execution_time, config)
}

/// Points an existing experiment at a new `(p, latency)` operating point and runs it.
///
/// The sweeps below build one [`MemoryExperiment`] per code and move it between
/// points with [`MemoryExperiment::set_model`], so the BP+OSD decoders (Tanner-graph
/// flattening included) are constructed once per code instead of once per point.
fn ler_at(
    exp: &mut MemoryExperiment<'_>,
    p: f64,
    latency: f64,
    config: &MemoryConfig,
) -> LerEstimate {
    exp.set_model(HardwareNoiseModel::new(NoiseParameters::new(p), latency));
    exp.run(config)
}

/// Builds a reusable experiment for sweeping one code across operating points.
fn sweep_experiment<'a>(code: &'a CssCode, p: f64, config: &MemoryConfig) -> MemoryExperiment<'a> {
    MemoryExperiment::new(
        code,
        HardwareNoiseModel::new(NoiseParameters::new(p), 0.0),
        config.bp_iterations,
    )
}

// ---------------------------------------------------------------------------
// Fig. 3 — idealized parallel vs serial speedup
// ---------------------------------------------------------------------------

/// One bar of Fig. 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeedupRow {
    /// Code label, e.g. `"[[144,12,12]]"`.
    pub code: String,
    /// Code family name (`"HGP"` or `"BB"`).
    pub family: String,
    /// Depth of the fully serial schedule (= gate count).
    pub serial_depth: usize,
    /// Depth of the maximally parallel schedule.
    pub parallel_depth: usize,
    /// Serial / parallel depth ratio.
    pub speedup: f64,
}

/// Fig. 3: speedup of the maximally parallel schedule over the fully serial one.
pub fn fig3_parallel_speedup(catalog: &[CatalogEntry]) -> Vec<SpeedupRow> {
    catalog
        .iter()
        .map(|entry| {
            let serial = serial_schedule(&entry.code);
            let parallel = max_parallel_schedule(&entry.code);
            SpeedupRow {
                code: entry.label.clone(),
                family: entry.family.to_string(),
                serial_depth: serial.depth(),
                parallel_depth: parallel.depth(),
                speedup: parallel_speedup(&entry.code),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fig. 5 — LER improvement when the baseline is sped up
// ---------------------------------------------------------------------------

/// One point of Fig. 5: the baseline's LER when its latency is divided by `speedup`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyLerRow {
    /// Code label.
    pub code: String,
    /// Latency division factor (1 = the baseline as compiled).
    pub speedup: f64,
    /// Round latency in seconds after the division.
    pub latency: f64,
    /// Estimated logical error rate.
    pub ler: LerEstimate,
}

/// Fig. 5: LER of each code as the compiled baseline latency is divided by the given
/// factors, at fixed physical error rate `p`.
pub fn fig5_latency_vs_ler(
    codes: &[CssCode],
    p: f64,
    speedups: &[f64],
    config: &MemoryConfig,
) -> Vec<LatencyLerRow> {
    let times = OperationTimes::default();
    let mut rows = Vec::new();
    for code in codes {
        let base = baseline_round(code, &times);
        let mut exp = sweep_experiment(code, p, config);
        for &s in speedups {
            let latency = base.execution_time / s;
            rows.push(LatencyLerRow {
                code: code.descriptor(),
                speedup: s,
                latency,
                ler: ler_at(&mut exp, p, latency, config),
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Fig. 6 — software × hardware confusion matrix
// ---------------------------------------------------------------------------

/// The four cells of the Fig. 6 confusion matrix (execution times in seconds).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// Code label.
    pub code: String,
    /// Grid hardware + static EJF software (the baseline).
    pub grid_static: f64,
    /// Grid hardware + dynamic timeslice software.
    pub grid_dynamic: f64,
    /// Circle hardware + static EJF software.
    pub circle_static: f64,
    /// Circle hardware + coordinated dynamic software (Cyclone).
    pub circle_dynamic: f64,
}

/// Fig. 6: execution time of every software/hardware combination.
pub fn fig6_confusion_matrix(code: &CssCode, times: &OperationTimes) -> ConfusionMatrix {
    let grid = baseline_grid(code.num_qubits(), BASELINE_CAPACITY);
    let grid_static = compile_baseline(code, &grid, times, &serial_schedule(code)).execution_time;
    let grid_dynamic =
        compile_dynamic(code, &grid, times, &max_parallel_schedule(code)).execution_time;
    let a = code.num_x_stabilizers().max(code.num_z_stabilizers());
    let capacity = code.num_qubits().div_ceil(a) + 2;
    let circle = ring(a, capacity);
    let circle_static =
        compile_baseline(code, &circle, times, &serial_schedule(code)).execution_time;
    let circle_dynamic = cyclone_round(code, times).execution_time;
    ConfusionMatrix {
        code: code.descriptor(),
        grid_static,
        grid_dynamic,
        circle_static,
        circle_dynamic,
    }
}

// ---------------------------------------------------------------------------
// Fig. 9 — junction-crossing-time sensitivity of the mesh junction network
// ---------------------------------------------------------------------------

/// One point of Fig. 9.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JunctionSensitivityRow {
    /// Fractional reduction of junction crossing times (0 = nominal).
    pub reduction: f64,
    /// Mesh-junction-network execution time, seconds.
    pub mesh_execution_time: f64,
    /// Mesh-junction-network LER at the configured `p`.
    pub mesh_ler: LerEstimate,
    /// Baseline-grid LER at the same `p` (horizontal reference line).
    pub baseline_ler: LerEstimate,
}

/// Fig. 9: LER of the mesh junction network as junction crossing times are reduced,
/// against the baseline grid reference.
pub fn fig9_junction_sensitivity(
    code: &CssCode,
    p: f64,
    reductions: &[f64],
    config: &MemoryConfig,
) -> Vec<JunctionSensitivityRow> {
    let nominal = OperationTimes::default();
    let base = baseline_round(code, &nominal);
    let mut exp = sweep_experiment(code, p, config);
    let baseline_ler = ler_at(&mut exp, p, base.execution_time, config);
    let mesh = mesh_junction_network(code.num_qubits(), BASELINE_CAPACITY);
    reductions
        .iter()
        .map(|&r| {
            let times = nominal.with_junction_reduction(r);
            let round = compile_dynamic(code, &mesh, &times, &max_parallel_schedule(code));
            JunctionSensitivityRow {
                reduction: r,
                mesh_execution_time: round.execution_time,
                mesh_ler: ler_at(&mut exp, p, round.execution_time, config),
                baseline_ler,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fig. 13 — trap-count / ion-capacity sensitivity of Cyclone
// ---------------------------------------------------------------------------

/// One point of Fig. 13.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrapSensitivityRow {
    /// Number of traps.
    pub num_traps: usize,
    /// Tight trap capacity for this configuration.
    pub trap_capacity: usize,
    /// Cyclone execution time, seconds.
    pub execution_time: f64,
    /// LER at the configured physical error rate.
    pub ler: LerEstimate,
}

/// Fig. 13: Cyclone execution time and LER across "tight" trap/capacity arrangements
/// at fixed `p` (the paper uses `p = 10⁻⁴` on the `[[225,9,6]]` code).
pub fn fig13_trap_capacity_sweep(
    code: &CssCode,
    p: f64,
    trap_counts: &[usize],
    config: &MemoryConfig,
) -> Vec<TrapSensitivityRow> {
    let times = OperationTimes::default();
    let mut exp = sweep_experiment(code, p, config);
    trap_counts
        .iter()
        .map(|&x| {
            let design = CycloneCodesign::new(code, CycloneConfig::with_traps(x));
            let round = design.compile(&times);
            TrapSensitivityRow {
                num_traps: design.num_traps(),
                trap_capacity: design.trap_capacity(),
                execution_time: round.execution_time,
                ler: ler_at(&mut exp, p, round.execution_time, config),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figs. 14 & 15 — LER: Cyclone vs baseline across physical error rates
// ---------------------------------------------------------------------------

/// One point of the Fig. 14/15 LER comparison curves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LerComparisonRow {
    /// Code label.
    pub code: String,
    /// Physical error rate.
    pub p: f64,
    /// Baseline round latency, seconds.
    pub baseline_latency: f64,
    /// Cyclone round latency, seconds.
    pub cyclone_latency: f64,
    /// Baseline LER estimate.
    pub baseline_ler: LerEstimate,
    /// Cyclone LER estimate.
    pub cyclone_ler: LerEstimate,
}

/// Figs. 14 (BB codes) and 15 (HGP codes): logical error rate of Cyclone vs the
/// baseline across a sweep of physical error rates.
pub fn ler_comparison(
    codes: &[CssCode],
    ps: &[f64],
    config: &MemoryConfig,
) -> Vec<LerComparisonRow> {
    let times = OperationTimes::default();
    let mut rows = Vec::new();
    for code in codes {
        let base = baseline_round(code, &times);
        let cyc = cyclone_round(code, &times);
        let mut exp = sweep_experiment(code, ps.first().copied().unwrap_or(1e-3), config);
        for &p in ps {
            rows.push(LerComparisonRow {
                code: code.descriptor(),
                p,
                baseline_latency: base.execution_time,
                cyclone_latency: cyc.execution_time,
                baseline_ler: ler_at(&mut exp, p, base.execution_time, config),
                cyclone_ler: ler_at(&mut exp, p, cyc.execution_time, config),
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Fig. 16 — spacetime cost
// ---------------------------------------------------------------------------

/// One bar pair of Fig. 16.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpacetimeRow {
    /// Code label.
    pub code: String,
    /// Baseline spacetime cost (traps × execution time × ancillas).
    pub baseline_spacetime: f64,
    /// Cyclone spacetime cost.
    pub cyclone_spacetime: f64,
    /// Baseline / Cyclone ratio (the paper reports up to ~20×).
    pub improvement: f64,
}

/// Fig. 16: relative spacetime cost of the baseline vs base Cyclone.
pub fn fig16_spacetime(codes: &[CssCode], times: &OperationTimes) -> Vec<SpacetimeRow> {
    codes
        .iter()
        .map(|code| {
            let base = baseline_round(code, times);
            let cyc = cyclone_round(code, times);
            let b = base.spacetime_cost();
            let c = cyc.spacetime_cost();
            SpacetimeRow {
                code: code.descriptor(),
                baseline_spacetime: b,
                cyclone_spacetime: c,
                improvement: b / c,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fig. 17 — baseline sensitivity to loose (excess) trap capacity
// ---------------------------------------------------------------------------

/// One point of Fig. 17.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LooseCapacityRow {
    /// Per-trap ion capacity given to the baseline grid.
    pub capacity: usize,
    /// Baseline execution time, seconds.
    pub execution_time: f64,
    /// Baseline LER at the configured `p`.
    pub ler: LerEstimate,
}

/// Fig. 17: the baseline's LER when its traps are given excess capacity.
pub fn fig17_loose_capacity(
    code: &CssCode,
    p: f64,
    capacities: &[usize],
    config: &MemoryConfig,
) -> Vec<LooseCapacityRow> {
    let times = OperationTimes::default();
    let mut exp = sweep_experiment(code, p, config);
    capacities
        .iter()
        .map(|&cap| {
            let topo = baseline_grid(code.num_qubits(), cap);
            let placement = greedy_cluster_placement(code, &topo);
            let round =
                compile_baseline_with_placement(code, &topo, &times, &serial_schedule(code), &placement);
            LooseCapacityRow {
                capacity: cap,
                execution_time: round.execution_time,
                ler: ler_at(&mut exp, p, round.execution_time, config),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fig. 18 — sensitivity to uniformly faster gates and shuttling
// ---------------------------------------------------------------------------

/// One point of Fig. 18.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpTimeSweepRow {
    /// Fractional reduction `r` applied to every gate and shuttling duration.
    pub reduction: f64,
    /// Baseline LER at the configured `p`.
    pub baseline_ler: LerEstimate,
    /// Cyclone LER at the configured `p`.
    pub cyclone_ler: LerEstimate,
    /// Baseline execution time after the reduction, seconds.
    pub baseline_latency: f64,
    /// Cyclone execution time after the reduction, seconds.
    pub cyclone_latency: f64,
}

/// Fig. 18: LER of baseline and Cyclone as gate and shuttling times are reduced by a
/// uniform percentage.
pub fn fig18_op_time_sweep(
    code: &CssCode,
    p: f64,
    reductions: &[f64],
    config: &MemoryConfig,
) -> Vec<OpTimeSweepRow> {
    let mut exp = sweep_experiment(code, p, config);
    reductions
        .iter()
        .map(|&r| {
            let times = OperationTimes::default().scaled(r);
            let base = baseline_round(code, &times);
            let cyc = cyclone_round(code, &times);
            OpTimeSweepRow {
                reduction: r,
                baseline_ler: ler_at(&mut exp, p, base.execution_time, config),
                cyclone_ler: ler_at(&mut exp, p, cyc.execution_time, config),
                baseline_latency: base.execution_time,
                cyclone_latency: cyc.execution_time,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fig. 19 — alternate grid vs baseline vs Cyclone execution times
// ---------------------------------------------------------------------------

/// One row of Fig. 19.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionTimeRow {
    /// Code label.
    pub code: String,
    /// Alternate-grid (L-junction serpentine) execution time, seconds.
    pub alternate_grid: f64,
    /// Baseline grid execution time, seconds.
    pub baseline: f64,
    /// Base Cyclone execution time, seconds.
    pub cyclone: f64,
}

/// Fig. 19: raw execution times on the alternate grid, baseline grid, and Cyclone.
pub fn fig19_execution_times(codes: &[CssCode], times: &OperationTimes) -> Vec<ExecutionTimeRow> {
    codes
        .iter()
        .map(|code| {
            let alt = alternate_grid(code.num_qubits(), BASELINE_CAPACITY);
            let alt_round = compile_baseline(code, &alt, times, &serial_schedule(code));
            let base = baseline_round(code, times);
            let cyc = cyclone_round(code, times);
            ExecutionTimeRow {
                code: code.descriptor(),
                alternate_grid: alt_round.execution_time,
                baseline: base.execution_time,
                cyclone: cyc.execution_time,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fig. 20 — compiler comparison (baseline / baseline 2 / baseline 3 / Cyclone)
// ---------------------------------------------------------------------------

/// One compiler's row in Fig. 20.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompilerComparisonRow {
    /// Compiler label.
    pub compiler: String,
    /// Realized execution time, seconds.
    pub execution_time: f64,
    /// Fully serialized ("unrolled") total of all components, seconds.
    pub serialized_total: f64,
    /// Gate component of the serialized total, seconds.
    pub gate: f64,
    /// Shuttling component (split + move + merge + junction), seconds.
    pub shuttle: f64,
    /// Swap component, seconds.
    pub swap: f64,
    /// Measurement component, seconds.
    pub measurement: f64,
    /// Realized parallelization: `serialized_total / execution_time`.
    pub parallelization: f64,
}

/// Fig. 20: total and component-wise execution times of the three baseline compilers
/// and Cyclone on the same code, plus the realized parallelization.
pub fn fig20_compiler_comparison(code: &CssCode, times: &OperationTimes) -> Vec<CompilerComparisonRow> {
    let topo = baseline_grid(code.num_qubits(), BASELINE_CAPACITY);
    let sched = serial_schedule(code);
    let rounds = vec![
        ("Baseline (EJF)".to_string(), compile_baseline(code, &topo, times, &sched)),
        ("Baseline 2 (shuttle-muzzled)".to_string(), compile_baseline2(code, &topo, times, &sched)),
        ("Baseline 3 (MoveLess-style)".to_string(), compile_baseline3(code, &topo, times, &sched)),
        ("Cyclone".to_string(), cyclone_round(code, times)),
    ];
    rounds
        .into_iter()
        .map(|(compiler, round)| {
            let b = round.breakdown;
            CompilerComparisonRow {
                compiler,
                execution_time: round.execution_time,
                serialized_total: b.serialized_total(),
                gate: b.gate,
                shuttle: b.split + b.merge + b.shuttle_move + b.junction + b.rebalance,
                swap: b.swap,
                measurement: b.measurement,
                parallelization: round.effective_parallelism(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fig. 21 — GateSwap vs IonSwap
// ---------------------------------------------------------------------------

/// One row of Fig. 21.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwapSensitivityRow {
    /// Codesign label (`"baseline"` or `"cyclone"`).
    pub codesign: String,
    /// Swap mechanism label.
    pub swap_kind: String,
    /// Execution time, seconds.
    pub execution_time: f64,
}

/// Fig. 21: execution time of baseline and Cyclone under GateSwap vs IonSwap.
pub fn fig21_swap_sensitivity(code: &CssCode) -> Vec<SwapSensitivityRow> {
    let mut rows = Vec::new();
    for kind in [SwapKind::GateSwap, SwapKind::IonSwap] {
        let times = OperationTimes::default().with_swap_kind(kind);
        rows.push(SwapSensitivityRow {
            codesign: "baseline".to_string(),
            swap_kind: kind.to_string(),
            execution_time: baseline_round(code, &times).execution_time,
        });
        rows.push(SwapSensitivityRow {
            codesign: "cyclone".to_string(),
            swap_kind: kind.to_string(),
            execution_time: cyclone_round(code, &times).execution_time,
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// Spatial / control-overhead summary (§IV spatial claims, §VI wiring discussion)
// ---------------------------------------------------------------------------

/// One row of the spatial-efficiency summary table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpatialRow {
    /// Code label.
    pub code: String,
    /// Traps in the baseline grid.
    pub baseline_traps: usize,
    /// Junctions in the baseline grid.
    pub baseline_junctions: usize,
    /// DAC channel groups needed by the baseline.
    pub baseline_dacs: usize,
    /// Ancilla qubits used by the baseline (one per stabilizer).
    pub baseline_ancillas: usize,
    /// Traps in base Cyclone.
    pub cyclone_traps: usize,
    /// Junctions in base Cyclone.
    pub cyclone_junctions: usize,
    /// DAC channel groups needed by Cyclone (constant).
    pub cyclone_dacs: usize,
    /// Ancilla qubits used by Cyclone (reused between the X and Z rotations).
    pub cyclone_ancillas: usize,
}

/// Spatial summary: traps, junctions, DACs, and ancilla counts of baseline vs Cyclone.
pub fn spatial_summary(codes: &[CssCode]) -> Vec<SpatialRow> {
    codes
        .iter()
        .map(|code| {
            let grid = baseline_grid(code.num_qubits(), BASELINE_CAPACITY);
            let design = CycloneCodesign::new(code, CycloneConfig::base());
            let ring_topo = design.topology();
            SpatialRow {
                code: code.descriptor(),
                baseline_traps: grid.num_traps(),
                baseline_junctions: grid.num_junctions(),
                baseline_dacs: wiring_cost(&grid, 0).dacs,
                baseline_ancillas: code.num_stabilizers(),
                cyclone_traps: ring_topo.num_traps(),
                cyclone_junctions: ring_topo.num_junctions(),
                cyclone_dacs: wiring_cost(ring_topo, 0).dacs,
                cyclone_ancillas: design.num_ancilla(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qec::classical::ClassicalCode;
    use qec::codes::bb_72_12_6;
    use qec::hgp::square_hypergraph_product;

    fn tiny_hgp() -> CssCode {
        square_hypergraph_product(&ClassicalCode::repetition(3)).expect("valid")
    }

    fn quick_config() -> MemoryConfig {
        MemoryConfig {
            shots: 60,
            bp_iterations: 12,
            threads: 2,
            seed: 7,
        }
    }

    #[test]
    fn fig3_rows_have_large_speedups() {
        let catalog = vec![CatalogEntry {
            family: qec::codes::CodeFamily::Bb,
            label: "[[72,12,6]]".into(),
            code: bb_72_12_6().expect("valid"),
        }];
        let rows = fig3_parallel_speedup(&catalog);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].speedup > 10.0);
        assert!(rows[0].serial_depth >= rows[0].parallel_depth);
    }

    #[test]
    fn fig6_matrix_orders_as_in_paper() {
        let code = tiny_hgp();
        let m = fig6_confusion_matrix(&code, &OperationTimes::default());
        // Coordinated circle (Cyclone) is the fastest cell; uncoordinated circle the slowest.
        assert!(m.circle_dynamic < m.grid_static);
        assert!(m.circle_static > m.circle_dynamic);
    }

    #[test]
    fn fig16_spacetime_improvement_positive() {
        let code = tiny_hgp();
        let rows = fig16_spacetime(std::slice::from_ref(&code), &OperationTimes::default());
        assert_eq!(rows.len(), 1);
        assert!(rows[0].improvement > 1.0, "Cyclone should win on spacetime, got {}", rows[0].improvement);
    }

    #[test]
    fn fig20_includes_all_four_compilers() {
        let code = tiny_hgp();
        let rows = fig20_compiler_comparison(&code, &OperationTimes::default());
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.execution_time > 0.0));
        assert!(rows.iter().all(|r| r.parallelization >= 1.0));
    }

    #[test]
    fn fig21_has_both_swap_kinds() {
        let code = tiny_hgp();
        let rows = fig21_swap_sensitivity(&code);
        assert_eq!(rows.len(), 4);
        let gate_cyc = rows.iter().find(|r| r.codesign == "cyclone" && r.swap_kind == "GateSwap").unwrap();
        assert!(gate_cyc.execution_time > 0.0);
    }

    #[test]
    fn spatial_summary_shows_cyclone_savings() {
        let code = bb_72_12_6().expect("valid");
        let rows = spatial_summary(std::slice::from_ref(&code));
        let r = &rows[0];
        assert!(r.cyclone_traps < r.baseline_traps);
        assert!(r.cyclone_ancillas * 2 == r.baseline_ancillas);
        assert!(r.cyclone_dacs < r.baseline_dacs);
    }

    #[test]
    fn ler_comparison_produces_rows_for_each_p() {
        let code = tiny_hgp();
        let rows = ler_comparison(std::slice::from_ref(&code), &[2e-3, 5e-3], &quick_config());
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.cyclone_latency < r.baseline_latency));
    }

    #[test]
    fn fig5_latency_rows_cover_speedups() {
        let code = tiny_hgp();
        let rows = fig5_latency_vs_ler(std::slice::from_ref(&code), 5e-3, &[1.0, 2.0, 4.0], &quick_config());
        assert_eq!(rows.len(), 3);
        assert!(rows[0].latency > rows[2].latency);
    }
}
