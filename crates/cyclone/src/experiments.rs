//! Experiment runners that regenerate every figure of the paper's evaluation.
//!
//! Every Monte-Carlo figure is a thin declaration: it assembles a
//! [`ScenarioSpec`](crate::sweep::ScenarioSpec) (codesigns from the
//! [`registry`](crate::registry) × codes × operating points) and hands it to the
//! [`sweep`](crate::sweep) engine, which parallelizes the points, caches results in
//! `sweeps/<figure>.json`, and keeps everything bit-identical at any thread count.
//! Compile-only figures (no sampling) look their codesigns up in the
//! [`standard_registry`] directly.
//!
//! Each `figNN_*` function returns plain data rows; the `bench` crate's binaries
//! print them as the tables/series of the corresponding figure, and `EXPERIMENTS.md`
//! records the paper-vs-measured comparison. Monte-Carlo figures take an explicit
//! [`MemoryConfig`] (or [`SweepOptions`] through the `*_with` variants, which add
//! cache control) so shot counts scale from quick smoke runs to publication-quality
//! sampling.

use crate::registry::{standard_registry, Cyclone};
use crate::sweep::{run_sweep, ScenarioSpec, SweepOptions, SweepResult};
use decoder::memory::{logical_error_rate, LerEstimate, MemoryConfig};
use noise::{ChannelSpec, ErrorChannel, HardwareNoiseModel, NoiseParameters};
use qccd::compiler::codesign::BASELINE_CAPACITY as QCCD_BASELINE_CAPACITY;
use qccd::compiler::IdleExposure;
use qccd::compiler::{Codesign, CompiledRound};
use qccd::timing::{OperationTimes, SwapKind};
use qccd::topology::baseline_grid;
use qccd::wiring::wiring_cost;
use qec::codes::CatalogEntry;
use qec::schedule::{max_parallel_schedule, parallel_speedup, serial_schedule};
use qec::CssCode;
use serde::{Deserialize, Serialize};

/// Default per-trap capacity of the baseline grid (the paper's value).
pub const BASELINE_CAPACITY: usize = QCCD_BASELINE_CAPACITY;

/// Compiles the baseline codesign (grid + greedy cluster mapping + static EJF) for a
/// code with the given operation times.
///
/// Thin wrapper over the `"baseline"` registry codesign, kept for examples and tests.
pub fn baseline_round(code: &CssCode, times: &OperationTimes) -> CompiledRound {
    qccd::compiler::codesign::BaselineGrid::new().compile(code, times)
}

/// Compiles the base Cyclone codesign for a code with the given operation times.
///
/// Thin wrapper over the `"cyclone"` registry codesign, kept for examples and tests.
pub fn cyclone_round(code: &CssCode, times: &OperationTimes) -> CompiledRound {
    Cyclone::base().compile(code, times)
}

/// Estimates the logical error rate of a code whose syndrome-extraction round takes
/// `round.execution_time` seconds, at physical error rate `p`.
pub fn ler_for_round(
    code: &CssCode,
    round: &CompiledRound,
    p: f64,
    config: &MemoryConfig,
) -> LerEstimate {
    logical_error_rate(code, p, round.execution_time, config)
}

/// Looks up a codesign in the standard registry, panicking with a clear message when
/// the label is missing (labels used here are all registered).
fn registered(label: &str) -> impl Fn(&CssCode, &OperationTimes) -> CompiledRound {
    let registry = standard_registry();
    assert!(
        registry.get(label).is_some(),
        "codesign `{label}` not registered"
    );
    let label = label.to_string();
    move |code, times| {
        registry
            .get(&label)
            .expect("checked at construction")
            .compile(code, times)
    }
}

// ---------------------------------------------------------------------------
// Fig. 3 — idealized parallel vs serial speedup
// ---------------------------------------------------------------------------

/// One bar of Fig. 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeedupRow {
    /// Code label, e.g. `"[[144,12,12]]"`.
    pub code: String,
    /// Code family name (`"HGP"` or `"BB"`).
    pub family: String,
    /// Depth of the fully serial schedule (= gate count).
    pub serial_depth: usize,
    /// Depth of the maximally parallel schedule.
    pub parallel_depth: usize,
    /// Serial / parallel depth ratio.
    pub speedup: f64,
}

/// Fig. 3: speedup of the maximally parallel schedule over the fully serial one.
pub fn fig3_parallel_speedup(catalog: &[CatalogEntry]) -> Vec<SpeedupRow> {
    catalog
        .iter()
        .map(|entry| {
            let serial = serial_schedule(&entry.code);
            let parallel = max_parallel_schedule(&entry.code);
            SpeedupRow {
                code: entry.label.clone(),
                family: entry.family.to_string(),
                serial_depth: serial.depth(),
                parallel_depth: parallel.depth(),
                speedup: parallel_speedup(&entry.code),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fig. 5 — LER improvement when the baseline is sped up
// ---------------------------------------------------------------------------

/// One point of Fig. 5: the baseline's LER when its latency is divided by `speedup`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyLerRow {
    /// Code label.
    pub code: String,
    /// Latency division factor (1 = the baseline as compiled).
    pub speedup: f64,
    /// Round latency in seconds after the division.
    pub latency: f64,
    /// Estimated logical error rate.
    pub ler: LerEstimate,
}

/// Declares the Fig. 5 scenario: each code's compiled baseline latency divided by the
/// given factors, at fixed physical error rate `p`.
pub fn fig5_spec(codes: &[CssCode], p: f64, speedups: &[f64]) -> ScenarioSpec {
    let compile = registered("baseline");
    let times = OperationTimes::default();
    let mut spec = ScenarioSpec::new("fig05_latency_vs_ler");
    for code in codes {
        let base = compile(code, &times);
        let idx = spec.code(code.clone());
        for &s in speedups {
            spec.point(
                format!("baseline/{}/s={s}", code.descriptor()),
                idx,
                p,
                base.execution_time / s,
            );
        }
    }
    spec
}

/// Fig. 5: LER of each code as the compiled baseline latency is divided by the given
/// factors, at fixed physical error rate `p`.
pub fn fig5_latency_vs_ler(
    codes: &[CssCode],
    p: f64,
    speedups: &[f64],
    config: &MemoryConfig,
) -> Vec<LatencyLerRow> {
    fig5_latency_vs_ler_with(codes, p, speedups, &SweepOptions::ephemeral(*config))
}

/// [`fig5_latency_vs_ler`] with full sweep control (thread pool + cache).
pub fn fig5_latency_vs_ler_with(
    codes: &[CssCode],
    p: f64,
    speedups: &[f64],
    options: &SweepOptions,
) -> Vec<LatencyLerRow> {
    let spec = fig5_spec(codes, p, speedups);
    let result = run_sweep(&spec, options);
    let mut rows = Vec::new();
    let mut outcomes = result.points.iter();
    for code in codes {
        for &s in speedups {
            let outcome = outcomes.next().expect("one outcome per point");
            rows.push(LatencyLerRow {
                code: code.descriptor(),
                speedup: s,
                latency: outcome.latency,
                ler: outcome.ler,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Fig. 6 — software × hardware confusion matrix
// ---------------------------------------------------------------------------

/// The four cells of the Fig. 6 confusion matrix (execution times in seconds).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// Code label.
    pub code: String,
    /// Grid hardware + static EJF software (the baseline).
    pub grid_static: f64,
    /// Grid hardware + dynamic timeslice software.
    pub grid_dynamic: f64,
    /// Circle hardware + static EJF software.
    pub circle_static: f64,
    /// Circle hardware + coordinated dynamic software (Cyclone).
    pub circle_dynamic: f64,
}

/// Fig. 6: execution time of every software/hardware combination, all four cells
/// pulled from the codesign registry.
pub fn fig6_confusion_matrix(code: &CssCode, times: &OperationTimes) -> ConfusionMatrix {
    let registry = standard_registry();
    let cell = |label: &str| {
        registry
            .get(label)
            .unwrap_or_else(|| panic!("codesign `{label}` not registered"))
            .compile(code, times)
            .execution_time
    };
    ConfusionMatrix {
        code: code.descriptor(),
        grid_static: cell("baseline"),
        grid_dynamic: cell("dynamic-grid"),
        circle_static: cell("ring-static"),
        circle_dynamic: cell("cyclone"),
    }
}

// ---------------------------------------------------------------------------
// Fig. 9 — junction-crossing-time sensitivity of the mesh junction network
// ---------------------------------------------------------------------------

/// One point of Fig. 9.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JunctionSensitivityRow {
    /// Fractional reduction of junction crossing times (0 = nominal).
    pub reduction: f64,
    /// Mesh-junction-network execution time, seconds.
    pub mesh_execution_time: f64,
    /// Mesh-junction-network LER at the configured `p`.
    pub mesh_ler: LerEstimate,
    /// Baseline-grid LER at the same `p` (horizontal reference line).
    pub baseline_ler: LerEstimate,
}

/// Declares the Fig. 9 scenario: the baseline reference point plus one mesh point per
/// junction-time reduction. Returns the spec and the mesh execution times (row
/// metadata the sweep result alone does not carry).
pub fn fig9_spec(code: &CssCode, p: f64, reductions: &[f64]) -> (ScenarioSpec, Vec<f64>) {
    let nominal = OperationTimes::default();
    let baseline = registered("baseline");
    let mesh = registered("dynamic-mesh");
    let mut spec = ScenarioSpec::new("fig09_junction_sensitivity");
    let idx = spec.code(code.clone());
    spec.point("baseline", idx, p, baseline(code, &nominal).execution_time);
    let mut mesh_times = Vec::new();
    for &r in reductions {
        let times = nominal.with_junction_reduction(r);
        let round = mesh(code, &times);
        mesh_times.push(round.execution_time);
        spec.point(format!("mesh/r={r}"), idx, p, round.execution_time);
    }
    (spec, mesh_times)
}

/// Fig. 9: LER of the mesh junction network as junction crossing times are reduced,
/// against the baseline grid reference.
pub fn fig9_junction_sensitivity(
    code: &CssCode,
    p: f64,
    reductions: &[f64],
    config: &MemoryConfig,
) -> Vec<JunctionSensitivityRow> {
    fig9_junction_sensitivity_with(code, p, reductions, &SweepOptions::ephemeral(*config))
}

/// [`fig9_junction_sensitivity`] with full sweep control (thread pool + cache).
pub fn fig9_junction_sensitivity_with(
    code: &CssCode,
    p: f64,
    reductions: &[f64],
    options: &SweepOptions,
) -> Vec<JunctionSensitivityRow> {
    let (spec, mesh_times) = fig9_spec(code, p, reductions);
    let result = run_sweep(&spec, options);
    let baseline_ler = result.points[0].ler;
    reductions
        .iter()
        .zip(mesh_times)
        .zip(&result.points[1..])
        .map(
            |((&r, mesh_execution_time), outcome)| JunctionSensitivityRow {
                reduction: r,
                mesh_execution_time,
                mesh_ler: outcome.ler,
                baseline_ler,
            },
        )
        .collect()
}

// ---------------------------------------------------------------------------
// Fig. 13 — trap-count / ion-capacity sensitivity of Cyclone
// ---------------------------------------------------------------------------

/// One point of Fig. 13.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrapSensitivityRow {
    /// Number of traps.
    pub num_traps: usize,
    /// Tight trap capacity for this configuration.
    pub trap_capacity: usize,
    /// Cyclone execution time, seconds.
    pub execution_time: f64,
    /// LER at the configured physical error rate.
    pub ler: LerEstimate,
}

/// Declares the Fig. 13 scenario: one point per condensed Cyclone trap count. Returns
/// the spec and the `(num_traps, trap_capacity, execution_time)` row metadata.
pub fn fig13_spec(
    code: &CssCode,
    p: f64,
    trap_counts: &[usize],
) -> (ScenarioSpec, Vec<(usize, usize, f64)>) {
    let times = OperationTimes::default();
    let mut spec = ScenarioSpec::new("fig13_trap_capacity_sweep");
    let idx = spec.code(code.clone());
    let mut meta = Vec::new();
    for &x in trap_counts {
        let wrapper = Cyclone::condensed(x);
        let design = wrapper.instantiate(code);
        let round = design.compile(&times);
        meta.push((
            design.num_traps(),
            design.trap_capacity(),
            round.execution_time,
        ));
        spec.point(
            format!("{}/x={x}", wrapper.name()),
            idx,
            p,
            round.execution_time,
        );
    }
    (spec, meta)
}

/// Fig. 13: Cyclone execution time and LER across "tight" trap/capacity arrangements
/// at fixed `p` (the paper uses `p = 10⁻⁴` on the `[[225,9,6]]` code).
pub fn fig13_trap_capacity_sweep(
    code: &CssCode,
    p: f64,
    trap_counts: &[usize],
    config: &MemoryConfig,
) -> Vec<TrapSensitivityRow> {
    fig13_trap_capacity_sweep_with(code, p, trap_counts, &SweepOptions::ephemeral(*config))
}

/// [`fig13_trap_capacity_sweep`] with full sweep control (thread pool + cache).
pub fn fig13_trap_capacity_sweep_with(
    code: &CssCode,
    p: f64,
    trap_counts: &[usize],
    options: &SweepOptions,
) -> Vec<TrapSensitivityRow> {
    let (spec, meta) = fig13_spec(code, p, trap_counts);
    let result = run_sweep(&spec, options);
    meta.into_iter()
        .zip(&result.points)
        .map(
            |((num_traps, trap_capacity, execution_time), outcome)| TrapSensitivityRow {
                num_traps,
                trap_capacity,
                execution_time,
                ler: outcome.ler,
            },
        )
        .collect()
}

// ---------------------------------------------------------------------------
// Figs. 14 & 15 — LER: Cyclone vs baseline across physical error rates
// ---------------------------------------------------------------------------

/// One point of the Fig. 14/15 LER comparison curves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LerComparisonRow {
    /// Code label.
    pub code: String,
    /// Physical error rate.
    pub p: f64,
    /// Baseline round latency, seconds.
    pub baseline_latency: f64,
    /// Cyclone round latency, seconds.
    pub cyclone_latency: f64,
    /// Baseline LER estimate.
    pub baseline_ler: LerEstimate,
    /// Cyclone LER estimate.
    pub cyclone_ler: LerEstimate,
}

/// Declares the Fig. 14/15 scenario (`figure` names the cache file: the BB and HGP
/// variants of the same comparison sweep must not share one). Returns the spec and
/// the per-code `(baseline_latency, cyclone_latency)` pairs.
pub fn ler_comparison_spec(
    figure: &str,
    codes: &[CssCode],
    ps: &[f64],
) -> (ScenarioSpec, Vec<(f64, f64)>) {
    let times = OperationTimes::default();
    let baseline = registered("baseline");
    let cyclone = registered("cyclone");
    let mut spec = ScenarioSpec::new(figure);
    let mut latencies = Vec::new();
    for code in codes {
        let base = baseline(code, &times);
        let cyc = cyclone(code, &times);
        latencies.push((base.execution_time, cyc.execution_time));
        let idx = spec.code(code.clone());
        for &p in ps {
            spec.point(
                format!("baseline/{}/p={p}", code.descriptor()),
                idx,
                p,
                base.execution_time,
            );
            spec.point(
                format!("cyclone/{}/p={p}", code.descriptor()),
                idx,
                p,
                cyc.execution_time,
            );
        }
    }
    (spec, latencies)
}

/// Figs. 14 (BB codes) and 15 (HGP codes): logical error rate of Cyclone vs the
/// baseline across a sweep of physical error rates.
pub fn ler_comparison(
    codes: &[CssCode],
    ps: &[f64],
    config: &MemoryConfig,
) -> Vec<LerComparisonRow> {
    ler_comparison_with(
        "ler_comparison",
        codes,
        ps,
        &SweepOptions::ephemeral(*config),
    )
}

/// [`ler_comparison`] with full sweep control; `figure` names the cache file
/// (`fig14_bb_ler` / `fig15_hgp_ler` from the bench frontends).
pub fn ler_comparison_with(
    figure: &str,
    codes: &[CssCode],
    ps: &[f64],
    options: &SweepOptions,
) -> Vec<LerComparisonRow> {
    let (spec, latencies) = ler_comparison_spec(figure, codes, ps);
    let result = run_sweep(&spec, options);
    let mut rows = Vec::new();
    let mut outcomes = result.points.iter();
    for (code, (baseline_latency, cyclone_latency)) in codes.iter().zip(latencies) {
        for &p in ps {
            let base = outcomes.next().expect("baseline outcome");
            let cyc = outcomes.next().expect("cyclone outcome");
            rows.push(LerComparisonRow {
                code: code.descriptor(),
                p,
                baseline_latency,
                cyclone_latency,
                baseline_ler: base.ler,
                cyclone_ler: cyc.ler,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Fig. 16 — spacetime cost
// ---------------------------------------------------------------------------

/// One bar pair of Fig. 16.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpacetimeRow {
    /// Code label.
    pub code: String,
    /// Baseline spacetime cost (traps × execution time × ancillas).
    pub baseline_spacetime: f64,
    /// Cyclone spacetime cost.
    pub cyclone_spacetime: f64,
    /// Baseline / Cyclone ratio (the paper reports up to ~20×).
    pub improvement: f64,
}

/// Fig. 16: relative spacetime cost of the baseline vs base Cyclone.
pub fn fig16_spacetime(codes: &[CssCode], times: &OperationTimes) -> Vec<SpacetimeRow> {
    let baseline = registered("baseline");
    let cyclone = registered("cyclone");
    codes
        .iter()
        .map(|code| {
            let b = baseline(code, times).spacetime_cost();
            let c = cyclone(code, times).spacetime_cost();
            SpacetimeRow {
                code: code.descriptor(),
                baseline_spacetime: b,
                cyclone_spacetime: c,
                improvement: b / c,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fig. 17 — baseline sensitivity to loose (excess) trap capacity
// ---------------------------------------------------------------------------

/// One point of Fig. 17.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LooseCapacityRow {
    /// Per-trap ion capacity given to the baseline grid.
    pub capacity: usize,
    /// Baseline execution time, seconds.
    pub execution_time: f64,
    /// Baseline LER at the configured `p`.
    pub ler: LerEstimate,
}

/// Declares the Fig. 17 scenario: the baseline grid with excess per-trap capacity.
/// Returns the spec and the per-capacity execution times.
pub fn fig17_spec(code: &CssCode, p: f64, capacities: &[usize]) -> (ScenarioSpec, Vec<f64>) {
    let times = OperationTimes::default();
    let mut spec = ScenarioSpec::new("fig17_loose_capacity");
    let idx = spec.code(code.clone());
    let mut exec_times = Vec::new();
    for &cap in capacities {
        let design = qccd::compiler::codesign::BaselineGrid::with_capacity(cap);
        let round = design.compile(code, &times);
        exec_times.push(round.execution_time);
        spec.point(format!("baseline/cap={cap}"), idx, p, round.execution_time);
    }
    (spec, exec_times)
}

/// Fig. 17: the baseline's LER when its traps are given excess capacity.
pub fn fig17_loose_capacity(
    code: &CssCode,
    p: f64,
    capacities: &[usize],
    config: &MemoryConfig,
) -> Vec<LooseCapacityRow> {
    fig17_loose_capacity_with(code, p, capacities, &SweepOptions::ephemeral(*config))
}

/// [`fig17_loose_capacity`] with full sweep control (thread pool + cache).
pub fn fig17_loose_capacity_with(
    code: &CssCode,
    p: f64,
    capacities: &[usize],
    options: &SweepOptions,
) -> Vec<LooseCapacityRow> {
    let (spec, exec_times) = fig17_spec(code, p, capacities);
    let result = run_sweep(&spec, options);
    capacities
        .iter()
        .zip(exec_times)
        .zip(&result.points)
        .map(|((&capacity, execution_time), outcome)| LooseCapacityRow {
            capacity,
            execution_time,
            ler: outcome.ler,
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fig. 18 — sensitivity to uniformly faster gates and shuttling
// ---------------------------------------------------------------------------

/// One point of Fig. 18.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpTimeSweepRow {
    /// Fractional reduction `r` applied to every gate and shuttling duration.
    pub reduction: f64,
    /// Baseline LER at the configured `p`.
    pub baseline_ler: LerEstimate,
    /// Cyclone LER at the configured `p`.
    pub cyclone_ler: LerEstimate,
    /// Baseline execution time after the reduction, seconds.
    pub baseline_latency: f64,
    /// Cyclone execution time after the reduction, seconds.
    pub cyclone_latency: f64,
}

/// Declares the Fig. 18 scenario: baseline and Cyclone recompiled under uniformly
/// reduced operation times. Returns the spec and the per-reduction
/// `(baseline_latency, cyclone_latency)` pairs.
pub fn fig18_spec(code: &CssCode, p: f64, reductions: &[f64]) -> (ScenarioSpec, Vec<(f64, f64)>) {
    let baseline = registered("baseline");
    let cyclone = registered("cyclone");
    let mut spec = ScenarioSpec::new("fig18_op_time_sweep");
    let idx = spec.code(code.clone());
    let mut latencies = Vec::new();
    for &r in reductions {
        let times = OperationTimes::default().scaled(r);
        let base = baseline(code, &times);
        let cyc = cyclone(code, &times);
        latencies.push((base.execution_time, cyc.execution_time));
        spec.point(format!("baseline/r={r}"), idx, p, base.execution_time);
        spec.point(format!("cyclone/r={r}"), idx, p, cyc.execution_time);
    }
    (spec, latencies)
}

/// Fig. 18: LER of baseline and Cyclone as gate and shuttling times are reduced by a
/// uniform percentage.
pub fn fig18_op_time_sweep(
    code: &CssCode,
    p: f64,
    reductions: &[f64],
    config: &MemoryConfig,
) -> Vec<OpTimeSweepRow> {
    fig18_op_time_sweep_with(code, p, reductions, &SweepOptions::ephemeral(*config))
}

/// [`fig18_op_time_sweep`] with full sweep control (thread pool + cache).
pub fn fig18_op_time_sweep_with(
    code: &CssCode,
    p: f64,
    reductions: &[f64],
    options: &SweepOptions,
) -> Vec<OpTimeSweepRow> {
    let (spec, latencies) = fig18_spec(code, p, reductions);
    let result = run_sweep(&spec, options);
    reductions
        .iter()
        .zip(latencies)
        .zip(result.points.chunks(2))
        .map(
            |((&r, (baseline_latency, cyclone_latency)), pair)| OpTimeSweepRow {
                reduction: r,
                baseline_ler: pair[0].ler,
                cyclone_ler: pair[1].ler,
                baseline_latency,
                cyclone_latency,
            },
        )
        .collect()
}

// ---------------------------------------------------------------------------
// Fig. 19 — alternate grid vs baseline vs Cyclone execution times
// ---------------------------------------------------------------------------

/// One row of Fig. 19.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionTimeRow {
    /// Code label.
    pub code: String,
    /// Alternate-grid (L-junction serpentine) execution time, seconds.
    pub alternate_grid: f64,
    /// Baseline grid execution time, seconds.
    pub baseline: f64,
    /// Base Cyclone execution time, seconds.
    pub cyclone: f64,
}

/// Fig. 19: raw execution times on the alternate grid, baseline grid, and Cyclone.
pub fn fig19_execution_times(codes: &[CssCode], times: &OperationTimes) -> Vec<ExecutionTimeRow> {
    let registry = standard_registry();
    let cell = |label: &str, code: &CssCode| {
        registry
            .get(label)
            .unwrap_or_else(|| panic!("codesign `{label}` not registered"))
            .compile(code, times)
            .execution_time
    };
    codes
        .iter()
        .map(|code| ExecutionTimeRow {
            code: code.descriptor(),
            alternate_grid: cell("alternate-grid", code),
            baseline: cell("baseline", code),
            cyclone: cell("cyclone", code),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fig. 20 — compiler comparison (baseline / baseline 2 / baseline 3 / Cyclone)
// ---------------------------------------------------------------------------

/// One compiler's row in Fig. 20.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompilerComparisonRow {
    /// Compiler label.
    pub compiler: String,
    /// Realized execution time, seconds.
    pub execution_time: f64,
    /// Fully serialized ("unrolled") total of all components, seconds.
    pub serialized_total: f64,
    /// Gate component of the serialized total, seconds.
    pub gate: f64,
    /// Shuttling component (split + move + merge + junction), seconds.
    pub shuttle: f64,
    /// Swap component, seconds.
    pub swap: f64,
    /// Measurement component, seconds.
    pub measurement: f64,
    /// Realized parallelization: `serialized_total / execution_time`.
    pub parallelization: f64,
}

/// The `(display name, registry label)` pairs of the Fig. 20 comparison.
pub const FIG20_COMPILERS: [(&str, &str); 4] = [
    ("Baseline (EJF)", "baseline"),
    ("Baseline 2 (shuttle-muzzled)", "baseline2"),
    ("Baseline 3 (MoveLess-style)", "baseline3"),
    ("Cyclone", "cyclone"),
];

/// Fig. 20: total and component-wise execution times of the three baseline compilers
/// and Cyclone on the same code, plus the realized parallelization.
pub fn fig20_compiler_comparison(
    code: &CssCode,
    times: &OperationTimes,
) -> Vec<CompilerComparisonRow> {
    let registry = standard_registry();
    FIG20_COMPILERS
        .iter()
        .map(|&(display, label)| {
            let round = registry
                .get(label)
                .unwrap_or_else(|| panic!("codesign `{label}` not registered"))
                .compile(code, times);
            let b = round.breakdown;
            CompilerComparisonRow {
                compiler: display.to_string(),
                execution_time: round.execution_time,
                serialized_total: b.serialized_total(),
                gate: b.gate,
                shuttle: b.split + b.merge + b.shuttle_move + b.junction + b.rebalance,
                swap: b.swap,
                measurement: b.measurement,
                parallelization: round.effective_parallelism(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fig. 21 — GateSwap vs IonSwap
// ---------------------------------------------------------------------------

/// One row of Fig. 21.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwapSensitivityRow {
    /// Codesign label (`"baseline"` or `"cyclone"`).
    pub codesign: String,
    /// Swap mechanism label.
    pub swap_kind: String,
    /// Execution time, seconds.
    pub execution_time: f64,
}

/// Fig. 21: execution time of baseline and Cyclone under GateSwap vs IonSwap.
pub fn fig21_swap_sensitivity(code: &CssCode) -> Vec<SwapSensitivityRow> {
    let registry = standard_registry();
    let mut rows = Vec::new();
    for kind in [SwapKind::GateSwap, SwapKind::IonSwap] {
        let times = OperationTimes::default().with_swap_kind(kind);
        for label in ["baseline", "cyclone"] {
            rows.push(SwapSensitivityRow {
                codesign: label.to_string(),
                swap_kind: kind.to_string(),
                execution_time: registry
                    .get(label)
                    .unwrap_or_else(|| panic!("codesign `{label}` not registered"))
                    .compile(code, &times)
                    .execution_time,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// fig_hetero — channel-structured noise across the codesign registry
// ---------------------------------------------------------------------------

/// One row of the heterogeneous-noise scenario: a codesign evaluated under one
/// error channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeteroRow {
    /// Codesign label from the registry.
    pub codesign: String,
    /// Channel label: `"uniform"`, `"biased:<ratio>"`, or `"schedule"`.
    pub channel: String,
    /// Compiled round latency of the codesign, seconds.
    pub latency: f64,
    /// LER estimate under this channel.
    pub ler: LerEstimate,
}

/// The measurement-bias ratios swept by the `fig_hetero` binary by default.
pub const HETERO_DEFAULT_RATIOS: [f64; 3] = [0.5, 2.0, 8.0];

/// Declares the heterogeneous-noise scenario: every codesign in the standard
/// registry, sampled under (a) the uniform channel, (b) one biased channel per
/// measurement-bias ratio, and (c) the schedule-derived channel built from the
/// codesign's own per-qubit idle exposure ([`Codesign::compile_profiled`];
/// codesigns without a profile fall back to uniform exposure). Returns the spec
/// plus `(codesign, channel, latency)` row metadata in point order.
pub fn fig_hetero_spec(
    code: &CssCode,
    p: f64,
    ratios: &[f64],
) -> (ScenarioSpec, Vec<(String, String, f64)>) {
    let registry = standard_registry();
    let times = OperationTimes::default();
    let mut spec = ScenarioSpec::new("fig_hetero");
    let idx = spec.code(code.clone());
    let mut meta = Vec::new();
    for design in registry.iter() {
        let label = design.name().to_string();
        let (round, exposure) = design.compile_profiled(code, &times);
        let latency = round.execution_time;
        spec.point_channel(
            format!("{label}/uniform"),
            idx,
            p,
            latency,
            ChannelSpec::Uniform,
        );
        meta.push((label.clone(), "uniform".to_string(), latency));
        for &r in ratios {
            spec.point_channel(
                format!("{label}/biased:{r}"),
                idx,
                p,
                latency,
                ChannelSpec::Biased { meas_ratio: r },
            );
            meta.push((label.clone(), format!("biased:{r}"), latency));
        }
        let exposure = exposure.unwrap_or_else(|| {
            IdleExposure::uniform(
                latency,
                code.num_qubits(),
                code.num_x_stabilizers(),
                code.num_z_stabilizers(),
            )
        });
        let model = HardwareNoiseModel::new(NoiseParameters::new(p), latency);
        let channel =
            ErrorChannel::from_schedule(&model, &exposure.data, &exposure.measurement_order());
        spec.point_channel(
            format!("{label}/schedule"),
            idx,
            p,
            latency,
            ChannelSpec::Explicit(channel),
        );
        meta.push((label, "schedule".to_string(), latency));
    }
    (spec, meta)
}

/// fig_hetero: logical error rate of every registered codesign under uniform,
/// measurement-biased, and schedule-derived per-qubit channels at fixed `p`.
pub fn fig_hetero(code: &CssCode, p: f64, ratios: &[f64], config: &MemoryConfig) -> Vec<HeteroRow> {
    fig_hetero_with(code, p, ratios, &SweepOptions::ephemeral(*config))
}

/// [`fig_hetero`] with full sweep control (thread pool + cache).
pub fn fig_hetero_with(
    code: &CssCode,
    p: f64,
    ratios: &[f64],
    options: &SweepOptions,
) -> Vec<HeteroRow> {
    let (spec, meta) = fig_hetero_spec(code, p, ratios);
    let result = run_sweep(&spec, options);
    meta.into_iter()
        .zip(&result.points)
        .map(|((codesign, channel, latency), outcome)| HeteroRow {
            codesign,
            channel,
            latency,
            ler: outcome.ler,
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Spatial / control-overhead summary (§IV spatial claims, §VI wiring discussion)
// ---------------------------------------------------------------------------

/// One row of the spatial-efficiency summary table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpatialRow {
    /// Code label.
    pub code: String,
    /// Traps in the baseline grid.
    pub baseline_traps: usize,
    /// Junctions in the baseline grid.
    pub baseline_junctions: usize,
    /// DAC channel groups needed by the baseline.
    pub baseline_dacs: usize,
    /// Ancilla qubits used by the baseline (one per stabilizer).
    pub baseline_ancillas: usize,
    /// Traps in base Cyclone.
    pub cyclone_traps: usize,
    /// Junctions in base Cyclone.
    pub cyclone_junctions: usize,
    /// DAC channel groups needed by Cyclone (constant).
    pub cyclone_dacs: usize,
    /// Ancilla qubits used by Cyclone (reused between the X and Z rotations).
    pub cyclone_ancillas: usize,
}

/// Spatial summary: traps, junctions, DACs, and ancilla counts of baseline vs Cyclone.
pub fn spatial_summary(codes: &[CssCode]) -> Vec<SpatialRow> {
    codes
        .iter()
        .map(|code| {
            let grid = baseline_grid(code.num_qubits(), BASELINE_CAPACITY);
            let design = Cyclone::base().instantiate(code);
            let ring_topo = design.topology();
            SpatialRow {
                code: code.descriptor(),
                baseline_traps: grid.num_traps(),
                baseline_junctions: grid.num_junctions(),
                baseline_dacs: wiring_cost(&grid, 0).dacs,
                baseline_ancillas: code.num_stabilizers(),
                cyclone_traps: ring_topo.num_traps(),
                cyclone_junctions: ring_topo.num_junctions(),
                cyclone_dacs: wiring_cost(ring_topo, 0).dacs,
                cyclone_ancillas: design.num_ancilla(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Sweep summary — the per-figure totals EXPERIMENTS.md and CI artifacts report
// ---------------------------------------------------------------------------

/// Cache/compute totals of one figure's sweep (reported by the bench frontends).
pub fn sweep_totals(result: &SweepResult) -> (usize, usize, usize) {
    (result.points.len(), result.cache_hits, result.computed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qec::classical::ClassicalCode;
    use qec::codes::bb_72_12_6;
    use qec::hgp::square_hypergraph_product;

    fn tiny_hgp() -> CssCode {
        square_hypergraph_product(&ClassicalCode::repetition(3)).expect("valid")
    }

    fn quick_config() -> MemoryConfig {
        MemoryConfig {
            shots: 60,
            bp_iterations: 12,
            threads: 2,
            seed: 7,
        }
    }

    #[test]
    fn fig3_rows_have_large_speedups() {
        let catalog = vec![CatalogEntry {
            family: qec::codes::CodeFamily::Bb,
            label: "[[72,12,6]]".into(),
            code: bb_72_12_6().expect("valid"),
        }];
        let rows = fig3_parallel_speedup(&catalog);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].speedup > 10.0);
        assert!(rows[0].serial_depth >= rows[0].parallel_depth);
    }

    #[test]
    fn fig6_matrix_orders_as_in_paper() {
        let code = tiny_hgp();
        let m = fig6_confusion_matrix(&code, &OperationTimes::default());
        // Coordinated circle (Cyclone) is the fastest cell; uncoordinated circle the slowest.
        assert!(m.circle_dynamic < m.grid_static);
        assert!(m.circle_static > m.circle_dynamic);
    }

    #[test]
    fn fig16_spacetime_improvement_positive() {
        let code = tiny_hgp();
        let rows = fig16_spacetime(std::slice::from_ref(&code), &OperationTimes::default());
        assert_eq!(rows.len(), 1);
        assert!(
            rows[0].improvement > 1.0,
            "Cyclone should win on spacetime, got {}",
            rows[0].improvement
        );
    }

    #[test]
    fn fig20_includes_all_four_compilers() {
        let code = tiny_hgp();
        let rows = fig20_compiler_comparison(&code, &OperationTimes::default());
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.execution_time > 0.0));
        assert!(rows.iter().all(|r| r.parallelization >= 1.0));
    }

    #[test]
    fn fig21_has_both_swap_kinds() {
        let code = tiny_hgp();
        let rows = fig21_swap_sensitivity(&code);
        assert_eq!(rows.len(), 4);
        let gate_cyc = rows
            .iter()
            .find(|r| r.codesign == "cyclone" && r.swap_kind == "GateSwap")
            .unwrap();
        assert!(gate_cyc.execution_time > 0.0);
    }

    #[test]
    fn spatial_summary_shows_cyclone_savings() {
        let code = bb_72_12_6().expect("valid");
        let rows = spatial_summary(std::slice::from_ref(&code));
        let r = &rows[0];
        assert!(r.cyclone_traps < r.baseline_traps);
        assert!(r.cyclone_ancillas * 2 == r.baseline_ancillas);
        assert!(r.cyclone_dacs < r.baseline_dacs);
    }

    #[test]
    fn ler_comparison_produces_rows_for_each_p() {
        let code = tiny_hgp();
        let rows = ler_comparison(std::slice::from_ref(&code), &[2e-3, 5e-3], &quick_config());
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.cyclone_latency < r.baseline_latency));
    }

    #[test]
    fn fig5_latency_rows_cover_speedups() {
        let code = tiny_hgp();
        let rows = fig5_latency_vs_ler(
            std::slice::from_ref(&code),
            5e-3,
            &[1.0, 2.0, 4.0],
            &quick_config(),
        );
        assert_eq!(rows.len(), 3);
        assert!(rows[0].latency > rows[2].latency);
    }

    #[test]
    fn fig9_rows_share_the_baseline_reference() {
        let code = tiny_hgp();
        let rows = fig9_junction_sensitivity(&code, 5e-3, &[0.0, 0.5], &quick_config());
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].baseline_ler.ler, rows[1].baseline_ler.ler);
        assert!(rows[1].mesh_execution_time < rows[0].mesh_execution_time);
    }

    #[test]
    fn fig_hetero_covers_every_codesign_and_channel() {
        let code = tiny_hgp();
        let ratios = [4.0];
        let rows = fig_hetero(&code, 8e-3, &ratios, &quick_config());
        let registry = standard_registry();
        // One uniform + one biased + one schedule row per registered codesign.
        assert_eq!(rows.len(), registry.len() * (ratios.len() + 2));
        for label in registry.labels() {
            let of_label: Vec<_> = rows.iter().filter(|r| r.codesign == label).collect();
            assert_eq!(of_label.len(), 3, "{label} rows missing");
            assert!(of_label.iter().any(|r| r.channel == "uniform"));
            assert!(of_label.iter().any(|r| r.channel == "biased:4"));
            assert!(of_label.iter().any(|r| r.channel == "schedule"));
            // All three channels share the codesign's compiled latency.
            assert!(of_label.windows(2).all(|w| w[0].latency == w[1].latency));
        }
        // The uniform rows must match the plain scalar path (the engine threads
        // the channel spec through without perturbing the uniform fast path).
        let baseline_uniform = rows
            .iter()
            .find(|r| r.codesign == "baseline" && r.channel == "uniform")
            .expect("baseline uniform row");
        let direct = logical_error_rate(&code, 8e-3, baseline_uniform.latency, &quick_config());
        assert_eq!(baseline_uniform.ler, direct);
    }

    #[test]
    fn fig18_rows_pair_baseline_and_cyclone() {
        let code = tiny_hgp();
        let rows = fig18_op_time_sweep(&code, 5e-3, &[0.0, 0.5], &quick_config());
        assert_eq!(rows.len(), 2);
        assert!(rows[1].baseline_latency < rows[0].baseline_latency);
        assert!(rows.iter().all(|r| r.cyclone_latency < r.baseline_latency));
    }
}
