//! The scenario sweep engine: declarative figure specifications executed across a
//! shared worker pool at operating-point granularity, with a JSON result cache.
//!
//! A [`ScenarioSpec`] names a figure and enumerates its Monte-Carlo operating points
//! (`code × physical error rate × round latency`, each with a unique id). The engine
//! ([`run_sweep`]):
//!
//! * executes every point across [`decoder::memory::estimate_points`]'s worker pool —
//!   points are embarrassingly parallel, so a multi-point figure scales with the host
//!   core count at *point* granularity;
//! * is deterministic at any thread count: every point is evaluated with the same
//!   per-shot RNG streams derived from [`MemoryConfig::seed`] (the workspace's
//!   `0xC1C1_0DE5` convention, shared with `decoder::memory`), so results are
//!   bit-identical whether `CYCLONE_THREADS` is 1 or 64;
//! * serializes results to `sweeps/<figure>.json` and reuses them as a cache on
//!   re-runs: a point is recomputed only when its id, operating point, or Monte-Carlo
//!   configuration changed, so quick-mode CI runs and full-shot local runs compose
//!   without poisoning each other (a corrupt or missing cache file simply falls back
//!   to recomputation). Cache files are written atomically (temp file + rename in
//!   the same directory), so a crash or two figure binaries sharing a cache
//!   directory can never leave or observe a torn file;
//! * optionally samples **adaptively**: a [`PrecisionTarget`] on the options (or on
//!   an individual point) stops each point at a target relative standard error /
//!   failure count instead of a fixed shot budget, and the cache records the shots
//!   actually spent so a cached point is reused whenever it meets-or-exceeds the
//!   requested precision (cache schema 2; schema-1 fixed-shot files stay readable).

use decoder::memory::{
    estimate_points_adaptive_in, LerEstimate, LerPoint, MemoryConfig, PrecisionTarget,
};
use noise::ChannelSpec;
use qec::CssCode;
use serde_json::Value;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Version tag written to cache files. Schema 2 added the `mode` header and
/// meets-or-exceeds reuse of per-entry shot counts; schema 3 added the per-entry
/// `channel` identity (see [`ChannelSpec::cache_id`]). Schema-1 and schema-2
/// files stay readable unmigrated: entries carry per-point `shots`/`failures`
/// already, and a missing `channel` field reads back as `"uniform"` — exactly
/// the channel every pre-schema-3 point was sampled under.
pub(crate) const CACHE_SCHEMA: u64 = 3;

/// A deterministic work-shard assignment: of `total` cooperating processes, this
/// one computes only the operating points whose stable identity hashes to
/// `index` (see [`shard_of`]). Because the assignment depends only on the
/// point's id string — never on spec order, shard count of a previous run, or
/// the host — any shard layout partitions a spec into disjoint, collectively
/// exhaustive subsets, and every point's estimate is the same bit-for-bit no
/// matter which shard (or how many shards) computed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// This process's shard index, `0 <= index < total`.
    pub index: usize,
    /// Total number of shards in the fleet (at least 1).
    pub total: usize,
}

impl Shard {
    /// A shard assignment.
    ///
    /// # Panics
    ///
    /// Panics unless `index < total`.
    pub fn new(index: usize, total: usize) -> Self {
        assert!(index < total, "shard index {index} out of range 0..{total}");
        Shard { index, total }
    }

    /// Parses the `--shard` spelling `"i/N"` (e.g. `"2/4"`); `None` when
    /// malformed or out of range (`i >= N` or `N == 0`).
    pub fn parse(raw: &str) -> Option<Self> {
        let (index, total) = raw.trim().split_once('/')?;
        let index = index.trim().parse::<usize>().ok()?;
        let total = total.trim().parse::<usize>().ok()?;
        (index < total).then_some(Shard { index, total })
    }

    /// Whether the point with this stable id belongs to this shard.
    pub fn contains(&self, id: &str) -> bool {
        shard_of(id, self.total) == self.index
    }
}

impl std::fmt::Display for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.total)
    }
}

/// The shard that owns the point with stable id `id` in a `total`-shard layout:
/// an FNV-1a digest of the id bytes reduced mod `total`. Stable across
/// processes, platforms, and releases — the partition is part of the sharding
/// contract, so shard-local caches from different fleet layouts stay mergeable.
///
/// # Panics
///
/// Panics when `total` is zero.
pub fn shard_of(id: &str, total: usize) -> usize {
    assert!(total > 0, "shard layouts need at least one shard");
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in id.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash % total as u64) as usize
}

/// One Monte-Carlo operating point of a scenario sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatingPoint {
    /// Unique id within the spec (cache key and diagnostic label), e.g.
    /// `"cyclone/[[72,12,6]]/p=1e-3"`.
    pub id: String,
    /// Index into [`ScenarioSpec::codes`].
    pub code: usize,
    /// Physical error rate.
    pub p: f64,
    /// Round latency in seconds.
    pub latency: f64,
    /// Per-point precision override: `Some` samples this point adaptively with its
    /// own target, `None` defers to [`SweepOptions::precision`] (and to the fixed
    /// shot budget when that is `None` too).
    pub precision: Option<PrecisionTarget>,
    /// Per-point error-channel override: `Some` samples this point under its own
    /// channel spec, `None` defers to [`SweepOptions::channel`] (and to the
    /// uniform channel when that is `None` too). The effective spec participates
    /// in cache-point identity via [`ChannelSpec::cache_id`].
    pub channel: Option<ChannelSpec>,
}

/// A declarative scenario sweep: the codes of one figure and every operating point
/// to estimate.
#[derive(Debug, Default)]
pub struct ScenarioSpec {
    /// Figure name; the cache file is `sweeps/<figure>.json`.
    pub figure: String,
    /// The codes referenced by the points.
    pub codes: Vec<CssCode>,
    /// The operating points, in output order.
    pub points: Vec<OperatingPoint>,
}

impl ScenarioSpec {
    /// An empty spec for the given figure.
    pub fn new(figure: impl Into<String>) -> Self {
        ScenarioSpec {
            figure: figure.into(),
            codes: Vec::new(),
            points: Vec::new(),
        }
    }

    /// Adds a code and returns its index for use in [`ScenarioSpec::point`].
    pub fn code(&mut self, code: CssCode) -> usize {
        self.codes.push(code);
        self.codes.len() - 1
    }

    /// Adds one operating point (sampled per [`SweepOptions::precision`] under the
    /// sweep's default channel).
    ///
    /// # Panics
    ///
    /// Panics if `code` is out of range or the id duplicates an earlier point's.
    pub fn point(&mut self, id: impl Into<String>, code: usize, p: f64, latency: f64) -> &mut Self {
        self.push_point(id.into(), code, p, latency, None, None)
    }

    /// Adds one operating point with its own [`PrecisionTarget`], overriding the
    /// sweep-level default for just this point.
    ///
    /// # Panics
    ///
    /// Panics if `code` is out of range or the id duplicates an earlier point's.
    pub fn point_precise(
        &mut self,
        id: impl Into<String>,
        code: usize,
        p: f64,
        latency: f64,
        target: PrecisionTarget,
    ) -> &mut Self {
        self.push_point(id.into(), code, p, latency, Some(target), None)
    }

    /// Adds one operating point with its own [`ChannelSpec`], overriding the
    /// sweep-level default channel for just this point.
    ///
    /// # Panics
    ///
    /// Panics if `code` is out of range or the id duplicates an earlier point's.
    pub fn point_channel(
        &mut self,
        id: impl Into<String>,
        code: usize,
        p: f64,
        latency: f64,
        channel: ChannelSpec,
    ) -> &mut Self {
        self.push_point(id.into(), code, p, latency, None, Some(channel))
    }

    fn push_point(
        &mut self,
        id: String,
        code: usize,
        p: f64,
        latency: f64,
        precision: Option<PrecisionTarget>,
        channel: Option<ChannelSpec>,
    ) -> &mut Self {
        assert!(code < self.codes.len(), "code index {code} out of range");
        assert!(
            self.points.iter().all(|pt| pt.id != id),
            "duplicate point id `{id}`"
        );
        self.points.push(OperatingPoint {
            id,
            code,
            p,
            latency,
            precision,
            channel,
        });
        self
    }
}

/// How [`run_sweep`] executes a spec.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Monte-Carlo configuration applied to every point (`threads` sizes the
    /// point-level worker pool; the estimate itself is thread-count invariant).
    /// `config.shots` is the fixed budget of points without a precision target.
    pub config: MemoryConfig,
    /// Cache directory (`sweeps/` by convention). `None` disables caching.
    pub cache_dir: Option<PathBuf>,
    /// Default precision target: `Some` switches every point (without its own
    /// [`OperatingPoint::precision`] override) to adaptive stop-at-precision
    /// sampling; `None` keeps the fixed `config.shots` budget, bit-identical to the
    /// engine before adaptive sampling existed.
    pub precision: Option<PrecisionTarget>,
    /// Default error channel: `Some` samples every point (without its own
    /// [`OperatingPoint::channel`] override) under this spec; `None` keeps the
    /// uniform channel, bit-identical to the engine before channels existed.
    pub channel: Option<ChannelSpec>,
    /// Directory for persistent per-context decode caches (syndrome → correction
    /// tables keyed by matrix + priors digest). `None` keeps decode caches
    /// in-memory only. Estimates are bit-identical either way: cached entries are
    /// pure decoder outputs.
    pub decode_cache_dir: Option<PathBuf>,
    /// Work-shard assignment: `Some` restricts computation to the spec points
    /// this shard owns (see [`Shard::contains`]). Points owned by other shards
    /// are still served from the cache when present; otherwise they come back as
    /// [`PointOutcome::skipped`] with an empty estimate. `None` (the default)
    /// computes every miss.
    pub shard: Option<Shard>,
    /// Checkpoint granularity: with `checkpoint = k > 0` the cache file is
    /// rewritten after every `k` freshly computed points, so a killed run loses
    /// at most the in-flight group. `0` (the default) keeps the single
    /// final write. Checkpointing never changes estimates — only how often the
    /// same entries are published.
    pub checkpoint: usize,
    /// Read-only secondary cache directory, consulted for points the primary
    /// `cache_dir` misses. Never written. Lets a shard-local worker reuse a
    /// pre-existing main cache without racing other workers on it.
    pub fallback_cache_dir: Option<PathBuf>,
}

impl SweepOptions {
    /// Runs entirely in memory — no cache reads or writes (the default for unit
    /// tests and library callers).
    pub fn ephemeral(config: MemoryConfig) -> Self {
        SweepOptions {
            config,
            cache_dir: None,
            precision: None,
            channel: None,
            decode_cache_dir: None,
            shard: None,
            checkpoint: 0,
            fallback_cache_dir: None,
        }
    }

    /// Reads and writes `<dir>/<figure>.json` around the run.
    pub fn cached(config: MemoryConfig, dir: impl Into<PathBuf>) -> Self {
        SweepOptions {
            config,
            cache_dir: Some(dir.into()),
            precision: None,
            channel: None,
            decode_cache_dir: None,
            shard: None,
            checkpoint: 0,
            fallback_cache_dir: None,
        }
    }

    /// Switches the sweep to adaptive sampling with `target` as the default
    /// per-point precision (builder style).
    pub fn with_precision(mut self, target: PrecisionTarget) -> Self {
        self.precision = Some(target);
        self
    }

    /// Samples every point (without its own override) under `channel`
    /// (builder style).
    pub fn with_channel(mut self, channel: ChannelSpec) -> Self {
        self.channel = Some(channel);
        self
    }

    /// Persists per-context decode caches under `dir` across runs
    /// (builder style). Safe to enable anywhere: cache entries are pure
    /// decoder outputs, so estimates stay bit-identical.
    pub fn with_decode_cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.decode_cache_dir = Some(dir.into());
        self
    }

    /// Restricts computation to the points `shard` owns (builder style). Points
    /// owned by other shards are cache-hits-or-skipped, never computed.
    pub fn with_shard(mut self, shard: Shard) -> Self {
        self.shard = Some(shard);
        self
    }

    /// Rewrites the cache file after every `every` freshly computed points
    /// (builder style); `0` restores the single final write.
    pub fn with_checkpoint(mut self, every: usize) -> Self {
        self.checkpoint = every;
        self
    }

    /// Consults `dir` (read-only) for points the primary cache misses
    /// (builder style).
    pub fn with_fallback_cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.fallback_cache_dir = Some(dir.into());
        self
    }

    /// The effective sampling target of one spec point (its override, else the
    /// sweep default; `None` = fixed shot budget).
    fn target_for(&self, point: &OperatingPoint) -> Option<PrecisionTarget> {
        point.precision.or(self.precision)
    }

    /// The effective channel spec of one spec point (its override, else the sweep
    /// default; `None` = uniform).
    fn channel_for<'a>(&'a self, point: &'a OperatingPoint) -> Option<&'a ChannelSpec> {
        point.channel.as_ref().or(self.channel.as_ref())
    }

    /// The cache identity of one spec point's effective channel.
    fn channel_id_for(&self, point: &OperatingPoint) -> String {
        self.channel_for(point)
            .map_or_else(|| ChannelSpec::Uniform.cache_id(), ChannelSpec::cache_id)
    }
}

/// One executed operating point.
#[derive(Debug, Clone)]
pub struct PointOutcome {
    /// The spec's point id.
    pub id: String,
    /// Physical error rate of the point.
    pub p: f64,
    /// Round latency of the point, seconds.
    pub latency: f64,
    /// The logical-error-rate estimate.
    pub ler: LerEstimate,
    /// Whether the estimate was served from the cache.
    pub cached: bool,
    /// Whether the point was skipped: it belongs to another shard and had no
    /// cached estimate. Skipped points carry [`LerEstimate::empty`] and are
    /// never written to the cache.
    pub skipped: bool,
}

/// The result of one sweep, points in spec order.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The spec's figure name.
    pub figure: String,
    /// One outcome per spec point, in order.
    pub points: Vec<PointOutcome>,
    /// How many points were served from the cache.
    pub cache_hits: usize,
    /// How many points were recomputed.
    pub computed: usize,
    /// How many points were skipped as another shard's work (always 0 for
    /// unsharded runs).
    pub skipped: usize,
}

impl SweepResult {
    /// The estimates alone, in spec order (the shape most figure assemblers want).
    pub fn estimates(&self) -> Vec<LerEstimate> {
        self.points.iter().map(|p| p.ler).collect()
    }

    /// Total Monte-Carlo shots recorded across all points (cached and computed) —
    /// the cost metric adaptive sampling optimizes.
    pub fn total_shots(&self) -> usize {
        self.points.iter().map(|p| p.ler.shots).sum()
    }

    /// The largest relative standard error across all points ([`f64::INFINITY`]
    /// when any point has no positive estimate) — the precision metric adaptive
    /// sampling equalizes.
    pub fn max_relative_std_err(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.ler.relative_std_err())
            .fold(0.0, f64::max)
    }
}

/// Executes a scenario sweep: cache lookup, parallel estimation of the misses at
/// point granularity, cache write-back.
///
/// # Panics
///
/// Panics if the spec references an out-of-range code index (point construction via
/// [`ScenarioSpec::point`] already prevents this).
pub fn run_sweep(spec: &ScenarioSpec, options: &SweepOptions) -> SweepResult {
    for point in &spec.points {
        assert!(
            point.code < spec.codes.len(),
            "point `{}` references code {} but the spec has {}",
            point.id,
            point.code,
            spec.codes.len()
        );
    }

    let file_name = format!("{}.json", spec.figure);
    let cache_path = options.cache_dir.as_ref().map(|dir| dir.join(&file_name));
    let mut cached = cache_path
        .as_deref()
        .map(|path| load_cache(path, spec, options))
        .unwrap_or_default();
    // The fallback directory (worker mode's read-only view of the main cache) is
    // consulted only for points the primary cache misses.
    if let Some(dir) = &options.fallback_cache_dir {
        for (id, ler) in load_cache(&dir.join(&file_name), spec, options) {
            cached.entry(id).or_insert(ler);
        }
    }

    // `resolved`: spec index → (estimate, served-from-cache). Points absent from
    // the map at the end were skipped (another shard's uncached work).
    let mut resolved: BTreeMap<usize, (LerEstimate, bool)> = BTreeMap::new();
    for (i, point) in spec.points.iter().enumerate() {
        if let Some(&ler) = cached.get(&point.id) {
            resolved.insert(i, (ler, true));
        }
    }

    // Estimate the misses this shard owns across the shared pool, in
    // checkpoint-sized groups so a killed run loses at most the in-flight group,
    // then stitch hits and misses back into spec order.
    let misses: Vec<usize> = (0..spec.points.len())
        .filter(|i| !resolved.contains_key(i))
        .filter(|&i| match options.shard {
            Some(shard) => shard.contains(&spec.points[i].id),
            None => true,
        })
        .collect();
    let group_len = match options.checkpoint {
        0 => misses.len().max(1),
        every => every,
    };
    for group in misses.chunks(group_len) {
        let jobs: Vec<LerPoint<'_>> = group
            .iter()
            .map(|&i| {
                let point = &spec.points[i];
                LerPoint {
                    code: &spec.codes[point.code],
                    p: point.p,
                    latency: point.latency,
                    channel: options.channel_for(point),
                }
            })
            .collect();
        let targets: Vec<Option<PrecisionTarget>> = group
            .iter()
            .map(|&i| options.target_for(&spec.points[i]))
            .collect();
        let fresh = estimate_points_adaptive_in(
            &jobs,
            &targets,
            &options.config,
            options.decode_cache_dir.as_deref(),
        );
        for (&i, est) in group.iter().zip(fresh) {
            resolved.insert(i, (est, false));
        }
        // Checkpoint: publish everything resolved so far. The final store below
        // covers the last group (and the no-miss case), so mid-run writes are
        // purely about bounding loss on a kill.
        if options.checkpoint != 0 && group.len() == group_len {
            if let Some(path) = cache_path.as_deref() {
                if let Err(err) = store_cache(path, spec, options, &resolved) {
                    eprintln!(
                        "warning: could not checkpoint sweep cache {}: {err}",
                        path.display()
                    );
                }
            }
        }
    }

    if let Some(path) = cache_path.as_deref() {
        if let Err(err) = store_cache(path, spec, options, &resolved) {
            eprintln!(
                "warning: could not write sweep cache {}: {err}",
                path.display()
            );
        }
    }

    let points: Vec<PointOutcome> = spec
        .points
        .iter()
        .enumerate()
        .map(|(i, point)| match resolved.get(&i) {
            Some(&(ler, cached)) => PointOutcome {
                id: point.id.clone(),
                p: point.p,
                latency: point.latency,
                ler,
                cached,
                skipped: false,
            },
            None => PointOutcome {
                id: point.id.clone(),
                p: point.p,
                latency: point.latency,
                ler: LerEstimate::empty(),
                cached: false,
                skipped: true,
            },
        })
        .collect();

    let cache_hits = points.iter().filter(|p| p.cached).count();
    let skipped = points.iter().filter(|p| p.skipped).count();
    SweepResult {
        figure: spec.figure.clone(),
        computed: points.len() - cache_hits - skipped,
        cache_hits,
        skipped,
        points,
    }
}

/// Loads reusable per-point estimates from a cache file. Any structural problem —
/// missing file, malformed JSON, wrong figure, changed Monte-Carlo configuration —
/// yields an empty map, i.e. full recomputation.
///
/// Reuse is decided per entry against the *requested* sampling mode of its spec
/// point: a fixed-budget point requires the exact `config.shots` count (the
/// pre-adaptive rule, so schema-1 files keep hitting), while a precision-targeted
/// point reuses any entry that meets-or-exceeds the requested precision — whether
/// it was produced by an adaptive run, a bigger adaptive cap, or a fixed full-shot
/// run.
fn load_cache(
    path: &Path,
    spec: &ScenarioSpec,
    options: &SweepOptions,
) -> BTreeMap<String, LerEstimate> {
    let config = &options.config;
    let Ok(text) = std::fs::read_to_string(path) else {
        return BTreeMap::new();
    };
    let Ok(doc) = serde_json::from_str(&text) else {
        return BTreeMap::new();
    };
    // The u64 seed is stored as a decimal string — the shim's JSON numbers are
    // f64, which would silently round seeds above 2^53. The header `shots` field is
    // informational only since schema 2: the per-entry shot counts are what the
    // reuse rules consult.
    if doc.get("figure").and_then(Value::as_str) != Some(spec.figure.as_str())
        || doc.get("seed").and_then(Value::as_str) != Some(config.seed.to_string().as_str())
        || doc.get("bp_iterations").and_then(Value::as_u64) != Some(config.bp_iterations as u64)
    {
        return BTreeMap::new();
    }
    let Some(entries) = doc.get("points").and_then(Value::as_array) else {
        return BTreeMap::new();
    };
    let mut reusable = BTreeMap::new();
    for entry in entries {
        let Some(id) = entry.get("id").and_then(Value::as_str) else {
            continue;
        };
        // A cached estimate is reused only when its operating point matches the
        // spec's bit-for-bit (floats survive the JSON round trip exactly thanks to
        // shortest-roundtrip formatting).
        let Some(point) = spec.points.iter().find(|p| p.id == id) else {
            continue;
        };
        let (Some(p), Some(latency), Some(shots), Some(failures)) = (
            entry.get("p").and_then(Value::as_f64),
            entry.get("latency").and_then(Value::as_f64),
            entry.get("shots").and_then(Value::as_u64),
            entry.get("failures").and_then(Value::as_u64),
        ) else {
            continue;
        };
        if p != point.p || latency != point.latency || shots == 0 {
            continue;
        }
        // Channel identity (schema 3): an entry is reusable only for the channel
        // it was sampled under. Schema-1/2 entries carry no `channel` field and
        // read back as "uniform" — the channel every pre-schema-3 point used — so
        // old caches keep hitting for uniform requests and are correctly
        // invalidated for structured ones.
        let entry_channel = entry
            .get("channel")
            .and_then(Value::as_str)
            .unwrap_or("uniform");
        if entry_channel != options.channel_id_for(point) {
            continue;
        }
        let (shots, failures) = (shots as usize, failures as usize);
        let reuse = match options.target_for(point) {
            // Fixed budget: the exact shot count, as before adaptive sampling.
            None => shots == config.shots,
            // Precision target: anything at least as precise as requested — the
            // stop rule itself, or a run that already spent the full cap.
            Some(target) => target.met_by(shots, failures) || shots >= target.max_shots,
        };
        if reuse && failures <= shots {
            reusable.insert(id.to_string(), LerEstimate::from_counts(shots, failures));
        }
    }
    reusable
}

/// Serializes the resolved entries of a sweep (plus the configuration that
/// produced them) as the figure's cache file, atomically. `resolved` maps spec
/// index → (estimate, served-from-cache); entries land in spec order, and
/// zero-shot placeholders are never written (readers skip them anyway), so a
/// partial (checkpoint or sharded) write is a well-formed cache that composes
/// with other shards' files via [`crate::sweep_cache::merge_files`].
fn store_cache(
    path: &Path,
    spec: &ScenarioSpec,
    options: &SweepOptions,
    resolved: &BTreeMap<usize, (LerEstimate, bool)>,
) -> std::io::Result<()> {
    let config = &options.config;
    let mut root = BTreeMap::new();
    root.insert("schema".to_string(), Value::from(CACHE_SCHEMA as usize));
    root.insert("figure".to_string(), Value::from(spec.figure.clone()));
    root.insert("seed".to_string(), Value::from(config.seed.to_string()));
    root.insert("shots".to_string(), Value::from(config.shots));
    root.insert(
        "bp_iterations".to_string(),
        Value::from(config.bp_iterations),
    );
    root.insert(
        "mode".to_string(),
        Value::from(if options.precision.is_some() {
            "adaptive"
        } else {
            "fixed"
        }),
    );
    if let Some(target) = &options.precision {
        root.insert("target_rse".to_string(), Value::Number(target.target_rse));
        root.insert("min_failures".to_string(), Value::from(target.min_failures));
        root.insert("max_shots".to_string(), Value::from(target.max_shots));
    }
    let entries: Vec<Value> = resolved
        .iter()
        .filter(|(_, (ler, _))| ler.shots > 0)
        .map(|(&i, (ler, _))| {
            let spec_point = &spec.points[i];
            let mut entry = BTreeMap::new();
            entry.insert("id".to_string(), Value::from(spec_point.id.clone()));
            entry.insert("p".to_string(), Value::Number(spec_point.p));
            entry.insert("latency".to_string(), Value::Number(spec_point.latency));
            entry.insert(
                "channel".to_string(),
                Value::from(options.channel_id_for(spec_point)),
            );
            // `shots` records what was actually spent on the point (which varies
            // per point under adaptive sampling), never the configured budget.
            entry.insert("shots".to_string(), Value::from(ler.shots));
            entry.insert("failures".to_string(), Value::from(ler.failures));
            entry.insert("ler".to_string(), Value::Number(ler.ler));
            entry.insert("std_err".to_string(), Value::Number(ler.std_err));
            Value::Object(entry)
        })
        .collect();
    root.insert("points".to_string(), Value::Array(entries));
    let mut text = serde_json::to_string(&Value::Object(root));
    text.push('\n');
    atomic_write(path, &text)
}

/// Writes `text` to `path` atomically: the bytes land in a uniquely named temp file
/// in the same directory (same filesystem, so the rename cannot degrade to a
/// copy), which is then renamed over the destination. A crash mid-write leaves at
/// worst a stray temp file; concurrent writers sharing one cache directory each
/// publish a complete file, and readers only ever observe one of the complete
/// versions — never a torn mix.
pub(crate) fn atomic_write(path: &Path, text: &str) -> std::io::Result<()> {
    static TEMP_NONCE: AtomicU64 = AtomicU64::new(0);
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(parent) = dir {
        std::fs::create_dir_all(parent)?;
    }
    let file_name = path
        .file_name()
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "path has no file name")
        })?
        .to_string_lossy()
        .into_owned();
    let tmp_name = format!(
        ".{file_name}.tmp.{}.{}",
        std::process::id(),
        TEMP_NONCE.fetch_add(1, Ordering::Relaxed)
    );
    let tmp = match dir {
        Some(parent) => parent.join(&tmp_name),
        None => PathBuf::from(&tmp_name),
    };
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qec::codes::bb_72_12_6;

    fn quick_config() -> MemoryConfig {
        MemoryConfig {
            shots: 60,
            bp_iterations: 12,
            threads: 2,
            seed: 0xC1C1_0DE5,
        }
    }

    fn tiny_spec(figure: &str) -> ScenarioSpec {
        let mut spec = ScenarioSpec::new(figure);
        let code = spec.code(bb_72_12_6().expect("valid"));
        spec.point("a", code, 3e-3, 0.0);
        spec.point("b", code, 3e-3, 0.05);
        spec.point("c", code, 8e-3, 0.01);
        spec
    }

    #[test]
    fn sweep_matches_direct_estimates() {
        let spec = tiny_spec("unit-direct");
        let config = quick_config();
        let result = run_sweep(&spec, &SweepOptions::ephemeral(config));
        assert_eq!(result.figure, "unit-direct");
        assert_eq!(result.computed, 3);
        assert_eq!(result.cache_hits, 0);
        for (point, outcome) in spec.points.iter().zip(&result.points) {
            let direct = decoder::memory::logical_error_rate(
                &spec.codes[point.code],
                point.p,
                point.latency,
                &config,
            );
            assert_eq!(
                outcome.ler.failures, direct.failures,
                "{} diverged",
                point.id
            );
            assert_eq!(outcome.ler.ler, direct.ler);
            assert!(!outcome.cached);
        }
    }

    #[test]
    #[should_panic(expected = "duplicate point id")]
    fn spec_rejects_duplicate_ids() {
        let mut spec = ScenarioSpec::new("dup");
        let code = spec.code(bb_72_12_6().expect("valid"));
        spec.point("same", code, 1e-3, 0.0);
        spec.point("same", code, 2e-3, 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn spec_rejects_bad_code_index() {
        let mut spec = ScenarioSpec::new("bad");
        spec.point("a", 0, 1e-3, 0.0);
    }
}
