//! `sweep-cache`: offline composition of sweep cache files.
//!
//! Shard-local caches written by a distributed sweep fleet (see the README's
//! "Distributed sweeps" section) compose back into one file without rerunning
//! anything:
//!
//! ```text
//! sweep-cache merge sweeps/fig5.json sweeps/shards/*/fig5.json
//! sweep-cache stats sweeps/fig5.json
//! sweep-cache verify sweeps/**/*.json
//! ```
//!
//! `merge DEST SRC...` folds every compatible source into `DEST` (created if
//! absent), resolving conflicts by the meets-or-exceeds shot-count order;
//! incompatible or corrupt sources are skipped and reported. `stats FILE...`
//! prints a per-file summary. `verify FILE...` validates structure and exits
//! nonzero when any file is invalid.

use cyclone::sweep_cache::{merge_files, stats_file, verify_file};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage: sweep-cache <merge DEST SRC...|stats FILE...|verify FILE...>";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, files)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let files: Vec<PathBuf> = files.iter().map(PathBuf::from).collect();
    match (command.as_str(), files.as_slice()) {
        ("merge", [dest, sources @ ..]) if !sources.is_empty() => merge(dest, sources),
        ("stats", files) if !files.is_empty() => stats(files),
        ("verify", files) if !files.is_empty() => verify(files),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn merge(dest: &Path, sources: &[PathBuf]) -> ExitCode {
    match merge_files(dest, sources) {
        Ok(report) => {
            println!(
                "{}: {} entr{} from {} source(s) ({} added, {} upgraded)",
                dest.display(),
                report.entries_total,
                if report.entries_total == 1 {
                    "y"
                } else {
                    "ies"
                },
                report.sources_merged,
                report.entries_added,
                report.entries_upgraded,
            );
            for (path, reason) in &report.sources_skipped {
                eprintln!("skipped {}: {reason}", path.display());
            }
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("merge failed: {err}");
            ExitCode::FAILURE
        }
    }
}

fn stats(files: &[PathBuf]) -> ExitCode {
    let mut code = ExitCode::SUCCESS;
    for path in files {
        match stats_file(path) {
            Ok(stats) => println!(
                "{}: figure `{}` schema {} mode {} | {} entr{}, {} shots, {} failures \
                 (seed {}, bp_iterations {})",
                path.display(),
                stats.figure,
                stats.schema,
                stats.mode,
                stats.entries,
                if stats.entries == 1 { "y" } else { "ies" },
                stats.total_shots,
                stats.total_failures,
                stats.seed,
                stats.bp_iterations,
            ),
            Err(reason) => {
                eprintln!("{}: {reason}", path.display());
                code = ExitCode::FAILURE;
            }
        }
    }
    code
}

fn verify(files: &[PathBuf]) -> ExitCode {
    let mut code = ExitCode::SUCCESS;
    for path in files {
        match verify_file(path) {
            Ok(()) => println!("{}: ok", path.display()),
            Err(reason) => {
                eprintln!("{}: INVALID: {reason}", path.display());
                code = ExitCode::FAILURE;
            }
        }
    }
    code
}
