//! Compilers: turning an idealized syndrome-extraction schedule into timed hardware
//! execution on a concrete topology.
//!
//! All compilers share the discrete-event shuttling simulator in [`sim`], which tracks
//! per-trap and per-junction availability, ion positions, roadblock waiting, swap
//! insertion, and rebalancing. They differ in the *order* in which gates are released
//! to the simulator:
//!
//! * [`baseline`] — greedy cluster mapping + static earliest-job-first scheduling over
//!   the circuit DAG (the paper's baseline, modelled after QCCDSim).
//! * [`variants`] — "Baseline 2" (shuttle-muzzling: batch gates by ancilla) and
//!   "Baseline 3" (MoveLess-style: batch gates by destination trap), used in Fig. 20.
//! * [`dynamic`] — the dynamic timeslice policy of §III-A (used on grids in Fig. 4a
//!   and Fig. 6, and on the mesh junction network of §III-C).
//!
//! The [`codesign`] module unifies all of them (and the Cyclone compilers layered on
//! top in the `cyclone` crate) behind the [`Codesign`] trait, enumerable by label
//! through a [`CodesignRegistry`].

pub mod baseline;
pub mod codesign;
pub mod dynamic;
pub mod sim;
pub mod variants;

pub use codesign::{Codesign, CodesignRegistry};
pub use sim::IdleExposure;

use serde::{Deserialize, Serialize};

/// Time spent in each operation category, in seconds of *occupied resource time*
/// (i.e. the fully serialized, "unrolled" cost of Fig. 20's component breakdown).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ComponentTimes {
    /// Two-qubit (and swap-constituent) gate execution time.
    pub gate: f64,
    /// Split operations.
    pub split: f64,
    /// Merge operations.
    pub merge: f64,
    /// Linear shuttling movement.
    pub shuttle_move: f64,
    /// Junction crossings.
    pub junction: f64,
    /// Swap (reordering) operations.
    pub swap: f64,
    /// Ancilla measurement (and preparation).
    pub measurement: f64,
    /// Rebalancing operations triggered by full traps.
    pub rebalance: f64,
    /// Time spent waiting for busy traps or junctions (roadblocks).
    pub roadblock_wait: f64,
}

impl ComponentTimes {
    /// Sum of all *active* component times (excludes roadblock waiting): the fully
    /// serialized execution time if no two operations overlapped.
    pub fn serialized_total(&self) -> f64 {
        self.gate
            + self.split
            + self.merge
            + self.shuttle_move
            + self.junction
            + self.swap
            + self.measurement
            + self.rebalance
    }

    /// Adds another breakdown into this one.
    pub fn accumulate(&mut self, other: &ComponentTimes) {
        self.gate += other.gate;
        self.split += other.split;
        self.merge += other.merge;
        self.shuttle_move += other.shuttle_move;
        self.junction += other.junction;
        self.swap += other.swap;
        self.measurement += other.measurement;
        self.rebalance += other.rebalance;
        self.roadblock_wait += other.roadblock_wait;
    }
}

/// The result of compiling one round of syndrome extraction onto hardware.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledRound {
    /// Human-readable codesign label, e.g. `"baseline-grid + static EJF"`.
    pub codesign: String,
    /// Wall-clock execution time of one syndrome-extraction round, in seconds.
    pub execution_time: f64,
    /// Per-component serialized time breakdown.
    pub breakdown: ComponentTimes,
    /// Number of entangling gates executed.
    pub num_gates: usize,
    /// Number of inter-trap shuttling operations (split/merge pairs).
    pub num_shuttles: usize,
    /// Number of rebalances triggered by full traps.
    pub num_rebalances: usize,
    /// Number of times an operation had to wait on a busy trap or junction.
    pub roadblock_events: usize,
    /// Number of traps in the topology.
    pub num_traps: usize,
    /// Number of junctions in the topology.
    pub num_junctions: usize,
    /// Number of ancilla qubits used.
    pub num_ancilla: usize,
}

impl CompiledRound {
    /// Fraction of the serialized work that the schedule managed to overlap:
    /// `execution_time / serialized_total` (Fig. 20 right; smaller is more parallel).
    pub fn serialization_fraction(&self) -> f64 {
        let total = self.breakdown.serialized_total();
        if total == 0.0 {
            1.0
        } else {
            self.execution_time / total
        }
    }

    /// Effective parallelism: how many operations ran concurrently on average
    /// (`serialized_total / execution_time`).
    pub fn effective_parallelism(&self) -> f64 {
        if self.execution_time == 0.0 {
            1.0
        } else {
            self.breakdown.serialized_total() / self.execution_time
        }
    }

    /// The paper's spacetime cost metric (Fig. 16):
    /// `num_traps × execution_time × num_ancilla`.
    pub fn spacetime_cost(&self) -> f64 {
        self.num_traps as f64 * self.execution_time * self.num_ancilla as f64
    }
}
