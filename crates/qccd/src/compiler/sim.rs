//! Discrete-event shuttling simulator.
//!
//! [`ShuttleSim`] tracks, for one round of syndrome extraction:
//!
//! * where every ion currently is (`trap` per ion),
//! * until when every trap and junction is busy,
//! * the time spent in each operation category,
//! * roadblock waits (time spent blocked on a busy trap or junction),
//! * rebalances triggered when a merge would exceed a trap's capacity.
//!
//! A compiler drives the simulator by calling [`ShuttleSim::execute_gate`] for each
//! entangling gate with the earliest time the gate *could* start (its data-dependency
//! ready time); the simulator returns the completion time after accounting for
//! shuttling, congestion, and intra-trap serialization. Gates in different traps with
//! disjoint routes overlap freely — this is exactly the "high inter-trap, low
//! intra-trap parallelism" model of §II-B.

use crate::compiler::ComponentTimes;
use crate::hardware::{NodeId, NodeKind, Topology};
use crate::placement::Placement;
use crate::timing::OperationTimes;
use qec::{CssCode, StabKind};
use serde::{Deserialize, Serialize};

/// Per-qubit idle exposure of one compiled syndrome-extraction round.
///
/// For every ion the simulator tracks *busy* time — time spent under an active
/// operation whose errors the base circuit-level rates already account for
/// (entangling gates for data qubits and ancillas; measurement + re-preparation
/// for ancillas). Everything else — sitting parked while other traps gate,
/// waiting out roadblocks, and being shuttled — is **idle exposure**: time the
/// qubit decoheres under the Pauli-twirled idling channel. The uniform noise
/// model charges every qubit the whole round (`horizon`); this profile is the
/// per-qubit refinement `noise::ErrorChannel::from_schedule` consumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IdleExposure {
    /// Idle exposure of each data qubit, seconds.
    pub data: Vec<f64>,
    /// Idle exposure of each X-sector ancilla, seconds.
    pub x_ancilla: Vec<f64>,
    /// Idle exposure of each Z-sector ancilla, seconds.
    pub z_ancilla: Vec<f64>,
    /// Wall-clock execution time of the round, seconds (every exposure is
    /// `<= horizon`).
    pub horizon: f64,
}

impl IdleExposure {
    /// The uniform fallback: every qubit exposed for the whole round — exactly
    /// what the scalar noise model assumes. Used for codesigns that cannot
    /// produce a per-qubit profile.
    pub fn uniform(horizon: f64, num_data: usize, num_x: usize, num_z: usize) -> Self {
        IdleExposure {
            data: vec![horizon; num_data],
            x_ancilla: vec![horizon; num_x],
            z_ancilla: vec![horizon; num_z],
            horizon,
        }
    }

    /// The ancilla exposures in measurement-check order (X-sector checks then
    /// Z-sector), the layout `noise::ErrorChannel` expects for measurement flip
    /// rates.
    pub fn measurement_order(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.x_ancilla.len() + self.z_ancilla.len());
        out.extend_from_slice(&self.x_ancilla);
        out.extend_from_slice(&self.z_ancilla);
        out
    }
}

/// Identifier of an ion inside the simulator.
///
/// Data qubits occupy `0..n`; X ancillas `n..n+mx`; Z ancillas `n+mx..n+mx+mz`.
pub type IonId = usize;

/// The discrete-event state of one compilation run.
#[derive(Debug, Clone)]
pub struct ShuttleSim<'a> {
    topology: &'a Topology,
    times: &'a OperationTimes,
    num_data: usize,
    num_x: usize,
    /// Current trap of every ion.
    ion_trap: Vec<NodeId>,
    /// Ions currently resident in each node (traps only; junctions stay empty).
    occupancy: Vec<Vec<IonId>>,
    /// Earliest time each trap is free.
    trap_free: Vec<f64>,
    /// Earliest time each junction is free.
    junction_free: Vec<f64>,
    /// Time each ion has spent under active operations (gates; measurement for
    /// ancillas) — the complement of its idle exposure.
    ion_busy: Vec<f64>,
    breakdown: ComponentTimes,
    num_shuttles: usize,
    num_rebalances: usize,
    roadblock_events: usize,
    /// Completion time of the latest event.
    horizon: f64,
}

impl<'a> ShuttleSim<'a> {
    /// Creates a simulator with every ion at its home trap from `placement`.
    pub fn new(
        code: &CssCode,
        topology: &'a Topology,
        placement: &Placement,
        times: &'a OperationTimes,
    ) -> Self {
        let num_nodes = topology.num_nodes();
        let num_data = code.num_qubits();
        let num_x = code.num_x_stabilizers();
        let num_z = code.num_z_stabilizers();
        let mut ion_trap = Vec::with_capacity(num_data + num_x + num_z);
        ion_trap.extend(placement.data_trap.iter().copied());
        ion_trap.extend(placement.x_ancilla_trap.iter().copied());
        ion_trap.extend(placement.z_ancilla_trap.iter().copied());
        let mut occupancy = vec![Vec::new(); num_nodes];
        for (ion, &trap) in ion_trap.iter().enumerate() {
            occupancy[trap].push(ion);
        }
        let num_ions = ion_trap.len();
        ShuttleSim {
            topology,
            times,
            num_data,
            num_x,
            ion_trap,
            occupancy,
            trap_free: vec![0.0; num_nodes],
            junction_free: vec![0.0; num_nodes],
            ion_busy: vec![0.0; num_ions],
            breakdown: ComponentTimes::default(),
            num_shuttles: 0,
            num_rebalances: 0,
            roadblock_events: 0,
            horizon: 0.0,
        }
    }

    /// The simulator ion id of a data qubit.
    pub fn data_ion(&self, qubit: usize) -> IonId {
        qubit
    }

    /// The simulator ion id of the ancilla measuring stabilizer (`kind`, `index`).
    pub fn ancilla_ion(&self, kind: StabKind, index: usize) -> IonId {
        match kind {
            StabKind::X => self.num_data + index,
            StabKind::Z => self.num_data + self.num_x + index,
        }
    }

    /// Current trap of an ion.
    pub fn ion_location(&self, ion: IonId) -> NodeId {
        self.ion_trap[ion]
    }

    /// Latest completion time seen so far.
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// Accumulated component breakdown.
    pub fn breakdown(&self) -> ComponentTimes {
        self.breakdown
    }

    /// Number of inter-trap shuttles performed.
    pub fn num_shuttles(&self) -> usize {
        self.num_shuttles
    }

    /// Number of rebalances performed.
    pub fn num_rebalances(&self) -> usize {
        self.num_rebalances
    }

    /// Number of distinct waits on busy resources.
    pub fn roadblock_events(&self) -> usize {
        self.roadblock_events
    }

    fn chain_len(&self, trap: NodeId) -> usize {
        self.occupancy[trap].len().max(2)
    }

    fn trap_capacity(&self, trap: NodeId) -> usize {
        match self.topology.node(trap) {
            NodeKind::Trap { capacity } => capacity,
            NodeKind::Junction => 0,
        }
    }

    fn wait_for_trap(&mut self, trap: NodeId, now: f64) -> f64 {
        let free = self.trap_free[trap];
        if free > now {
            self.breakdown.roadblock_wait += free - now;
            self.roadblock_events += 1;
            free
        } else {
            now
        }
    }

    fn wait_for_junction(&mut self, junction: NodeId, now: f64) -> f64 {
        let free = self.junction_free[junction];
        if free > now {
            self.breakdown.roadblock_wait += free - now;
            self.roadblock_events += 1;
            free
        } else {
            now
        }
    }

    /// Moves `ion` from its current trap to `target` along the shortest path, charging
    /// split/move/junction/merge/swap costs and waiting on busy resources.
    ///
    /// Returns the arrival (merge-complete) time.
    ///
    /// # Panics
    ///
    /// Panics if no path exists between the two traps.
    pub fn shuttle_ion(&mut self, ion: IonId, target: NodeId, ready: f64) -> f64 {
        let source = self.ion_trap[ion];
        if source == target {
            return ready;
        }
        let path = self
            .topology
            .shortest_path(source, target)
            .unwrap_or_else(|| panic!("no shuttling path between {source} and {target}"));
        self.num_shuttles += 1;

        // Split out of the source trap (the trap is busy for the split).
        let mut t = self.wait_for_trap(source, ready);
        t += self.times.split;
        self.breakdown.split += self.times.split;
        self.trap_free[source] = self.trap_free[source].max(t);
        self.occupancy[source].retain(|&i| i != ion);

        // Traverse intermediate nodes.
        for &node in &path[1..path.len() - 1] {
            // Move along the connecting segment.
            t += self.times.shuttle_move;
            self.breakdown.shuttle_move += self.times.shuttle_move;
            match self.topology.node(node) {
                NodeKind::Junction => {
                    t = self.wait_for_junction(node, t);
                    let cross = self.times.junction_crossing(self.topology.degree(node));
                    self.junction_free[node] = t + cross;
                    t += cross;
                    self.breakdown.junction += cross;
                }
                NodeKind::Trap { .. } => {
                    // Passing *through* an occupied trap: the classic trap roadblock.
                    t = self.wait_for_trap(node, t);
                    let chain = self.chain_len(node);
                    let pass = self.times.merge
                        + self.times.swap(chain, (chain / 2).max(1))
                        + self.times.split;
                    self.trap_free[node] = t + pass;
                    t += pass;
                    self.breakdown.merge += self.times.merge;
                    self.breakdown.swap += self.times.swap(chain, (chain / 2).max(1));
                    self.breakdown.split += self.times.split;
                }
            }
        }

        // Final segment into the target trap.
        t += self.times.shuttle_move;
        self.breakdown.shuttle_move += self.times.shuttle_move;
        t = self.wait_for_trap(target, t);

        // Capacity check: rebalance if the merge would overflow the trap.
        if self.occupancy[target].len() >= self.trap_capacity(target) {
            t = self.rebalance(target, ion, t);
        }

        // Merge into the target trap and reorder.
        let chain = self.chain_len(target) + 1;
        let merge_and_position = self.times.merge + self.times.swap(chain, (chain / 2).max(1));
        self.breakdown.merge += self.times.merge;
        self.breakdown.swap += self.times.swap(chain, (chain / 2).max(1));
        t += merge_and_position;
        self.trap_free[target] = t;
        self.occupancy[target].push(ion);
        self.ion_trap[ion] = target;
        self.horizon = self.horizon.max(t);
        t
    }

    /// Evicts one resident ion (other than `incoming`) from `trap` to the nearest trap
    /// with room, charging the cost to the rebalance category.
    fn rebalance(&mut self, trap: NodeId, incoming: IonId, now: f64) -> f64 {
        // Choose a victim: prefer an ancilla that is idle, otherwise any resident.
        let victim = match self.occupancy[trap]
            .iter()
            .copied()
            .find(|&i| i >= self.num_data)
        {
            Some(v) => v,
            None => match self.occupancy[trap].first().copied() {
                Some(v) => v,
                None => return now,
            },
        };
        let _ = incoming;
        // Find the nearest trap with room.
        let mut best: Option<(usize, NodeId)> = None;
        for &cand in &self.topology.traps() {
            if cand == trap {
                continue;
            }
            if self.occupancy[cand].len() < self.trap_capacity(cand) {
                if let Some(d) = self.topology.distance(trap, cand) {
                    if best.map_or(true, |(bd, _)| d < bd) {
                        best = Some((d, cand));
                    }
                }
            }
        }
        let Some((dist, dest)) = best else {
            // Nowhere to rebalance to: allow the overflow but record the event.
            self.num_rebalances += 1;
            return now;
        };
        self.num_rebalances += 1;
        // Simplified rebalance: split + dist moves + merge, blocking both traps.
        let cost = self.times.split + dist as f64 * self.times.shuttle_move + self.times.merge;
        self.breakdown.rebalance += cost;
        let t = now + cost;
        self.trap_free[trap] = self.trap_free[trap].max(t);
        self.trap_free[dest] = self.trap_free[dest].max(t);
        self.occupancy[trap].retain(|&i| i != victim);
        self.occupancy[dest].push(victim);
        self.ion_trap[victim] = dest;
        self.horizon = self.horizon.max(t);
        t
    }

    /// Executes one entangling gate between the ancilla of stabilizer (`kind`,
    /// `stab_index`) and data qubit `data`, starting no earlier than `ready`.
    ///
    /// If the two ions sit in different traps, the ancilla is shuttled to the data
    /// qubit's trap first. Returns the completion time of the gate.
    pub fn execute_gate(
        &mut self,
        kind: StabKind,
        stab_index: usize,
        data: usize,
        ready: f64,
    ) -> f64 {
        let ancilla = self.ancilla_ion(kind, stab_index);
        let data_ion = self.data_ion(data);
        let target = self.ion_trap[data_ion];
        let arrive = if self.ion_trap[ancilla] == target {
            ready
        } else {
            self.shuttle_ion(ancilla, target, ready)
        };
        let start = self.wait_for_trap(target, arrive);
        let dur = self.times.two_qubit_gate(self.chain_len(target));
        self.breakdown.gate += dur;
        self.ion_busy[ancilla] += dur;
        self.ion_busy[data_ion] += dur;
        let end = start + dur;
        self.trap_free[target] = end;
        self.horizon = self.horizon.max(end);
        end
    }

    /// Measures the ancilla of stabilizer (`kind`, `index`) in place, starting no
    /// earlier than `ready`; returns the completion time.
    pub fn measure_ancilla(&mut self, kind: StabKind, index: usize, ready: f64) -> f64 {
        let ancilla = self.ancilla_ion(kind, index);
        let trap = self.ion_trap[ancilla];
        let start = self.wait_for_trap(trap, ready);
        let dur = self.times.measurement + self.times.preparation;
        self.breakdown.measurement += dur;
        self.ion_busy[ancilla] += dur;
        let end = start + dur;
        self.trap_free[trap] = end;
        self.horizon = self.horizon.max(end);
        end
    }

    /// The per-qubit idle exposure accumulated so far: `horizon` minus each ion's
    /// busy time (clamped at zero — an ion gated right up to the horizon has no
    /// exposure left). Shuttling and roadblock waits count as exposure: the ion
    /// decoheres in transit exactly as it does parked.
    pub fn idle_exposure(&self) -> IdleExposure {
        let horizon = self.horizon;
        let idle_of = |ion: IonId| (horizon - self.ion_busy[ion]).max(0.0);
        let num_z = self.ion_busy.len() - self.num_data - self.num_x;
        IdleExposure {
            data: (0..self.num_data).map(idle_of).collect(),
            x_ancilla: (0..self.num_x)
                .map(|i| idle_of(self.num_data + i))
                .collect(),
            z_ancilla: (0..num_z)
                .map(|i| idle_of(self.num_data + self.num_x + i))
                .collect(),
            horizon,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::greedy_cluster_placement;
    use crate::topology::{baseline_grid, ring};
    use qec::classical::ClassicalCode;
    use qec::hgp::square_hypergraph_product;

    fn setup() -> (CssCode, Topology, OperationTimes) {
        let rep = ClassicalCode::repetition(3);
        let code = square_hypergraph_product(&rep).expect("valid");
        let topo = baseline_grid(code.num_qubits(), 5);
        (code, topo, OperationTimes::default())
    }

    #[test]
    fn same_trap_gate_has_no_shuttle() {
        let (code, topo, times) = setup();
        let placement = greedy_cluster_placement(&code, &topo);
        let mut sim = ShuttleSim::new(&code, &topo, &placement, &times);
        // Find a stabilizer whose ancilla shares a trap with one of its data qubits.
        let stab = code
            .stabilizers()
            .into_iter()
            .find(|s| {
                let at = placement.ancilla_trap(s.kind, s.index);
                s.support.iter().any(|&d| placement.data_trap[d] == at)
            })
            .expect("clustering co-locates at least one pair");
        let data = *stab
            .support
            .iter()
            .find(|&&d| placement.data_trap[d] == placement.ancilla_trap(stab.kind, stab.index))
            .unwrap();
        let end = sim.execute_gate(stab.kind, stab.index, data, 0.0);
        assert_eq!(sim.num_shuttles(), 0);
        assert!(
            end > 0.0 && end < 1e-3,
            "a single gate takes tens of microseconds"
        );
    }

    #[test]
    fn cross_trap_gate_shuttles() {
        let (code, topo, times) = setup();
        let placement = greedy_cluster_placement(&code, &topo);
        let mut sim = ShuttleSim::new(&code, &topo, &placement, &times);
        // Find a pair in different traps.
        let stab = code
            .stabilizers()
            .into_iter()
            .find(|s| {
                let at = placement.ancilla_trap(s.kind, s.index);
                s.support.iter().any(|&d| placement.data_trap[d] != at)
            })
            .expect("some pair crosses traps");
        let data = *stab
            .support
            .iter()
            .find(|&&d| placement.data_trap[d] != placement.ancilla_trap(stab.kind, stab.index))
            .unwrap();
        let end = sim.execute_gate(stab.kind, stab.index, data, 0.0);
        assert_eq!(sim.num_shuttles(), 1);
        // Must include at least split + merge + gate.
        assert!(end >= times.split + times.merge + times.gate_base);
        // The ancilla now lives in the data trap.
        let anc = sim.ancilla_ion(stab.kind, stab.index);
        assert_eq!(sim.ion_location(anc), placement.data_trap[data]);
    }

    #[test]
    fn contention_serializes_same_trap_gates() {
        let (code, topo, times) = setup();
        let placement = greedy_cluster_placement(&code, &topo);
        let mut sim = ShuttleSim::new(&code, &topo, &placement, &times);
        // Two gates targeting data qubits in the same trap cannot overlap.
        let mut by_trap: std::collections::HashMap<usize, Vec<usize>> = Default::default();
        for (q, &t) in placement.data_trap.iter().enumerate() {
            by_trap.entry(t).or_default().push(q);
        }
        let (_, qs) = by_trap
            .into_iter()
            .find(|(_, v)| v.len() >= 2)
            .expect("clustered placement");
        let stab_of = |q: usize| {
            code.stabilizers()
                .into_iter()
                .find(|s| s.support.contains(&q))
                .expect("every qubit is checked")
        };
        let s0 = stab_of(qs[0]);
        let s1 = stab_of(qs[1]);
        let e0 = sim.execute_gate(s0.kind, s0.index, qs[0], 0.0);
        let e1 = sim.execute_gate(s1.kind, s1.index, qs[1], 0.0);
        assert!(
            e1 > e0 || (e0 - e1).abs() > 1e-12,
            "gates in one trap serialize"
        );
    }

    #[test]
    fn measurement_advances_horizon() {
        let (code, topo, times) = setup();
        let placement = greedy_cluster_placement(&code, &topo);
        let mut sim = ShuttleSim::new(&code, &topo, &placement, &times);
        let end = sim.measure_ancilla(StabKind::X, 0, 0.0);
        assert!(end >= times.measurement);
        assert_eq!(sim.horizon(), end);
    }

    #[test]
    fn idle_exposure_tracks_busy_time() {
        let (code, topo, times) = setup();
        let placement = greedy_cluster_placement(&code, &topo);
        let mut sim = ShuttleSim::new(&code, &topo, &placement, &times);
        // Before any event everything is at the zero horizon with zero exposure.
        let fresh = sim.idle_exposure();
        assert_eq!(fresh.horizon, 0.0);
        assert!(fresh.data.iter().all(|&t| t == 0.0));

        // One gate: the two participating ions are busy for the gate duration,
        // everyone else idles for the whole (new) horizon.
        let stab = code
            .stabilizers()
            .into_iter()
            .next()
            .expect("stabilizers exist");
        let data = stab.support[0];
        let end = sim.execute_gate(stab.kind, stab.index, data, 0.0);
        let exposure = sim.idle_exposure();
        assert_eq!(exposure.horizon, end);
        assert!(
            exposure.data[data] < end,
            "gated qubit must have less exposure than the horizon"
        );
        let untouched = (0..code.num_qubits())
            .find(|&q| q != data && !stab.support.contains(&q))
            .expect("other qubits exist");
        assert_eq!(
            exposure.data[untouched], end,
            "idle qubit is exposed for the whole round"
        );
        // Sector vectors have one entry per stabilizer.
        assert_eq!(exposure.x_ancilla.len(), code.num_x_stabilizers());
        assert_eq!(exposure.z_ancilla.len(), code.num_z_stabilizers());
        // Measurement order concatenates X then Z.
        let flat = exposure.measurement_order();
        assert_eq!(flat.len(), code.num_stabilizers());
        assert_eq!(flat[0], exposure.x_ancilla[0]);
    }

    #[test]
    fn measurement_reduces_ancilla_exposure() {
        let (code, topo, times) = setup();
        let placement = greedy_cluster_placement(&code, &topo);
        let mut sim = ShuttleSim::new(&code, &topo, &placement, &times);
        let end = sim.measure_ancilla(StabKind::X, 0, 0.0);
        let exposure = sim.idle_exposure();
        assert_eq!(
            exposure.x_ancilla[0], 0.0,
            "the measured ancilla was busy the whole horizon"
        );
        assert_eq!(exposure.z_ancilla[0], end);
    }

    #[test]
    fn exposures_never_exceed_the_horizon() {
        let (code, topo, times) = setup();
        let placement = greedy_cluster_placement(&code, &topo);
        let mut sim = ShuttleSim::new(&code, &topo, &placement, &times);
        for stab in code.stabilizers() {
            for &d in &stab.support {
                sim.execute_gate(stab.kind, stab.index, d, 0.0);
            }
            sim.measure_ancilla(stab.kind, stab.index, sim.horizon());
        }
        let exposure = sim.idle_exposure();
        for t in exposure
            .data
            .iter()
            .chain(&exposure.x_ancilla)
            .chain(&exposure.z_ancilla)
        {
            assert!(
                (0.0..=exposure.horizon).contains(t),
                "exposure {t} out of range"
            );
        }
    }

    #[test]
    fn uniform_fallback_exposes_everything_for_the_horizon() {
        let e = IdleExposure::uniform(0.25, 3, 2, 1);
        assert_eq!(e.data, vec![0.25; 3]);
        assert_eq!(e.measurement_order(), vec![0.25; 3]);
        assert_eq!(e.horizon, 0.25);
    }

    #[test]
    fn ring_shuttle_distance_costs_more() {
        let rep = ClassicalCode::repetition(3);
        let code = square_hypergraph_product(&rep).expect("valid");
        let topo = ring(6, 6);
        let placement = greedy_cluster_placement(&code, &topo);
        let times = OperationTimes::default();
        let mut sim = ShuttleSim::new(&code, &topo, &placement, &times);
        let traps = topo.traps();
        let anc = sim.ancilla_ion(StabKind::X, 0);
        let start_trap = sim.ion_location(anc);
        // Move to the adjacent trap and then to the opposite side; the long move takes
        // strictly longer.
        let near = traps
            .iter()
            .copied()
            .find(|&t| topo.distance(start_trap, t) == Some(2))
            .unwrap();
        let t_near = sim.shuttle_ion(anc, near, 0.0);
        let far = traps
            .iter()
            .copied()
            .max_by_key(|&t| topo.distance(near, t).unwrap_or(0))
            .unwrap();
        let t_far = sim.shuttle_ion(anc, far, t_near) - t_near;
        assert!(t_far > t_near);
    }
}
