//! The baseline compiler: greedy cluster mapping + static earliest-job-first (EJF)
//! scheduling over the circuit DAG, modelled after QCCDSim (§II-B2, Fig. 4b).
//!
//! The schedule is read as a dependency DAG: two gates conflict when they share a data
//! qubit or an ancilla, and the later gate may not start before the earlier one
//! completes. Gates are released to the shuttling simulator in earliest-ready-first
//! order; resource contention (busy traps, junction crossings, roadblocks) then
//! determines the realized execution time.

use crate::compiler::sim::{IdleExposure, ShuttleSim};
use crate::compiler::CompiledRound;
use crate::hardware::Topology;
use crate::placement::{greedy_cluster_placement, Placement};
use crate::timing::OperationTimes;
use qec::schedule::{GateOp, Schedule};
use qec::{CssCode, StabKind};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Orders a flat gate list by the static EJF policy and executes it on the
/// simulator, returning the compiled round plus its per-qubit [`IdleExposure`].
///
/// `gates` must list every gate of one syndrome-extraction round; dependencies are
/// derived from shared qubits in listing order (the "interaction DAG" of the paper).
pub(crate) fn run_static_ejf_profiled(
    code: &CssCode,
    topology: &Topology,
    placement: &Placement,
    times: &OperationTimes,
    gates: &[GateOp],
    codesign: String,
) -> (CompiledRound, IdleExposure) {
    let mut sim = ShuttleSim::new(code, topology, placement, times);

    // Dependency edges: for each qubit (data or ancilla), gates touching it are
    // totally ordered by their position in the listing.
    let n = gates.len();
    let mut deps: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut last_use_data: std::collections::HashMap<usize, usize> = Default::default();
    let mut last_use_anc: std::collections::HashMap<(StabKind, usize), usize> = Default::default();
    for (i, g) in gates.iter().enumerate() {
        if let Some(&prev) = last_use_data.get(&g.data) {
            deps[i].push(prev);
        }
        if let Some(&prev) = last_use_anc.get(&(g.kind, g.stabilizer)) {
            deps[i].push(prev);
        }
        last_use_data.insert(g.data, i);
        last_use_anc.insert((g.kind, g.stabilizer), i);
    }
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut missing: Vec<usize> = vec![0; n];
    for (i, ds) in deps.iter().enumerate() {
        missing[i] = ds.len();
        for &d in ds {
            dependents[d].push(i);
        }
    }

    // EJF: release gates in order of their dependency-ready time.
    let mut ready_time: Vec<f64> = vec![0.0; n];
    let mut completion: Vec<f64> = vec![0.0; n];
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    let to_key = |t: f64| (t * 1e12) as u64;
    for (i, &missing_deps) in missing.iter().enumerate() {
        if missing_deps == 0 {
            heap.push(Reverse((to_key(0.0), i)));
        }
    }
    let mut processed = 0usize;
    while let Some(Reverse((_, i))) = heap.pop() {
        let g = gates[i];
        let end = sim.execute_gate(g.kind, g.stabilizer, g.data, ready_time[i]);
        completion[i] = end;
        processed += 1;
        for &j in &dependents[i] {
            ready_time[j] = ready_time[j].max(end);
            missing[j] -= 1;
            if missing[j] == 0 {
                heap.push(Reverse((to_key(ready_time[j]), j)));
            }
        }
    }
    assert_eq!(
        processed, n,
        "dependency graph of the gate list must be acyclic"
    );

    // Measure every ancilla after its last gate. The drain is sorted so the
    // simulator accumulates its float breakdown in a fixed order — HashMap
    // iteration order would otherwise perturb the sums in the last bit from run
    // to run, breaking bit-identical caching.
    let mut last_gate_end: std::collections::HashMap<(StabKind, usize), f64> = Default::default();
    for (i, g) in gates.iter().enumerate() {
        let e = last_gate_end.entry((g.kind, g.stabilizer)).or_insert(0.0);
        *e = e.max(completion[i]);
    }
    let mut measurements: Vec<((StabKind, usize), f64)> = last_gate_end.into_iter().collect();
    measurements.sort_by_key(|m| m.0);
    for ((kind, idx), end) in measurements {
        sim.measure_ancilla(kind, idx, end);
    }

    let round = CompiledRound {
        codesign,
        execution_time: sim.horizon(),
        breakdown: sim.breakdown(),
        num_gates: n,
        num_shuttles: sim.num_shuttles(),
        num_rebalances: sim.num_rebalances(),
        roadblock_events: sim.roadblock_events(),
        num_traps: topology.num_traps(),
        num_junctions: topology.num_junctions(),
        num_ancilla: code.num_stabilizers(),
    };
    let exposure = sim.idle_exposure();
    (round, exposure)
}

/// Compiles one round of syndrome extraction with the baseline policy
/// (greedy cluster mapping + static EJF) onto the given topology.
///
/// The gate listing order is taken from `schedule` flattened slice-by-slice, which for
/// the baseline is normally the serial schedule (the DAG the paper's baseline reads
/// from its input circuit).
pub fn compile_baseline(
    code: &CssCode,
    topology: &Topology,
    times: &OperationTimes,
    schedule: &Schedule,
) -> CompiledRound {
    compile_baseline_profiled(code, topology, times, schedule).0
}

/// [`compile_baseline`] plus the per-qubit [`IdleExposure`] of the compiled round
/// (the input `noise::ErrorChannel::from_schedule` consumes).
pub fn compile_baseline_profiled(
    code: &CssCode,
    topology: &Topology,
    times: &OperationTimes,
    schedule: &Schedule,
) -> (CompiledRound, IdleExposure) {
    let placement = greedy_cluster_placement(code, topology);
    compile_baseline_with_placement_profiled(code, topology, times, schedule, &placement)
}

/// Same as [`compile_baseline`] but with an externally chosen placement (used by the
/// placement ablations and the loose-capacity sensitivity study).
pub fn compile_baseline_with_placement(
    code: &CssCode,
    topology: &Topology,
    times: &OperationTimes,
    schedule: &Schedule,
    placement: &Placement,
) -> CompiledRound {
    compile_baseline_with_placement_profiled(code, topology, times, schedule, placement).0
}

/// [`compile_baseline_with_placement`] plus the per-qubit [`IdleExposure`] — the
/// single core every baseline `compile_*` variant delegates to, so the gate
/// flattening and codesign label exist in exactly one place.
pub fn compile_baseline_with_placement_profiled(
    code: &CssCode,
    topology: &Topology,
    times: &OperationTimes,
    schedule: &Schedule,
    placement: &Placement,
) -> (CompiledRound, IdleExposure) {
    let gates: Vec<GateOp> = schedule.slices().iter().flatten().copied().collect();
    run_static_ejf_profiled(
        code,
        topology,
        placement,
        times,
        &gates,
        format!("{} + static EJF", topology.name()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{baseline_grid, ring};
    use qec::classical::ClassicalCode;
    use qec::hgp::square_hypergraph_product;
    use qec::schedule::serial_schedule;

    fn small_code() -> CssCode {
        let rep = ClassicalCode::repetition(3);
        square_hypergraph_product(&rep).expect("valid")
    }

    #[test]
    fn baseline_executes_all_gates() {
        let code = small_code();
        let topo = baseline_grid(code.num_qubits(), 5);
        let times = OperationTimes::default();
        let round = compile_baseline(&code, &topo, &times, &serial_schedule(&code));
        assert_eq!(round.num_gates, serial_schedule(&code).num_gates());
        assert!(round.execution_time > 0.0);
        assert!(round.breakdown.gate > 0.0);
        assert!(round.breakdown.measurement > 0.0);
    }

    #[test]
    fn baseline_parallelism_is_bounded_by_work() {
        let code = small_code();
        let topo = baseline_grid(code.num_qubits(), 5);
        let times = OperationTimes::default();
        let round = compile_baseline(&code, &topo, &times, &serial_schedule(&code));
        // Execution time can never be smaller than the largest single component / the
        // trap count, and never larger than the serialized total.
        assert!(round.execution_time <= round.breakdown.serialized_total() + 1e-9);
        assert!(round.effective_parallelism() >= 1.0);
    }

    #[test]
    fn faster_operations_reduce_execution_time() {
        let code = small_code();
        let topo = baseline_grid(code.num_qubits(), 5);
        let times = OperationTimes::default();
        let slow = compile_baseline(&code, &topo, &times, &serial_schedule(&code));
        let fast_times = times.scaled(0.5);
        let fast = compile_baseline(&code, &topo, &fast_times, &serial_schedule(&code));
        assert!(fast.execution_time < slow.execution_time);
    }

    #[test]
    fn ring_with_static_ejf_is_slow() {
        // The Fig. 6 confusion matrix: a circle topology with the greedy static
        // schedule is *worse* than the grid because every shuttle goes the long way
        // around and serializes.
        let code = small_code();
        let times = OperationTimes::default();
        let grid = compile_baseline(
            &code,
            &baseline_grid(code.num_qubits(), 5),
            &times,
            &serial_schedule(&code),
        );
        let m_half = code.num_stabilizers() / 2;
        let capacity = code.num_qubits().div_ceil(m_half) + 2;
        let circle = compile_baseline(
            &code,
            &ring(m_half, capacity),
            &times,
            &serial_schedule(&code),
        );
        assert!(
            circle.execution_time > grid.execution_time * 0.5,
            "uncoordinated ring should not dramatically beat the grid: ring {} vs grid {}",
            circle.execution_time,
            grid.execution_time
        );
    }
}
