//! Alternative baseline compilers used in the Fig. 20 compiler-sensitivity study.
//!
//! * **Baseline 2** (after "Muzzle the Shuttle", Saki et al. DATE 2022): gates are
//!   re-ordered so that all gates of one stabilizer run back-to-back, letting the
//!   ancilla visit each data trap once per round instead of ping-ponging.
//! * **Baseline 3** (after "MoveLess", Khan et al. 2025): gates are grouped by the
//!   *destination trap* of their data qubit, so consecutive gates re-use the ancilla's
//!   position and excess shuttling is minimized.
//!
//! Both reuse the greedy cluster mapping and the static EJF release mechanism of the
//! baseline; only the gate listing (and therefore the derived dependency DAG and the
//! shuttling pattern) differs.

use crate::compiler::baseline::run_static_ejf_profiled;
use crate::compiler::sim::IdleExposure;
use crate::compiler::CompiledRound;
use crate::hardware::Topology;
use crate::placement::greedy_cluster_placement;
use crate::timing::OperationTimes;
use qec::schedule::{GateOp, Schedule};
use qec::CssCode;

/// Baseline 2: stabilizer-batched gate ordering ("muzzle the shuttle").
pub fn compile_baseline2(
    code: &CssCode,
    topology: &Topology,
    times: &OperationTimes,
    schedule: &Schedule,
) -> CompiledRound {
    compile_baseline2_profiled(code, topology, times, schedule).0
}

/// [`compile_baseline2`] plus the per-qubit [`IdleExposure`] of the compiled round.
pub fn compile_baseline2_profiled(
    code: &CssCode,
    topology: &Topology,
    times: &OperationTimes,
    schedule: &Schedule,
) -> (CompiledRound, IdleExposure) {
    let placement = greedy_cluster_placement(code, topology);
    let mut gates: Vec<GateOp> = schedule.slices().iter().flatten().copied().collect();
    // Order stabilizer batches by the ancilla's home trap (so consecutive ancilla
    // trips start near each other) and, within a batch, visit data traps in order, so
    // the ancilla sweeps the grid instead of ping-ponging.
    gates.sort_by_key(|g| {
        (
            placement.ancilla_trap(g.kind, g.stabilizer),
            g.kind,
            g.stabilizer,
            placement.data_trap[g.data],
        )
    });
    run_static_ejf_profiled(
        code,
        topology,
        &placement,
        times,
        &gates,
        format!("{} + stabilizer-batched EJF (baseline 2)", topology.name()),
    )
}

/// Baseline 3: destination-trap-batched gate ordering ("MoveLess"-style).
pub fn compile_baseline3(
    code: &CssCode,
    topology: &Topology,
    times: &OperationTimes,
    schedule: &Schedule,
) -> CompiledRound {
    compile_baseline3_profiled(code, topology, times, schedule).0
}

/// [`compile_baseline3`] plus the per-qubit [`IdleExposure`] of the compiled round.
pub fn compile_baseline3_profiled(
    code: &CssCode,
    topology: &Topology,
    times: &OperationTimes,
    schedule: &Schedule,
) -> (CompiledRound, IdleExposure) {
    let placement = greedy_cluster_placement(code, topology);
    let mut gates: Vec<GateOp> = schedule.slices().iter().flatten().copied().collect();
    // Batch gates by destination trap across stabilizers, so every ancilla headed to
    // the same trap does its work while already there and excess shuttling is avoided.
    gates.sort_by_key(|g| (placement.data_trap[g.data], g.kind, g.stabilizer));
    run_static_ejf_profiled(
        code,
        topology,
        &placement,
        times,
        &gates,
        format!("{} + trap-batched EJF (baseline 3)", topology.name()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::baseline::compile_baseline;
    use crate::topology::baseline_grid;
    use qec::classical::ClassicalCode;
    use qec::hgp::square_hypergraph_product;
    use qec::schedule::serial_schedule;

    fn small_code() -> CssCode {
        let rep = ClassicalCode::repetition(3);
        square_hypergraph_product(&rep).expect("valid")
    }

    #[test]
    fn all_compilers_execute_all_gates() {
        let code = small_code();
        let topo = baseline_grid(code.num_qubits(), 5);
        let times = OperationTimes::default();
        let sched = serial_schedule(&code);
        let b1 = compile_baseline(&code, &topo, &times, &sched);
        let b2 = compile_baseline2(&code, &topo, &times, &sched);
        let b3 = compile_baseline3(&code, &topo, &times, &sched);
        assert_eq!(b1.num_gates, b2.num_gates);
        assert_eq!(b2.num_gates, b3.num_gates);
        for r in [&b1, &b2, &b3] {
            assert!(r.execution_time > 0.0);
            assert!(r.breakdown.serialized_total() >= r.execution_time - 1e-9);
        }
    }

    #[test]
    fn compilers_produce_distinct_schedules() {
        let code = small_code();
        let topo = baseline_grid(code.num_qubits(), 5);
        let times = OperationTimes::default();
        let sched = serial_schedule(&code);
        let b1 = compile_baseline(&code, &topo, &times, &sched);
        let b2 = compile_baseline2(&code, &topo, &times, &sched);
        let b3 = compile_baseline3(&code, &topo, &times, &sched);
        // They need not be ordered in any particular way, but they should not be
        // byte-identical results (different shuttling patterns).
        let distinct = (b1.execution_time - b2.execution_time).abs() > 1e-12
            || (b2.execution_time - b3.execution_time).abs() > 1e-12
            || b1.num_shuttles != b2.num_shuttles
            || b2.num_shuttles != b3.num_shuttles;
        assert!(distinct, "expected the three compilers to differ somewhere");
    }

    #[test]
    fn codesign_labels_identify_compilers() {
        let code = small_code();
        let topo = baseline_grid(code.num_qubits(), 5);
        let times = OperationTimes::default();
        let sched = serial_schedule(&code);
        assert!(compile_baseline2(&code, &topo, &times, &sched)
            .codesign
            .contains("baseline 2"));
        assert!(compile_baseline3(&code, &topo, &times, &sched)
            .codesign
            .contains("baseline 3"));
    }
}
