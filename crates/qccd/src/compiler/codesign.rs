//! The [`Codesign`] trait: one uniform entry point over every hardware/software
//! combination the evaluation compares, plus a [`CodesignRegistry`] that enumerates
//! codesigns by label.
//!
//! Before this abstraction each figure runner called one of four unrelated free
//! functions (`compile_baseline*`, `compile_dynamic`, `compile_baseline2/3`, or the
//! Cyclone compiler) with hand-built topologies. A codesign bundles the topology
//! construction, placement, and scheduling policy behind `compile(code, times)`, so a
//! new topology or policy is one new impl and one `register` call. The free functions
//! remain the underlying implementation; every impl here is a thin wrapper that is
//! pinned bit-identical to them by the regression suite in the `cyclone` crate.

use crate::compiler::baseline::{compile_baseline, compile_baseline_profiled};
use crate::compiler::dynamic::{compile_dynamic, compile_dynamic_profiled};
use crate::compiler::sim::IdleExposure;
use crate::compiler::variants::{
    compile_baseline2, compile_baseline2_profiled, compile_baseline3, compile_baseline3_profiled,
};
use crate::compiler::CompiledRound;
use crate::timing::OperationTimes;
use crate::topology::{alternate_grid, baseline_grid, mesh_junction_network, ring};
use qec::schedule::{max_parallel_schedule, serial_schedule};
use qec::CssCode;

/// Per-trap ion capacity of the paper's baseline grid.
pub const BASELINE_CAPACITY: usize = 5;

/// A hardware topology + compilation policy that can execute one round of syndrome
/// extraction for any CSS code.
pub trait Codesign: Send + Sync {
    /// Stable registry label, e.g. `"baseline"` or `"dynamic-mesh"`.
    fn name(&self) -> &str;

    /// Compiles one syndrome-extraction round of `code` under the given operation
    /// times, constructing whatever topology/placement the codesign prescribes.
    fn compile(&self, code: &CssCode, times: &OperationTimes) -> CompiledRound;

    /// [`Codesign::compile`] plus the per-qubit [`IdleExposure`] of the compiled
    /// round, when the codesign can produce one (`None` otherwise — callers fall
    /// back to [`IdleExposure::uniform`], which reproduces the scalar noise model).
    ///
    /// Every sim-driven codesign in this crate overrides this; the analytic
    /// Cyclone compiler in the `cyclone` crate provides its own profile.
    fn compile_profiled(
        &self,
        code: &CssCode,
        times: &OperationTimes,
    ) -> (CompiledRound, Option<IdleExposure>) {
        (self.compile(code, times), None)
    }

    /// Verifies that a compiled round executes every gate of the syndrome-extraction
    /// circuit exactly once (each stabilizer touches each qubit of its support once).
    fn covers_all_gates(&self, code: &CssCode) -> bool {
        let expected: usize = code.stabilizers().iter().map(|s| s.support.len()).sum();
        self.compile(code, &OperationTimes::default()).num_gates == expected
    }
}

/// The paper's baseline: a 2D grid with [`BASELINE_CAPACITY`]-ion traps, greedy
/// cluster mapping, and static earliest-job-first scheduling of the serial schedule.
#[derive(Debug, Clone)]
pub struct BaselineGrid {
    /// Per-trap ion capacity (the paper uses [`BASELINE_CAPACITY`]).
    pub capacity: usize,
    name: String,
}

impl BaselineGrid {
    /// The paper's configuration (capacity 5), labelled `"baseline"`.
    pub fn new() -> Self {
        Self::with_capacity(BASELINE_CAPACITY)
    }

    /// A loose/tight-capacity variant, labelled `"baseline-cap{c}"` when `c` differs
    /// from the paper's value (used by the Fig. 17 loose-capacity sensitivity study).
    pub fn with_capacity(capacity: usize) -> Self {
        let name = if capacity == BASELINE_CAPACITY {
            "baseline".to_string()
        } else {
            format!("baseline-cap{capacity}")
        };
        BaselineGrid { capacity, name }
    }
}

impl Default for BaselineGrid {
    fn default() -> Self {
        Self::new()
    }
}

impl Codesign for BaselineGrid {
    fn name(&self) -> &str {
        &self.name
    }

    fn compile(&self, code: &CssCode, times: &OperationTimes) -> CompiledRound {
        let topo = baseline_grid(code.num_qubits(), self.capacity);
        compile_baseline(code, &topo, times, &serial_schedule(code))
    }

    fn compile_profiled(
        &self,
        code: &CssCode,
        times: &OperationTimes,
    ) -> (CompiledRound, Option<IdleExposure>) {
        let topo = baseline_grid(code.num_qubits(), self.capacity);
        let (round, exposure) =
            compile_baseline_profiled(code, &topo, times, &serial_schedule(code));
        (round, Some(exposure))
    }
}

/// Baseline 2: the grid with stabilizer-batched gate ordering ("muzzle the shuttle").
#[derive(Debug, Clone, Default)]
pub struct Baseline2Grid;

impl Codesign for Baseline2Grid {
    fn name(&self) -> &str {
        "baseline2"
    }

    fn compile(&self, code: &CssCode, times: &OperationTimes) -> CompiledRound {
        let topo = baseline_grid(code.num_qubits(), BASELINE_CAPACITY);
        compile_baseline2(code, &topo, times, &serial_schedule(code))
    }

    fn compile_profiled(
        &self,
        code: &CssCode,
        times: &OperationTimes,
    ) -> (CompiledRound, Option<IdleExposure>) {
        let topo = baseline_grid(code.num_qubits(), BASELINE_CAPACITY);
        let (round, exposure) =
            compile_baseline2_profiled(code, &topo, times, &serial_schedule(code));
        (round, Some(exposure))
    }
}

/// Baseline 3: the grid with destination-trap-batched gate ordering ("MoveLess"-style).
#[derive(Debug, Clone, Default)]
pub struct Baseline3Grid;

impl Codesign for Baseline3Grid {
    fn name(&self) -> &str {
        "baseline3"
    }

    fn compile(&self, code: &CssCode, times: &OperationTimes) -> CompiledRound {
        let topo = baseline_grid(code.num_qubits(), BASELINE_CAPACITY);
        compile_baseline3(code, &topo, times, &serial_schedule(code))
    }

    fn compile_profiled(
        &self,
        code: &CssCode,
        times: &OperationTimes,
    ) -> (CompiledRound, Option<IdleExposure>) {
        let topo = baseline_grid(code.num_qubits(), BASELINE_CAPACITY);
        let (round, exposure) =
            compile_baseline3_profiled(code, &topo, times, &serial_schedule(code));
        (round, Some(exposure))
    }
}

/// The dynamic timeslice policy of §III-A on the baseline grid (Fig. 4a / Fig. 6:
/// releasing whole timeslices onto a grid roadblocks heavily).
#[derive(Debug, Clone, Default)]
pub struct DynamicGrid;

impl Codesign for DynamicGrid {
    fn name(&self) -> &str {
        "dynamic-grid"
    }

    fn compile(&self, code: &CssCode, times: &OperationTimes) -> CompiledRound {
        let topo = baseline_grid(code.num_qubits(), BASELINE_CAPACITY);
        compile_dynamic(code, &topo, times, &max_parallel_schedule(code))
    }

    fn compile_profiled(
        &self,
        code: &CssCode,
        times: &OperationTimes,
    ) -> (CompiledRound, Option<IdleExposure>) {
        let topo = baseline_grid(code.num_qubits(), BASELINE_CAPACITY);
        let (round, exposure) =
            compile_dynamic_profiled(code, &topo, times, &max_parallel_schedule(code));
        (round, Some(exposure))
    }
}

/// The dynamic timeslice policy on the mesh junction network of §III-C (one data
/// qubit per trap; waiting concentrates on junctions, Fig. 9).
#[derive(Debug, Clone, Default)]
pub struct DynamicMesh;

impl Codesign for DynamicMesh {
    fn name(&self) -> &str {
        "dynamic-mesh"
    }

    fn compile(&self, code: &CssCode, times: &OperationTimes) -> CompiledRound {
        let topo = mesh_junction_network(code.num_qubits(), BASELINE_CAPACITY);
        compile_dynamic(code, &topo, times, &max_parallel_schedule(code))
    }

    fn compile_profiled(
        &self,
        code: &CssCode,
        times: &OperationTimes,
    ) -> (CompiledRound, Option<IdleExposure>) {
        let topo = mesh_junction_network(code.num_qubits(), BASELINE_CAPACITY);
        let (round, exposure) =
            compile_dynamic_profiled(code, &topo, times, &max_parallel_schedule(code));
        (round, Some(exposure))
    }
}

/// The alternate grid (L-junction serpentine) with the static baseline policy
/// (Fig. 19's third configuration).
#[derive(Debug, Clone, Default)]
pub struct AlternateGrid;

impl Codesign for AlternateGrid {
    fn name(&self) -> &str {
        "alternate-grid"
    }

    fn compile(&self, code: &CssCode, times: &OperationTimes) -> CompiledRound {
        let topo = alternate_grid(code.num_qubits(), BASELINE_CAPACITY);
        compile_baseline(code, &topo, times, &serial_schedule(code))
    }

    fn compile_profiled(
        &self,
        code: &CssCode,
        times: &OperationTimes,
    ) -> (CompiledRound, Option<IdleExposure>) {
        let topo = alternate_grid(code.num_qubits(), BASELINE_CAPACITY);
        let (round, exposure) =
            compile_baseline_profiled(code, &topo, times, &serial_schedule(code));
        (round, Some(exposure))
    }
}

/// A Cyclone-shaped ring driven by the *uncoordinated* static baseline policy: the
/// Fig. 6 confusion matrix's "circle hardware + static software" cell, which is worse
/// than the grid because every shuttle goes the long way around and serializes.
#[derive(Debug, Clone, Default)]
pub struct RingStatic;

impl Codesign for RingStatic {
    fn name(&self) -> &str {
        "ring-static"
    }

    fn compile(&self, code: &CssCode, times: &OperationTimes) -> CompiledRound {
        let a = code.num_x_stabilizers().max(code.num_z_stabilizers());
        let capacity = code.num_qubits().div_ceil(a) + 2;
        let topo = ring(a, capacity);
        compile_baseline(code, &topo, times, &serial_schedule(code))
    }

    fn compile_profiled(
        &self,
        code: &CssCode,
        times: &OperationTimes,
    ) -> (CompiledRound, Option<IdleExposure>) {
        let a = code.num_x_stabilizers().max(code.num_z_stabilizers());
        let capacity = code.num_qubits().div_ceil(a) + 2;
        let topo = ring(a, capacity);
        let (round, exposure) =
            compile_baseline_profiled(code, &topo, times, &serial_schedule(code));
        (round, Some(exposure))
    }
}

/// An ordered collection of codesigns, looked up by label.
///
/// The `cyclone` crate's `registry::standard_registry()` returns the full set the
/// evaluation compares (this crate's grid/mesh/ring baselines plus the Cyclone
/// codesigns it defines on top).
#[derive(Default)]
pub struct CodesignRegistry {
    entries: Vec<Box<dyn Codesign>>,
}

impl CodesignRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a codesign.
    ///
    /// # Panics
    ///
    /// Panics if another codesign with the same label is already registered.
    pub fn register(&mut self, codesign: Box<dyn Codesign>) -> &mut Self {
        assert!(
            self.get(codesign.name()).is_none(),
            "duplicate codesign label `{}`",
            codesign.name()
        );
        self.entries.push(codesign);
        self
    }

    /// Looks a codesign up by its label.
    pub fn get(&self, label: &str) -> Option<&dyn Codesign> {
        self.entries
            .iter()
            .find(|c| c.name() == label)
            .map(AsRef::as_ref)
    }

    /// All registered labels, in registration order.
    pub fn labels(&self) -> Vec<&str> {
        self.entries.iter().map(|c| c.name()).collect()
    }

    /// Iterates over the registered codesigns in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Codesign> {
        self.entries.iter().map(AsRef::as_ref)
    }

    /// Number of registered codesigns.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl std::fmt::Debug for CodesignRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CodesignRegistry")
            .field("labels", &self.labels())
            .finish()
    }
}

/// The grid/mesh/ring codesigns defined by this crate (everything except Cyclone).
pub fn qccd_codesigns() -> Vec<Box<dyn Codesign>> {
    vec![
        Box::new(BaselineGrid::new()),
        Box::new(Baseline2Grid),
        Box::new(Baseline3Grid),
        Box::new(DynamicGrid),
        Box::new(DynamicMesh),
        Box::new(AlternateGrid),
        Box::new(RingStatic),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use qec::classical::ClassicalCode;
    use qec::hgp::square_hypergraph_product;

    fn small_code() -> CssCode {
        square_hypergraph_product(&ClassicalCode::repetition(3)).expect("valid")
    }

    #[test]
    fn registry_lookup_by_label() {
        let mut reg = CodesignRegistry::new();
        for c in qccd_codesigns() {
            reg.register(c);
        }
        assert_eq!(reg.len(), 7);
        assert!(!reg.is_empty());
        assert!(reg.get("baseline").is_some());
        assert!(reg.get("dynamic-mesh").is_some());
        assert!(reg.get("nonexistent").is_none());
        assert_eq!(reg.labels()[0], "baseline");
    }

    #[test]
    #[should_panic(expected = "duplicate codesign label")]
    fn registry_rejects_duplicate_labels() {
        let mut reg = CodesignRegistry::new();
        reg.register(Box::new(BaselineGrid::new()));
        reg.register(Box::new(BaselineGrid::new()));
    }

    #[test]
    fn trait_compile_matches_free_functions() {
        let code = small_code();
        let times = OperationTimes::default();
        let topo = baseline_grid(code.num_qubits(), BASELINE_CAPACITY);
        let direct = compile_baseline(&code, &topo, &times, &serial_schedule(&code));
        let via_trait = BaselineGrid::new().compile(&code, &times);
        assert_eq!(direct, via_trait);

        let direct_dyn = compile_dynamic(&code, &topo, &times, &max_parallel_schedule(&code));
        assert_eq!(direct_dyn, DynamicGrid.compile(&code, &times));
    }

    #[test]
    fn every_qccd_codesign_covers_all_gates() {
        let code = small_code();
        for design in qccd_codesigns() {
            assert!(
                design.covers_all_gates(&code),
                "{} missed gates",
                design.name()
            );
        }
    }

    #[test]
    fn every_qccd_codesign_profiles_bit_identically_to_compile() {
        // compile_profiled must return exactly the round of compile() — idle
        // tracking adds accumulators, never perturbs the event math — and every
        // sim-driven codesign must produce a real (non-fallback) profile.
        let code = small_code();
        let times = OperationTimes::default();
        for design in qccd_codesigns() {
            let plain = design.compile(&code, &times);
            let (round, exposure) = design.compile_profiled(&code, &times);
            assert_eq!(plain, round, "{} diverged under profiling", design.name());
            let exposure = exposure
                .unwrap_or_else(|| panic!("{} should export an idle profile", design.name()));
            assert_eq!(exposure.horizon, round.execution_time);
            assert_eq!(exposure.data.len(), code.num_qubits());
            assert_eq!(exposure.x_ancilla.len(), code.num_x_stabilizers());
            assert_eq!(exposure.z_ancilla.len(), code.num_z_stabilizers());
            for &t in exposure
                .data
                .iter()
                .chain(&exposure.x_ancilla)
                .chain(&exposure.z_ancilla)
            {
                assert!(
                    (0.0..=exposure.horizon).contains(&t),
                    "{}: exposure {t} outside [0, horizon]",
                    design.name()
                );
            }
            // Gates must have made at least one qubit busy.
            assert!(
                exposure.data.iter().any(|&t| t < exposure.horizon),
                "{}: no data qubit was ever busy",
                design.name()
            );
        }
    }

    #[test]
    fn loose_capacity_baseline_gets_distinct_label() {
        assert_eq!(BaselineGrid::new().name(), "baseline");
        assert_eq!(BaselineGrid::with_capacity(5).name(), "baseline");
        assert_eq!(BaselineGrid::with_capacity(9).name(), "baseline-cap9");
    }
}
