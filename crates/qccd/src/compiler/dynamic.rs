//! The dynamic (timeslice) scheduling policy of §III-A.
//!
//! Instead of reading the circuit as a dependency DAG, the dynamic policy interprets
//! the maximally parallel schedule as a sequence of *timeslices* and releases every
//! gate of a slice simultaneously, only requiring slices to execute in order. On
//! hardware with enough disjoint routes this realizes the idealized parallelism; on a
//! grid it produces heavy roadblocking (Fig. 4a and the Fig. 6 confusion matrix), which
//! is precisely the observation that motivates Cyclone.

use crate::compiler::sim::{IdleExposure, ShuttleSim};
use crate::compiler::CompiledRound;
use crate::hardware::Topology;
use crate::placement::{greedy_cluster_placement, Placement};
use crate::timing::OperationTimes;
use qec::schedule::Schedule;
use qec::CssCode;

/// Compiles one round with the dynamic timeslice policy on an arbitrary topology.
pub fn compile_dynamic(
    code: &CssCode,
    topology: &Topology,
    times: &OperationTimes,
    schedule: &Schedule,
) -> CompiledRound {
    compile_dynamic_profiled(code, topology, times, schedule).0
}

/// [`compile_dynamic`] plus the per-qubit [`IdleExposure`] of the compiled round.
pub fn compile_dynamic_profiled(
    code: &CssCode,
    topology: &Topology,
    times: &OperationTimes,
    schedule: &Schedule,
) -> (CompiledRound, IdleExposure) {
    let placement = greedy_cluster_placement(code, topology);
    compile_dynamic_with_placement_profiled(code, topology, times, schedule, &placement)
}

/// Same as [`compile_dynamic`] with an externally supplied placement.
pub fn compile_dynamic_with_placement(
    code: &CssCode,
    topology: &Topology,
    times: &OperationTimes,
    schedule: &Schedule,
    placement: &Placement,
) -> CompiledRound {
    compile_dynamic_with_placement_profiled(code, topology, times, schedule, placement).0
}

/// [`compile_dynamic_with_placement`] plus the per-qubit [`IdleExposure`].
pub fn compile_dynamic_with_placement_profiled(
    code: &CssCode,
    topology: &Topology,
    times: &OperationTimes,
    schedule: &Schedule,
    placement: &Placement,
) -> (CompiledRound, IdleExposure) {
    let mut sim = ShuttleSim::new(code, topology, placement, times);
    let mut slice_ready = 0.0f64;
    let mut ancilla_last_end: std::collections::HashMap<(qec::StabKind, usize), f64> =
        Default::default();
    for slice in schedule.slices() {
        let mut slice_end = slice_ready;
        for g in slice {
            let end = sim.execute_gate(g.kind, g.stabilizer, g.data, slice_ready);
            slice_end = slice_end.max(end);
            let e = ancilla_last_end
                .entry((g.kind, g.stabilizer))
                .or_insert(0.0);
            *e = e.max(end);
        }
        slice_ready = slice_end;
    }
    // Sorted drain: a fixed measurement order keeps the simulator's float
    // accumulation bit-identical from run to run (HashMap order is randomized).
    let mut measurements: Vec<((qec::StabKind, usize), f64)> =
        ancilla_last_end.into_iter().collect();
    measurements.sort_by_key(|m| m.0);
    for ((kind, idx), end) in measurements {
        sim.measure_ancilla(kind, idx, end);
    }
    let round = CompiledRound {
        codesign: format!("{} + dynamic timeslices", topology.name()),
        execution_time: sim.horizon(),
        breakdown: sim.breakdown(),
        num_gates: schedule.num_gates(),
        num_shuttles: sim.num_shuttles(),
        num_rebalances: sim.num_rebalances(),
        roadblock_events: sim.roadblock_events(),
        num_traps: topology.num_traps(),
        num_junctions: topology.num_junctions(),
        num_ancilla: code.num_stabilizers(),
    };
    let exposure = sim.idle_exposure();
    (round, exposure)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::baseline::compile_baseline;
    use crate::topology::{baseline_grid, mesh_junction_network};
    use qec::classical::ClassicalCode;
    use qec::hgp::square_hypergraph_product;
    use qec::schedule::{max_parallel_schedule, serial_schedule};

    fn small_code() -> CssCode {
        let rep = ClassicalCode::repetition(4);
        square_hypergraph_product(&rep).expect("valid")
    }

    #[test]
    fn dynamic_executes_all_gates() {
        let code = small_code();
        let topo = baseline_grid(code.num_qubits(), 5);
        let times = OperationTimes::default();
        let round = compile_dynamic(&code, &topo, &times, &max_parallel_schedule(&code));
        assert_eq!(round.num_gates, max_parallel_schedule(&code).num_gates());
        assert!(round.execution_time > 0.0);
    }

    #[test]
    fn dynamic_on_grid_roadblocks() {
        // Releasing whole timeslices onto a grid causes contention: roadblock events
        // must be observed (this is the motivating observation of the paper).
        let code = small_code();
        let topo = baseline_grid(code.num_qubits(), 5);
        let times = OperationTimes::default();
        let round = compile_dynamic(&code, &topo, &times, &max_parallel_schedule(&code));
        assert!(round.roadblock_events > 0, "expected roadblocks on a grid");
        assert!(round.breakdown.roadblock_wait > 0.0);
    }

    #[test]
    fn mesh_junction_network_reduces_trap_roadblock_share() {
        // On the mesh junction network each data qubit has its own trap, so waiting
        // concentrates on junctions rather than on traps holding other data.
        let code = small_code();
        let times = OperationTimes::default();
        let mesh = mesh_junction_network(code.num_qubits(), 4);
        let round = compile_dynamic(&code, &mesh, &times, &max_parallel_schedule(&code));
        assert!(round.breakdown.junction > 0.0, "paths cross junctions");
        assert_eq!(round.num_traps, code.num_qubits());
    }

    #[test]
    fn grid_dynamic_not_better_than_static_baseline() {
        // Fig. 4/6: on a grid, the dynamic policy's roadblocks make it no better (and
        // typically worse) than the greedy static baseline.
        let code = small_code();
        let topo = baseline_grid(code.num_qubits(), 5);
        let times = OperationTimes::default();
        let dynamic = compile_dynamic(&code, &topo, &times, &max_parallel_schedule(&code));
        let static_ejf = compile_baseline(&code, &topo, &times, &serial_schedule(&code));
        assert!(
            dynamic.execution_time >= 0.5 * static_ejf.execution_time,
            "dynamic-on-grid ({}) should not dominate the static baseline ({})",
            dynamic.execution_time,
            static_ejf.execution_time
        );
    }
}
