//! Concrete QCCD layouts.
//!
//! Builders for every hardware topology evaluated in the paper:
//!
//! * [`baseline_grid`] — the paper's baseline (§II-B3, Fig. 4b): an `l × l` grid of
//!   traps (`l = ⌈√n⌉`) whose rows are connected through columns of vertical
//!   junctions, giving flexible vertical transport.
//! * [`alternate_grid`] — Fig. 4c: alternating horizontal/vertical meshes joined by
//!   L-shaped (degree-2) junctions.
//! * [`mesh_junction_network`] — §III-C, Fig. 8: an `n/4 × n/4` mesh of degree-4
//!   junctions with the traps on the perimeter, giving effective all-to-all paths.
//! * [`ring`] — §IV, Fig. 11a: the Cyclone layout, a circle of traps joined through
//!   degree-2 (L-shaped) junctions at the corners.
//! * [`single_trap`] — §IV-D: one large trap holding every ion (no shuttling).
//! * [`fully_connected`] / [`pseudo_opt`] — §III-B, Fig. 7: the idealized OPT design
//!   and its pruned variant (not physically realizable; used to bound parallelism).

use crate::hardware::{NodeId, Topology, TopologyKind};
use qec::CssCode;

/// The paper's baseline grid for a code with `num_data` data qubits: an `l × l` grid
/// of traps with `l = ⌈√num_data⌉`, horizontal trap-to-trap links, and a column of
/// vertical junctions between every pair of adjacent rows so ions can change rows
/// without crossing the whole grid.
///
/// `capacity` is the per-trap ion capacity (the paper's default experiments use 5).
pub fn baseline_grid(num_data: usize, capacity: usize) -> Topology {
    let l = (num_data as f64).sqrt().ceil() as usize;
    grid_with_side(l, capacity)
}

/// A baseline-style grid with an explicit side length.
pub fn grid_with_side(l: usize, capacity: usize) -> Topology {
    let l = l.max(1);
    let mut t = Topology::new(format!("baseline-grid {l}x{l}"), TopologyKind::BaselineGrid);
    // Trap grid.
    let mut trap_id = vec![vec![0 as NodeId; l]; l];
    for row in trap_id.iter_mut() {
        for slot in row.iter_mut() {
            *slot = t.add_trap(capacity);
        }
    }
    // Horizontal connections within a row go through degree-2/3 junctions so each trap
    // keeps degree <= 2: trap - junction - trap, and the same junction links vertically
    // to the junction of the row below, forming the "vertical junction columns".
    let mut junction_id = vec![vec![usize::MAX; l.saturating_sub(1)]; l];
    for (junction_row, trap_row) in junction_id.iter_mut().zip(&trap_id) {
        for (c, slot) in junction_row.iter_mut().enumerate() {
            let j = t.add_junction();
            *slot = j;
            t.add_edge(trap_row[c], j);
            t.add_edge(j, trap_row[c + 1]);
        }
    }
    // Vertical junction columns: connect junctions of adjacent rows.
    for rows in junction_id.windows(2) {
        for (&a, &b) in rows[0].iter().zip(&rows[1]) {
            t.add_edge(a, b);
        }
    }
    // Degenerate 1x1 grids have no junctions and nothing to link vertically.
    if l == 1 {
        return t;
    }
    // Also allow row hopping at the left edge via dedicated junctions so the leftmost
    // column is not isolated vertically.
    let mut prev_edge_junction: Option<NodeId> = None;
    for trap_row in &trap_id {
        let j = t.add_junction();
        t.add_edge(trap_row[0], j);
        if let Some(prev) = prev_edge_junction {
            t.add_edge(prev, j);
        }
        prev_edge_junction = Some(j);
    }
    t
}

/// The alternate grid of Fig. 4c: rows of traps joined horizontally, with L-shaped
/// (degree-2) junctions at the row ends connecting adjacent rows, so circular paths
/// exist but vertical movement is only possible at the edges.
pub fn alternate_grid(num_data: usize, capacity: usize) -> Topology {
    let l = (num_data as f64).sqrt().ceil() as usize;
    let l = l.max(1);
    let mut t = Topology::new(
        format!("alternate-grid {l}x{l}"),
        TopologyKind::AlternateGrid,
    );
    let mut trap_id = vec![vec![0 as NodeId; l]; l];
    for row in trap_id.iter_mut() {
        for slot in row.iter_mut() {
            *slot = t.add_trap(capacity);
        }
    }
    // Horizontal chains within each row (trap-junction-trap keeps trap degree <= 2).
    for trap_row in &trap_id {
        for c in 0..l - 1 {
            let j = t.add_junction();
            t.add_edge(trap_row[c], j);
            t.add_edge(j, trap_row[c + 1]);
        }
    }
    // L-junctions at alternating row ends create a serpentine loop across rows.
    for r in 0..l.saturating_sub(1) {
        let col = if r % 2 == 0 { l - 1 } else { 0 };
        let j = t.add_junction();
        t.add_edge(trap_id[r][col], j);
        t.add_edge(j, trap_id[r + 1][col]);
    }
    t
}

/// The mesh junction network of §III-C: a `side × side` grid of degree-4 junctions
/// (with `side = ⌈num_data/4⌉` capped to keep the smallest meshes sensible), and one
/// dedicated trap per data qubit attached around the perimeter.
pub fn mesh_junction_network(num_data: usize, capacity: usize) -> Topology {
    let side = (num_data as f64 / 4.0).ceil().max(1.0) as usize;
    let mut t = Topology::new(
        format!("mesh-junction {side}x{side} ({num_data} perimeter traps)"),
        TopologyKind::MeshJunction,
    );
    let mut junction_id = vec![vec![0 as NodeId; side]; side];
    for row in junction_id.iter_mut() {
        for slot in row.iter_mut() {
            *slot = t.add_junction();
        }
    }
    for r in 0..side {
        for c in 0..side {
            if c + 1 < side {
                t.add_edge(junction_id[r][c], junction_id[r][c + 1]);
            }
            if r + 1 < side {
                t.add_edge(junction_id[r][c], junction_id[r + 1][c]);
            }
        }
    }
    // Perimeter junctions in clockwise order.
    let mut perimeter = Vec::new();
    perimeter.extend_from_slice(&junction_id[0]);
    for row in junction_id.iter().skip(1) {
        perimeter.push(row[side - 1]);
    }
    if side > 1 {
        for c in (0..side - 1).rev() {
            perimeter.push(junction_id[side - 1][c]);
        }
        for r in (1..side - 1).rev() {
            perimeter.push(junction_id[r][0]);
        }
    }
    // Attach one trap per data qubit around the perimeter without exceeding the
    // degree-4 junction limit: each perimeter junction accepts `4 − mesh_degree`
    // traps (corners take two, edges one).
    let mut remaining = num_data;
    let mut slots: Vec<(NodeId, usize)> = perimeter
        .iter()
        .map(|&j| (j, 4usize.saturating_sub(t.degree(j))))
        .collect();
    // First pass: one trap per junction with room; later passes use leftover room.
    while remaining > 0 {
        let mut progress = false;
        for (j, room) in slots.iter_mut() {
            if remaining == 0 {
                break;
            }
            if *room > 0 {
                let trap = t.add_trap(capacity);
                t.add_edge(trap, *j);
                *room -= 1;
                remaining -= 1;
                progress = true;
            }
        }
        if !progress {
            // No junction has room left (only possible for tiny meshes); chain the
            // remaining traps off the last added trap to keep the graph connected.
            let mut anchor = t.traps().last().copied().unwrap_or(perimeter[0]);
            while remaining > 0 {
                let trap = t.add_trap(capacity);
                t.add_edge(trap, anchor);
                anchor = trap;
                remaining -= 1;
            }
        }
    }
    t
}

/// The Cyclone ring: `num_traps` traps arranged in a circle, adjacent traps joined
/// through a degree-2 (L-shaped) junction. Every trap has degree exactly 2 and every
/// junction degree exactly 2, so the layout is physically realizable and roadblock
/// free under lockstep rotation.
pub fn ring(num_traps: usize, capacity: usize) -> Topology {
    let num_traps = num_traps.max(1);
    let mut t = Topology::new(format!("ring x={num_traps}"), TopologyKind::Ring);
    let traps: Vec<NodeId> = (0..num_traps).map(|_| t.add_trap(capacity)).collect();
    if num_traps == 1 {
        return t;
    }
    for i in 0..num_traps {
        let j = t.add_junction();
        t.add_edge(traps[i], j);
        t.add_edge(j, traps[(i + 1) % num_traps]);
    }
    t
}

/// A single trap that holds every ion of the code (data plus ancilla); used in the
/// Fig. 13 "tight architectures" sweep end point of one trap and `n + m/2` ions.
pub fn single_trap(total_ions: usize) -> Topology {
    let mut t = Topology::new(
        format!("single-trap capacity={total_ions}"),
        TopologyKind::SingleTrap,
    );
    t.add_trap(total_ions);
    t
}

/// The idealized OPT layout (§III-B): one trap per data qubit, fully connected by
/// shuttling paths. Not physically realizable (trap degree ≫ 2); used only to bound
/// the achievable parallelism.
pub fn fully_connected(num_data: usize, capacity: usize) -> Topology {
    let mut t = Topology::new(
        format!("OPT fully-connected n={num_data}"),
        TopologyKind::FullyConnected,
    );
    let traps: Vec<NodeId> = (0..num_data).map(|_| t.add_trap(capacity)).collect();
    for i in 0..num_data {
        for j in (i + 1)..num_data {
            t.add_edge(traps[i], traps[j]);
        }
    }
    t
}

/// Pseudo-OPT (§III-B, Fig. 7b): OPT with every edge not used by some stabilizer
/// removed — i.e. two data traps stay connected only if the corresponding data qubits
/// appear together in at least one stabilizer. Still generally non-planar, but far
/// sparser than OPT.
pub fn pseudo_opt(code: &CssCode, capacity: usize) -> Topology {
    let n = code.num_qubits();
    let mut t = Topology::new(
        format!("pseudo-OPT for {}", code.name()),
        TopologyKind::PseudoOpt,
    );
    let traps: Vec<NodeId> = (0..n).map(|_| t.add_trap(capacity)).collect();
    let mut connected = std::collections::HashSet::new();
    for stab in code.stabilizers() {
        for (idx, &a) in stab.support.iter().enumerate() {
            for &b in &stab.support[idx + 1..] {
                let key = (a.min(b), a.max(b));
                if connected.insert(key) {
                    t.add_edge(traps[key.0], traps[key.1]);
                }
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use qec::classical::ClassicalCode;
    use qec::hgp::square_hypergraph_product;

    #[test]
    fn baseline_grid_structure() {
        let t = baseline_grid(225, 5);
        // l = 15: 225 traps.
        assert_eq!(t.num_traps(), 225);
        assert!(t.is_connected());
        assert!(
            t.is_physically_realizable(),
            "traps deg<=2, junctions deg<=4"
        );
    }

    #[test]
    fn baseline_grid_small() {
        let t = baseline_grid(4, 3);
        assert_eq!(t.num_traps(), 4);
        assert!(t.is_connected());
    }

    #[test]
    fn alternate_grid_structure() {
        let t = alternate_grid(100, 5);
        assert_eq!(t.num_traps(), 100);
        assert!(t.is_connected());
        assert!(t.is_physically_realizable());
    }

    #[test]
    fn ring_structure() {
        let t = ring(12, 8);
        assert_eq!(t.num_traps(), 12);
        assert_eq!(t.num_junctions(), 12);
        assert!(t.is_connected());
        assert!(t.is_physically_realizable());
        // Every node has degree exactly 2 on a ring.
        for id in 0..t.num_nodes() {
            assert_eq!(t.degree(id), 2);
        }
    }

    #[test]
    fn ring_distance_wraps() {
        let t = ring(8, 4);
        let traps = t.traps();
        // Adjacent traps are 2 hops apart (through the junction); opposite traps are
        // 8 hops (4 traps * 2).
        assert_eq!(t.distance(traps[0], traps[1]), Some(2));
        assert_eq!(t.distance(traps[0], traps[4]), Some(8));
    }

    #[test]
    fn mesh_junction_counts() {
        let t = mesh_junction_network(16, 3);
        // side = 4 -> 16 junctions, 16 traps on the perimeter.
        assert_eq!(t.num_junctions(), 16);
        assert_eq!(t.num_traps(), 16);
        assert!(t.is_connected());
        assert!(t.is_physically_realizable());
    }

    #[test]
    fn fully_connected_is_unrealizable() {
        let t = fully_connected(6, 2);
        assert!(!t.is_physically_realizable());
        assert_eq!(t.num_edges(), 15);
    }

    #[test]
    fn pseudo_opt_sparser_than_opt() {
        let rep = ClassicalCode::repetition(3);
        let code = square_hypergraph_product(&rep).expect("valid");
        let opt = fully_connected(code.num_qubits(), 2);
        let pseudo = pseudo_opt(&code, 2);
        assert!(pseudo.num_edges() < opt.num_edges());
        assert_eq!(pseudo.num_traps(), code.num_qubits());
    }

    #[test]
    fn single_trap_holds_everything() {
        let t = single_trap(441);
        assert_eq!(t.num_traps(), 1);
        assert_eq!(t.total_capacity(), 441);
    }
}
