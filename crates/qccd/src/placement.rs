//! Mapping program qubits (data and ancilla) onto hardware traps.
//!
//! The baseline compiler of the paper uses a *greedy cluster mapping*: data qubits
//! that share stabilizers are placed into the same or nearby traps, and each
//! stabilizer's ancilla is placed in the trap holding the largest share of its
//! support. [`greedy_cluster_placement`] implements that policy for any topology;
//! [`round_robin_placement`] is the naive alternative used in ablations.

use crate::hardware::{NodeId, Topology};
use qec::{CssCode, StabKind};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A program ion: either a data qubit or the ancilla of a stabilizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IonKind {
    /// Data qubit with its index in the code.
    Data(usize),
    /// Ancilla qubit measuring the given stabilizer.
    Ancilla {
        /// Stabilizer sector.
        kind: StabKind,
        /// Stabilizer index within its sector.
        index: usize,
    },
}

/// Assignment of every program ion to a home trap.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// Home trap of each data qubit (indexed by data-qubit id).
    pub data_trap: Vec<NodeId>,
    /// Home trap of each X-stabilizer ancilla (indexed by X-stabilizer id).
    pub x_ancilla_trap: Vec<NodeId>,
    /// Home trap of each Z-stabilizer ancilla (indexed by Z-stabilizer id).
    pub z_ancilla_trap: Vec<NodeId>,
}

impl Placement {
    /// Home trap of the ancilla measuring stabilizer (`kind`, `index`).
    pub fn ancilla_trap(&self, kind: StabKind, index: usize) -> NodeId {
        match kind {
            StabKind::X => self.x_ancilla_trap[index],
            StabKind::Z => self.z_ancilla_trap[index],
        }
    }

    /// Number of ions whose home is trap `trap`.
    pub fn resident_count(&self, trap: NodeId) -> usize {
        self.data_trap.iter().filter(|&&t| t == trap).count()
            + self.x_ancilla_trap.iter().filter(|&&t| t == trap).count()
            + self.z_ancilla_trap.iter().filter(|&&t| t == trap).count()
    }

    /// The number of distinct traps used by this placement.
    pub fn traps_used(&self) -> usize {
        let mut all: Vec<NodeId> = self
            .data_trap
            .iter()
            .chain(&self.x_ancilla_trap)
            .chain(&self.z_ancilla_trap)
            .copied()
            .collect();
        all.sort_unstable();
        all.dedup();
        all.len()
    }
}

/// Orders data qubits by a breadth-first traversal of the "shares a stabilizer" graph,
/// so that consecutive qubits in the returned order interact with each other.
fn cluster_order(code: &CssCode) -> Vec<usize> {
    let n = code.num_qubits();
    // adjacency between data qubits that share any stabilizer
    let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); n];
    for stab in code.stabilizers() {
        for (i, &a) in stab.support.iter().enumerate() {
            for &b in &stab.support[i + 1..] {
                adjacency[a].push(b);
                adjacency[b].push(a);
            }
        }
    }
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for start in 0..n {
        if seen[start] {
            continue;
        }
        let mut queue = VecDeque::from([start]);
        seen[start] = true;
        while let Some(q) = queue.pop_front() {
            order.push(q);
            for &nb in &adjacency[q] {
                if !seen[nb] {
                    seen[nb] = true;
                    queue.push_back(nb);
                }
            }
        }
    }
    order
}

/// Greedy cluster placement (the baseline's mapping policy).
///
/// Data qubits are streamed in cluster order into the topology's traps, filling each
/// trap up to `capacity − 1` (one slot is kept free for visiting ancillas) before
/// moving to the next. Each ancilla is then placed in the trap that already holds the
/// most qubits of its stabilizer's support and still has room; if none has room, the
/// nearest trap with space is used.
///
/// # Panics
///
/// Panics if the topology's total capacity cannot hold all data and ancilla ions.
pub fn greedy_cluster_placement(code: &CssCode, topology: &Topology) -> Placement {
    let traps = topology.traps();
    assert!(!traps.is_empty(), "topology has no traps");
    let total_ions = code.num_qubits() + code.num_stabilizers();
    assert!(
        topology.total_capacity() >= total_ions,
        "topology capacity {} cannot hold {} ions",
        topology.total_capacity(),
        total_ions
    );
    let capacity: Vec<usize> = traps
        .iter()
        .map(|&t| topology.node(t).capacity().unwrap_or(0))
        .collect();
    let mut load = vec![0usize; traps.len()];

    // Reserve one slot per trap for visiting ancillas when possible.
    let reserve: Vec<usize> = capacity.iter().map(|&c| usize::from(c > 1)).collect();

    let order = cluster_order(code);
    let mut data_trap = vec![0 as NodeId; code.num_qubits()];
    let mut cursor = 0usize;
    for q in order {
        // Find the next trap with room (wrapping, relaxing the reserve if needed).
        let mut placed = false;
        for relax in [false, true] {
            for offset in 0..traps.len() {
                let i = (cursor + offset) % traps.len();
                let limit = if relax {
                    capacity[i]
                } else {
                    capacity[i].saturating_sub(reserve[i])
                };
                if load[i] < limit {
                    data_trap[q] = traps[i];
                    load[i] += 1;
                    cursor = i;
                    placed = true;
                    break;
                }
            }
            if placed {
                break;
            }
        }
        assert!(placed, "failed to place data qubit {q}");
    }

    let trap_index: std::collections::HashMap<NodeId, usize> =
        traps.iter().enumerate().map(|(i, &t)| (t, i)).collect();

    let mut place_ancillas = |kind: StabKind| -> Vec<NodeId> {
        code.sector_stabilizers(kind)
            .iter()
            .map(|stab| {
                // Count support per trap.
                let mut counts: std::collections::HashMap<NodeId, usize> = Default::default();
                for &d in &stab.support {
                    *counts.entry(data_trap[d]).or_insert(0) += 1;
                }
                let mut best: Vec<(NodeId, usize)> = counts.into_iter().collect();
                best.sort_by_key(|&(t, c)| (std::cmp::Reverse(c), t));
                for (t, _) in &best {
                    let i = trap_index[t];
                    if load[i] < capacity[i] {
                        load[i] += 1;
                        return *t;
                    }
                }
                // Fall back to the nearest trap (by hop distance from the best trap)
                // with room.
                let anchor = best.first().map_or(traps[0], |&(t, _)| t);
                let mut candidates: Vec<(usize, usize)> = (0..traps.len())
                    .filter(|&i| load[i] < capacity[i])
                    .map(|i| (topology.distance(anchor, traps[i]).unwrap_or(usize::MAX), i))
                    .collect();
                candidates.sort_unstable();
                let (_, i) = candidates
                    .first()
                    .copied()
                    .expect("capacity was pre-checked");
                load[i] += 1;
                traps[i]
            })
            .collect()
    };

    let x_ancilla_trap = place_ancillas(StabKind::X);
    let z_ancilla_trap = place_ancillas(StabKind::Z);

    Placement {
        data_trap,
        x_ancilla_trap,
        z_ancilla_trap,
    }
}

/// Naive round-robin placement: data qubits, then ancillas, dealt across traps in
/// index order. Used as an ablation of the mapping policy.
///
/// # Panics
///
/// Panics if the topology's total capacity cannot hold all ions.
pub fn round_robin_placement(code: &CssCode, topology: &Topology) -> Placement {
    let traps = topology.traps();
    assert!(!traps.is_empty(), "topology has no traps");
    let total_ions = code.num_qubits() + code.num_stabilizers();
    assert!(
        topology.total_capacity() >= total_ions,
        "topology capacity {} cannot hold {} ions",
        topology.total_capacity(),
        total_ions
    );
    let capacity: Vec<usize> = traps
        .iter()
        .map(|&t| topology.node(t).capacity().unwrap_or(0))
        .collect();
    let mut load = vec![0usize; traps.len()];
    let mut cursor = 0usize;
    let mut next_slot = |load: &mut Vec<usize>| -> NodeId {
        loop {
            let i = cursor % traps.len();
            cursor += 1;
            if load[i] < capacity[i] {
                load[i] += 1;
                return traps[i];
            }
        }
    };
    let data_trap: Vec<NodeId> = (0..code.num_qubits())
        .map(|_| next_slot(&mut load))
        .collect();
    let x_ancilla_trap: Vec<NodeId> = (0..code.num_x_stabilizers())
        .map(|_| next_slot(&mut load))
        .collect();
    let z_ancilla_trap: Vec<NodeId> = (0..code.num_z_stabilizers())
        .map(|_| next_slot(&mut load))
        .collect();
    Placement {
        data_trap,
        x_ancilla_trap,
        z_ancilla_trap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{baseline_grid, ring};
    use qec::classical::ClassicalCode;
    use qec::hgp::square_hypergraph_product;

    fn small_code() -> CssCode {
        let rep = ClassicalCode::repetition(3);
        square_hypergraph_product(&rep).expect("valid")
    }

    #[test]
    fn greedy_placement_respects_capacity() {
        let code = small_code();
        let topo = baseline_grid(code.num_qubits(), 5);
        let p = greedy_cluster_placement(&code, &topo);
        for &trap in topo.traps().iter() {
            let cap = topo.node(trap).capacity().unwrap();
            assert!(p.resident_count(trap) <= cap, "trap {trap} over capacity");
        }
        assert_eq!(p.data_trap.len(), 13);
        assert_eq!(p.x_ancilla_trap.len(), 6);
    }

    #[test]
    fn greedy_places_ancilla_near_support() {
        let code = small_code();
        let topo = baseline_grid(code.num_qubits(), 5);
        let p = greedy_cluster_placement(&code, &topo);
        // A meaningful fraction of the ancillas should sit in a trap containing one of
        // their support qubits (clustering property). Dense packing limits how many
        // can be co-located, so require at least a quarter.
        let mut hits = 0;
        for stab in code.stabilizers() {
            let at = p.ancilla_trap(stab.kind, stab.index);
            if stab.support.iter().any(|&d| p.data_trap[d] == at) {
                hits += 1;
            }
        }
        assert!(
            hits * 4 >= code.num_stabilizers(),
            "only {hits} ancillas co-located"
        );
    }

    #[test]
    fn round_robin_covers_all_ions() {
        let code = small_code();
        let topo = ring(10, 4);
        let p = round_robin_placement(&code, &topo);
        assert_eq!(
            p.data_trap.len() + p.x_ancilla_trap.len() + p.z_ancilla_trap.len(),
            25
        );
        assert!(p.traps_used() <= 10);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn insufficient_capacity_rejected() {
        let code = small_code();
        let topo = ring(2, 3); // 6 slots for 25 ions
        let _ = greedy_cluster_placement(&code, &topo);
    }
}
