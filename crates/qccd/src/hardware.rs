//! The QCCD hardware graph: traps, junctions, and shuttling paths.
//!
//! A [`Topology`] is an undirected graph whose nodes are either ion traps (with a
//! finite ion capacity) or junctions (degree ≤ 4 routing elements). Edges are
//! shuttling segments. Concrete layouts (grids, rings, meshes, …) are built in
//! [`crate::topology`]; this module provides the graph datatype, path finding, and
//! structural queries (trap/junction counts, degrees) used by the compilers and the
//! spatial-cost analysis.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Index of a node (trap or junction) in a [`Topology`].
pub type NodeId = usize;

/// What a topology node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// An ion trap able to hold up to `capacity` ions and execute one gate at a time.
    Trap {
        /// Maximum number of ions the trap can hold.
        capacity: usize,
    },
    /// A junction: a routing element ions can cross but not sit in.
    Junction,
}

impl NodeKind {
    /// Returns true for trap nodes.
    pub fn is_trap(&self) -> bool {
        matches!(self, NodeKind::Trap { .. })
    }

    /// Returns the trap capacity, or `None` for junctions.
    pub fn capacity(&self) -> Option<usize> {
        match self {
            NodeKind::Trap { capacity } => Some(*capacity),
            NodeKind::Junction => None,
        }
    }
}

/// Named class of layout, used for reporting and to pick compiler specializations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TopologyKind {
    /// The paper's baseline: a square grid of traps with vertical junction columns.
    BaselineGrid,
    /// The alternate grid with alternating horizontal/vertical meshes and L-junctions.
    AlternateGrid,
    /// A dense mesh of degree-4 junctions giving effective all-to-all connectivity.
    MeshJunction,
    /// A ring of traps connected through L-shaped (degree-2) junctions — Cyclone.
    Ring,
    /// A single large trap holding every ion (no shuttling).
    SingleTrap,
    /// The idealized fully connected graph of traps (OPT).
    FullyConnected,
    /// OPT with unused edges pruned (Pseudo-OPT).
    PseudoOpt,
}

impl std::fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TopologyKind::BaselineGrid => "baseline-grid",
            TopologyKind::AlternateGrid => "alternate-grid",
            TopologyKind::MeshJunction => "mesh-junction",
            TopologyKind::Ring => "ring",
            TopologyKind::SingleTrap => "single-trap",
            TopologyKind::FullyConnected => "opt-fully-connected",
            TopologyKind::PseudoOpt => "pseudo-opt",
        };
        write!(f, "{s}")
    }
}

/// The hardware connectivity graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    name: String,
    kind: TopologyKind,
    nodes: Vec<NodeKind>,
    adjacency: Vec<Vec<NodeId>>,
}

impl Topology {
    /// Creates an empty topology of the given kind.
    pub fn new(name: impl Into<String>, kind: TopologyKind) -> Self {
        Topology {
            name: name.into(),
            kind,
            nodes: Vec::new(),
            adjacency: Vec::new(),
        }
    }

    /// The topology's descriptive name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layout class.
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// Adds a trap with the given ion capacity, returning its node id.
    pub fn add_trap(&mut self, capacity: usize) -> NodeId {
        self.nodes.push(NodeKind::Trap { capacity });
        self.adjacency.push(Vec::new());
        self.nodes.len() - 1
    }

    /// Adds a junction, returning its node id.
    pub fn add_junction(&mut self) -> NodeId {
        self.nodes.push(NodeKind::Junction);
        self.adjacency.push(Vec::new());
        self.nodes.len() - 1
    }

    /// Adds an undirected shuttling segment between two nodes.
    ///
    /// # Panics
    ///
    /// Panics if either node id is out of range or if the edge already exists.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) {
        assert!(
            a < self.nodes.len() && b < self.nodes.len(),
            "node id out of range"
        );
        assert!(a != b, "self loops are not allowed");
        assert!(!self.adjacency[a].contains(&b), "duplicate edge {a}-{b}");
        self.adjacency[a].push(b);
        self.adjacency[b].push(a);
    }

    /// Total number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The kind of node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> NodeKind {
        self.nodes[id]
    }

    /// Neighbors of node `id`.
    pub fn neighbors(&self, id: NodeId) -> &[NodeId] {
        &self.adjacency[id]
    }

    /// Degree (number of incident shuttling segments) of node `id`.
    pub fn degree(&self, id: NodeId) -> usize {
        self.adjacency[id].len()
    }

    /// Ids of all trap nodes, in insertion order.
    pub fn traps(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].is_trap())
            .collect()
    }

    /// Ids of all junction nodes, in insertion order.
    pub fn junctions(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|&i| !self.nodes[i].is_trap())
            .collect()
    }

    /// Number of traps.
    pub fn num_traps(&self) -> usize {
        self.traps().len()
    }

    /// Number of junctions.
    pub fn num_junctions(&self) -> usize {
        self.junctions().len()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Total ion capacity across all traps.
    pub fn total_capacity(&self) -> usize {
        self.nodes.iter().filter_map(NodeKind::capacity).sum()
    }

    /// Breadth-first shortest path (as a node sequence including both endpoints).
    ///
    /// Returns `None` when no path exists.
    pub fn shortest_path(&self, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
        if from == to {
            return Some(vec![from]);
        }
        let mut prev = vec![usize::MAX; self.nodes.len()];
        let mut queue = VecDeque::new();
        prev[from] = from;
        queue.push_back(from);
        while let Some(u) = queue.pop_front() {
            for &v in &self.adjacency[u] {
                if prev[v] == usize::MAX {
                    prev[v] = u;
                    if v == to {
                        let mut path = vec![to];
                        let mut cur = to;
                        while cur != from {
                            cur = prev[cur];
                            path.push(cur);
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(v);
                }
            }
        }
        None
    }

    /// Hop distance between two nodes (`None` if disconnected).
    pub fn distance(&self, from: NodeId, to: NodeId) -> Option<usize> {
        self.shortest_path(from, to).map(|p| p.len() - 1)
    }

    /// Whether the graph is connected (ignoring isolated check: empty graphs count as
    /// connected).
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut queue = VecDeque::from([0usize]);
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = queue.pop_front() {
            for &v in &self.adjacency[u] {
                if !seen[v] {
                    seen[v] = true;
                    count += 1;
                    queue.push_back(v);
                }
            }
        }
        count == self.nodes.len()
    }

    /// Validates the paper's structural constraints: traps have degree ≤ 2 and
    /// junctions have degree ≤ 4. Returns a list of violating node ids (empty when
    /// the topology is physically realizable).
    pub fn constraint_violations(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|&i| match self.nodes[i] {
                NodeKind::Trap { .. } => self.degree(i) > 2,
                NodeKind::Junction => self.degree(i) > 4,
            })
            .collect()
    }

    /// True when the topology satisfies the trap-degree and junction-degree limits.
    pub fn is_physically_realizable(&self) -> bool {
        self.constraint_violations().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_of_traps(n: usize) -> Topology {
        let mut t = Topology::new("line", TopologyKind::Ring);
        let ids: Vec<_> = (0..n).map(|_| t.add_trap(4)).collect();
        for w in ids.windows(2) {
            t.add_edge(w[0], w[1]);
        }
        t
    }

    #[test]
    fn counts() {
        let mut t = line_of_traps(3);
        let j = t.add_junction();
        t.add_edge(2, j);
        assert_eq!(t.num_traps(), 3);
        assert_eq!(t.num_junctions(), 1);
        assert_eq!(t.num_edges(), 3);
        assert_eq!(t.total_capacity(), 12);
    }

    #[test]
    fn shortest_path_on_line() {
        let t = line_of_traps(5);
        let p = t.shortest_path(0, 4).expect("connected");
        assert_eq!(p, vec![0, 1, 2, 3, 4]);
        assert_eq!(t.distance(0, 4), Some(4));
        assert_eq!(t.distance(2, 2), Some(0));
    }

    #[test]
    fn disconnected_graph() {
        let mut t = line_of_traps(2);
        let lonely = t.add_trap(4);
        assert!(!t.is_connected());
        assert_eq!(t.shortest_path(0, lonely), None);
    }

    #[test]
    fn constraint_violations_detected() {
        let mut t = Topology::new("star", TopologyKind::BaselineGrid);
        let hub = t.add_trap(4);
        for _ in 0..3 {
            let leaf = t.add_trap(4);
            t.add_edge(hub, leaf);
        }
        assert_eq!(t.constraint_violations(), vec![hub]);
        assert!(!t.is_physically_realizable());
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn duplicate_edge_rejected() {
        let mut t = line_of_traps(2);
        t.add_edge(0, 1);
    }

    #[test]
    fn connected_empty_and_singleton() {
        let t = Topology::new("empty", TopologyKind::SingleTrap);
        assert!(t.is_connected());
        let mut s = Topology::new("one", TopologyKind::SingleTrap);
        s.add_trap(10);
        assert!(s.is_connected());
    }
}
