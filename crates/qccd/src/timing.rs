//! Operation timing model for QCCD hardware.
//!
//! Times follow §II-B1 of the paper (which in turn uses the QCCDSim defaults):
//! split 80 µs, move 10 µs, merge 80 µs, junction crossing 10/100/120 µs for degrees
//! 2/3/4, frequency-modulated two-qubit gates whose duration grows with the chain
//! length (and degrades sharply past ~15 ions), and two swap implementations —
//! `GateSwap` (three CX gates) and `IonSwap` (position-based, scaling with the
//! interaction distance).

use serde::{Deserialize, Serialize};

/// Which physical mechanism is used to reorder ions within a chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum SwapKind {
    /// Swap implemented as three CX gates; cost `3 × gate_time(chain)`. The paper's
    /// default for Cyclone.
    #[default]
    GateSwap,
    /// Physical position-based swap whose cost grows with the interaction distance
    /// `d_l`: `s·d_l + s·(d_l − 1) + 42 µs` (paper §IV-D, Fig. 21).
    IonSwap,
}

impl std::fmt::Display for SwapKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwapKind::GateSwap => write!(f, "GateSwap"),
            SwapKind::IonSwap => write!(f, "IonSwap"),
        }
    }
}

/// All hardware operation durations, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperationTimes {
    /// Splitting an ion off a chain (80 µs).
    pub split: f64,
    /// Moving through one shuttling segment (10 µs).
    pub shuttle_move: f64,
    /// Merging an ion into a chain (80 µs).
    pub merge: f64,
    /// Crossing a degree-2 junction (10 µs).
    pub junction_deg2: f64,
    /// Crossing a degree-3 junction (100 µs).
    pub junction_deg3: f64,
    /// Crossing a degree-4 junction (120 µs).
    pub junction_deg4: f64,
    /// Base two-qubit gate duration for a short chain (40 µs).
    pub gate_base: f64,
    /// Additional gate duration per ion in the chain beyond two (2 µs per ion).
    pub gate_per_ion: f64,
    /// Exponent of the polynomial blow-up applied beyond
    /// [`Self::gate_chain_soft_cap`] ions: `t *= (len / cap)^exponent`, modelling the
    /// poor scaling of FM gates in long chains (paper §IV-A notes gate times scale
    /// "very poorly" past ~15 ions).
    pub gate_long_chain_exponent: f64,
    /// Chain length past which gate times degrade sharply (15 ions).
    pub gate_chain_soft_cap: usize,
    /// Single-qubit gate duration (5 µs).
    pub single_qubit_gate: f64,
    /// Measurement duration (100 µs).
    pub measurement: f64,
    /// State-preparation / cooling duration folded into measurement gaps (50 µs).
    pub preparation: f64,
    /// Constant part of an IonSwap (42 µs).
    pub ion_swap_constant: f64,
    /// Which swap mechanism to charge for reorderings.
    pub swap_kind: SwapKind,
}

impl Default for OperationTimes {
    fn default() -> Self {
        OperationTimes {
            split: 80e-6,
            shuttle_move: 10e-6,
            merge: 80e-6,
            junction_deg2: 10e-6,
            junction_deg3: 100e-6,
            junction_deg4: 120e-6,
            gate_base: 40e-6,
            gate_per_ion: 2e-6,
            gate_long_chain_exponent: 2.0,
            gate_chain_soft_cap: 15,
            single_qubit_gate: 5e-6,
            measurement: 100e-6,
            preparation: 50e-6,
            ion_swap_constant: 42e-6,
            swap_kind: SwapKind::GateSwap,
        }
    }
}

impl OperationTimes {
    /// The paper's default timing model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Junction crossing time for a junction of the given degree.
    ///
    /// Degrees 0–2 use the degree-2 time; degrees above 4 extrapolate linearly from
    /// the degree-4 time (such junctions do not occur on the evaluated topologies).
    pub fn junction_crossing(&self, degree: usize) -> f64 {
        match degree {
            0..=2 => self.junction_deg2,
            3 => self.junction_deg3,
            4 => self.junction_deg4,
            d => self.junction_deg4 + (d - 4) as f64 * (self.junction_deg4 - self.junction_deg3),
        }
    }

    /// Two-qubit gate duration in a chain of `chain_len` ions.
    ///
    /// Grows linearly with chain length and degrades multiplicatively past the soft
    /// cap, capturing the FM-gate behaviour the paper relies on when arguing against
    /// very dense traps (Fig. 13).
    pub fn two_qubit_gate(&self, chain_len: usize) -> f64 {
        let len = chain_len.max(2);
        let mut t = self.gate_base + self.gate_per_ion * (len - 2) as f64;
        if len > self.gate_chain_soft_cap {
            let ratio = len as f64 / self.gate_chain_soft_cap as f64;
            t *= ratio.powf(self.gate_long_chain_exponent);
        }
        t
    }

    /// Swap duration with the configured [`SwapKind`].
    ///
    /// `chain_len` is the chain the swap happens in; `interaction_distance` is the
    /// distance (in ion positions) between the two ions being swapped, only used by
    /// `IonSwap`.
    pub fn swap(&self, chain_len: usize, interaction_distance: usize) -> f64 {
        match self.swap_kind {
            SwapKind::GateSwap => 3.0 * self.two_qubit_gate(chain_len),
            SwapKind::IonSwap => {
                let d = interaction_distance.max(1) as f64;
                self.split * d + self.split * (d - 1.0) + self.ion_swap_constant
            }
        }
    }

    /// Combined duration of one full "hop": split + one move + merge (no junction).
    pub fn hop(&self) -> f64 {
        self.split + self.shuttle_move + self.merge
    }

    /// Returns a copy with every gate and shuttling duration scaled by `1 - r`,
    /// implementing the paper's Fig. 18 sensitivity sweep (`r` is the fractional
    /// reduction, e.g. `0.3` for "30 % faster operations").
    ///
    /// # Panics
    ///
    /// Panics if `r` is not in `[0, 1)`.
    pub fn scaled(&self, r: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&r),
            "reduction fraction must be in [0,1), got {r}"
        );
        let f = 1.0 - r;
        OperationTimes {
            split: self.split * f,
            shuttle_move: self.shuttle_move * f,
            merge: self.merge * f,
            junction_deg2: self.junction_deg2 * f,
            junction_deg3: self.junction_deg3 * f,
            junction_deg4: self.junction_deg4 * f,
            gate_base: self.gate_base * f,
            gate_per_ion: self.gate_per_ion * f,
            single_qubit_gate: self.single_qubit_gate * f,
            measurement: self.measurement * f,
            preparation: self.preparation * f,
            ion_swap_constant: self.ion_swap_constant * f,
            ..*self
        }
    }

    /// Returns a copy with only junction crossing times scaled by `1 - r`
    /// (the Fig. 9 sensitivity study on the mesh junction network).
    ///
    /// # Panics
    ///
    /// Panics if `r` is not in `[0, 1]`.
    pub fn with_junction_reduction(&self, r: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&r),
            "reduction fraction must be in [0,1], got {r}"
        );
        let f = 1.0 - r;
        OperationTimes {
            junction_deg2: self.junction_deg2 * f,
            junction_deg3: self.junction_deg3 * f,
            junction_deg4: self.junction_deg4 * f,
            ..*self
        }
    }

    /// Returns a copy using the given swap mechanism.
    pub fn with_swap_kind(&self, kind: SwapKind) -> Self {
        OperationTimes {
            swap_kind: kind,
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let t = OperationTimes::default();
        assert_eq!(t.split, 80e-6);
        assert_eq!(t.shuttle_move, 10e-6);
        assert_eq!(t.merge, 80e-6);
        assert_eq!(t.junction_crossing(2), 10e-6);
        assert_eq!(t.junction_crossing(3), 100e-6);
        assert_eq!(t.junction_crossing(4), 120e-6);
    }

    #[test]
    fn gate_time_grows_with_chain() {
        let t = OperationTimes::default();
        assert!(t.two_qubit_gate(4) > t.two_qubit_gate(2));
        assert!(t.two_qubit_gate(30) > 2.0 * t.two_qubit_gate(15));
    }

    #[test]
    fn gate_swap_is_three_gates() {
        let t = OperationTimes::default();
        assert!((t.swap(5, 1) - 3.0 * t.two_qubit_gate(5)).abs() < 1e-12);
    }

    #[test]
    fn ion_swap_scales_with_distance() {
        let t = OperationTimes::default().with_swap_kind(SwapKind::IonSwap);
        assert!(t.swap(5, 4) > t.swap(5, 1));
    }

    #[test]
    fn scaled_reduces_everything() {
        let t = OperationTimes::default();
        let s = t.scaled(0.5);
        assert!((s.split - 40e-6).abs() < 1e-12);
        assert!((s.two_qubit_gate(2) - 20e-6).abs() < 1e-12);
    }

    #[test]
    fn junction_reduction_only_affects_junctions() {
        let t = OperationTimes::default();
        let s = t.with_junction_reduction(0.7);
        assert!((s.junction_crossing(4) - 0.3 * 120e-6).abs() < 1e-12);
        assert_eq!(s.split, t.split);
    }

    #[test]
    #[should_panic(expected = "reduction fraction")]
    fn scaled_rejects_full_reduction() {
        let _ = OperationTimes::default().scaled(1.0);
    }
}
