//! Control-wiring cost model (DACs and broadcast groups).
//!
//! QCCD machines require one digital-to-analog converter (DAC) channel group per trap
//! to generate shuttling waveforms — unless several traps perform *identical* ion
//! movements at the same time, in which case a single control signal can be broadcast
//! (co-wired) to all of them (§II-B4). Cyclone's lockstep rotation makes every trap's
//! movement identical, so it needs only a constant number of DACs, whereas grid
//! codesigns need one per trap.

use crate::hardware::{Topology, TopologyKind};
use serde::{Deserialize, Serialize};

/// Summary of control-electronics requirements for a codesign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WiringCost {
    /// Number of independent DAC channel groups required.
    pub dacs: usize,
    /// Number of traps sharing a broadcast (co-wired) control signal.
    pub broadcast_traps: usize,
    /// Number of traps requiring an individually wired signal.
    pub individually_wired_traps: usize,
}

impl WiringCost {
    /// Total number of traps covered by this wiring plan.
    pub fn total_traps(&self) -> usize {
        self.broadcast_traps + self.individually_wired_traps
    }
}

/// Computes the DAC/wiring cost of a topology under its natural control policy.
///
/// * Ring (Cyclone): all traps move in lockstep, so a **constant** number of DACs
///   suffices — one broadcast group plus a small forwarding overhead (the paper notes
///   "theoretically requiring only one DAC with forwarding"). We charge
///   `1 + extra_forwarding` DACs.
/// * Grids and meshes: uncoordinated movements require one DAC per trap.
/// * Single trap: one DAC.
pub fn wiring_cost(topology: &Topology, extra_forwarding: usize) -> WiringCost {
    let traps = topology.num_traps();
    match topology.kind() {
        TopologyKind::Ring => WiringCost {
            dacs: 1 + extra_forwarding,
            broadcast_traps: traps,
            individually_wired_traps: 0,
        },
        TopologyKind::SingleTrap => WiringCost {
            dacs: 1,
            broadcast_traps: 0,
            individually_wired_traps: traps,
        },
        _ => WiringCost {
            dacs: traps,
            broadcast_traps: 0,
            individually_wired_traps: traps,
        },
    }
}

/// The asymptotic control-overhead advantage of a ring over a grid with the same
/// number of traps: `grid_dacs / ring_dacs`.
pub fn control_advantage(grid: &Topology, ring: &Topology) -> f64 {
    let g = wiring_cost(grid, 0).dacs.max(1) as f64;
    let r = wiring_cost(ring, 0).dacs.max(1) as f64;
    g / r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{baseline_grid, ring, single_trap};

    #[test]
    fn ring_needs_constant_dacs() {
        let small = wiring_cost(&ring(12, 8), 0);
        let large = wiring_cost(&ring(300, 8), 0);
        assert_eq!(small.dacs, large.dacs);
        assert_eq!(large.dacs, 1);
        assert_eq!(large.broadcast_traps, 300);
    }

    #[test]
    fn grid_needs_linear_dacs() {
        let t = baseline_grid(225, 5);
        let w = wiring_cost(&t, 0);
        assert_eq!(w.dacs, 225);
        assert_eq!(w.individually_wired_traps, 225);
    }

    #[test]
    fn advantage_scales_with_grid_size() {
        let adv_small = control_advantage(&baseline_grid(25, 5), &ring(13, 8));
        let adv_large = control_advantage(&baseline_grid(625, 5), &ring(300, 8));
        assert!(adv_large > adv_small);
    }

    #[test]
    fn single_trap_one_dac() {
        assert_eq!(wiring_cost(&single_trap(100), 0).dacs, 1);
    }
}
