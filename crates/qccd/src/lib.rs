//! Trapped-ion QCCD hardware modelling: topologies, shuttling, timing, and compilers.
//!
//! This crate is the hardware substrate of the Cyclone reproduction. It models
//! Quantum Charge Coupled Device machines as graphs of ion traps and junctions
//! ([`hardware`], [`topology`]), with the published operation timings ([`timing`]),
//! a control-wiring cost model ([`wiring`]), qubit-to-trap mapping policies
//! ([`placement`]), and compilers that turn an idealized syndrome-extraction schedule
//! into a timed execution with shuttling, roadblocks, and rebalancing ([`compiler`]).
//!
//! # Quick example
//!
//! ```
//! use qccd::compiler::baseline::compile_baseline;
//! use qccd::timing::OperationTimes;
//! use qccd::topology::baseline_grid;
//! use qec::classical::ClassicalCode;
//! use qec::hgp::square_hypergraph_product;
//! use qec::schedule::serial_schedule;
//!
//! let code = square_hypergraph_product(&ClassicalCode::repetition(3))?;
//! let topology = baseline_grid(code.num_qubits(), 5);
//! let round = compile_baseline(
//!     &code,
//!     &topology,
//!     &OperationTimes::default(),
//!     &serial_schedule(&code),
//! );
//! assert!(round.execution_time > 0.0);
//! # Ok::<(), qec::QecError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod compiler;
pub mod hardware;
pub mod placement;
pub mod timing;
pub mod topology;
pub mod wiring;

pub use compiler::{Codesign, CodesignRegistry, CompiledRound, ComponentTimes, IdleExposure};
pub use hardware::{NodeId, NodeKind, Topology, TopologyKind};
pub use placement::Placement;
pub use timing::{OperationTimes, SwapKind};
