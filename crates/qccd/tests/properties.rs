//! Property-based tests of the hardware substrate: topology invariants, timing-model
//! monotonicity, and compiler sanity across random codes and layouts.

use proptest::prelude::*;
use qccd::compiler::baseline::compile_baseline;
use qccd::placement::{greedy_cluster_placement, round_robin_placement};
use qccd::timing::{OperationTimes, SwapKind};
use qccd::topology::{alternate_grid, baseline_grid, grid_with_side, mesh_junction_network, ring};
use qec::classical::ClassicalCode;
use qec::hgp::hypergraph_product;
use qec::schedule::serial_schedule;

proptest! {
    // Deterministic: every case derives from this explicit seed (the workspace's
    // shared 0xC1C1_0DE5 convention), so a CI failure reproduces locally.
    #![proptest_config(ProptestConfig::with_cases(32).with_seed(0xC1C1_0DE5))]

    #[test]
    fn rings_are_connected_and_realizable(x in 1usize..80, cap in 1usize..20) {
        let t = ring(x, cap);
        prop_assert!(t.is_connected());
        prop_assert!(t.is_physically_realizable());
        prop_assert_eq!(t.num_traps(), x.max(1));
        prop_assert_eq!(t.total_capacity(), x.max(1) * cap);
    }

    #[test]
    fn grids_are_connected_and_realizable(side in 1usize..14, cap in 1usize..8) {
        let t = grid_with_side(side, cap);
        prop_assert!(t.is_connected());
        prop_assert!(t.is_physically_realizable());
        prop_assert_eq!(t.num_traps(), side.max(1) * side.max(1));
    }

    #[test]
    fn alternate_grids_are_connected(n in 4usize..150, cap in 2usize..8) {
        let t = alternate_grid(n, cap);
        prop_assert!(t.is_connected());
        prop_assert!(t.is_physically_realizable());
    }

    #[test]
    fn mesh_networks_hold_all_traps(n in 4usize..120, cap in 1usize..6) {
        let t = mesh_junction_network(n, cap);
        prop_assert!(t.is_connected());
        prop_assert_eq!(t.num_traps(), n);
        prop_assert!(t.is_physically_realizable());
    }

    #[test]
    fn shortest_paths_respect_triangle_inequality(x in 3usize..40) {
        let t = ring(x, 4);
        let traps = t.traps();
        let a = traps[0];
        let b = traps[x / 2];
        let c = traps[x / 3];
        let dab = t.distance(a, b).unwrap();
        let dbc = t.distance(b, c).unwrap();
        let dac = t.distance(a, c).unwrap();
        prop_assert!(dac <= dab + dbc);
    }

    #[test]
    fn gate_time_monotone_in_chain_length(len in 2usize..60) {
        let times = OperationTimes::default();
        prop_assert!(times.two_qubit_gate(len + 1) >= times.two_qubit_gate(len));
    }

    #[test]
    fn scaled_times_are_proportional(r in 0.0f64..0.95) {
        let t = OperationTimes::default();
        let s = t.scaled(r);
        prop_assert!((s.split - t.split * (1.0 - r)).abs() < 1e-12);
        prop_assert!((s.merge - t.merge * (1.0 - r)).abs() < 1e-12);
        prop_assert!(s.two_qubit_gate(2) <= t.two_qubit_gate(2) + 1e-12);
    }

    #[test]
    fn ion_swap_cost_monotone_in_distance(d in 1usize..30) {
        let times = OperationTimes::default().with_swap_kind(SwapKind::IonSwap);
        prop_assert!(times.swap(10, d + 1) >= times.swap(10, d));
    }

    #[test]
    fn placements_respect_capacity(seed in 0u64..30) {
        let c = ClassicalCode::gallager_ldpc(8, 3, 4, seed);
        let code = hypergraph_product(&c, &c).expect("valid");
        let topo = baseline_grid(code.num_qubits(), 5);
        for placement in [
            greedy_cluster_placement(&code, &topo),
            round_robin_placement(&code, &topo),
        ] {
            for &trap in &topo.traps() {
                let cap = topo.node(trap).capacity().unwrap();
                prop_assert!(placement.resident_count(trap) <= cap);
            }
        }
    }

    #[test]
    fn baseline_compile_time_bounded_by_serialized_work(seed in 0u64..10) {
        let c = ClassicalCode::gallager_ldpc(8, 3, 4, seed);
        let code = hypergraph_product(&c, &c).expect("valid");
        let topo = baseline_grid(code.num_qubits(), 5);
        let round = compile_baseline(&code, &topo, &OperationTimes::default(), &serial_schedule(&code));
        prop_assert!(round.execution_time > 0.0);
        prop_assert!(round.execution_time <= round.breakdown.serialized_total() + 1e-9);
        prop_assert!(round.breakdown.roadblock_wait >= 0.0);
    }
}
