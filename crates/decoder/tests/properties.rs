//! Property-based tests of the decoding substrate: BP+OSD correctness invariants and
//! noise-model monotonicity at the memory-experiment level.

use decoder::bp::BeliefPropagation;
use decoder::bposd::{BpOsdDecoder, DecodeMethod};
use decoder::memory::{BatchScratch, MemoryConfig, MemoryExperiment, ShotScratch};
use decoder::osd::OsdDecoder;
use decoder::scratch::DecoderScratch;
use decoder::simd::{Simd, SimdMode};
use decoder::sparse::SparseBinMat;
use noise::{ErrorChannel, HardwareNoiseModel, NoiseParameters};
use proptest::prelude::*;
use qec::classical::ClassicalCode;
use qec::hgp::square_hypergraph_product;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

proptest! {
    // Deterministic: every case derives from this explicit seed (the workspace's
    // shared 0xC1C1_0DE5 convention), so a CI failure reproduces locally.
    #![proptest_config(ProptestConfig::with_cases(24).with_seed(0xC1C1_0DE5))]

    #[test]
    fn bposd_always_matches_the_syndrome(seed in 0u64..50, p in 0.002f64..0.08) {
        let c = ClassicalCode::gallager_ldpc(8, 3, 4, seed % 10);
        let code = square_hypergraph_product(&c).expect("valid");
        let decoder = BpOsdDecoder::new(code.hz(), 25);
        let mut rng = StdRng::seed_from_u64(seed);
        let n = code.num_qubits();
        let error: Vec<bool> = (0..n).map(|_| rng.gen_bool(p)).collect();
        let syndrome = code.z_syndrome(&error);
        let decoded = decoder.decode(&syndrome, p);
        prop_assert_eq!(code.z_syndrome(&decoded.error), syndrome);
    }

    #[test]
    fn correctable_errors_never_cause_logicals(position in 0usize..100) {
        // Any single-qubit error is within the correction radius of the distance-3
        // surface-like HGP code.
        let code = square_hypergraph_product(&ClassicalCode::repetition(3)).expect("valid");
        let decoder = BpOsdDecoder::new(code.hz(), 30);
        let n = code.num_qubits();
        let q = position % n;
        let mut error = vec![false; n];
        error[q] = true;
        let syndrome = code.z_syndrome(&error);
        let decoded = decoder.decode(&syndrome, 0.01);
        let residual: Vec<bool> = error.iter().zip(&decoded.error).map(|(&a, &b)| a ^ b).collect();
        prop_assert!(!code.x_error_is_logical(&residual));
    }

    #[test]
    fn syndrome_of_sparse_matrix_matches_dense(seed in 0u64..40) {
        let c = ClassicalCode::gallager_ldpc(12, 3, 4, seed);
        let h = c.parity_check();
        let sparse = SparseBinMat::from_bitmat(h);
        let mut rng = StdRng::seed_from_u64(seed);
        let e: Vec<bool> = (0..h.num_cols()).map(|_| rng.gen_bool(0.3)).collect();
        prop_assert_eq!(sparse.syndrome(&e), h.mul_vec(&e));
    }

    #[test]
    fn decode_into_is_bit_identical_to_allocating_decode(
        seed in 0u64..60,
        p in 0.005f64..0.2,
        bp_iterations in 1usize..12,
    ) {
        // One dirty scratch reused across every case, matrix size, and decoder —
        // exactly the Monte-Carlo steady state. Low iteration caps make the OSD
        // fallback fire often; low error weights keep BP-converged cases common.
        let c = ClassicalCode::gallager_ldpc(8 + 4 * (seed % 2) as usize, 3, 4, seed % 11);
        let code = square_hypergraph_product(&c).expect("valid");
        let h = code.hz();
        let mut rng = StdRng::seed_from_u64(seed);
        let n = code.num_qubits();
        let error: Vec<bool> = (0..n).map(|_| rng.gen_bool(p)).collect();
        let syndrome = code.z_syndrome(&error);

        let bp = BeliefPropagation::new(SparseBinMat::from_bitmat(h), bp_iterations);
        let bp_legacy = bp.decode(&syndrome, p);
        let mut scratch = DecoderScratch::new();
        let bp_status = bp.decode_into(&syndrome, p, &mut scratch);
        prop_assert_eq!(bp_status.converged, bp_legacy.converged);
        prop_assert_eq!(bp_status.iterations, bp_legacy.iterations);
        prop_assert_eq!(scratch.error(), bp_legacy.error.as_slice());
        prop_assert_eq!(scratch.llrs(), bp_legacy.llrs.as_slice());

        // Full BP+OSD through the *same* (now dirty) scratch: both the converged
        // and the fallback branch must match the allocating path bit for bit.
        let dec = BpOsdDecoder::new(h, bp_iterations);
        let legacy = dec.decode(&syndrome, p);
        let status = dec.decode_into(&syndrome, p, &mut scratch);
        prop_assert_eq!(status.method, legacy.method);
        prop_assert_eq!(status.iterations, legacy.iterations);
        prop_assert_eq!(scratch.error(), legacy.error.as_slice());
        if !bp_legacy.converged {
            prop_assert_eq!(status.method, DecodeMethod::OrderedStatistics);
        }
        // And a second decode of the same syndrome through the warm scratch (the
        // cached uniform channel LLR path) must be stable.
        let again = dec.decode_into(&syndrome, p, &mut scratch);
        prop_assert_eq!(again.method, status.method);
        prop_assert_eq!(scratch.error(), legacy.error.as_slice());
    }

    #[test]
    fn uniform_priors_are_bit_identical_to_the_cached_llr_path(
        seed in 0u64..60,
        p in 0.005f64..0.15,
        bp_iterations in 2usize..20,
        code_pick in 0usize..3,
    ) {
        // The channel refactor routes structured noise through
        // `decode_with_priors_into`; with a constant prior vector that entry point
        // must compute exactly what the cached-LLR `decode_into` fast path
        // computes — same hard decisions, same posteriors, same OSD fallbacks —
        // across the code catalog. One dirty scratch per side bounces between the
        // X and Z sector decoders, so the uniform-LLR cache is repeatedly
        // invalidated and rebuilt exactly as in the Monte-Carlo steady state.
        let code = match code_pick {
            0 => qec::codes::bb_72_12_6().expect("valid"),
            1 => qec::codes::hgp_100().expect("valid"),
            _ => qec::codes::bb_90_8_10().expect("valid"),
        };
        let n = code.num_qubits();
        let priors = vec![p; n];
        let mut rng = StdRng::seed_from_u64(0xC1C1_0DE5 ^ seed);
        let error: Vec<bool> = (0..n).map(|_| rng.gen_bool(p)).collect();
        let mut uniform_scratch = DecoderScratch::new();
        let mut priors_scratch = DecoderScratch::new();
        for (h, syndrome) in [
            (code.hz(), code.z_syndrome(&error)),
            (code.hx(), code.x_syndrome(&error)),
        ] {
            let dec = BpOsdDecoder::new(h, bp_iterations);
            let uniform = dec.decode_into(&syndrome, p, &mut uniform_scratch);
            let with_priors =
                dec.decode_with_priors_into(&syndrome, &priors, &mut priors_scratch);
            prop_assert_eq!(uniform, with_priors);
            prop_assert_eq!(uniform_scratch.error(), priors_scratch.error());
            prop_assert_eq!(uniform_scratch.llrs(), priors_scratch.llrs());
            // The cached-LLR fast path must survive the comparison: decoding the
            // same syndrome again through the warm uniform scratch is stable.
            let again = dec.decode_into(&syndrome, p, &mut uniform_scratch);
            prop_assert_eq!(again, uniform);
        }
    }

    #[test]
    fn batch_decode_is_bit_identical_to_per_shot_path(
        seed in 0u64..40,
        p in 0.002f64..0.03,
        code_pick in 0usize..3,
        channel_pick in 0usize..3,
    ) {
        // The bit-sliced batch sampler must reproduce the scalar per-shot path
        // shot for shot: same seeded streams, same corrections (both sectors —
        // the failure verdict ORs them), same verdicts — across the code catalog,
        // all three channel shapes, and batch sizes from a single lane to
        // multi-chunk runs. The low BP iteration cap makes the OSD fallback fire
        // on a healthy fraction of the structured-channel shots.
        let code = match code_pick {
            0 => qec::codes::bb_72_12_6().expect("valid"),
            1 => qec::codes::hgp_100().expect("valid"),
            _ => qec::codes::bb_90_8_10().expect("valid"),
        };
        let model = HardwareNoiseModel::new(NoiseParameters::new(p), 2e-3);
        let n = code.num_qubits();
        let checks = code.num_stabilizers();
        let p_eff = model.effective_error_rate();
        let channel = match channel_pick {
            0 => ErrorChannel::uniform(n, p_eff),
            1 => ErrorChannel::biased(n, checks, p_eff, (2.0 * p_eff).min(0.75)),
            _ => {
                // Schedule-shaped heterogeneous rates: per-qubit idle exposures.
                let data_idle: Vec<f64> = (0..n).map(|q| 1e-3 * ((q % 7) as f64)).collect();
                let meas_idle: Vec<f64> =
                    (0..checks).map(|c| 1e-3 * ((c % 5) as f64)).collect();
                ErrorChannel::from_schedule(&model, &data_idle, &meas_idle)
            }
        };
        let exp = MemoryExperiment::with_channel(&code, model, channel, 8);
        let config = MemoryConfig {
            shots: 0,
            bp_iterations: 8,
            threads: 1,
            seed: 0xC1C1_0DE5 ^ seed,
        };
        // One dirty batch scratch (and decode cache) across every batch size —
        // cache hits must be indistinguishable from misses.
        let mut batch_scratch = BatchScratch::new();
        let mut shot_scratch = ShotScratch::new();
        for &total in &[1usize, 7, 64, 200] {
            let mut start = 0usize;
            while start < total {
                let count = 64.min(total - start);
                let mask = exp.sample_batch_with(&config, start, count, &mut batch_scratch);
                for k in 0..count {
                    let mut rng = StdRng::seed_from_u64(config.shot_seed(start + k));
                    let scalar = exp.sample_one_with(&mut rng, &mut shot_scratch);
                    prop_assert_eq!(
                        (mask >> k) & 1 == 1,
                        scalar,
                        "shot {} diverged (batch size {}, channel {})",
                        start + k,
                        total,
                        channel_pick
                    );
                }
                start += count;
            }
        }
    }

    #[test]
    fn warm_started_osd_is_bit_identical_to_cold_osd(
        seed in 0u64..40,
        p in 0.005f64..0.05,
        code_pick in 0usize..3,
        channel_pick in 0usize..3,
        bp_iterations in 2usize..8,
    ) {
        // The warm-started OSD (column-permutation reuse + early-exit
        // elimination) must produce exactly the cold path's output on the
        // suspicion vectors real BP failures produce — across the code catalog
        // and channel shapes, with one dirty scratch carried across shots and
        // sectors the way the Monte-Carlo fallback reuses it. Measurement flips
        // inject syndromes the error alone would not produce, including ones
        // outside the column space (the inconsistent branch).
        let code = match code_pick {
            0 => qec::codes::bb_72_12_6().expect("valid"),
            1 => qec::codes::hgp_100().expect("valid"),
            _ => qec::codes::bb_90_8_10().expect("valid"),
        };
        let model = HardwareNoiseModel::new(NoiseParameters::new(p), 2e-3);
        let n = code.num_qubits();
        let p_eff = model.effective_error_rate();
        let meas_rate = match channel_pick {
            0 => 0.0,
            1 => (2.0 * p_eff).min(0.75),
            _ => (8.0 * p_eff).min(0.75),
        };
        let mut rng = StdRng::seed_from_u64(0xC1C1_0DE5 ^ seed);
        let mut bp_scratch = DecoderScratch::new();
        let mut warm = DecoderScratch::new();
        for _shot in 0..6 {
            let error: Vec<bool> = (0..n).map(|_| rng.gen_bool(p_eff)).collect();
            for (h, mut syndrome) in [
                (code.hz(), code.z_syndrome(&error)),
                (code.hx(), code.x_syndrome(&error)),
            ] {
                if meas_rate > 0.0 {
                    for bit in syndrome.iter_mut() {
                        if rng.gen_bool(meas_rate) {
                            *bit = !*bit;
                        }
                    }
                }
                // Produce the suspicion vector the real fallback would see: the
                // negated BP posterior LLRs left in the scratch by a full decode.
                let dec = BpOsdDecoder::new(h, bp_iterations);
                dec.decode_into(&syndrome, p_eff.clamp(1e-9, 0.45), &mut bp_scratch);
                let suspicion: Vec<f64> = bp_scratch.llrs().iter().map(|&l| -l).collect();
                let osd = OsdDecoder::new(h.clone());
                let mut cold = DecoderScratch::new();
                let ok_cold = osd.decode_into_cold(&syndrome, &suspicion, &mut cold);
                let ok_warm = osd.decode_into(&syndrome, &suspicion, &mut warm);
                prop_assert_eq!(ok_warm, ok_cold, "consistency verdict diverged");
                if ok_cold {
                    prop_assert_eq!(warm.error(), cold.error());
                }
            }
        }
    }

    #[test]
    fn simd_propagate_is_bit_identical_to_scalar(
        seed in 0u64..60,
        p in 0.002f64..0.06,
        bp_iterations in 1usize..16,
        code_pick in 0usize..3,
        channel_pick in 0usize..3,
        flip_bits in 0u64..8,
    ) {
        // The vectorized propagate path (CYCLONE_SIMD=force) must reproduce the
        // scalar reference (CYCLONE_SIMD=off) byte for byte: same convergence
        // verdict and iteration count, same hard decisions, and bit-equal
        // posterior LLRs — across the code catalog, all three channel shapes
        // (uniform via the cached-LLR path, biased and schedule-derived via
        // per-bit priors), both sectors, converged and exhausted runs (the low
        // iteration caps force plenty of non-convergence), and syndromes the
        // error alone would not produce (random measurement flips, including
        // ones outside the column space). On hosts without a vector ISA,
        // `force` resolves to the scalar path and the comparison is trivially
        // green. Kernel-level adversarial inputs (-0.0, ties, infinities) are
        // pinned separately in `decoder::simd`'s unit tests.
        let code = match code_pick {
            0 => qec::codes::bb_72_12_6().expect("valid"),
            1 => qec::codes::hgp_100().expect("valid"),
            _ => qec::codes::bb_90_8_10().expect("valid"),
        };
        let model = HardwareNoiseModel::new(NoiseParameters::new(p), 2e-3);
        let n = code.num_qubits();
        let checks = code.num_stabilizers();
        let p_eff = model.effective_error_rate();
        let channel = match channel_pick {
            0 => ErrorChannel::uniform(n, p_eff),
            1 => ErrorChannel::biased(n, checks, p_eff, (2.0 * p_eff).min(0.75)),
            _ => {
                let data_idle: Vec<f64> = (0..n).map(|q| 1e-3 * ((q % 7) as f64)).collect();
                let meas_idle: Vec<f64> =
                    (0..checks).map(|c| 1e-3 * ((c % 5) as f64)).collect();
                ErrorChannel::from_schedule(&model, &data_idle, &meas_idle)
            }
        };
        // Exactly the priors clamp `MemoryExperiment::rebuild_priors` applies.
        let priors: Vec<f64> = channel.data().iter().map(|&r| r.clamp(1e-9, 0.45)).collect();
        let mut rng = StdRng::seed_from_u64(0xC1C1_0DE5 ^ seed);
        let error: Vec<bool> = (0..n).map(|_| rng.gen_bool(p_eff)).collect();
        // One dirty scratch per side, bounced across sectors and channel kinds —
        // the Monte-Carlo steady state, with `llrs_pad` reused iteration to
        // iteration exactly as in production.
        let mut simd_scratch = DecoderScratch::new();
        let mut scalar_scratch = DecoderScratch::new();
        for (h, mut syndrome) in [
            (code.hz(), code.z_syndrome(&error)),
            (code.hx(), code.x_syndrome(&error)),
        ] {
            for _ in 0..flip_bits {
                let at = rng.gen_range(0..syndrome.len());
                syndrome[at] = !syndrome[at];
            }
            let simd_bp = BeliefPropagation::new(SparseBinMat::from_bitmat(h), bp_iterations)
                .with_simd(Simd::with_mode(SimdMode::Force));
            let scalar_bp = BeliefPropagation::new(SparseBinMat::from_bitmat(h), bp_iterations)
                .with_simd(Simd::with_mode(SimdMode::Off));
            let a = simd_bp.decode_with_priors_into(&syndrome, &priors, &mut simd_scratch);
            let b = scalar_bp.decode_with_priors_into(&syndrome, &priors, &mut scalar_scratch);
            prop_assert_eq!(a, b, "priors-path status diverged");
            prop_assert_eq!(simd_scratch.error(), scalar_scratch.error());
            let simd_bits: Vec<u64> =
                simd_scratch.llrs().iter().map(|v| v.to_bits()).collect();
            let scalar_bits: Vec<u64> =
                scalar_scratch.llrs().iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(simd_bits, scalar_bits, "priors-path LLRs not byte-identical");
            let ua = simd_bp.decode_into(&syndrome, p_eff.clamp(1e-9, 0.45), &mut simd_scratch);
            let ub =
                scalar_bp.decode_into(&syndrome, p_eff.clamp(1e-9, 0.45), &mut scalar_scratch);
            prop_assert_eq!(ua, ub, "uniform-path status diverged");
            prop_assert_eq!(simd_scratch.error(), scalar_scratch.error());
            let simd_bits: Vec<u64> =
                simd_scratch.llrs().iter().map(|v| v.to_bits()).collect();
            let scalar_bits: Vec<u64> =
                scalar_scratch.llrs().iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(simd_bits, scalar_bits, "uniform-path LLRs not byte-identical");
        }
    }

    #[test]
    fn effective_error_rate_monotone_in_latency(latency in 0.0f64..0.5, p_exp in 1.0f64..3.0) {
        let p = 10f64.powf(-1.0 - p_exp); // 1e-2 .. 1e-4
        let short = HardwareNoiseModel::new(NoiseParameters::new(p), latency);
        let long = HardwareNoiseModel::new(NoiseParameters::new(p), latency + 0.05);
        prop_assert!(long.effective_error_rate() >= short.effective_error_rate());
    }
}

#[test]
fn simd_propagate_matches_scalar_on_adversarial_row_shapes() {
    // Row degrees chosen to stress the padded-CSR layout: an empty row (no
    // padded range at all), a degree-1 row (min2 stays +∞, its one output is
    // scale·min2 = +∞-scaled), a lane-exact degree-4 row, and degrees 5 and 9
    // (one partial vector, two-vectors-plus-partial) — every syndrome pattern,
    // several iteration caps, both converged and exhausted runs.
    let h = SparseBinMat::from_row_supports(
        11,
        vec![
            vec![],
            vec![3],
            vec![0, 2, 4, 6],
            vec![1, 2, 3, 4, 5, 6, 7, 8, 10],
            vec![0, 5, 7, 9, 10],
        ],
    );
    let mut simd_scratch = DecoderScratch::new();
    let mut scalar_scratch = DecoderScratch::new();
    for iterations in [1usize, 3, 30] {
        let simd_bp = BeliefPropagation::new(h.clone(), iterations)
            .with_simd(Simd::with_mode(SimdMode::Force));
        let scalar_bp =
            BeliefPropagation::new(h.clone(), iterations).with_simd(Simd::with_mode(SimdMode::Off));
        for pattern in 0u32..32 {
            let syndrome: Vec<bool> = (0..5).map(|r| (pattern >> r) & 1 == 1).collect();
            let a = simd_bp.decode_into(&syndrome, 0.05, &mut simd_scratch);
            let b = scalar_bp.decode_into(&syndrome, 0.05, &mut scalar_scratch);
            assert_eq!(a, b, "status diverged on syndrome {pattern:05b}");
            assert_eq!(simd_scratch.error(), scalar_scratch.error());
            let simd_bits: Vec<u64> = simd_scratch.llrs().iter().map(|v| v.to_bits()).collect();
            let scalar_bits: Vec<u64> = scalar_scratch.llrs().iter().map(|v| v.to_bits()).collect();
            assert_eq!(
                simd_bits, scalar_bits,
                "LLRs not byte-identical on syndrome {pattern:05b}"
            );
        }
    }
}

#[test]
fn memory_experiment_is_deterministic_for_fixed_seed() {
    let code = square_hypergraph_product(&ClassicalCode::repetition(3)).expect("valid");
    let model = HardwareNoiseModel::new(NoiseParameters::new(5e-3), 1e-3);
    let cfg = MemoryConfig {
        shots: 150,
        bp_iterations: 15,
        threads: 3,
        seed: 42,
    };
    let a = MemoryExperiment::new(&code, model, cfg.bp_iterations).run(&cfg);
    let b = MemoryExperiment::new(&code, model, cfg.bp_iterations).run(&cfg);
    assert_eq!(
        a.failures, b.failures,
        "same seed and shot split must reproduce"
    );
    assert_eq!(a.shots, b.shots);
}
