//! The combined BP+OSD decoder used for both code families.
//!
//! The paper decodes bivariate bicycle codes with the decoder of Bravyi et al. and
//! hypergraph product codes with the QuITS decoder — both BP+OSD variants. This module
//! provides the shared reimplementation: belief propagation first, and ordered-
//! statistics post-processing whenever BP fails to reproduce the syndrome (see
//! DESIGN.md, substitution 2).

use crate::bp::{BeliefPropagation, BpResult};
use crate::osd::OsdDecoder;
use crate::sparse::SparseBinMat;
use qec::linalg::BitMat;

/// Statistics of a single decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeMethod {
    /// BP converged on its own.
    BeliefPropagation,
    /// BP failed; the OSD-0 fallback produced the answer.
    OrderedStatistics,
}

/// Outcome of a BP+OSD decode.
#[derive(Debug, Clone)]
pub struct Decode {
    /// The estimated error pattern.
    pub error: Vec<bool>,
    /// Which stage produced the estimate.
    pub method: DecodeMethod,
    /// BP iterations used.
    pub iterations: usize,
}

/// A BP+OSD decoder bound to one parity-check matrix.
#[derive(Debug, Clone)]
pub struct BpOsdDecoder {
    bp: BeliefPropagation,
    osd: OsdDecoder,
}

impl BpOsdDecoder {
    /// Creates a decoder for parity-check matrix `h` with the given BP iteration cap.
    pub fn new(h: &BitMat, max_iterations: usize) -> Self {
        BpOsdDecoder {
            bp: BeliefPropagation::new(SparseBinMat::from_bitmat(h), max_iterations),
            osd: OsdDecoder::new(h.clone()),
        }
    }

    /// Decodes `syndrome` assuming a uniform prior error probability `p` per bit.
    ///
    /// Always returns an error pattern whose syndrome matches (OSD guarantees a
    /// solution for any syndrome in the row space, which is every physically
    /// producible syndrome).
    ///
    /// # Panics
    ///
    /// Panics if the syndrome length does not match the number of checks.
    pub fn decode(&self, syndrome: &[bool], p: f64) -> Decode {
        let bp_result: BpResult = self.bp.decode(syndrome, p);
        if bp_result.converged {
            return Decode {
                error: bp_result.error,
                method: DecodeMethod::BeliefPropagation,
                iterations: bp_result.iterations,
            };
        }
        let suspicion: Vec<f64> = bp_result.llrs.iter().map(|&l| -l).collect();
        let error = self
            .osd
            .decode(syndrome, &suspicion)
            .unwrap_or(bp_result.error);
        Decode {
            error,
            method: DecodeMethod::OrderedStatistics,
            iterations: bp_result.iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qec::codes::bb_72_12_6;
    use qec::linalg::weight;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    #[test]
    fn decodes_weight_one_and_two_errors_on_bb72() {
        let code = bb_72_12_6().expect("valid");
        let dec = BpOsdDecoder::new(code.hz(), 40);
        let n = code.num_qubits();
        // All weight-1 X errors and a sample of weight-2 errors must be corrected
        // (distance 6 guarantees correctability of weight <= 2).
        for i in 0..n {
            let mut e = vec![false; n];
            e[i] = true;
            let s = code.z_syndrome(&e);
            let d = dec.decode(&s, 0.01);
            let residual: Vec<bool> = e.iter().zip(&d.error).map(|(&a, &b)| a ^ b).collect();
            assert!(code.z_syndrome(&residual).iter().all(|&b| !b));
            assert!(!code.x_error_is_logical(&residual), "weight-1 error {i} caused logical");
        }
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..40 {
            let mut e = vec![false; n];
            let a = rng.gen_range(0..n);
            let mut b = rng.gen_range(0..n);
            while b == a {
                b = rng.gen_range(0..n);
            }
            e[a] = true;
            e[b] = true;
            let s = code.z_syndrome(&e);
            let d = dec.decode(&s, 0.01);
            let residual: Vec<bool> = e.iter().zip(&d.error).map(|(&x, &y)| x ^ y).collect();
            assert!(code.z_syndrome(&residual).iter().all(|&v| !v));
            assert!(!code.x_error_is_logical(&residual), "weight-2 error caused logical");
        }
    }

    #[test]
    fn solution_always_matches_syndrome() {
        let code = bb_72_12_6().expect("valid");
        let dec = BpOsdDecoder::new(code.hx(), 15);
        let n = code.num_qubits();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..25 {
            let e: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.05)).collect();
            let s = code.x_syndrome(&e);
            let d = dec.decode(&s, 0.05);
            assert_eq!(code.x_syndrome(&d.error), s);
        }
    }

    #[test]
    fn zero_syndrome_gives_zero_error() {
        let code = bb_72_12_6().expect("valid");
        let dec = BpOsdDecoder::new(code.hz(), 20);
        let d = dec.decode(&vec![false; code.num_z_stabilizers()], 0.01);
        assert_eq!(weight(&d.error), 0);
        assert_eq!(d.method, DecodeMethod::BeliefPropagation);
    }
}
