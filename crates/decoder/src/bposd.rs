//! The combined BP+OSD decoder used for both code families.
//!
//! The paper decodes bivariate bicycle codes with the decoder of Bravyi et al. and
//! hypergraph product codes with the QuITS decoder — both BP+OSD variants. This module
//! provides the shared reimplementation: belief propagation first, and ordered-
//! statistics post-processing whenever BP fails to reproduce the syndrome (see
//! DESIGN.md, substitution 2).

use crate::bp::BeliefPropagation;
use crate::osd::OsdDecoder;
use crate::scratch::DecoderScratch;
use crate::sparse::SparseBinMat;
use qec::linalg::BitMat;

/// Statistics of a single decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeMethod {
    /// BP converged on its own.
    BeliefPropagation,
    /// BP failed; the OSD-0 fallback produced the answer.
    OrderedStatistics,
}

/// Outcome of a BP+OSD decode (owning variant returned by the allocating wrapper).
#[derive(Debug, Clone)]
pub struct Decode {
    /// The estimated error pattern.
    pub error: Vec<bool>,
    /// Which stage produced the estimate.
    pub method: DecodeMethod,
    /// BP iterations used.
    pub iterations: usize,
}

/// Outcome of a scratch-borrowing BP+OSD decode; the error pattern lives in the
/// [`DecoderScratch`] that was passed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeStatus {
    /// Which stage produced the estimate.
    pub method: DecodeMethod,
    /// BP iterations used.
    pub iterations: usize,
}

/// A BP+OSD decoder bound to one parity-check matrix.
#[derive(Debug, Clone)]
pub struct BpOsdDecoder {
    bp: BeliefPropagation,
    osd: OsdDecoder,
}

impl BpOsdDecoder {
    /// Creates a decoder for parity-check matrix `h` with the given BP iteration cap.
    pub fn new(h: &BitMat, max_iterations: usize) -> Self {
        BpOsdDecoder {
            bp: BeliefPropagation::new(SparseBinMat::from_bitmat(h), max_iterations),
            osd: OsdDecoder::new(h.clone()),
        }
    }

    /// The parity-check matrix in the sparse form used by belief propagation (handy
    /// for allocation-free syndrome computation alongside `decode_into`).
    pub fn check_matrix(&self) -> &SparseBinMat {
        self.bp.matrix()
    }

    /// Overrides the BP check-pass SIMD dispatch (decided from `CYCLONE_SIMD` at
    /// construction) — see [`BeliefPropagation::with_simd`].
    pub fn with_simd(mut self, simd: crate::simd::Simd) -> Self {
        self.bp = self.bp.with_simd(simd);
        self
    }

    /// The BP check-pass SIMD dispatch this decoder runs with.
    pub fn simd(&self) -> crate::simd::Simd {
        self.bp.simd()
    }

    /// Decodes `syndrome` assuming a uniform prior error probability `p` per bit.
    ///
    /// Always returns an error pattern whose syndrome matches (OSD guarantees a
    /// solution for any syndrome in the row space, which is every physically
    /// producible syndrome).
    ///
    /// # Panics
    ///
    /// Panics if the syndrome length does not match the number of checks.
    pub fn decode(&self, syndrome: &[bool], p: f64) -> Decode {
        let mut scratch = DecoderScratch::new();
        let status = self.decode_into(syndrome, p, &mut scratch);
        Decode {
            error: scratch.error,
            method: status.method,
            iterations: status.iterations,
        }
    }

    /// Scratch-borrowing variant of [`BpOsdDecoder::decode`]: the error pattern is
    /// left in [`DecoderScratch::error`]. When BP fails to converge and the OSD
    /// fallback finds the syndrome inconsistent (impossible for physically produced
    /// syndromes), the BP hard decision is left in place, mirroring the allocating
    /// path's fallback.
    ///
    /// # Panics
    ///
    /// Panics if the syndrome length does not match the number of checks.
    pub fn decode_into(
        &self,
        syndrome: &[bool],
        p: f64,
        scratch: &mut DecoderScratch,
    ) -> DecodeStatus {
        let bp_status = self.bp.decode_into(syndrome, p, scratch);
        self.finish_decode(syndrome, bp_status, scratch)
    }

    /// Scratch-borrowing BP+OSD decode with per-bit prior error probabilities: the
    /// channel-structured counterpart of [`BpOsdDecoder::decode_into`]. With all
    /// priors equal this computes exactly what the uniform path computes (pinned by
    /// a property test over the code catalog), but skips its cached-LLR fast path.
    ///
    /// # Panics
    ///
    /// Panics if the syndrome length does not match the number of checks, or
    /// `priors` is not one-per-column in `(0, 1)`.
    pub fn decode_with_priors_into(
        &self,
        syndrome: &[bool],
        priors: &[f64],
        scratch: &mut DecoderScratch,
    ) -> DecodeStatus {
        let bp_status = self.bp.decode_with_priors_into(syndrome, priors, scratch);
        self.finish_decode(syndrome, bp_status, scratch)
    }

    /// [`BpOsdDecoder::decode_with_priors_into`] with a caller-precomputed
    /// [`crate::bp::priors_digest`] key: the steady-state priors-LLR cache hit
    /// becomes a single `u64` compare (see
    /// [`BeliefPropagation::decode_with_priors_keyed_into`]).
    ///
    /// # Panics
    ///
    /// Panics if the syndrome length does not match the number of checks, or — on
    /// a priors-cache miss — if a prior is outside `(0, 1)`.
    pub fn decode_with_priors_keyed_into(
        &self,
        syndrome: &[bool],
        priors: &[f64],
        key: u64,
        scratch: &mut DecoderScratch,
    ) -> DecodeStatus {
        let bp_status = self
            .bp
            .decode_with_priors_keyed_into(syndrome, priors, key, scratch);
        self.finish_decode(syndrome, bp_status, scratch)
    }

    /// Shared tail of the `decode_into` variants: accept a converged BP answer or
    /// run the ordered-statistics fallback on the BP soft output.
    // cyclone-lint: hot-path
    fn finish_decode(
        &self,
        syndrome: &[bool],
        bp_status: crate::bp::BpStatus,
        scratch: &mut DecoderScratch,
    ) -> DecodeStatus {
        if bp_status.converged {
            return DecodeStatus {
                method: DecodeMethod::BeliefPropagation,
                iterations: bp_status.iterations,
            };
        }
        // Move the suspicion buffer out so the scratch can be lent to OSD while the
        // scores are read from it (the buffer is returned below — no allocation).
        let mut suspicion = std::mem::take(&mut scratch.suspicion);
        suspicion.clear();
        suspicion.extend(scratch.llrs.iter().map(|&l| -l));
        let _ = self.osd.decode_into(syndrome, &suspicion, scratch);
        scratch.suspicion = suspicion;
        DecodeStatus {
            method: DecodeMethod::OrderedStatistics,
            iterations: bp_status.iterations,
        }
    }
    // cyclone-lint: end-hot-path
}

#[cfg(test)]
mod tests {
    use super::*;
    use qec::codes::bb_72_12_6;
    use qec::linalg::weight;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    #[test]
    fn decodes_weight_one_and_two_errors_on_bb72() {
        let code = bb_72_12_6().expect("valid");
        let dec = BpOsdDecoder::new(code.hz(), 40);
        let n = code.num_qubits();
        // All weight-1 X errors and a sample of weight-2 errors must be corrected
        // (distance 6 guarantees correctability of weight <= 2).
        for i in 0..n {
            let mut e = vec![false; n];
            e[i] = true;
            let s = code.z_syndrome(&e);
            let d = dec.decode(&s, 0.01);
            let residual: Vec<bool> = e.iter().zip(&d.error).map(|(&a, &b)| a ^ b).collect();
            assert!(code.z_syndrome(&residual).iter().all(|&b| !b));
            assert!(
                !code.x_error_is_logical(&residual),
                "weight-1 error {i} caused logical"
            );
        }
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..40 {
            let mut e = vec![false; n];
            let a = rng.gen_range(0..n);
            let mut b = rng.gen_range(0..n);
            while b == a {
                b = rng.gen_range(0..n);
            }
            e[a] = true;
            e[b] = true;
            let s = code.z_syndrome(&e);
            let d = dec.decode(&s, 0.01);
            let residual: Vec<bool> = e.iter().zip(&d.error).map(|(&x, &y)| x ^ y).collect();
            assert!(code.z_syndrome(&residual).iter().all(|&v| !v));
            assert!(
                !code.x_error_is_logical(&residual),
                "weight-2 error caused logical"
            );
        }
    }

    #[test]
    fn solution_always_matches_syndrome() {
        let code = bb_72_12_6().expect("valid");
        let dec = BpOsdDecoder::new(code.hx(), 15);
        let n = code.num_qubits();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..25 {
            let e: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.05)).collect();
            let s = code.x_syndrome(&e);
            let d = dec.decode(&s, 0.05);
            assert_eq!(code.x_syndrome(&d.error), s);
        }
    }

    #[test]
    fn decode_into_reuses_scratch_across_sectors() {
        // One scratch bounced between the X- and Z-sector decoders (different row
        // counts, same column count) must keep matching the allocating path.
        let code = bb_72_12_6().expect("valid");
        let dec_z = BpOsdDecoder::new(code.hz(), 18);
        let dec_x = BpOsdDecoder::new(code.hx(), 18);
        let n = code.num_qubits();
        let mut rng = StdRng::seed_from_u64(0xC1C1_0DE5);
        let mut scratch = DecoderScratch::new();
        for _ in 0..12 {
            let e: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.04)).collect();
            for (dec, s) in [(&dec_z, code.z_syndrome(&e)), (&dec_x, code.x_syndrome(&e))] {
                let fresh = dec.decode(&s, 0.04);
                let status = dec.decode_into(&s, 0.04, &mut scratch);
                assert_eq!(status.method, fresh.method);
                assert_eq!(status.iterations, fresh.iterations);
                assert_eq!(scratch.error(), fresh.error.as_slice());
            }
        }
    }

    #[test]
    fn uniform_priors_match_the_uniform_path_including_osd_fallback() {
        // The per-bit-priors entry point with a constant prior must compute exactly
        // what the scalar path computes, on BP-converged and OSD-fallback syndromes
        // alike (the sweep-level property test extends this across the catalog).
        let code = bb_72_12_6().expect("valid");
        let dec = BpOsdDecoder::new(code.hz(), 12);
        let n = code.num_qubits();
        let p = 0.03;
        let priors = vec![p; n];
        let mut rng = StdRng::seed_from_u64(0xC1C1_0DE5);
        let mut scratch_a = DecoderScratch::new();
        let mut scratch_b = DecoderScratch::new();
        let mut fallbacks = 0usize;
        for _ in 0..30 {
            let e: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.06)).collect();
            let s = code.z_syndrome(&e);
            let uniform = dec.decode_into(&s, p, &mut scratch_a);
            let with_priors = dec.decode_with_priors_into(&s, &priors, &mut scratch_b);
            assert_eq!(uniform, with_priors);
            assert_eq!(scratch_a.error(), scratch_b.error());
            if uniform.method == DecodeMethod::OrderedStatistics {
                fallbacks += 1;
            }
        }
        assert!(fallbacks > 0, "test must exercise the OSD fallback");
    }

    #[test]
    fn zero_syndrome_gives_zero_error() {
        let code = bb_72_12_6().expect("valid");
        let dec = BpOsdDecoder::new(code.hz(), 20);
        let d = dec.decode(&vec![false; code.num_z_stabilizers()], 0.01);
        assert_eq!(weight(&d.error), 0);
        assert_eq!(d.method, DecodeMethod::BeliefPropagation);
    }
}
