//! Reusable decoder workspaces.
//!
//! [`DecoderScratch`] owns every working buffer the BP / OSD / BP+OSD hot paths need:
//! the flat message arenas of belief propagation, the channel-LLR vector (with a
//! cached uniform-prior fill), and the ordered-statistics column permutation and
//! word-packed augmented matrix. The `decode_into` entry points of
//! [`crate::bp::BeliefPropagation`], [`crate::osd::OsdDecoder`], and
//! [`crate::bposd::BpOsdDecoder`] borrow all of their state from one of these, so a
//! caller that keeps a scratch alive (one per worker thread, typically) performs zero
//! heap allocation per decode in steady state: buffers are grown on first use and
//! reused — never shrunk — afterwards.

use crate::sparse::PAD_LANES;

/// One 32-byte-aligned bundle of [`PAD_LANES`] `f64` lanes — the allocation unit
/// of [`LaneArenaF64`].
#[repr(C, align(32))]
#[derive(Debug, Clone, Copy)]
struct F64Chunk([f64; PAD_LANES]);

/// One 32-byte-aligned bundle of [`PAD_LANES`] `u64` mask words — the allocation
/// unit of [`LaneArenaU64`].
#[repr(C, align(32))]
#[derive(Debug, Clone, Copy)]
struct U64Chunk([u64; PAD_LANES]);

/// A 32-byte-aligned `f64` arena backing the SIMD message buffers.
///
/// The vector kernels in [`crate::simd`] issue full-width four-lane loads and
/// stores over these buffers every iteration. A plain `Vec<f64>` is only
/// guaranteed 16-byte alignment by the allocator, and a 16-mod-32 base address
/// makes every 256-bit access straddle two cache lines — measured to cost the
/// AVX2 check pass roughly a quarter of its throughput on the `[[72,12,6]]`
/// code, with the outcome decided by per-process allocation luck. Backing the
/// storage with 32-byte-aligned chunks removes that coin flip. Lengths are
/// always multiples of [`PAD_LANES`] (the row-interleaved layout guarantees
/// this), enforced by a debug assertion.
#[derive(Debug, Clone, Default)]
pub(crate) struct LaneArenaF64 {
    chunks: Vec<F64Chunk>,
}

impl LaneArenaF64 {
    /// Number of `f64` slots (always a multiple of [`PAD_LANES`]).
    pub(crate) fn len(&self) -> usize {
        self.chunks.len() * PAD_LANES
    }

    /// Resizes to exactly `len` slots, filling any newly added chunks with `0.0`.
    pub(crate) fn ensure_len(&mut self, len: usize) {
        debug_assert_eq!(len % PAD_LANES, 0, "lane arena length must be chunked");
        if self.len() != len {
            self.chunks
                .resize(len / PAD_LANES, F64Chunk([0.0; PAD_LANES]));
        }
    }

    /// Views the arena as a flat `f64` slice with a 32-byte-aligned base.
    pub(crate) fn as_mut_slice(&mut self) -> &mut [f64] {
        // SAFETY: `F64Chunk` is `#[repr(C)]` over `[f64; PAD_LANES]` with size a
        // multiple of its alignment, so the chunks store contiguous `f64`s with
        // no padding; the cast stays within the one live allocation and
        // `self.len()` counts exactly the `f64`s it owns.
        unsafe {
            core::slice::from_raw_parts_mut(self.chunks.as_mut_ptr().cast::<f64>(), self.len())
        }
    }
}

/// A 32-byte-aligned `u64` arena for the per-lane syndrome masks; same
/// rationale as [`LaneArenaF64`].
#[derive(Debug, Clone, Default)]
pub(crate) struct LaneArenaU64 {
    chunks: Vec<U64Chunk>,
}

impl LaneArenaU64 {
    /// Number of `u64` words (always a multiple of [`PAD_LANES`]).
    pub(crate) fn len(&self) -> usize {
        self.chunks.len() * PAD_LANES
    }

    /// Resizes to exactly `len` words, filling any newly added chunks with `0`.
    pub(crate) fn ensure_len(&mut self, len: usize) {
        debug_assert_eq!(len % PAD_LANES, 0, "lane arena length must be chunked");
        if self.len() != len {
            self.chunks
                .resize(len / PAD_LANES, U64Chunk([0; PAD_LANES]));
        }
    }

    /// Views the arena as a flat `u64` slice with a 32-byte-aligned base.
    pub(crate) fn as_mut_slice(&mut self) -> &mut [u64] {
        // SAFETY: `U64Chunk` is `#[repr(C)]` over `[u64; PAD_LANES]` with size a
        // multiple of its alignment, so the chunks store contiguous `u64`s with
        // no padding; the cast stays within the one live allocation and
        // `self.len()` counts exactly the `u64`s it owns.
        unsafe {
            core::slice::from_raw_parts_mut(self.chunks.as_mut_ptr().cast::<u64>(), self.len())
        }
    }
}

/// A caller-owned workspace for the BP / OSD / BP+OSD `decode_into` paths.
///
/// Create one with [`DecoderScratch::new`] and pass it to every decode; the buffers
/// size themselves to the decoder on first use. A single scratch may be moved freely
/// between decoders of different shapes (buffers regrow as needed), but steady-state
/// zero allocation requires dedicating one scratch per decoder, as
/// [`crate::memory::ShotScratch`] does for the X/Z sector pair.
#[derive(Debug, Clone, Default)]
pub struct DecoderScratch {
    // Belief propagation -----------------------------------------------------
    /// Per-variable channel log-likelihood ratios.
    pub(crate) channel_llr: Vec<f64>,
    /// Cache key for `channel_llr` when it holds a uniform-prior fill: `(p, n)`.
    pub(crate) cached_uniform: Option<(f64, usize)>,
    /// Cache key for `channel_llr` when it holds a per-bit-priors fill: the
    /// content digest and length of the priors it was built from
    /// ([`crate::bp::priors_digest`]). Keying on the digest instead of the exact
    /// `Vec<f64>` makes the steady-state hit a single `u64` compare — callers that
    /// precompute the digest once per channel ([`crate::memory::MemoryExperiment`])
    /// pay O(1) per decode instead of an O(n) float compare.
    pub(crate) cached_priors_key: Option<(u64, usize)>,
    /// Number of times the per-bit-priors LLR conversion actually ran (cache
    /// misses). Decodes minus rebuilds = cache hits; exposed for tests via
    /// [`DecoderScratch::priors_rebuilds`].
    pub(crate) priors_rebuilds: usize,
    /// Check→variable messages, indexed by Tanner-graph edge id (scalar
    /// propagate path only; the SIMD path uses [`DecoderScratch::ctv_lanes`]).
    pub(crate) check_to_var: Vec<f64>,
    /// Variable→check messages, indexed by Tanner-graph edge id (scalar
    /// propagate path only; the SIMD path uses [`DecoderScratch::vtc_lanes`]).
    pub(crate) var_to_check: Vec<f64>,
    /// Check→variable messages in the row-interleaved SIMD layout
    /// ([`crate::sparse::TannerGraph::edge_slots`]), 32-byte aligned so the
    /// kernels' full-width accesses never split cache lines. Empty on the
    /// scalar path. Keeping the SIMD arenas separate from the edge-indexed
    /// vectors also lets one scratch alternate between vectorized and scalar
    /// decoders without re-sizing churn.
    pub(crate) ctv_lanes: LaneArenaF64,
    /// Variable→check messages in the row-interleaved SIMD layout; padding
    /// slots hold `+∞` (see [`crate::bp`]). Empty on the scalar path.
    pub(crate) vtc_lanes: LaneArenaF64,
    /// Posterior log-likelihood ratios (one per variable).
    pub(crate) llrs: Vec<f64>,
    /// Lane-padded posterior accumulator used by the SIMD propagate path: slots
    /// `0..n` mirror `llrs`; the tail up to the next lane multiple holds `+∞`
    /// so the hard-decision kernel's full-vector reads past `n` stay in bounds
    /// and benign (see [`crate::simd`]). Empty on the scalar path.
    pub(crate) llrs_pad: LaneArenaF64,
    /// Per-check syndrome masks consumed by the SIMD check pass: word `r` is
    /// all-ones when syndrome bit `r` is set, zero otherwise (and zero for the
    /// phantom lanes past the last check). Refilled once per decode — the
    /// syndrome is constant across iterations. Empty on the scalar path.
    pub(crate) syn_mask: LaneArenaU64,
    /// Hard-decision error estimate; also receives the OSD solution.
    pub(crate) error: Vec<bool>,
    /// Word-packed copy of `error` maintained by the BP variable pass, consumed
    /// by the mask-based convergence check (bit `c & 63` of word `c >> 6`).
    pub(crate) err_words: Vec<u64>,
    // Ordered statistics -----------------------------------------------------
    /// Per-variable suspicion scores handed from BP to OSD.
    pub(crate) suspicion: Vec<f64>,
    /// Column permutation, most suspicious first.
    pub(crate) order: Vec<usize>,
    /// Word-packed augmented matrix `[H(ordered) | s]`, row-major.
    pub(crate) aug: Vec<u64>,
    /// Pivot column (in permuted coordinates) of each pivot row, in row order.
    pub(crate) pivot_cols: Vec<usize>,
    /// OSD solution in permuted coordinates.
    pub(crate) solution_ordered: Vec<bool>,
}

impl DecoderScratch {
    /// Creates an empty workspace; buffers are sized on first decode.
    pub fn new() -> Self {
        Self::default()
    }

    /// The error estimate produced by the most recent `decode_into` call.
    ///
    /// After [`crate::bp::BeliefPropagation::decode_into`] this is the BP hard
    /// decision; after [`crate::osd::OsdDecoder::decode_into`] returns `true`, or
    /// after [`crate::bposd::BpOsdDecoder::decode_into`], it is the final solution.
    pub fn error(&self) -> &[bool] {
        &self.error
    }

    /// The posterior log-likelihood ratios of the most recent BP run.
    pub fn llrs(&self) -> &[f64] {
        &self.llrs
    }

    /// How many per-bit-priors decodes rebuilt the channel-LLR vector (i.e. missed
    /// the priors-LLR cache). The steady state of a structured-channel Monte-Carlo
    /// run rebuilds once and hits thereafter.
    pub fn priors_rebuilds(&self) -> usize {
        self.priors_rebuilds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_scratch_is_empty() {
        let s = DecoderScratch::new();
        assert!(s.error().is_empty());
        assert!(s.llrs().is_empty());
        assert!(s.cached_uniform.is_none());
        assert!(s.cached_priors_key.is_none());
        assert_eq!(s.priors_rebuilds(), 0);
    }
}
