//! Reusable decoder workspaces.
//!
//! [`DecoderScratch`] owns every working buffer the BP / OSD / BP+OSD hot paths need:
//! the flat message arenas of belief propagation, the channel-LLR vector (with a
//! cached uniform-prior fill), and the ordered-statistics column permutation and
//! word-packed augmented matrix. The `decode_into` entry points of
//! [`crate::bp::BeliefPropagation`], [`crate::osd::OsdDecoder`], and
//! [`crate::bposd::BpOsdDecoder`] borrow all of their state from one of these, so a
//! caller that keeps a scratch alive (one per worker thread, typically) performs zero
//! heap allocation per decode in steady state: buffers are grown on first use and
//! reused — never shrunk — afterwards.

/// A caller-owned workspace for the BP / OSD / BP+OSD `decode_into` paths.
///
/// Create one with [`DecoderScratch::new`] and pass it to every decode; the buffers
/// size themselves to the decoder on first use. A single scratch may be moved freely
/// between decoders of different shapes (buffers regrow as needed), but steady-state
/// zero allocation requires dedicating one scratch per decoder, as
/// [`crate::memory::ShotScratch`] does for the X/Z sector pair.
#[derive(Debug, Clone, Default)]
pub struct DecoderScratch {
    // Belief propagation -----------------------------------------------------
    /// Per-variable channel log-likelihood ratios.
    pub(crate) channel_llr: Vec<f64>,
    /// Cache key for `channel_llr` when it holds a uniform-prior fill: `(p, n)`.
    pub(crate) cached_uniform: Option<(f64, usize)>,
    /// Cache key for `channel_llr` when it holds a per-bit-priors fill: the
    /// content digest and length of the priors it was built from
    /// ([`crate::bp::priors_digest`]). Keying on the digest instead of the exact
    /// `Vec<f64>` makes the steady-state hit a single `u64` compare — callers that
    /// precompute the digest once per channel ([`crate::memory::MemoryExperiment`])
    /// pay O(1) per decode instead of an O(n) float compare.
    pub(crate) cached_priors_key: Option<(u64, usize)>,
    /// Number of times the per-bit-priors LLR conversion actually ran (cache
    /// misses). Decodes minus rebuilds = cache hits; exposed for tests via
    /// [`DecoderScratch::priors_rebuilds`].
    pub(crate) priors_rebuilds: usize,
    /// Check→variable messages, indexed by Tanner-graph edge id.
    pub(crate) check_to_var: Vec<f64>,
    /// Variable→check messages, indexed by Tanner-graph edge id.
    pub(crate) var_to_check: Vec<f64>,
    /// Posterior log-likelihood ratios (one per variable).
    pub(crate) llrs: Vec<f64>,
    /// Hard-decision error estimate; also receives the OSD solution.
    pub(crate) error: Vec<bool>,
    /// Word-packed copy of `error` maintained by the BP variable pass, consumed
    /// by the mask-based convergence check (bit `c & 63` of word `c >> 6`).
    pub(crate) err_words: Vec<u64>,
    // Ordered statistics -----------------------------------------------------
    /// Per-variable suspicion scores handed from BP to OSD.
    pub(crate) suspicion: Vec<f64>,
    /// Column permutation, most suspicious first.
    pub(crate) order: Vec<usize>,
    /// Word-packed augmented matrix `[H(ordered) | s]`, row-major.
    pub(crate) aug: Vec<u64>,
    /// Pivot column (in permuted coordinates) of each pivot row, in row order.
    pub(crate) pivot_cols: Vec<usize>,
    /// OSD solution in permuted coordinates.
    pub(crate) solution_ordered: Vec<bool>,
}

impl DecoderScratch {
    /// Creates an empty workspace; buffers are sized on first decode.
    pub fn new() -> Self {
        Self::default()
    }

    /// The error estimate produced by the most recent `decode_into` call.
    ///
    /// After [`crate::bp::BeliefPropagation::decode_into`] this is the BP hard
    /// decision; after [`crate::osd::OsdDecoder::decode_into`] returns `true`, or
    /// after [`crate::bposd::BpOsdDecoder::decode_into`], it is the final solution.
    pub fn error(&self) -> &[bool] {
        &self.error
    }

    /// The posterior log-likelihood ratios of the most recent BP run.
    pub fn llrs(&self) -> &[f64] {
        &self.llrs
    }

    /// How many per-bit-priors decodes rebuilt the channel-LLR vector (i.e. missed
    /// the priors-LLR cache). The steady state of a structured-channel Monte-Carlo
    /// run rebuilds once and hits thereafter.
    pub fn priors_rebuilds(&self) -> usize {
        self.priors_rebuilds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_scratch_is_empty() {
        let s = DecoderScratch::new();
        assert!(s.error().is_empty());
        assert!(s.llrs().is_empty());
        assert!(s.cached_uniform.is_none());
        assert!(s.cached_priors_key.is_none());
        assert_eq!(s.priors_rebuilds(), 0);
    }
}
