//! Sparse binary parity-check matrices for iterative decoding.
//!
//! [`SparseBinMat`] stores a parity-check matrix as row and column adjacency lists —
//! the natural representation for belief propagation, where messages flow along the
//! edges of the Tanner graph.

use qec::linalg::BitMat;

/// A sparse binary matrix stored as row supports and column supports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparseBinMat {
    num_rows: usize,
    num_cols: usize,
    rows: Vec<Vec<usize>>,
    cols: Vec<Vec<usize>>,
}

impl SparseBinMat {
    /// Builds a sparse matrix from row supports.
    ///
    /// # Panics
    ///
    /// Panics if any column index is out of range.
    pub fn from_row_supports(num_cols: usize, rows: Vec<Vec<usize>>) -> Self {
        let num_rows = rows.len();
        let mut cols = vec![Vec::new(); num_cols];
        for (r, support) in rows.iter().enumerate() {
            for &c in support {
                assert!(c < num_cols, "column {c} out of range ({num_cols})");
                cols[c].push(r);
            }
        }
        SparseBinMat {
            num_rows,
            num_cols,
            rows,
            cols,
        }
    }

    /// Converts a dense GF(2) matrix.
    pub fn from_bitmat(m: &BitMat) -> Self {
        Self::from_row_supports(m.num_cols(), m.to_row_supports())
    }

    /// Number of rows (checks).
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns (variables).
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// Support of row `r`.
    pub fn row(&self, r: usize) -> &[usize] {
        &self.rows[r]
    }

    /// Support of column `c`.
    pub fn col(&self, c: usize) -> &[usize] {
        &self.cols[c]
    }

    /// Total number of nonzero entries.
    pub fn num_entries(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// Computes the syndrome `H·e` of an error pattern.
    ///
    /// # Panics
    ///
    /// Panics if `error.len() != num_cols`.
    pub fn syndrome(&self, error: &[bool]) -> Vec<bool> {
        assert_eq!(error.len(), self.num_cols, "error length mismatch");
        self.rows
            .iter()
            .map(|row| row.iter().fold(false, |acc, &c| acc ^ error[c]))
            .collect()
    }

    /// Computes the syndrome `H·e` into a caller-owned buffer (no allocation once the
    /// buffer has reached `num_rows` capacity).
    ///
    /// # Panics
    ///
    /// Panics if `error.len() != num_cols`.
    // cyclone-lint: hot-path
    pub fn syndrome_into(&self, error: &[bool], out: &mut Vec<bool>) {
        assert_eq!(error.len(), self.num_cols, "error length mismatch");
        out.clear();
        out.extend(
            self.rows
                .iter()
                .map(|row| row.iter().fold(false, |acc, &c| acc ^ error[c])),
        );
    }
    // cyclone-lint: end-hot-path

    /// Returns a dense copy.
    pub fn to_bitmat(&self) -> BitMat {
        BitMat::from_row_supports(self.num_rows, self.num_cols, &self.rows)
    }

    /// Word-sliced syndrome extraction for bit-sliced batch decoding: `err_words`
    /// holds 64 error patterns *column-major* (bit `k` of `err_words[c]` is pattern
    /// `k`'s value at variable `c`), and `out[r]` receives the 64 syndromes of
    /// check `r` in the same bit positions — one XOR per nonzero entry of `H`
    /// serves all 64 patterns at once.
    ///
    /// # Panics
    ///
    /// Panics if `err_words.len() != num_cols`.
    // cyclone-lint: hot-path
    pub fn syndrome_words_into(&self, err_words: &[u64], out: &mut Vec<u64>) {
        assert_eq!(err_words.len(), self.num_cols, "error length mismatch");
        out.clear();
        out.extend(
            self.rows
                .iter()
                .map(|row| row.iter().fold(0u64, |acc, &c| acc ^ err_words[c])),
        );
    }
    // cyclone-lint: end-hot-path
}

/// A flattened (CSR-style) Tanner graph derived from a [`SparseBinMat`].
///
/// Edges (nonzero entries of `H`) are numbered row-major: edge ids of check `r` are
/// the contiguous range `row_ptr[r]..row_ptr[r + 1]`, and `col_of_edge` maps each edge
/// to its variable. The column side indexes the *same* edge ids, grouped per variable
/// in ascending-check order, so belief propagation can store both message directions
/// in two flat `f64` arenas indexed by edge id — no per-decode adjacency rebuild and
/// no nested `Vec`s on the hot path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TannerGraph {
    num_checks: usize,
    num_vars: usize,
    row_ptr: Vec<usize>,
    col_of_edge: Vec<usize>,
    col_ptr: Vec<usize>,
    col_edges: Vec<usize>,
}

impl TannerGraph {
    /// Flattens the Tanner graph of a parity-check matrix.
    pub fn new(h: &SparseBinMat) -> Self {
        let m = h.num_rows();
        let n = h.num_cols();
        let mut row_ptr = Vec::with_capacity(m + 1);
        let mut col_of_edge = Vec::with_capacity(h.num_entries());
        row_ptr.push(0);
        for r in 0..m {
            col_of_edge.extend_from_slice(h.row(r));
            row_ptr.push(col_of_edge.len());
        }
        // Column-side edge index: bucket edge ids by variable. Scanning edges in
        // ascending id order fills each bucket in ascending-check order, matching the
        // iteration order of the per-decode `col_slots` rebuild this replaces (so
        // floating-point accumulation order — and thus every LER estimate — is
        // bit-identical).
        let mut col_ptr = vec![0usize; n + 1];
        for &c in &col_of_edge {
            col_ptr[c + 1] += 1;
        }
        for c in 0..n {
            col_ptr[c + 1] += col_ptr[c];
        }
        let mut fill = col_ptr.clone();
        let mut col_edges = vec![0usize; col_of_edge.len()];
        for (e, &c) in col_of_edge.iter().enumerate() {
            col_edges[fill[c]] = e;
            fill[c] += 1;
        }
        TannerGraph {
            num_checks: m,
            num_vars: n,
            row_ptr,
            col_of_edge,
            col_ptr,
            col_edges,
        }
    }

    /// Number of checks (rows of `H`).
    pub fn num_checks(&self) -> usize {
        self.num_checks
    }

    /// Number of variables (columns of `H`).
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Total number of edges (nonzero entries of `H`).
    pub fn num_edges(&self) -> usize {
        self.col_of_edge.len()
    }

    /// The contiguous edge-id range of check `r`.
    #[inline]
    pub fn check_edges(&self, r: usize) -> std::ops::Range<usize> {
        self.row_ptr[r]..self.row_ptr[r + 1]
    }

    /// The variable an edge touches.
    #[inline]
    pub fn var_of(&self, edge: usize) -> usize {
        self.col_of_edge[edge]
    }

    /// The edge ids incident to variable `c`, in ascending-check order.
    #[inline]
    pub fn var_edges(&self, c: usize) -> &[usize] {
        &self.col_edges[self.col_ptr[c]..self.col_ptr[c + 1]]
    }

    /// Every edge's variable, indexed by edge id (the flat CSR column array —
    /// `edge_vars()[e] == var_of(e)` without the per-call indexing).
    #[inline]
    pub fn edge_vars(&self) -> &[usize] {
        &self.col_of_edge
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_with_bitmat() {
        let m = BitMat::from_dense(&[vec![1, 0, 1], vec![0, 1, 1]]);
        let s = SparseBinMat::from_bitmat(&m);
        assert_eq!(s.num_rows(), 2);
        assert_eq!(s.num_cols(), 3);
        assert_eq!(s.num_entries(), 4);
        assert_eq!(s.to_bitmat(), m);
    }

    #[test]
    fn syndrome_matches_dense() {
        let m = BitMat::from_dense(&[vec![1, 1, 0], vec![0, 1, 1]]);
        let s = SparseBinMat::from_bitmat(&m);
        let e = vec![true, false, true];
        assert_eq!(s.syndrome(&e), m.mul_vec(&e));
    }

    #[test]
    fn column_supports() {
        let s = SparseBinMat::from_row_supports(3, vec![vec![0, 2], vec![1, 2]]);
        assert_eq!(s.col(2), &[0, 1]);
        assert_eq!(s.col(0), &[0]);
    }

    #[test]
    fn syndrome_into_matches_allocating_syndrome() {
        let m = BitMat::from_dense(&[vec![1, 1, 0], vec![0, 1, 1]]);
        let s = SparseBinMat::from_bitmat(&m);
        let e = vec![true, false, true];
        let mut out = vec![true; 7]; // stale, over-long contents must be replaced
        s.syndrome_into(&e, &mut out);
        assert_eq!(out, s.syndrome(&e));
    }

    #[test]
    fn syndrome_words_match_per_pattern_syndromes() {
        // Pack 64 random-ish error patterns column-major and check every bit lane
        // against the per-pattern bool syndrome.
        let s = SparseBinMat::from_row_supports(5, vec![vec![0, 1, 4], vec![1, 2], vec![2, 3, 4]]);
        let mut err_words = vec![0u64; 5];
        for k in 0..64u64 {
            for (c, word) in err_words.iter_mut().enumerate() {
                // An arbitrary deterministic pattern mixing lane and column.
                if (k.wrapping_mul(0x9E37_79B9) >> c) & 1 == 1 {
                    *word |= 1 << k;
                }
            }
        }
        let mut syn_words = Vec::new();
        s.syndrome_words_into(&err_words, &mut syn_words);
        for k in 0..64 {
            let e: Vec<bool> = (0..5).map(|c| (err_words[c] >> k) & 1 == 1).collect();
            let expect = s.syndrome(&e);
            for (r, &want) in expect.iter().enumerate() {
                assert_eq!((syn_words[r] >> k) & 1 == 1, want, "lane {k} check {r}");
            }
        }
    }

    #[test]
    fn tanner_graph_flattens_both_sides() {
        // H = [1 0 1; 0 1 1] → edges 0:(r0,c0) 1:(r0,c2) 2:(r1,c1) 3:(r1,c2)
        let s = SparseBinMat::from_row_supports(3, vec![vec![0, 2], vec![1, 2]]);
        let g = TannerGraph::new(&s);
        assert_eq!(g.num_checks(), 2);
        assert_eq!(g.num_vars(), 3);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.check_edges(0), 0..2);
        assert_eq!(g.check_edges(1), 2..4);
        assert_eq!(g.var_of(1), 2);
        assert_eq!(g.var_edges(2), &[1, 3]);
        assert_eq!(g.var_edges(0), &[0]);
        assert_eq!(g.var_edges(1), &[2]);
    }

    #[test]
    fn tanner_graph_column_order_is_check_ascending() {
        let s = SparseBinMat::from_row_supports(2, vec![vec![0], vec![0], vec![0, 1]]);
        let g = TannerGraph::new(&s);
        // Column 0 is touched by checks 0, 1, 2 via edges 0, 1, 2 in that order.
        assert_eq!(g.var_edges(0), &[0, 1, 2]);
        assert_eq!(g.var_of(2), 0);
    }
}
