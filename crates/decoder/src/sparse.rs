//! Sparse binary parity-check matrices for iterative decoding.
//!
//! [`SparseBinMat`] stores a parity-check matrix as row and column adjacency lists —
//! the natural representation for belief propagation, where messages flow along the
//! edges of the Tanner graph.

use qec::linalg::BitMat;

/// A sparse binary matrix stored as row supports and column supports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparseBinMat {
    num_rows: usize,
    num_cols: usize,
    rows: Vec<Vec<usize>>,
    cols: Vec<Vec<usize>>,
}

impl SparseBinMat {
    /// Builds a sparse matrix from row supports.
    ///
    /// # Panics
    ///
    /// Panics if any column index is out of range.
    pub fn from_row_supports(num_cols: usize, rows: Vec<Vec<usize>>) -> Self {
        let num_rows = rows.len();
        let mut cols = vec![Vec::new(); num_cols];
        for (r, support) in rows.iter().enumerate() {
            for &c in support {
                assert!(c < num_cols, "column {c} out of range ({num_cols})");
                cols[c].push(r);
            }
        }
        SparseBinMat {
            num_rows,
            num_cols,
            rows,
            cols,
        }
    }

    /// Converts a dense GF(2) matrix.
    pub fn from_bitmat(m: &BitMat) -> Self {
        Self::from_row_supports(m.num_cols(), m.to_row_supports())
    }

    /// Number of rows (checks).
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns (variables).
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// Support of row `r`.
    pub fn row(&self, r: usize) -> &[usize] {
        &self.rows[r]
    }

    /// Support of column `c`.
    pub fn col(&self, c: usize) -> &[usize] {
        &self.cols[c]
    }

    /// Total number of nonzero entries.
    pub fn num_entries(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// Computes the syndrome `H·e` of an error pattern.
    ///
    /// # Panics
    ///
    /// Panics if `error.len() != num_cols`.
    pub fn syndrome(&self, error: &[bool]) -> Vec<bool> {
        assert_eq!(error.len(), self.num_cols, "error length mismatch");
        self.rows
            .iter()
            .map(|row| row.iter().fold(false, |acc, &c| acc ^ error[c]))
            .collect()
    }

    /// Computes the syndrome `H·e` into a caller-owned buffer (no allocation once the
    /// buffer has reached `num_rows` capacity).
    ///
    /// # Panics
    ///
    /// Panics if `error.len() != num_cols`.
    // cyclone-lint: hot-path
    pub fn syndrome_into(&self, error: &[bool], out: &mut Vec<bool>) {
        assert_eq!(error.len(), self.num_cols, "error length mismatch");
        out.clear();
        out.extend(
            self.rows
                .iter()
                .map(|row| row.iter().fold(false, |acc, &c| acc ^ error[c])),
        );
    }
    // cyclone-lint: end-hot-path

    /// Returns a dense copy.
    pub fn to_bitmat(&self) -> BitMat {
        BitMat::from_row_supports(self.num_rows, self.num_cols, &self.rows)
    }

    /// Word-sliced syndrome extraction for bit-sliced batch decoding: `err_words`
    /// holds 64 error patterns *column-major* (bit `k` of `err_words[c]` is pattern
    /// `k`'s value at variable `c`), and `out[r]` receives the 64 syndromes of
    /// check `r` in the same bit positions — one XOR per nonzero entry of `H`
    /// serves all 64 patterns at once.
    ///
    /// # Panics
    ///
    /// Panics if `err_words.len() != num_cols`.
    // cyclone-lint: hot-path
    pub fn syndrome_words_into(&self, err_words: &[u64], out: &mut Vec<u64>) {
        assert_eq!(err_words.len(), self.num_cols, "error length mismatch");
        out.clear();
        out.extend(
            self.rows
                .iter()
                .map(|row| row.iter().fold(0u64, |acc, &c| acc ^ err_words[c])),
        );
    }
    // cyclone-lint: end-hot-path
}

/// Lane width of the row-interleaved SIMD layout: checks are processed in
/// groups of four, one per `f64` lane of an AVX2 vector. SSE2 kernels walk the
/// same layout as two 2-lane halves, so one layout serves every dispatched ISA
/// (see [`crate::simd`]).
pub const PAD_LANES: usize = 4;

/// A flattened (CSR-style) Tanner graph derived from a [`SparseBinMat`].
///
/// Edges (nonzero entries of `H`) are numbered row-major: edge ids of check `r` are
/// the contiguous range `row_ptr[r]..row_ptr[r + 1]`, and `col_of_edge` maps each edge
/// to its variable. The column side indexes the *same* edge ids, grouped per variable
/// in ascending-check order, so belief propagation can store both message directions
/// in two flat `f64` arenas indexed by edge id — no per-decode adjacency rebuild and
/// no nested `Vec`s on the hot path.
///
/// Alongside the exact layout, the graph carries a **row-interleaved** slot
/// numbering for the SIMD check pass ([`crate::simd`]): checks are processed in
/// groups of [`PAD_LANES`], lane = check, so every per-row reduction — sign
/// parity (XOR of `msg < 0.0` predicates) and the two-smallest-magnitude scan —
/// stays entirely lane-wise with *no* horizontal combine. Group `g` owns slots
/// `group_ptr[g]..group_ptr[g + 1]`: slot `group_ptr[g] + j·PAD_LANES + lane`
/// holds message `j` of check `g·PAD_LANES + lane`, and the group's depth is
/// the maximum degree among its checks. Slots past a check's degree (and whole
/// lanes past `num_checks` in the last group) are padding: they hold
/// neutral-element messages (`+∞` magnitude, positive sign), are written once
/// at decode start, and are never touched again — the variable pass walks only
/// the real edges through [`TannerGraph::edge_slots`], in exactly the
/// row-major order the (order-sensitive) scalar accumulation uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TannerGraph {
    num_checks: usize,
    num_vars: usize,
    row_ptr: Vec<usize>,
    col_of_edge: Vec<usize>,
    col_ptr: Vec<usize>,
    col_edges: Vec<usize>,
    /// Interleaved group pointers: row group `g` (checks
    /// `g·PAD_LANES..(g+1)·PAD_LANES`) owns slots `group_ptr[g]..group_ptr[g+1]`,
    /// always a multiple of [`PAD_LANES`] long.
    group_ptr: Vec<usize>,
    /// Interleaved slot of each real edge, indexed by row-major edge id.
    edge_slots: Vec<u32>,
    /// Interleaved slots holding no real edge (ascending) — the complement of
    /// `edge_slots` over `0..num_interleaved_slots()`.
    pad_slots: Vec<u32>,
}

impl TannerGraph {
    /// Flattens the Tanner graph of a parity-check matrix.
    pub fn new(h: &SparseBinMat) -> Self {
        let m = h.num_rows();
        let n = h.num_cols();
        let mut row_ptr = Vec::with_capacity(m + 1);
        let mut col_of_edge = Vec::with_capacity(h.num_entries());
        row_ptr.push(0);
        for r in 0..m {
            col_of_edge.extend_from_slice(h.row(r));
            row_ptr.push(col_of_edge.len());
        }
        // Column-side edge index: bucket edge ids by variable. Scanning edges in
        // ascending id order fills each bucket in ascending-check order, matching the
        // iteration order of the per-decode `col_slots` rebuild this replaces (so
        // floating-point accumulation order — and thus every LER estimate — is
        // bit-identical).
        let mut col_ptr = vec![0usize; n + 1];
        for &c in &col_of_edge {
            col_ptr[c + 1] += 1;
        }
        for c in 0..n {
            col_ptr[c + 1] += col_ptr[c];
        }
        let mut fill = col_ptr.clone();
        let mut col_edges = vec![0usize; col_of_edge.len()];
        for (e, &c) in col_of_edge.iter().enumerate() {
            col_edges[fill[c]] = e;
            fill[c] += 1;
        }
        // Row-interleaved layout: lane = check within its group of PAD_LANES,
        // group depth = the maximum degree among the group's checks. Message j
        // of check r lands at slot `group_ptr[g] + j·PAD_LANES + (r mod
        // PAD_LANES)`, so a group's messages at position j form one contiguous
        // vector across its lanes.
        let groups = m.div_ceil(PAD_LANES);
        let mut group_ptr = Vec::with_capacity(groups + 1);
        let mut edge_slots = vec![0u32; col_of_edge.len()];
        group_ptr.push(0);
        let mut base = 0usize;
        for g in 0..groups {
            let first = g * PAD_LANES;
            let last = (first + PAD_LANES).min(m);
            let depth = (first..last).map(|r| h.row(r).len()).max().unwrap_or(0);
            for (lane, r) in (first..last).enumerate() {
                for (j, slot) in edge_slots[row_ptr[r]..row_ptr[r + 1]]
                    .iter_mut()
                    .enumerate()
                {
                    *slot = u32::try_from(base + j * PAD_LANES + lane)
                        .expect("interleaved arena exceeds u32 slot indexing");
                }
            }
            base += depth * PAD_LANES;
            group_ptr.push(base);
        }
        // Complement of `edge_slots` over the arena: the padding slots the BP
        // per-decode init must neutralize (`+∞`). Precomputing the list keeps
        // that init proportional to the padding (typically a small fraction of
        // the arena) instead of a full-arena fill.
        let mut is_real = vec![false; base];
        for &slot in &edge_slots {
            is_real[slot as usize] = true;
        }
        let pad_slots: Vec<u32> = (0..base as u32).filter(|&s| !is_real[s as usize]).collect();
        TannerGraph {
            num_checks: m,
            num_vars: n,
            row_ptr,
            col_of_edge,
            col_ptr,
            col_edges,
            group_ptr,
            edge_slots,
            pad_slots,
        }
    }

    /// Number of checks (rows of `H`).
    pub fn num_checks(&self) -> usize {
        self.num_checks
    }

    /// Number of variables (columns of `H`).
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Total number of edges (nonzero entries of `H`).
    pub fn num_edges(&self) -> usize {
        self.col_of_edge.len()
    }

    /// The contiguous edge-id range of check `r`.
    #[inline]
    pub fn check_edges(&self, r: usize) -> std::ops::Range<usize> {
        self.row_ptr[r]..self.row_ptr[r + 1]
    }

    /// The variable an edge touches.
    #[inline]
    pub fn var_of(&self, edge: usize) -> usize {
        self.col_of_edge[edge]
    }

    /// The edge ids incident to variable `c`, in ascending-check order.
    #[inline]
    pub fn var_edges(&self, c: usize) -> &[usize] {
        &self.col_edges[self.col_ptr[c]..self.col_ptr[c + 1]]
    }

    /// Every edge's variable, indexed by edge id (the flat CSR column array —
    /// `edge_vars()[e] == var_of(e)` without the per-call indexing).
    #[inline]
    pub fn edge_vars(&self) -> &[usize] {
        &self.col_of_edge
    }

    /// Total number of interleaved slots (real edges plus padding), i.e. the
    /// length of the SIMD message arenas.
    #[inline]
    pub fn num_interleaved_slots(&self) -> usize {
        *self.group_ptr.last().expect("group_ptr is never empty")
    }

    /// Number of row groups (`num_checks` rounded up to [`PAD_LANES`] lanes).
    #[inline]
    pub fn num_row_groups(&self) -> usize {
        self.group_ptr.len() - 1
    }

    /// The interleaved group-pointer array (`num_row_groups() + 1` entries,
    /// every span a multiple of [`PAD_LANES`]).
    #[inline]
    pub fn group_ptr(&self) -> &[usize] {
        &self.group_ptr
    }

    /// The interleaved slot of each real edge, indexed by row-major edge id —
    /// the bridge the (order-sensitive) scalar variable pass uses to read and
    /// write the interleaved message arenas in exact row-major edge order.
    #[inline]
    pub fn edge_slots(&self) -> &[u32] {
        &self.edge_slots
    }

    /// The interleaved slots that hold no real edge, ascending — the padding
    /// positions the SIMD per-decode init neutralizes with `+∞`.
    #[inline]
    pub fn pad_slots(&self) -> &[u32] {
        &self.pad_slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_with_bitmat() {
        let m = BitMat::from_dense(&[vec![1, 0, 1], vec![0, 1, 1]]);
        let s = SparseBinMat::from_bitmat(&m);
        assert_eq!(s.num_rows(), 2);
        assert_eq!(s.num_cols(), 3);
        assert_eq!(s.num_entries(), 4);
        assert_eq!(s.to_bitmat(), m);
    }

    #[test]
    fn syndrome_matches_dense() {
        let m = BitMat::from_dense(&[vec![1, 1, 0], vec![0, 1, 1]]);
        let s = SparseBinMat::from_bitmat(&m);
        let e = vec![true, false, true];
        assert_eq!(s.syndrome(&e), m.mul_vec(&e));
    }

    #[test]
    fn column_supports() {
        let s = SparseBinMat::from_row_supports(3, vec![vec![0, 2], vec![1, 2]]);
        assert_eq!(s.col(2), &[0, 1]);
        assert_eq!(s.col(0), &[0]);
    }

    #[test]
    fn syndrome_into_matches_allocating_syndrome() {
        let m = BitMat::from_dense(&[vec![1, 1, 0], vec![0, 1, 1]]);
        let s = SparseBinMat::from_bitmat(&m);
        let e = vec![true, false, true];
        let mut out = vec![true; 7]; // stale, over-long contents must be replaced
        s.syndrome_into(&e, &mut out);
        assert_eq!(out, s.syndrome(&e));
    }

    #[test]
    fn syndrome_words_match_per_pattern_syndromes() {
        // Pack 64 random-ish error patterns column-major and check every bit lane
        // against the per-pattern bool syndrome.
        let s = SparseBinMat::from_row_supports(5, vec![vec![0, 1, 4], vec![1, 2], vec![2, 3, 4]]);
        let mut err_words = vec![0u64; 5];
        for k in 0..64u64 {
            for (c, word) in err_words.iter_mut().enumerate() {
                // An arbitrary deterministic pattern mixing lane and column.
                if (k.wrapping_mul(0x9E37_79B9) >> c) & 1 == 1 {
                    *word |= 1 << k;
                }
            }
        }
        let mut syn_words = Vec::new();
        s.syndrome_words_into(&err_words, &mut syn_words);
        for k in 0..64 {
            let e: Vec<bool> = (0..5).map(|c| (err_words[c] >> k) & 1 == 1).collect();
            let expect = s.syndrome(&e);
            for (r, &want) in expect.iter().enumerate() {
                assert_eq!((syn_words[r] >> k) & 1 == 1, want, "lane {k} check {r}");
            }
        }
    }

    #[test]
    fn tanner_graph_flattens_both_sides() {
        // H = [1 0 1; 0 1 1] → edges 0:(r0,c0) 1:(r0,c2) 2:(r1,c1) 3:(r1,c2)
        let s = SparseBinMat::from_row_supports(3, vec![vec![0, 2], vec![1, 2]]);
        let g = TannerGraph::new(&s);
        assert_eq!(g.num_checks(), 2);
        assert_eq!(g.num_vars(), 3);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.check_edges(0), 0..2);
        assert_eq!(g.check_edges(1), 2..4);
        assert_eq!(g.var_of(1), 2);
        assert_eq!(g.var_edges(2), &[1, 3]);
        assert_eq!(g.var_edges(0), &[0]);
        assert_eq!(g.var_edges(1), &[2]);
    }

    #[test]
    fn tanner_graph_column_order_is_check_ascending() {
        let s = SparseBinMat::from_row_supports(2, vec![vec![0], vec![0], vec![0, 1]]);
        let g = TannerGraph::new(&s);
        // Column 0 is touched by checks 0, 1, 2 via edges 0, 1, 2 in that order.
        assert_eq!(g.var_edges(0), &[0, 1, 2]);
        assert_eq!(g.var_of(2), 0);
    }

    /// The row-interleaved construction invariants the SIMD check pass relies
    /// on: lane-aligned group spans sized by the group's maximum degree, slot
    /// `group_base + j·PAD_LANES + lane` holding message `j` of check
    /// `group·PAD_LANES + lane`, and every real edge owning a unique in-bounds
    /// slot.
    #[test]
    fn interleaved_layout_invariants() {
        // Degrees 1, 4, 0 (empty), 3 | 9 — mixed degrees within a group plus a
        // partial trailing group with phantom lanes.
        let rows = vec![
            vec![2],
            vec![0, 1, 2, 3],
            vec![],
            vec![1, 3, 4],
            vec![0, 1, 2, 3, 4, 5, 6, 7, 8],
        ];
        let s = SparseBinMat::from_row_supports(9, rows.clone());
        let g = TannerGraph::new(&s);
        assert_eq!(g.num_row_groups(), rows.len().div_ceil(PAD_LANES));
        let ptr = g.group_ptr();
        assert_eq!(ptr.len(), g.num_row_groups() + 1);
        assert_eq!(ptr[0], 0);
        for grp in 0..g.num_row_groups() {
            let first = grp * PAD_LANES;
            let last = (first + PAD_LANES).min(rows.len());
            let depth = (first..last).map(|r| rows[r].len()).max().unwrap_or(0);
            assert_eq!(
                ptr[grp + 1] - ptr[grp],
                depth * PAD_LANES,
                "group {grp} span must be max-degree × lanes"
            );
        }
        assert_eq!(g.num_interleaved_slots(), *ptr.last().unwrap());
        // Each real edge's slot encodes (group, position, lane) of its check.
        assert_eq!(g.edge_slots().len(), g.num_edges());
        let mut edge = 0usize;
        let mut seen = vec![false; g.num_interleaved_slots()];
        for (r, row) in rows.iter().enumerate() {
            for j in 0..row.len() {
                let slot = g.edge_slots()[edge] as usize;
                let expect = ptr[r / PAD_LANES] + j * PAD_LANES + (r % PAD_LANES);
                assert_eq!(slot, expect, "edge {edge} (check {r}, msg {j})");
                assert!(!seen[slot], "slot {slot} assigned twice");
                seen[slot] = true;
                edge += 1;
            }
        }
        // `pad_slots` is exactly the ascending complement of the real-edge
        // slots, so edge scatter + pad fill together touch every slot once.
        let pads: Vec<usize> = g.pad_slots().iter().map(|&s| s as usize).collect();
        let expect_pads: Vec<usize> = (0..g.num_interleaved_slots())
            .filter(|&s| !seen[s])
            .collect();
        assert_eq!(pads, expect_pads);
        assert_eq!(pads.len() + g.num_edges(), g.num_interleaved_slots());
    }
}
