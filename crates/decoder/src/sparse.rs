//! Sparse binary parity-check matrices for iterative decoding.
//!
//! [`SparseBinMat`] stores a parity-check matrix as row and column adjacency lists —
//! the natural representation for belief propagation, where messages flow along the
//! edges of the Tanner graph.

use qec::linalg::BitMat;

/// A sparse binary matrix stored as row supports and column supports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparseBinMat {
    num_rows: usize,
    num_cols: usize,
    rows: Vec<Vec<usize>>,
    cols: Vec<Vec<usize>>,
}

impl SparseBinMat {
    /// Builds a sparse matrix from row supports.
    ///
    /// # Panics
    ///
    /// Panics if any column index is out of range.
    pub fn from_row_supports(num_cols: usize, rows: Vec<Vec<usize>>) -> Self {
        let num_rows = rows.len();
        let mut cols = vec![Vec::new(); num_cols];
        for (r, support) in rows.iter().enumerate() {
            for &c in support {
                assert!(c < num_cols, "column {c} out of range ({num_cols})");
                cols[c].push(r);
            }
        }
        SparseBinMat {
            num_rows,
            num_cols,
            rows,
            cols,
        }
    }

    /// Converts a dense GF(2) matrix.
    pub fn from_bitmat(m: &BitMat) -> Self {
        Self::from_row_supports(m.num_cols(), m.to_row_supports())
    }

    /// Number of rows (checks).
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns (variables).
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// Support of row `r`.
    pub fn row(&self, r: usize) -> &[usize] {
        &self.rows[r]
    }

    /// Support of column `c`.
    pub fn col(&self, c: usize) -> &[usize] {
        &self.cols[c]
    }

    /// Total number of nonzero entries.
    pub fn num_entries(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// Computes the syndrome `H·e` of an error pattern.
    ///
    /// # Panics
    ///
    /// Panics if `error.len() != num_cols`.
    pub fn syndrome(&self, error: &[bool]) -> Vec<bool> {
        assert_eq!(error.len(), self.num_cols, "error length mismatch");
        self.rows
            .iter()
            .map(|row| row.iter().fold(false, |acc, &c| acc ^ error[c]))
            .collect()
    }

    /// Returns a dense copy.
    pub fn to_bitmat(&self) -> BitMat {
        BitMat::from_row_supports(self.num_rows, self.num_cols, &self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_with_bitmat() {
        let m = BitMat::from_dense(&[vec![1, 0, 1], vec![0, 1, 1]]);
        let s = SparseBinMat::from_bitmat(&m);
        assert_eq!(s.num_rows(), 2);
        assert_eq!(s.num_cols(), 3);
        assert_eq!(s.num_entries(), 4);
        assert_eq!(s.to_bitmat(), m);
    }

    #[test]
    fn syndrome_matches_dense() {
        let m = BitMat::from_dense(&[vec![1, 1, 0], vec![0, 1, 1]]);
        let s = SparseBinMat::from_bitmat(&m);
        let e = vec![true, false, true];
        assert_eq!(s.syndrome(&e), m.mul_vec(&e));
    }

    #[test]
    fn column_supports() {
        let s = SparseBinMat::from_row_supports(3, vec![vec![0, 2], vec![1, 2]]);
        assert_eq!(s.col(2), &[0, 1]);
        assert_eq!(s.col(0), &[0]);
    }
}
