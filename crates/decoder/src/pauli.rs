//! Pauli-frame simulation of CSS syndrome-extraction circuits.
//!
//! The simulator tracks an X-frame and a Z-frame bit per qubit (data and ancilla) and
//! propagates them through the entangling gates of a syndrome-extraction schedule,
//! injecting stochastic depolarizing faults after every operation — the standard
//! circuit-level noise model. It is used to validate the faster effective-error-rate
//! memory model and to run circuit-level experiments on the smaller codes.

use qec::schedule::Schedule;
use qec::{CssCode, StabKind};
use rand::Rng;

/// Stochastic fault probabilities for the circuit-level model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CircuitNoise {
    /// Two-qubit depolarizing probability applied after every CX.
    pub two_qubit: f64,
    /// Preparation flip probability.
    pub preparation: f64,
    /// Measurement flip probability.
    pub measurement: f64,
    /// Per-qubit idle depolarizing probability applied once per round (latency-derived).
    pub idle: f64,
}

impl CircuitNoise {
    /// Uniform circuit-level noise at physical error rate `p` with no idle error.
    pub fn uniform(p: f64) -> Self {
        CircuitNoise {
            two_qubit: p,
            preparation: p,
            measurement: p,
            idle: 0.0,
        }
    }

    /// Adds a per-round idle (decoherence) error probability.
    pub fn with_idle(mut self, idle: f64) -> Self {
        self.idle = idle;
        self
    }
}

/// The per-qubit Pauli frame state of one simulation shot.
#[derive(Debug, Clone)]
pub struct PauliFrame {
    /// X-error indicator per data qubit.
    pub x_errors: Vec<bool>,
    /// Z-error indicator per data qubit.
    pub z_errors: Vec<bool>,
}

/// Result of simulating one noisy syndrome-extraction round.
#[derive(Debug, Clone)]
pub struct RoundOutcome {
    /// Measured (noisy) X-stabilizer outcomes — sensitive to Z errors on data.
    pub x_syndrome: Vec<bool>,
    /// Measured (noisy) Z-stabilizer outcomes — sensitive to X errors on data.
    pub z_syndrome: Vec<bool>,
    /// Residual Pauli frame on the data qubits after the round.
    pub frame: PauliFrame,
}

/// A circuit-level Pauli-frame simulator for one CSS code and schedule.
#[derive(Debug, Clone)]
pub struct PauliFrameSimulator<'a> {
    code: &'a CssCode,
    schedule: &'a Schedule,
    noise: CircuitNoise,
}

impl<'a> PauliFrameSimulator<'a> {
    /// Creates a simulator.
    pub fn new(code: &'a CssCode, schedule: &'a Schedule, noise: CircuitNoise) -> Self {
        PauliFrameSimulator {
            code,
            schedule,
            noise,
        }
    }

    /// The configured noise.
    pub fn noise(&self) -> CircuitNoise {
        self.noise
    }

    fn depolarize_single<R: Rng>(rng: &mut R, p: f64, x: &mut bool, z: &mut bool) {
        if p > 0.0 && rng.gen_bool(p) {
            match rng.gen_range(0..3) {
                0 => *x = !*x,
                1 => *z = !*z,
                _ => {
                    *x = !*x;
                    *z = !*z;
                }
            }
        }
    }

    fn depolarize_pair<R: Rng>(
        rng: &mut R,
        p: f64,
        ax: &mut bool,
        az: &mut bool,
        bx: &mut bool,
        bz: &mut bool,
    ) {
        if p > 0.0 && rng.gen_bool(p) {
            // Uniform over the 15 non-identity two-qubit Paulis.
            let k = rng.gen_range(1..16u8);
            let (pa, pb) = (k & 0b11, (k >> 2) & 0b11);
            if pa & 0b01 != 0 {
                *ax = !*ax;
            }
            if pa & 0b10 != 0 {
                *az = !*az;
            }
            if pb & 0b01 != 0 {
                *bx = !*bx;
            }
            if pb & 0b10 != 0 {
                *bz = !*bz;
            }
        }
    }

    /// Simulates one noisy syndrome-extraction round starting from an existing data
    /// frame (pass all-false frames for a fresh logical state).
    ///
    /// # Panics
    ///
    /// Panics if `initial.x_errors`/`z_errors` do not have one entry per data qubit.
    pub fn simulate_round<R: Rng>(&self, rng: &mut R, initial: &PauliFrame) -> RoundOutcome {
        let n = self.code.num_qubits();
        assert_eq!(initial.x_errors.len(), n, "frame size mismatch");
        assert_eq!(initial.z_errors.len(), n, "frame size mismatch");
        let mut dx = initial.x_errors.clone();
        let mut dz = initial.z_errors.clone();
        // Ancilla frames, indexed per sector.
        let mut ax_x = vec![false; self.code.num_x_stabilizers()];
        let mut ax_z = vec![false; self.code.num_x_stabilizers()];
        let mut az_x = vec![false; self.code.num_z_stabilizers()];
        let mut az_z = vec![false; self.code.num_z_stabilizers()];

        // Ancilla preparation faults: X ancilla prepared in |+> suffers Z flips; Z
        // ancilla prepared in |0> suffers X flips.
        for z in ax_z.iter_mut() {
            if rng.gen_bool(self.noise.preparation) {
                *z = true;
            }
        }
        for x in az_x.iter_mut() {
            if rng.gen_bool(self.noise.preparation) {
                *x = true;
            }
        }

        // Idle (decoherence) error on every data qubit, once per round.
        for q in 0..n {
            Self::depolarize_single(rng, self.noise.idle, &mut dx[q], &mut dz[q]);
        }

        // Entangling layer, slice by slice.
        for slice in self.schedule.slices() {
            for gate in slice {
                match gate.kind {
                    StabKind::X => {
                        // Ancilla (control, in |+>) -> data (target).
                        let a = gate.stabilizer;
                        let d = gate.data;
                        // CX propagation: X on control spreads to target; Z on target
                        // spreads to control.
                        dx[d] ^= ax_x[a];
                        ax_z[a] ^= dz[d];
                        Self::depolarize_pair(
                            rng,
                            self.noise.two_qubit,
                            &mut ax_x[a],
                            &mut ax_z[a],
                            &mut dx[d],
                            &mut dz[d],
                        );
                    }
                    StabKind::Z => {
                        // Data (control) -> ancilla (target, in |0>).
                        let a = gate.stabilizer;
                        let d = gate.data;
                        az_x[a] ^= dx[d];
                        dz[d] ^= az_z[a];
                        Self::depolarize_pair(
                            rng,
                            self.noise.two_qubit,
                            &mut dx[d],
                            &mut dz[d],
                            &mut az_x[a],
                            &mut az_z[a],
                        );
                    }
                }
            }
        }

        // Measurement: X ancilla measured in the X basis (flipped by its Z frame);
        // Z ancilla measured in the Z basis (flipped by its X frame).
        let x_syndrome: Vec<bool> = ax_z
            .iter()
            .map(|&flip| flip ^ rng.gen_bool(self.noise.measurement))
            .collect();
        let z_syndrome: Vec<bool> = az_x
            .iter()
            .map(|&flip| flip ^ rng.gen_bool(self.noise.measurement))
            .collect();

        RoundOutcome {
            x_syndrome,
            z_syndrome,
            frame: PauliFrame {
                x_errors: dx,
                z_errors: dz,
            },
        }
    }

    /// Simulates a round from a clean state.
    pub fn simulate_fresh_round<R: Rng>(&self, rng: &mut R) -> RoundOutcome {
        let n = self.code.num_qubits();
        let clean = PauliFrame {
            x_errors: vec![false; n],
            z_errors: vec![false; n],
        };
        self.simulate_round(rng, &clean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qec::codes::bb_72_12_6;
    use qec::schedule::parallel_xz_schedule;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noiseless_round_gives_zero_syndrome() {
        let code = bb_72_12_6().expect("valid");
        let sched = parallel_xz_schedule(&code);
        let sim = PauliFrameSimulator::new(&code, &sched, CircuitNoise::uniform(1e-12));
        let mut rng = StdRng::seed_from_u64(1);
        let out = sim.simulate_fresh_round(&mut rng);
        assert!(out.x_syndrome.iter().all(|&b| !b));
        assert!(out.z_syndrome.iter().all(|&b| !b));
        assert!(out.frame.x_errors.iter().all(|&b| !b));
    }

    #[test]
    fn preexisting_data_error_is_detected_without_noise() {
        let code = bb_72_12_6().expect("valid");
        let sched = parallel_xz_schedule(&code);
        let sim = PauliFrameSimulator::new(&code, &sched, CircuitNoise::uniform(1e-12));
        let mut rng = StdRng::seed_from_u64(2);
        let n = code.num_qubits();
        let mut frame = PauliFrame {
            x_errors: vec![false; n],
            z_errors: vec![false; n],
        };
        frame.x_errors[5] = true; // an X error should trigger Z-stabilizer syndrome
        let out = sim.simulate_round(&mut rng, &frame);
        let expected = code.z_syndrome(&frame.x_errors);
        assert_eq!(out.z_syndrome, expected);
        assert!(out.x_syndrome.iter().all(|&b| !b));
    }

    #[test]
    fn noise_produces_nonzero_syndromes_sometimes() {
        let code = bb_72_12_6().expect("valid");
        let sched = parallel_xz_schedule(&code);
        let sim = PauliFrameSimulator::new(&code, &sched, CircuitNoise::uniform(0.01));
        let mut rng = StdRng::seed_from_u64(3);
        let mut any = false;
        for _ in 0..50 {
            let out = sim.simulate_fresh_round(&mut rng);
            if out.x_syndrome.iter().any(|&b| b) || out.z_syndrome.iter().any(|&b| b) {
                any = true;
                break;
            }
        }
        assert!(
            any,
            "1% circuit noise should trip some stabilizer in 50 rounds"
        );
    }

    #[test]
    fn idle_noise_increases_error_frequency() {
        let code = bb_72_12_6().expect("valid");
        let sched = parallel_xz_schedule(&code);
        let mut rng = StdRng::seed_from_u64(4);
        let count_triggers = |idle: f64, rng: &mut StdRng| {
            let sim = PauliFrameSimulator::new(
                &code,
                &sched,
                CircuitNoise::uniform(1e-4).with_idle(idle),
            );
            (0..300)
                .filter(|_| {
                    let o = sim.simulate_fresh_round(rng);
                    o.x_syndrome.iter().any(|&b| b) || o.z_syndrome.iter().any(|&b| b)
                })
                .count()
        };
        let low = count_triggers(0.0, &mut rng);
        let high = count_triggers(0.05, &mut rng);
        assert!(
            high > low,
            "idle noise should create more syndrome events ({high} <= {low})"
        );
    }
}
