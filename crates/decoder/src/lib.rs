//! Decoding and logical-memory simulation for CSS codes.
//!
//! This crate provides the decoding substrate of the Cyclone reproduction:
//!
//! * a sparse binary matrix type and flattened (CSR) Tanner graphs ([`sparse`]),
//! * normalized min-sum belief propagation ([`bp`]) with an ordered-statistics
//!   fallback ([`osd`]), combined in [`bposd`],
//! * explicitly vectorized min-sum check-pass kernels with runtime ISA dispatch
//!   ([`simd`]), byte-identical to the scalar reference and overridable via
//!   `CYCLONE_SIMD`,
//! * reusable decode workspaces ([`scratch`]) backing the allocation-free
//!   `decode_into` hot paths,
//! * a circuit-level Pauli-frame simulator for syndrome-extraction circuits
//!   ([`pauli`]),
//! * and the Monte-Carlo logical-memory harness that couples compiled execution
//!   latency to decoherence noise ([`memory`]).
//!
//! # Example
//!
//! ```
//! use decoder::memory::{logical_error_rate, MemoryConfig};
//! use qec::codes::bb_72_12_6;
//!
//! let code = bb_72_12_6()?;
//! let cfg = MemoryConfig { shots: 200, ..Default::default() };
//! // A 1 ms round at p = 1e-3.
//! let estimate = logical_error_rate(&code, 1e-3, 1e-3, &cfg);
//! assert!(estimate.ler <= 1.0);
//! # Ok::<(), qec::QecError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bp;
pub mod bposd;
pub mod cache;
pub mod memory;
pub mod osd;
pub mod pauli;
pub mod scratch;
pub mod simd;
pub mod sparse;

pub use bposd::BpOsdDecoder;
pub use memory::{
    logical_error_rate, BatchScratch, LerEstimate, MemoryConfig, MemoryExperiment, ShotScratch,
};
pub use pauli::{CircuitNoise, PauliFrameSimulator};
pub use scratch::DecoderScratch;
pub use simd::{Simd, SimdIsa, SimdMode};
