//! Min-sum belief propagation over a binary Tanner graph.
//!
//! [`BeliefPropagation`] implements normalized min-sum flooding BP for syndrome
//! decoding: given a parity-check matrix `H`, per-bit prior error probabilities, and a
//! syndrome `s`, it estimates the posterior log-likelihood ratio of each bit being in
//! error and a hard decision `ê`. If `H·ê = s` the decoder has converged; otherwise
//! the caller typically falls back to ordered-statistics decoding ([`crate::osd`]).
//!
//! The Tanner graph is flattened to CSR edge arrays once at construction
//! ([`TannerGraph`]), and the hot path ([`BeliefPropagation::decode_into`]) keeps both
//! message directions in flat `f64` arenas indexed by edge id, borrowed from a
//! caller-owned [`DecoderScratch`] — zero heap allocation per decode in steady state.

use crate::scratch::DecoderScratch;
use crate::simd::{Simd, SimdIsa};
use crate::sparse::{SparseBinMat, TannerGraph, PAD_LANES};

/// A 64-bit FNV-1a digest over the exact bit patterns of a priors vector — the
/// content key of the priors-LLR cache (see
/// [`BeliefPropagation::decode_with_priors_keyed_into`]). Callers that hold a
/// priors buffer across many decodes compute this once per rebuild and pay a
/// single `u64` compare per decode instead of an O(n) float comparison.
pub fn priors_digest(priors: &[f64]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &p in priors {
        for byte in p.to_bits().to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// Result of a BP run (owning variant returned by the allocating wrappers).
#[derive(Debug, Clone, PartialEq)]
pub struct BpResult {
    /// Hard-decision error estimate (one entry per column of `H`).
    pub error: Vec<bool>,
    /// Posterior log-likelihood ratios (positive = probably no error).
    pub llrs: Vec<f64>,
    /// Whether the hard decision reproduces the syndrome.
    pub converged: bool,
    /// Number of iterations executed.
    pub iterations: usize,
}

/// Outcome of a scratch-borrowing BP run; the error estimate and posterior LLRs live
/// in the [`DecoderScratch`] that was passed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BpStatus {
    /// Whether the hard decision reproduces the syndrome.
    pub converged: bool,
    /// Number of iterations executed.
    pub iterations: usize,
}

/// Normalized min-sum belief propagation decoder.
#[derive(Debug, Clone)]
pub struct BeliefPropagation {
    h: SparseBinMat,
    graph: TannerGraph,
    max_iterations: usize,
    /// Min-sum normalization (scaling) factor, typically 0.625–1.0.
    scale: f64,
    /// Word-packed row supports of `h` (`mask_words` words per check), for the
    /// AND/XOR-popcount convergence check.
    check_masks: Vec<u64>,
    /// Words per check row in `check_masks`: `num_cols.div_ceil(64)`.
    mask_words: usize,
    /// Which check-pass implementation `propagate` dispatches to, decided once
    /// at construction ([`Simd::from_env`]); see [`crate::simd`].
    simd: Simd,
}

impl BeliefPropagation {
    /// Creates a decoder for the given parity-check matrix, flattening its Tanner
    /// graph once so no per-decode adjacency construction is needed.
    ///
    /// # Panics
    ///
    /// Panics if `max_iterations` is zero.
    pub fn new(h: SparseBinMat, max_iterations: usize) -> Self {
        assert!(max_iterations > 0, "need at least one BP iteration");
        let graph = TannerGraph::new(&h);
        let mask_words = h.num_cols().div_ceil(64);
        let mut check_masks = vec![0u64; h.num_rows() * mask_words];
        for r in 0..h.num_rows() {
            for &c in h.row(r) {
                check_masks[r * mask_words + (c >> 6)] |= 1 << (c & 63);
            }
        }
        BeliefPropagation {
            h,
            graph,
            max_iterations,
            scale: 0.75,
            check_masks,
            mask_words,
            simd: Simd::from_env(),
        }
    }

    /// Sets the min-sum normalization factor.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not in `(0, 1]`.
    pub fn with_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0,1]");
        self.scale = scale;
        self
    }

    /// Overrides the check-pass dispatch decided by [`Simd::from_env`] — how
    /// tests and benches pin the scalar reference and the vectorized path side
    /// by side regardless of `CYCLONE_SIMD`.
    pub fn with_simd(mut self, simd: Simd) -> Self {
        self.simd = simd;
        self
    }

    /// The check-pass dispatch this decoder runs with.
    pub fn simd(&self) -> Simd {
        self.simd
    }

    /// The parity-check matrix.
    pub fn matrix(&self) -> &SparseBinMat {
        &self.h
    }

    /// The flattened Tanner graph.
    pub fn graph(&self) -> &TannerGraph {
        &self.graph
    }

    /// Runs BP for a syndrome with uniform prior error probability `p`.
    pub fn decode(&self, syndrome: &[bool], p: f64) -> BpResult {
        let mut scratch = DecoderScratch::new();
        let status = self.decode_into(syndrome, p, &mut scratch);
        BpResult {
            error: scratch.error,
            llrs: scratch.llrs,
            converged: status.converged,
            iterations: status.iterations,
        }
    }

    /// Runs BP with per-bit prior error probabilities.
    ///
    /// # Panics
    ///
    /// Panics if dimensions do not match or a prior is outside `(0, 1)`.
    pub fn decode_with_priors(&self, syndrome: &[bool], priors: &[f64]) -> BpResult {
        let mut scratch = DecoderScratch::new();
        let status = self.decode_with_priors_into(syndrome, priors, &mut scratch);
        BpResult {
            error: scratch.error,
            llrs: scratch.llrs,
            converged: status.converged,
            iterations: status.iterations,
        }
    }

    /// Runs BP for a syndrome with uniform prior error probability `p`, borrowing all
    /// working buffers from `scratch`.
    ///
    /// The uniform channel LLR is cached in the scratch, so repeated decodes at the
    /// same `p` (the Monte-Carlo steady state) skip the per-bit `ln` recomputation.
    /// The error estimate and posterior LLRs are left in
    /// [`DecoderScratch::error`] / [`DecoderScratch::llrs`].
    ///
    /// # Panics
    ///
    /// Panics if dimensions do not match or `p` is outside `(0, 1)`.
    pub fn decode_into(&self, syndrome: &[bool], p: f64, scratch: &mut DecoderScratch) -> BpStatus {
        let n = self.h.num_cols();
        assert!(p > 0.0 && p < 1.0, "priors must be in (0,1)");
        if scratch.cached_uniform != Some((p, n)) {
            let llr = ((1.0 - p) / p).ln();
            scratch.channel_llr.clear();
            scratch.channel_llr.resize(n, llr);
            scratch.cached_uniform = Some((p, n));
            scratch.cached_priors_key = None;
        }
        self.propagate(syndrome, scratch)
    }

    /// Runs BP with per-bit prior error probabilities, borrowing all working buffers
    /// from `scratch` (see [`BeliefPropagation::decode_into`]).
    ///
    /// The LLR conversion is cached against a content digest of the priors
    /// ([`priors_digest`], computed here per call), so repeated decodes with equal
    /// priors — even from a rebuilt buffer — hit without an O(n) float compare.
    /// Callers that hold their priors fixed across many decodes should precompute
    /// the digest once and use
    /// [`BeliefPropagation::decode_with_priors_keyed_into`] instead.
    ///
    /// # Panics
    ///
    /// Panics if dimensions do not match or a prior is outside `(0, 1)`.
    pub fn decode_with_priors_into(
        &self,
        syndrome: &[bool],
        priors: &[f64],
        scratch: &mut DecoderScratch,
    ) -> BpStatus {
        self.decode_with_priors_keyed_into(syndrome, priors, priors_digest(priors), scratch)
    }

    /// [`BeliefPropagation::decode_with_priors_into`] with a caller-precomputed
    /// [`priors_digest`] key, making the steady-state cache hit a single `u64`
    /// compare. `key` must be the digest of `priors`; passing a stale key for a
    /// changed buffer silently decodes with the previously cached LLRs.
    ///
    /// Priors are validated (the `(0, 1)` range check) only when the cache misses
    /// and the LLR conversion actually runs — by construction a hit means an
    /// identical, already-validated vector was converted before.
    ///
    /// # Panics
    ///
    /// Panics if dimensions do not match, or — on a cache miss — if a prior is
    /// outside `(0, 1)`.
    pub fn decode_with_priors_keyed_into(
        &self,
        syndrome: &[bool],
        priors: &[f64],
        key: u64,
        scratch: &mut DecoderScratch,
    ) -> BpStatus {
        let n = self.h.num_cols();
        assert_eq!(priors.len(), n, "one prior per variable required");
        debug_assert_eq!(key, priors_digest(priors), "key is not the priors digest");
        if scratch.cached_priors_key != Some((key, n)) {
            scratch.cached_uniform = None;
            scratch.channel_llr.clear();
            scratch.channel_llr.extend(priors.iter().map(|&p| {
                assert!(p > 0.0 && p < 1.0, "priors must be in (0,1)");
                ((1.0 - p) / p).ln()
            }));
            scratch.cached_priors_key = Some((key, n));
            scratch.priors_rebuilds += 1;
        }
        self.propagate(syndrome, scratch)
    }

    /// Runs the flooding min-sum schedule, dispatching to the vectorized or the
    /// scalar propagate path per the construction-time [`Simd`] decision. The
    /// two paths are byte-identical by design (property-pinned in
    /// `tests/properties.rs`): the vectorized path only replaces the order-free
    /// check-pass reductions and the hard-decision predicate packing, never the
    /// order-sensitive variable-pass summation.
    fn propagate(&self, syndrome: &[bool], scratch: &mut DecoderScratch) -> BpStatus {
        match self.simd.isa() {
            SimdIsa::Scalar => self.propagate_scalar(syndrome, scratch),
            #[cfg(target_arch = "x86_64")]
            SimdIsa::Avx2 | SimdIsa::Sse2 => self.propagate_simd(syndrome, scratch),
            // A vector ISA can only be dispatched on x86-64 (`best_available`
            // is cfg-gated), so this arm is unreachable elsewhere.
            #[cfg(not(target_arch = "x86_64"))]
            SimdIsa::Avx2 | SimdIsa::Sse2 => unreachable!("vector ISA dispatched off x86-64"),
        }
    }

    /// The scalar flooding min-sum schedule over the flattened graph — the
    /// authoritative property-pinned reference path. Message accumulation
    /// visits edges in exactly the order of the historical nested-`Vec`
    /// implementation (row-major on the check side, ascending-check on the variable
    /// side), so results are bit-identical to it.
    ///
    /// Hot-loop structure (every transformation below preserves bit-identity):
    ///
    /// * `check_to_var`, `llrs`, `error`, and `err_words` are length-ensured, not
    ///   refilled — the check pass writes every edge and the variable pass writes
    ///   every column before anything reads them, and `new()` guarantees at least
    ///   one iteration;
    /// * the check pass handles signs branchlessly: `neg` carries the parity of
    ///   `msg < 0.0` (NOT the IEEE sign bit — `-0.0` must stay "positive", exactly
    ///   as the branching `total_sign` original), and each output is
    ///   `±(scale · mag_excl)`, bit-equal to the original
    ///   `(scale · sign_excl) · mag_excl` because IEEE multiplication signs are
    ///   exact (sign = XOR of operand signs, magnitude independent of them);
    /// * the convergence check ANDs the precomputed word-packed row masks against
    ///   a packed hard-decision vector maintained by the variable pass — pure
    ///   boolean parity, order-insensitive by commutativity of XOR.
    // cyclone-lint: hot-path
    fn propagate_scalar(&self, syndrome: &[bool], scratch: &mut DecoderScratch) -> BpStatus {
        let m = self.h.num_rows();
        let n = self.h.num_cols();
        let graph = &self.graph;
        assert_eq!(
            syndrome.len(),
            m,
            "syndrome length must equal number of checks"
        );

        let num_edges = graph.num_edges();
        if scratch.check_to_var.len() != num_edges {
            scratch.check_to_var.resize(num_edges, 0.0);
        }
        if scratch.llrs.len() != n {
            scratch.llrs.resize(n, 0.0);
        }
        if scratch.error.len() != n {
            scratch.error.resize(n, false);
        }
        let mask_words = self.mask_words;
        if scratch.err_words.len() != mask_words {
            scratch.err_words.resize(mask_words, 0);
        }
        scratch.var_to_check.clear();
        scratch
            .var_to_check
            .extend(graph.edge_vars().iter().map(|&c| scratch.channel_llr[c]));

        let check_to_var = &mut scratch.check_to_var;
        let var_to_check = &mut scratch.var_to_check;
        let llrs = &mut scratch.llrs;
        let error = &mut scratch.error;
        let err_words = &mut scratch.err_words;
        let channel_llr = &scratch.channel_llr;
        let check_masks = &self.check_masks;
        let scale = self.scale;

        for iteration in 1..=self.max_iterations {
            // Check-node update (min-sum with sign handling and syndrome parity).
            for (r, &syn) in syndrome.iter().enumerate() {
                let range = graph.check_edges(r);
                // cyclone-lint: allow(hot-path-alloc) -- Range<usize>::clone is a stack copy, no heap allocation
                let msgs = &var_to_check[range.clone()];
                let mut neg = u64::from(syn);
                let mut min1 = f64::INFINITY;
                let mut min2 = f64::INFINITY;
                let mut min1_idx = usize::MAX;
                for (j, &msg) in msgs.iter().enumerate() {
                    neg ^= u64::from(msg < 0.0);
                    let mag = msg.abs();
                    // Select-form two-minimum tracking: identical updates to the
                    // classic `if mag < min1 { shift } else if mag < min2 { .. }`
                    // ladder, but branch-free (data-dependent float branches on
                    // near-random magnitudes mispredict ~half the time).
                    let new1 = mag < min1;
                    min2 = if new1 {
                        min1
                    } else if mag < min2 {
                        mag
                    } else {
                        min2
                    };
                    min1 = if new1 { mag } else { min1 };
                    min1_idx = if new1 { j } else { min1_idx };
                }
                let scaled1 = scale * min1;
                let scaled2 = scale * min2;
                for (j, (&msg, out)) in msgs.iter().zip(&mut check_to_var[range]).enumerate() {
                    let flip = (neg ^ u64::from(msg < 0.0)) << 63;
                    let v = if j == min1_idx { scaled2 } else { scaled1 };
                    *out = f64::from_bits(v.to_bits() ^ flip);
                }
            }
            // Variable-node update, hard decision, and the packed copy of it the
            // convergence check consumes. Totals are accumulated in a single
            // row-major edge pass: for any one column, ascending edge id IS
            // ascending check order (edges are numbered row-major), so each
            // column's additions happen in exactly the historical
            // `for e in var_edges(c)` order — bit-identical, with contiguous
            // `check_to_var` reads instead of a per-variable gather.
            llrs.copy_from_slice(channel_llr);
            for (&c, &ctv) in graph.edge_vars().iter().zip(check_to_var.iter()) {
                llrs[c] += ctv;
            }
            for w in err_words.iter_mut() {
                *w = 0;
            }
            for (c, (&total, slot)) in llrs.iter().zip(error.iter_mut()).enumerate() {
                let bit = total < 0.0;
                *slot = bit;
                err_words[c >> 6] |= u64::from(bit) << (c & 63);
            }
            // Convergence: does the hard decision reproduce the syndrome?
            let matches = syndrome.iter().enumerate().all(|(r, &syn)| {
                let mask = &check_masks[r * mask_words..(r + 1) * mask_words];
                let mut acc = 0u64;
                for (&mw, &ew) in mask.iter().zip(err_words.iter()) {
                    acc ^= mw & ew;
                }
                (acc.count_ones() & 1 == 1) == syn
            });
            if matches {
                return BpStatus {
                    converged: true,
                    iterations: iteration,
                };
            }
            // Variable→check writeback feeds only the *next* check pass, so it
            // is skipped when this was the last iteration — output-invariant,
            // and it removes one full edge sweep from every converging decode.
            if iteration < self.max_iterations {
                for ((&c, &ctv), out) in graph
                    .edge_vars()
                    .iter()
                    .zip(check_to_var.iter())
                    .zip(var_to_check.iter_mut())
                {
                    *out = llrs[c] - ctv;
                }
            }
        }
        BpStatus {
            converged: false,
            iterations: self.max_iterations,
        }
    }
    // cyclone-lint: end-hot-path

    /// The vectorized propagate path: the same flooding schedule as
    /// [`BeliefPropagation::propagate_scalar`], with the check-node pass and the
    /// hard-decision predicate packing dispatched to the [`crate::simd`] kernels
    /// over the row-interleaved layout ([`TannerGraph::edge_slots`], lane =
    /// check within its group of four).
    ///
    /// Byte-identity with the scalar path (property-pinned in
    /// `tests/properties.rs`) rests on three invariants:
    ///
    /// * each kernel lane runs one check's reduction in isolation — the exact
    ///   strict-`<` two-min ladder and sign-parity XOR of the scalar row loop,
    ///   over that row's messages in row order — so no cross-lane (horizontal)
    ///   combining ever happens;
    /// * padding slots hold `+∞` with a positive sign — the neutral element of
    ///   both check-pass reductions — written once at decode start and never
    ///   touched again, because the variable pass walks only the real edges
    ///   (through `edge_slots`, in exact row-major order, keeping the
    ///   order-sensitive scalar accumulation untouched);
    /// * the check pass emits `scaled2` at every lane position whose magnitude
    ///   *equals* the row minimum (the scalar path excludes only the first such
    ///   index) — identical bits, because tied magnitudes force `min2 == min1`
    ///   and hence `scaled2 == scaled1`.
    ///
    /// Only compiled on x86-64 — the only architecture the dispatch selects
    /// vector ISAs on.
    // cyclone-lint: hot-path
    #[cfg(target_arch = "x86_64")]
    fn propagate_simd(&self, syndrome: &[bool], scratch: &mut DecoderScratch) -> BpStatus {
        use crate::simd::{
            check_pass_avx2, check_pass_sse2, hard_decision_avx2, hard_decision_sse2,
        };
        let m = self.h.num_rows();
        let n = self.h.num_cols();
        let graph = &self.graph;
        assert_eq!(
            syndrome.len(),
            m,
            "syndrome length must equal number of checks"
        );

        let num_slots = graph.num_interleaved_slots();
        // Rounded up so the hard-decision kernel's lane-wide reads past `n`
        // stay in bounds (the `+∞` tail is set below, once per decode).
        let padded_n = n.next_multiple_of(PAD_LANES);
        let lane_rows = graph.num_row_groups() * PAD_LANES;
        scratch.ctv_lanes.ensure_len(num_slots);
        scratch.vtc_lanes.ensure_len(num_slots);
        scratch.llrs_pad.ensure_len(padded_n);
        scratch.syn_mask.ensure_len(lane_rows);
        if scratch.llrs.len() != n {
            scratch.llrs.resize(n, 0.0);
        }
        if scratch.error.len() != n {
            scratch.error.resize(n, false);
        }
        let mask_words = self.mask_words;
        if scratch.err_words.len() != mask_words {
            scratch.err_words.resize(mask_words, 0);
        }

        let check_to_var = scratch.ctv_lanes.as_mut_slice();
        let var_to_check = scratch.vtc_lanes.as_mut_slice();
        let llrs = &mut scratch.llrs;
        let llrs_pad = scratch.llrs_pad.as_mut_slice();
        let syn_mask = scratch.syn_mask.as_mut_slice();
        let error = &mut scratch.error;
        let err_words = &mut scratch.err_words;
        let channel_llr = &scratch.channel_llr;
        let check_masks = &self.check_masks;
        let group_ptr = graph.group_ptr();
        let edge_vars = graph.edge_vars();
        let edge_slots = graph.edge_slots();
        let scale = self.scale;
        let avx2 = self.simd.isa() == SimdIsa::Avx2;

        // Per-decode init: the syndrome is constant across iterations, so its
        // lane masks are built once (phantom lanes past `m` stay zero); message
        // padding slots get `+∞` — the neutral element of both check-pass
        // reductions — and are never written again, because the variable-pass
        // writeback below touches only real-edge slots.
        for (w, &syn) in syn_mask.iter_mut().zip(syndrome.iter()) {
            *w = if syn { u64::MAX } else { 0 };
        }
        llrs_pad[..n].copy_from_slice(channel_llr);
        for slot in llrs_pad[n..].iter_mut() {
            *slot = f64::INFINITY;
        }
        for &slot in graph.pad_slots() {
            var_to_check[slot as usize] = f64::INFINITY;
        }
        for (&c, &slot) in edge_vars.iter().zip(edge_slots.iter()) {
            var_to_check[slot as usize] = channel_llr[c];
        }

        for iteration in 1..=self.max_iterations {
            if avx2 {
                // SAFETY: this branch is reached only when construction-time
                // dispatch observed `is_x86_feature_detected!("avx2")`; the
                // group pointers bound both message arenas and `syn_mask` holds
                // one word per lane-row by the `TannerGraph` construction and
                // the sizing above.
                unsafe { check_pass_avx2(syn_mask, group_ptr, var_to_check, check_to_var, scale) }
            } else {
                // SAFETY: SSE2 is the x86-64 compilation baseline — always
                // available here; same layout contract as above.
                unsafe { check_pass_sse2(syn_mask, group_ptr, var_to_check, check_to_var, scale) }
            }
            // Variable-node update: the order-sensitive scalar accumulation,
            // untouched — `edge_slots` visits the interleaved arena in exact
            // row-major real-edge order, so every column's additions happen in
            // the reference path's order. Padding slots are never read here.
            llrs_pad[..n].copy_from_slice(channel_llr);
            for (&c, &slot) in edge_vars.iter().zip(edge_slots.iter()) {
                llrs_pad[c] += check_to_var[slot as usize];
            }
            if avx2 {
                // SAFETY: AVX2 verified at dispatch (above); `llrs_pad` is
                // sized `padded_n >= n.div_ceil(4) * 4` and `err_words` holds
                // `n.div_ceil(64)` words.
                unsafe { hard_decision_avx2(llrs_pad, n, err_words) }
            } else {
                // SAFETY: SSE2 baseline; same size contract.
                unsafe { hard_decision_sse2(llrs_pad, n, err_words) }
            }
            // Convergence: identical mask-based check as the scalar path — the
            // kernels pack the same `llr < 0.0` predicate bits.
            let matches = syndrome.iter().enumerate().all(|(r, &syn)| {
                let mask = &check_masks[r * mask_words..(r + 1) * mask_words];
                let mut acc = 0u64;
                for (&mw, &ew) in mask.iter().zip(err_words.iter()) {
                    acc ^= mw & ew;
                }
                (acc.count_ones() & 1 == 1) == syn
            });
            if matches {
                llrs.copy_from_slice(&llrs_pad[..n]);
                for (c, slot) in error.iter_mut().enumerate() {
                    *slot = (err_words[c >> 6] >> (c & 63)) & 1 == 1;
                }
                return BpStatus {
                    converged: true,
                    iterations: iteration,
                };
            }
            // Variable→check writeback feeds only the *next* check pass — same
            // last-iteration skip as the scalar path (output-invariant).
            if iteration < self.max_iterations {
                for (&c, &slot) in edge_vars.iter().zip(edge_slots.iter()) {
                    let s = slot as usize;
                    var_to_check[s] = llrs_pad[c] - check_to_var[s];
                }
            }
        }
        llrs.copy_from_slice(&llrs_pad[..n]);
        for (c, slot) in error.iter_mut().enumerate() {
            *slot = (err_words[c >> 6] >> (c & 63)) & 1 == 1;
        }
        BpStatus {
            converged: false,
            iterations: self.max_iterations,
        }
    }
    // cyclone-lint: end-hot-path
}

#[cfg(test)]
mod tests {
    use super::*;
    use qec::linalg::BitMat;

    fn repetition_check(n: usize) -> SparseBinMat {
        let rows: Vec<Vec<usize>> = (0..n - 1).map(|i| vec![i, i + 1]).collect();
        SparseBinMat::from_row_supports(n, rows)
    }

    #[test]
    fn zero_syndrome_decodes_to_zero() {
        let h = repetition_check(7);
        let bp = BeliefPropagation::new(h.clone(), 20);
        let result = bp.decode(&[false; 6], 0.01);
        assert!(result.converged);
        assert!(result.error.iter().all(|&b| !b));
    }

    #[test]
    fn single_error_recovered() {
        let h = repetition_check(7);
        let bp = BeliefPropagation::new(h.clone(), 30);
        let mut e = vec![false; 7];
        e[3] = true;
        let s = h.syndrome(&e);
        let result = bp.decode(&s, 0.05);
        assert!(result.converged);
        assert_eq!(result.error, e);
    }

    #[test]
    fn boundary_error_recovered() {
        let h = repetition_check(5);
        let bp = BeliefPropagation::new(h.clone(), 30);
        let mut e = vec![false; 5];
        e[0] = true;
        let s = h.syndrome(&e);
        let result = bp.decode(&s, 0.05);
        assert!(result.converged);
        assert_eq!(result.error, e);
    }

    #[test]
    fn hamming_code_single_errors() {
        let hm = BitMat::from_dense(&[
            vec![1, 0, 1, 0, 1, 0, 1],
            vec![0, 1, 1, 0, 0, 1, 1],
            vec![0, 0, 0, 1, 1, 1, 1],
        ]);
        let h = SparseBinMat::from_bitmat(&hm);
        let bp = BeliefPropagation::new(h.clone(), 50);
        for i in 0..7 {
            let mut e = vec![false; 7];
            e[i] = true;
            let s = h.syndrome(&e);
            let r = bp.decode(&s, 0.02);
            assert!(r.converged, "bit {i} did not converge");
            assert_eq!(h.syndrome(&r.error), s, "bit {i} wrong syndrome");
        }
    }

    #[test]
    fn priors_bias_the_decision() {
        // Two bits checked by one parity: the syndrome says exactly one is flipped;
        // the bit with the much larger prior should be chosen.
        let h = SparseBinMat::from_row_supports(2, vec![vec![0, 1]]);
        let bp = BeliefPropagation::new(h, 10);
        let r = bp.decode_with_priors(&[true], &[0.3, 0.001]);
        assert!(r.converged);
        assert_eq!(r.error, vec![true, false]);
    }

    #[test]
    #[should_panic(expected = "priors must be in")]
    fn invalid_prior_rejected() {
        let h = repetition_check(3);
        let bp = BeliefPropagation::new(h, 5);
        let _ = bp.decode_with_priors(&[false, false], &[0.0, 0.5, 0.5]);
    }

    #[test]
    fn scratch_reuse_matches_fresh_decode() {
        let h = repetition_check(7);
        let bp = BeliefPropagation::new(h.clone(), 30);
        let mut scratch = DecoderScratch::new();
        for bit in 0..7 {
            let mut e = vec![false; 7];
            e[bit] = true;
            let s = h.syndrome(&e);
            let fresh = bp.decode(&s, 0.05);
            let status = bp.decode_into(&s, 0.05, &mut scratch);
            assert_eq!(status.converged, fresh.converged);
            assert_eq!(status.iterations, fresh.iterations);
            assert_eq!(scratch.error(), fresh.error.as_slice());
            assert_eq!(scratch.llrs(), fresh.llrs.as_slice());
        }
    }

    #[test]
    fn uniform_llr_cache_invalidated_by_p_and_priors() {
        let h = repetition_check(5);
        let bp = BeliefPropagation::new(h.clone(), 20);
        let mut e = vec![false; 5];
        e[2] = true;
        let s = h.syndrome(&e);
        let mut scratch = DecoderScratch::new();
        let a = bp.decode_into(&s, 0.05, &mut scratch);
        // Different p must refresh the cached channel LLR.
        let b = bp.decode_into(&s, 0.01, &mut scratch);
        assert_eq!(scratch.error(), bp.decode(&s, 0.01).error.as_slice());
        // A priors decode in between must not poison the uniform cache.
        let _ = bp.decode_with_priors_into(&s, &[0.3, 0.3, 0.3, 0.3, 0.3], &mut scratch);
        let c = bp.decode_into(&s, 0.05, &mut scratch);
        assert_eq!(a.converged, c.converged);
        assert_eq!(a.iterations, c.iterations);
        assert_eq!(scratch.error(), bp.decode(&s, 0.05).error.as_slice());
        assert!(b.converged);
    }

    #[test]
    fn priors_llr_cache_hits_and_invalidates() {
        // The per-bit-priors LLR conversion is cached against a content digest;
        // repeated decodes with equal priors hit (the rebuild counter stays put),
        // and any interleaving with different priors or a uniform decode rebuilds
        // correctly.
        let h = repetition_check(5);
        let bp = BeliefPropagation::new(h.clone(), 20);
        let mut e = vec![false; 5];
        e[1] = true;
        let s = h.syndrome(&e);
        let priors_a = vec![0.05, 0.05, 0.2, 0.05, 0.05];
        let priors_b = vec![0.01; 5];
        let mut scratch = DecoderScratch::new();

        let first = bp.decode_with_priors_into(&s, &priors_a, &mut scratch);
        assert_eq!(scratch.priors_rebuilds(), 1);
        let llr_after_first = scratch.channel_llr.clone();
        // Same priors again: the cached LLRs are reused and the result is stable.
        let second = bp.decode_with_priors_into(&s, &priors_a, &mut scratch);
        assert_eq!(first, second);
        assert_eq!(scratch.priors_rebuilds(), 1);
        assert_eq!(scratch.channel_llr, llr_after_first);
        assert_eq!(
            scratch.error(),
            bp.decode_with_priors(&s, &priors_a).error.as_slice()
        );
        // A *rebuilt* but value-equal buffer hits too — the digest keys on content,
        // not on the caller's allocation.
        let rebuilt = priors_a.clone();
        let _ = bp.decode_with_priors_into(&s, &rebuilt, &mut scratch);
        assert_eq!(scratch.priors_rebuilds(), 1);
        // The precomputed-key entry point hits the same cache.
        let key = priors_digest(&priors_a);
        let keyed = bp.decode_with_priors_keyed_into(&s, &priors_a, key, &mut scratch);
        assert_eq!(keyed, first);
        assert_eq!(scratch.priors_rebuilds(), 1);

        // Different priors must rebuild ...
        let _ = bp.decode_with_priors_into(&s, &priors_b, &mut scratch);
        assert_eq!(scratch.priors_rebuilds(), 2);
        assert_eq!(
            scratch.error(),
            bp.decode_with_priors(&s, &priors_b).error.as_slice()
        );
        // ... a uniform decode in between must invalidate the priors cache ...
        let _ = bp.decode_into(&s, 0.05, &mut scratch);
        let after_uniform = bp.decode_with_priors_into(&s, &priors_a, &mut scratch);
        assert_eq!(after_uniform, first);
        assert_eq!(scratch.priors_rebuilds(), 3);
        assert_eq!(
            scratch.error(),
            bp.decode_with_priors(&s, &priors_a).error.as_slice()
        );
        // ... and the uniform cache still works after priors decodes.
        let _ = bp.decode_into(&s, 0.05, &mut scratch);
        assert_eq!(scratch.error(), bp.decode(&s, 0.05).error.as_slice());
    }

    #[test]
    fn priors_digest_is_content_sensitive() {
        let a = priors_digest(&[0.1, 0.2]);
        assert_eq!(a, priors_digest(&[0.1, 0.2]));
        assert_ne!(a, priors_digest(&[0.2, 0.1]));
        assert_ne!(a, priors_digest(&[0.1, 0.2000001]));
        assert_ne!(a, priors_digest(&[0.1]));
    }
}
