//! Min-sum belief propagation over a binary Tanner graph.
//!
//! [`BeliefPropagation`] implements normalized min-sum flooding BP for syndrome
//! decoding: given a parity-check matrix `H`, per-bit prior error probabilities, and a
//! syndrome `s`, it estimates the posterior log-likelihood ratio of each bit being in
//! error and a hard decision `ê`. If `H·ê = s` the decoder has converged; otherwise
//! the caller typically falls back to ordered-statistics decoding ([`crate::osd`]).

use crate::sparse::SparseBinMat;

/// Result of a BP run.
#[derive(Debug, Clone, PartialEq)]
pub struct BpResult {
    /// Hard-decision error estimate (one entry per column of `H`).
    pub error: Vec<bool>,
    /// Posterior log-likelihood ratios (positive = probably no error).
    pub llrs: Vec<f64>,
    /// Whether the hard decision reproduces the syndrome.
    pub converged: bool,
    /// Number of iterations executed.
    pub iterations: usize,
}

/// Normalized min-sum belief propagation decoder.
#[derive(Debug, Clone)]
pub struct BeliefPropagation {
    h: SparseBinMat,
    max_iterations: usize,
    /// Min-sum normalization (scaling) factor, typically 0.625–1.0.
    scale: f64,
}

impl BeliefPropagation {
    /// Creates a decoder for the given parity-check matrix.
    ///
    /// # Panics
    ///
    /// Panics if `max_iterations` is zero.
    pub fn new(h: SparseBinMat, max_iterations: usize) -> Self {
        assert!(max_iterations > 0, "need at least one BP iteration");
        BeliefPropagation {
            h,
            max_iterations,
            scale: 0.75,
        }
    }

    /// Sets the min-sum normalization factor.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not in `(0, 1]`.
    pub fn with_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0,1]");
        self.scale = scale;
        self
    }

    /// The parity-check matrix.
    pub fn matrix(&self) -> &SparseBinMat {
        &self.h
    }

    /// Runs BP for a syndrome with uniform prior error probability `p`.
    pub fn decode(&self, syndrome: &[bool], p: f64) -> BpResult {
        let priors = vec![p; self.h.num_cols()];
        self.decode_with_priors(syndrome, &priors)
    }

    /// Runs BP with per-bit prior error probabilities.
    ///
    /// # Panics
    ///
    /// Panics if dimensions do not match or a prior is outside `(0, 1)`.
    pub fn decode_with_priors(&self, syndrome: &[bool], priors: &[f64]) -> BpResult {
        let m = self.h.num_rows();
        let n = self.h.num_cols();
        assert_eq!(syndrome.len(), m, "syndrome length must equal number of checks");
        assert_eq!(priors.len(), n, "one prior per variable required");
        let channel_llr: Vec<f64> = priors
            .iter()
            .map(|&p| {
                assert!(p > 0.0 && p < 1.0, "priors must be in (0,1)");
                ((1.0 - p) / p).ln()
            })
            .collect();

        // Messages are indexed by (check, position within the check's support).
        let mut check_to_var: Vec<Vec<f64>> =
            (0..m).map(|r| vec![0.0; self.h.row(r).len()]).collect();
        let mut var_to_check: Vec<Vec<f64>> = (0..m)
            .map(|r| self.h.row(r).iter().map(|&c| channel_llr[c]).collect())
            .collect();
        // For variable-side updates we need, per column, the list of (check, slot).
        let mut col_slots: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
        for r in 0..m {
            for (slot, &c) in self.h.row(r).iter().enumerate() {
                col_slots[c].push((r, slot));
            }
        }

        let mut llrs = channel_llr.clone();
        let mut error = vec![false; n];
        for iteration in 1..=self.max_iterations {
            // Check-node update (min-sum with sign handling and syndrome parity).
            for r in 0..m {
                let incoming = &var_to_check[r];
                let mut total_sign = if syndrome[r] { -1.0f64 } else { 1.0 };
                let mut min1 = f64::INFINITY;
                let mut min2 = f64::INFINITY;
                let mut min1_slot = usize::MAX;
                for (slot, &msg) in incoming.iter().enumerate() {
                    if msg < 0.0 {
                        total_sign = -total_sign;
                    }
                    let mag = msg.abs();
                    if mag < min1 {
                        min2 = min1;
                        min1 = mag;
                        min1_slot = slot;
                    } else if mag < min2 {
                        min2 = mag;
                    }
                }
                for (slot, out) in check_to_var[r].iter_mut().enumerate() {
                    let msg = incoming[slot];
                    let sign_excl = if msg < 0.0 { -total_sign } else { total_sign };
                    let mag_excl = if slot == min1_slot { min2 } else { min1 };
                    *out = self.scale * sign_excl * mag_excl;
                }
            }
            // Variable-node update and hard decision.
            for c in 0..n {
                let mut total = channel_llr[c];
                for &(r, slot) in &col_slots[c] {
                    total += check_to_var[r][slot];
                }
                llrs[c] = total;
                error[c] = total < 0.0;
                for &(r, slot) in &col_slots[c] {
                    var_to_check[r][slot] = total - check_to_var[r][slot];
                }
            }
            if self.h.syndrome(&error) == syndrome {
                return BpResult {
                    error,
                    llrs,
                    converged: true,
                    iterations: iteration,
                };
            }
        }
        BpResult {
            error,
            llrs,
            converged: false,
            iterations: self.max_iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qec::linalg::BitMat;

    fn repetition_check(n: usize) -> SparseBinMat {
        let rows: Vec<Vec<usize>> = (0..n - 1).map(|i| vec![i, i + 1]).collect();
        SparseBinMat::from_row_supports(n, rows)
    }

    #[test]
    fn zero_syndrome_decodes_to_zero() {
        let h = repetition_check(7);
        let bp = BeliefPropagation::new(h.clone(), 20);
        let result = bp.decode(&[false; 6], 0.01);
        assert!(result.converged);
        assert!(result.error.iter().all(|&b| !b));
    }

    #[test]
    fn single_error_recovered() {
        let h = repetition_check(7);
        let bp = BeliefPropagation::new(h.clone(), 30);
        let mut e = vec![false; 7];
        e[3] = true;
        let s = h.syndrome(&e);
        let result = bp.decode(&s, 0.05);
        assert!(result.converged);
        assert_eq!(result.error, e);
    }

    #[test]
    fn boundary_error_recovered() {
        let h = repetition_check(5);
        let bp = BeliefPropagation::new(h.clone(), 30);
        let mut e = vec![false; 5];
        e[0] = true;
        let s = h.syndrome(&e);
        let result = bp.decode(&s, 0.05);
        assert!(result.converged);
        assert_eq!(result.error, e);
    }

    #[test]
    fn hamming_code_single_errors() {
        let hm = BitMat::from_dense(&[
            vec![1, 0, 1, 0, 1, 0, 1],
            vec![0, 1, 1, 0, 0, 1, 1],
            vec![0, 0, 0, 1, 1, 1, 1],
        ]);
        let h = SparseBinMat::from_bitmat(&hm);
        let bp = BeliefPropagation::new(h.clone(), 50);
        for i in 0..7 {
            let mut e = vec![false; 7];
            e[i] = true;
            let s = h.syndrome(&e);
            let r = bp.decode(&s, 0.02);
            assert!(r.converged, "bit {i} did not converge");
            assert_eq!(h.syndrome(&r.error), s, "bit {i} wrong syndrome");
        }
    }

    #[test]
    fn priors_bias_the_decision() {
        // Two bits checked by one parity: the syndrome says exactly one is flipped;
        // the bit with the much larger prior should be chosen.
        let h = SparseBinMat::from_row_supports(2, vec![vec![0, 1]]);
        let bp = BeliefPropagation::new(h, 10);
        let r = bp.decode_with_priors(&[true], &[0.3, 0.001]);
        assert!(r.converged);
        assert_eq!(r.error, vec![true, false]);
    }

    #[test]
    #[should_panic(expected = "priors must be in")]
    fn invalid_prior_rejected() {
        let h = repetition_check(3);
        let bp = BeliefPropagation::new(h, 5);
        let _ = bp.decode_with_priors(&[false, false], &[0.0, 0.5, 0.5]);
    }
}
