//! Explicitly vectorized min-sum kernels with runtime ISA dispatch.
//!
//! The BP check-node pass is the one hot loop whose reductions are both
//! expensive and **order-free**: per-row sign parity is an XOR of `msg < 0.0`
//! predicates (XOR commutes), and the two-smallest-magnitude scan computes the
//! two minima of a multiset (`min` over IEEE `f64` is exact — no rounding, so
//! the result does not depend on scan order). That makes lane-parallel row
//! processing produce **byte-identical** messages to the scalar pass — unlike
//! the variable-node pass, whose floating-point summation is order-sensitive
//! and stays scalar. See [`crate::bp::BeliefPropagation`] for the dispatch
//! site; the **row-interleaved** layout the kernels consume is built by
//! [`crate::sparse::TannerGraph`]: checks are processed in groups of four,
//! lane = check, so each lane runs its own row's strict-`<` two-min ladder and
//! sign-parity XOR — the kernels contain *no* horizontal (cross-lane)
//! operations at all, which is what makes them profitable on the low-degree
//! rows of quantum LDPC checks. Padding slots (rows shorter than their group's
//! depth, phantom lanes past the last check) hold neutral messages (`+∞`
//! magnitude, positive sign) that no strict-`<` comparison ever promotes, so
//! they cannot perturb either reduction.
//!
//! Dispatch is decided **once** at decoder construction ([`Simd::from_env`]):
//! `is_x86_feature_detected!` picks AVX2 (4 × `f64`) or SSE2 (2 × `f64`)
//! kernels from [`std::arch`], with the portable scalar path — the
//! property-pinned reference — as the fallback on other architectures. The
//! `CYCLONE_SIMD` environment variable overrides the choice: `auto` (default)
//! detects, `force` records that the override was requested (selection is the
//! same as `auto` — on hosts without vector units it still falls back to
//! scalar, and benches report `simd_not_available` instead of a fake ratio),
//! and `off` pins the scalar reference. Malformed values fall back to `auto`,
//! matching the `bench::env_parse` convention.
//!
//! Why hand-written kernels instead of trusting the auto-vectorizer: the check
//! pass mixes a data-dependent two-min select ladder with sign-predicate
//! parity, exactly the pattern compilers decline to vectorize (or vectorize
//! differently across versions, silently changing instruction selection). The
//! compiler must not be left to decide — bit-identity across `CYCLONE_SIMD`
//! settings is asserted in CI, so the vector and scalar paths have to be
//! *designed* equivalent, not hoped equivalent.

/// Which instruction set the dispatched kernels use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdIsa {
    /// 256-bit AVX2 kernels, four `f64` lanes.
    Avx2,
    /// 128-bit SSE2 kernels, two `f64` lanes (x86-64 baseline).
    Sse2,
    /// The portable scalar reference path.
    Scalar,
}

/// How the `CYCLONE_SIMD` environment variable asked dispatch to behave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdMode {
    /// Detect the best available ISA (the default).
    Auto,
    /// Same selection as `Auto`, but recorded as an explicit override — benches
    /// report `simd_not_available` honestly when no vector ISA exists.
    Force,
    /// Pin the scalar reference path.
    Off,
}

/// The capability report of one dispatch decision: which ISA the decoder's
/// check pass runs on, and whether `CYCLONE_SIMD` overrode auto-detection.
/// Selected once at [`crate::bp::BeliefPropagation::new`] and carried by the
/// decoder; benches serialize it as `simd: {isa, forced, lanes}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Simd {
    isa: SimdIsa,
    forced: bool,
}

impl Simd {
    /// Reads `CYCLONE_SIMD` (`auto` | `force` | `off`; malformed values fall
    /// back to `auto`) and resolves the dispatch.
    pub fn from_env() -> Self {
        let mode = match std::env::var("CYCLONE_SIMD") {
            Ok(v) => match v.trim() {
                "force" => SimdMode::Force,
                "off" => SimdMode::Off,
                _ => SimdMode::Auto,
            },
            Err(_) => SimdMode::Auto,
        };
        Self::with_mode(mode)
    }

    /// Resolves an explicit mode (tests and benches construct forced-scalar and
    /// forced-vector decoders side by side through this).
    pub fn with_mode(mode: SimdMode) -> Self {
        match mode {
            SimdMode::Auto => Simd {
                isa: best_available(),
                forced: false,
            },
            SimdMode::Force => Simd {
                isa: best_available(),
                forced: true,
            },
            SimdMode::Off => Simd {
                isa: SimdIsa::Scalar,
                forced: true,
            },
        }
    }

    /// The scalar reference path, not forced (what non-x86 hosts auto-detect).
    pub fn scalar() -> Self {
        Simd {
            isa: SimdIsa::Scalar,
            forced: false,
        }
    }

    /// The dispatched instruction set.
    pub fn isa(&self) -> SimdIsa {
        self.isa
    }

    /// Whether `CYCLONE_SIMD` overrode auto-detection (`force` or `off`).
    pub fn forced(&self) -> bool {
        self.forced
    }

    /// `f64` lanes per vector on the dispatched path (1 on the scalar path).
    pub fn lanes(&self) -> usize {
        match self.isa {
            SimdIsa::Avx2 => 4,
            SimdIsa::Sse2 => 2,
            SimdIsa::Scalar => 1,
        }
    }

    /// Whether a vector ISA (not the scalar reference) was dispatched.
    pub fn is_vectorized(&self) -> bool {
        self.isa != SimdIsa::Scalar
    }

    /// The ISA name as recorded in bench artifacts.
    pub fn isa_name(&self) -> &'static str {
        match self.isa {
            SimdIsa::Avx2 => "avx2",
            SimdIsa::Sse2 => "sse2",
            SimdIsa::Scalar => "scalar",
        }
    }
}

/// The best vector ISA this host supports (SSE2 is the x86-64 baseline, so the
/// detection can only upgrade from there).
#[cfg(target_arch = "x86_64")]
fn best_available() -> SimdIsa {
    if is_x86_feature_detected!("avx2") {
        SimdIsa::Avx2
    } else {
        SimdIsa::Sse2
    }
}

/// Non-x86 hosts run the portable scalar reference.
#[cfg(not(target_arch = "x86_64"))]
fn best_available() -> SimdIsa {
    SimdIsa::Scalar
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    /// The vectorized min-sum check-node pass over the row-interleaved layout:
    /// AVX2, four `f64` lanes, lane = check within its row group. Reads
    /// `var_to_check`, writes `check_to_var` (both in interleaved slot
    /// numbering; padding slots must hold `+∞` on entry — they are read, and
    /// written with never-consumed values, but their `var_to_check` side is
    /// never modified). `syn_mask` holds one word per lane-row — all-ones for
    /// a set syndrome bit, zero otherwise (phantom rows: zero).
    ///
    /// Per lane, this is *exactly* the scalar row update: the strict-`<`
    /// select-form two-min ladder over the lane's messages in row order, sign
    /// parity accumulated by XOR of full-width `msg < 0.0` masks seeded with
    /// the syndrome mask, and outputs `±(scale · min-excluding-self)` formed by
    /// sign-bit XOR. The only divergence is tie handling: the output half
    /// emits `scaled2` at *every* lane position whose magnitude equals the row
    /// minimum (the scalar path excludes only the first such index) — same
    /// bits, because tied magnitudes force `min2 == min1` and hence
    /// `scaled2 == scaled1`.
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX2 support (the dispatch in
    /// [`crate::bp::BeliefPropagation`] selects this only when
    /// `is_x86_feature_detected!("avx2")` reported it); `group_ptr` must be a
    /// valid interleaved group-pointer array for both message slices (monotone,
    /// bounded by their length, every span a multiple of 4 long), and
    /// `syn_mask` must hold at least `4 · (group_ptr.len() - 1)` words.
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn check_pass_avx2(
        syn_mask: &[u64],
        group_ptr: &[usize],
        var_to_check: &[f64],
        check_to_var: &mut [f64],
        scale: f64,
    ) {
        let zero = _mm256_setzero_pd();
        let sign_bit = _mm256_set1_pd(-0.0);
        let inf = _mm256_set1_pd(f64::INFINITY);
        let scale_v = _mm256_set1_pd(scale);
        for g in 0..group_ptr.len() - 1 {
            let start = group_ptr[g];
            let end = group_ptr[g + 1];

            // Reduction half: per-lane (= per-check) sign-predicate parity and
            // two minima. Seeding the parity accumulator with the syndrome
            // masks folds `neg = syn ^ parity` into the XOR chain for free.
            let mut sign_acc =
                // SAFETY: `syn_mask` holds 4 words per group; reinterpreting
                // the mask words as `f64` lanes is a pure bit-pattern load.
                unsafe { _mm256_loadu_pd(syn_mask.as_ptr().add(g * 4).cast::<f64>()) };
            let mut vmin1 = inf;
            let mut vmin2 = inf;
            let mut e = start;
            while e < end {
                // SAFETY: `e..e + 4` is inside the group span, which the
                // layout guarantees is in bounds of `var_to_check`; loadu has
                // no alignment requirement.
                let m = unsafe { _mm256_loadu_pd(var_to_check.as_ptr().add(e)) };
                let neg_mask = _mm256_cmp_pd::<_CMP_LT_OQ>(m, zero);
                sign_acc = _mm256_xor_pd(sign_acc, neg_mask);
                let mag = _mm256_andnot_pd(sign_bit, m);
                let new1 = _mm256_cmp_pd::<_CMP_LT_OQ>(mag, vmin1);
                let lt2 = _mm256_cmp_pd::<_CMP_LT_OQ>(mag, vmin2);
                // min2 = new1 ? min1 : (mag < min2 ? mag : min2); min1 = min.
                let min2_keep = _mm256_blendv_pd(vmin2, mag, lt2);
                vmin2 = _mm256_blendv_pd(min2_keep, vmin1, new1);
                vmin1 = _mm256_blendv_pd(vmin1, mag, new1);
                e += 4;
            }
            // `mulpd` is the same IEEE double multiply the scalar path's
            // `scale * min` performs — per-lane, exact, no reassociation.
            let flip_base = _mm256_and_pd(sign_acc, sign_bit);
            let s1 = _mm256_mul_pd(scale_v, vmin1);
            let s2 = _mm256_mul_pd(scale_v, vmin2);

            // Output half: ±(scale · min-excluding-self) with the sign flipped
            // where neg ^ (msg < 0.0) — pure sign-bit XOR, bit-exact.
            let mut e = start;
            while e < end {
                // SAFETY: same in-bounds argument as the reduction loop, for
                // both the load and the store through the group span.
                unsafe {
                    let m = _mm256_loadu_pd(var_to_check.as_ptr().add(e));
                    let neg_mask = _mm256_cmp_pd::<_CMP_LT_OQ>(m, zero);
                    let flip = _mm256_xor_pd(flip_base, _mm256_and_pd(neg_mask, sign_bit));
                    let mag = _mm256_andnot_pd(sign_bit, m);
                    let is_min = _mm256_cmp_pd::<_CMP_EQ_OQ>(mag, vmin1);
                    let val = _mm256_blendv_pd(s1, s2, is_min);
                    _mm256_storeu_pd(check_to_var.as_mut_ptr().add(e), _mm256_xor_pd(val, flip));
                }
                e += 4;
            }
        }
    }

    /// The word-packed hard-decision update, AVX2: packs `llrs[c] < 0.0`
    /// predicates into `err_words` (bit `c & 63` of word `c >> 6`), exactly the
    /// bits the mask-based convergence check consumes. `err_words` is zeroed
    /// here; lanes at `c >= n` (the phantom/padding tail) are masked off.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support; `llrs` must be padded to at
    /// least `n.div_ceil(4) * 4` entries and `err_words` must hold
    /// `n.div_ceil(64)` words.
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn hard_decision_avx2(llrs: &[f64], n: usize, err_words: &mut [u64]) {
        let zero = _mm256_setzero_pd();
        for w in err_words.iter_mut() {
            *w = 0;
        }
        let mut b = 0;
        while b < n {
            // SAFETY: `b < n` and `llrs` is padded past `n` to a multiple of 4,
            // so the 4-lane read stays in bounds.
            let m = unsafe { _mm256_loadu_pd(llrs.as_ptr().add(b)) };
            let mut bits = _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_LT_OQ>(m, zero)) as u64;
            if b + 4 > n {
                bits &= (1u64 << (n - b)) - 1;
            }
            err_words[b >> 6] |= bits << (b & 63);
            b += 4;
        }
    }

    /// SSE2 `blendv` emulation (`_mm_blendv_pd` is SSE4.1): lanes where `mask`
    /// is all-ones take `b`, others take `a`. Exact for the full-width masks
    /// `cmp` produces.
    #[inline(always)]
    fn sse2_blendv(a: __m128d, b: __m128d, mask: __m128d) -> __m128d {
        // SAFETY: pure register-to-register SSE2 bit operations, no memory
        // access; SSE2 is the x86-64 baseline so these are always available.
        unsafe { _mm_or_pd(_mm_and_pd(mask, b), _mm_andnot_pd(mask, a)) }
    }

    /// The vectorized check-node pass, SSE2 — same contract and per-lane logic
    /// as [`check_pass_avx2`], walking each 4-lane group as two 2-lane halves
    /// (low lanes 0–1, high lanes 2–3), so both ISAs consume the same
    /// interleaved layout.
    ///
    /// # Safety
    ///
    /// `group_ptr` must be a valid interleaved group-pointer array bounding
    /// both slices and `syn_mask` must hold `4 · (group_ptr.len() - 1)` words
    /// (SSE2 itself is the x86-64 baseline).
    #[target_feature(enable = "sse2")]
    pub(crate) unsafe fn check_pass_sse2(
        syn_mask: &[u64],
        group_ptr: &[usize],
        var_to_check: &[f64],
        check_to_var: &mut [f64],
        scale: f64,
    ) {
        let zero = _mm_setzero_pd();
        let sign_bit = _mm_set1_pd(-0.0);
        let inf = _mm_set1_pd(f64::INFINITY);
        let scale_v = _mm_set1_pd(scale);
        for g in 0..group_ptr.len() - 1 {
            let start = group_ptr[g];
            let end = group_ptr[g + 1];

            // SAFETY: `syn_mask` holds 4 words per group; pure bit-pattern
            // loads of the low and high lane pairs.
            let (mut acc_lo, mut acc_hi) = unsafe {
                let p = syn_mask.as_ptr().add(g * 4).cast::<f64>();
                (_mm_loadu_pd(p), _mm_loadu_pd(p.add(2)))
            };
            let (mut min1_lo, mut min1_hi) = (inf, inf);
            let (mut min2_lo, mut min2_hi) = (inf, inf);
            let mut e = start;
            while e < end {
                // SAFETY: `e..e + 4` lies inside the group span, in bounds of
                // `var_to_check`; loadu is unaligned-safe.
                let (m_lo, m_hi) = unsafe {
                    let p = var_to_check.as_ptr().add(e);
                    (_mm_loadu_pd(p), _mm_loadu_pd(p.add(2)))
                };
                acc_lo = _mm_xor_pd(acc_lo, _mm_cmplt_pd(m_lo, zero));
                acc_hi = _mm_xor_pd(acc_hi, _mm_cmplt_pd(m_hi, zero));
                let mag_lo = _mm_andnot_pd(sign_bit, m_lo);
                let mag_hi = _mm_andnot_pd(sign_bit, m_hi);
                let new1_lo = _mm_cmplt_pd(mag_lo, min1_lo);
                let new1_hi = _mm_cmplt_pd(mag_hi, min1_hi);
                let lt2_lo = _mm_cmplt_pd(mag_lo, min2_lo);
                let lt2_hi = _mm_cmplt_pd(mag_hi, min2_hi);
                min2_lo = sse2_blendv(sse2_blendv(min2_lo, mag_lo, lt2_lo), min1_lo, new1_lo);
                min2_hi = sse2_blendv(sse2_blendv(min2_hi, mag_hi, lt2_hi), min1_hi, new1_hi);
                min1_lo = sse2_blendv(min1_lo, mag_lo, new1_lo);
                min1_hi = sse2_blendv(min1_hi, mag_hi, new1_hi);
                e += 4;
            }
            let flip_lo = _mm_and_pd(acc_lo, sign_bit);
            let flip_hi = _mm_and_pd(acc_hi, sign_bit);
            let s1_lo = _mm_mul_pd(scale_v, min1_lo);
            let s1_hi = _mm_mul_pd(scale_v, min1_hi);
            let s2_lo = _mm_mul_pd(scale_v, min2_lo);
            let s2_hi = _mm_mul_pd(scale_v, min2_hi);

            let mut e = start;
            while e < end {
                // SAFETY: same in-bounds argument as the reduction loop.
                unsafe {
                    let p = var_to_check.as_ptr().add(e);
                    let (m_lo, m_hi) = (_mm_loadu_pd(p), _mm_loadu_pd(p.add(2)));
                    let neg_lo = _mm_cmplt_pd(m_lo, zero);
                    let neg_hi = _mm_cmplt_pd(m_hi, zero);
                    let f_lo = _mm_xor_pd(flip_lo, _mm_and_pd(neg_lo, sign_bit));
                    let f_hi = _mm_xor_pd(flip_hi, _mm_and_pd(neg_hi, sign_bit));
                    let mag_lo = _mm_andnot_pd(sign_bit, m_lo);
                    let mag_hi = _mm_andnot_pd(sign_bit, m_hi);
                    let v_lo = sse2_blendv(s1_lo, s2_lo, _mm_cmpeq_pd(mag_lo, min1_lo));
                    let v_hi = sse2_blendv(s1_hi, s2_hi, _mm_cmpeq_pd(mag_hi, min1_hi));
                    let q = check_to_var.as_mut_ptr().add(e);
                    _mm_storeu_pd(q, _mm_xor_pd(v_lo, f_lo));
                    _mm_storeu_pd(q.add(2), _mm_xor_pd(v_hi, f_hi));
                }
                e += 4;
            }
        }
    }

    /// The word-packed hard-decision update, SSE2 — same contract as
    /// [`hard_decision_avx2`] (the 2-lane step divides the 4-padded buffer).
    ///
    /// # Safety
    ///
    /// `llrs` must be padded to at least `n.div_ceil(2) * 2` entries and
    /// `err_words` must hold `n.div_ceil(64)` words.
    #[target_feature(enable = "sse2")]
    pub(crate) unsafe fn hard_decision_sse2(llrs: &[f64], n: usize, err_words: &mut [u64]) {
        let zero = _mm_setzero_pd();
        for w in err_words.iter_mut() {
            *w = 0;
        }
        let mut b = 0;
        while b < n {
            // SAFETY: `b < n` and `llrs` is padded past `n`, so the 2-lane
            // read stays in bounds.
            let m = unsafe { _mm_loadu_pd(llrs.as_ptr().add(b)) };
            let mut bits = _mm_movemask_pd(_mm_cmplt_pd(m, zero)) as u64;
            if b + 2 > n {
                bits &= 1;
            }
            err_words[b >> 6] |= bits << (b & 63);
            b += 2;
        }
    }
}

#[cfg(target_arch = "x86_64")]
pub(crate) use x86::{check_pass_avx2, check_pass_sse2, hard_decision_avx2, hard_decision_sse2};

#[cfg(test)]
mod tests {
    use super::*;

    /// Scalar reference of one check-row update, lifted verbatim from the
    /// property-pinned `propagate` loop — the ground truth the kernels must
    /// match bit for bit.
    fn scalar_check_row(syn: bool, msgs: &[f64], scale: f64, out: &mut [f64]) {
        let mut neg = u64::from(syn);
        let mut min1 = f64::INFINITY;
        let mut min2 = f64::INFINITY;
        let mut min1_idx = usize::MAX;
        for (j, &msg) in msgs.iter().enumerate() {
            neg ^= u64::from(msg < 0.0);
            let mag = msg.abs();
            let new1 = mag < min1;
            min2 = if new1 {
                min1
            } else if mag < min2 {
                mag
            } else {
                min2
            };
            min1 = if new1 { mag } else { min1 };
            min1_idx = if new1 { j } else { min1_idx };
        }
        let scaled1 = scale * min1;
        let scaled2 = scale * min2;
        for (j, (&msg, out)) in msgs.iter().zip(out.iter_mut()).enumerate() {
            let flip = (neg ^ u64::from(msg < 0.0)) << 63;
            let v = if j == min1_idx { scaled2 } else { scaled1 };
            *out = f64::from_bits(v.to_bits() ^ flip);
        }
    }

    /// Builds a row-interleaved arena from per-row message lists (lane = row
    /// within its group of four, padding = `+∞`, group depth = max degree),
    /// runs the requested kernel over it, and asserts the real-edge outputs
    /// are byte-identical to the scalar reference.
    #[cfg(target_arch = "x86_64")]
    fn assert_kernel_matches_scalar(rows: &[(bool, Vec<f64>)], scale: f64, isa: SimdIsa) {
        use crate::sparse::PAD_LANES;
        let m = rows.len();
        let groups = m.div_ceil(PAD_LANES);
        let mut group_ptr = vec![0usize];
        let mut slots: Vec<Vec<usize>> = Vec::with_capacity(m);
        let mut base = 0usize;
        for g in 0..groups {
            let first = g * PAD_LANES;
            let last = (first + PAD_LANES).min(m);
            let depth = (first..last).map(|r| rows[r].1.len()).max().unwrap_or(0);
            for (lane, r) in (first..last).enumerate() {
                slots.push(
                    (0..rows[r].1.len())
                        .map(|j| base + j * PAD_LANES + lane)
                        .collect(),
                );
            }
            base += depth * PAD_LANES;
            group_ptr.push(base);
        }
        let mut var_to_check = vec![f64::INFINITY; base];
        for (r, (_, msgs)) in rows.iter().enumerate() {
            for (j, &msg) in msgs.iter().enumerate() {
                var_to_check[slots[r][j]] = msg;
            }
        }
        let mut syn_mask = vec![0u64; groups * PAD_LANES];
        for (r, &(syn, _)) in rows.iter().enumerate() {
            syn_mask[r] = if syn { u64::MAX } else { 0 };
        }
        let mut check_to_var = vec![0.0f64; base];
        match isa {
            // SAFETY: the test harness only calls this arm after
            // `is_x86_feature_detected!` confirmed the ISA on this host.
            SimdIsa::Avx2 => unsafe {
                check_pass_avx2(
                    &syn_mask,
                    &group_ptr,
                    &var_to_check,
                    &mut check_to_var,
                    scale,
                );
            },
            // SAFETY: SSE2 is the x86-64 baseline — always available here.
            SimdIsa::Sse2 => unsafe {
                check_pass_sse2(
                    &syn_mask,
                    &group_ptr,
                    &var_to_check,
                    &mut check_to_var,
                    scale,
                );
            },
            SimdIsa::Scalar => unreachable!("scalar has no kernel"),
        }
        for (r, (syn, msgs)) in rows.iter().enumerate() {
            let mut expect = vec![0.0f64; msgs.len()];
            scalar_check_row(*syn, msgs, scale, &mut expect);
            for (j, want) in expect.iter().enumerate() {
                let got = check_to_var[slots[r][j]];
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "row {r} edge {j} ({isa:?}): got {got:?}, want {want:?}"
                );
            }
        }
    }

    /// Adversarial rows: `-0.0` messages (sign predicate must treat them as
    /// positive), exact magnitude ties, infinities, degree-1 and empty rows,
    /// and degrees that are not lane multiples.
    #[cfg(target_arch = "x86_64")]
    fn adversarial_rows() -> Vec<(bool, Vec<f64>)> {
        vec![
            (true, vec![1.5, -2.5, 0.75, -0.25, 3.0]), // degree 5: one partial vector
            (false, vec![-0.0, 0.0, -1.0]),            // -0.0 must stay "positive"
            (true, vec![2.0, -2.0, 2.0]),              // |.|-ties across signs
            (false, vec![0.5]),                        // degree 1: min2 stays +inf
            (true, vec![]),                            // empty row: nothing written
            (false, vec![f64::INFINITY, -1.0, f64::NEG_INFINITY, 4.0]),
            (true, vec![1e-300, -1e-300, 1e308, -1e308, 7.0, -7.0, 0.125]),
            (false, vec![3.0; 8]), // all tied, two full vectors
            (
                true,
                vec![-4.0, -3.0, -2.0, -1.0, -5.0, -6.0, -7.0, -8.0, -9.0],
            ),
        ]
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn sse2_check_pass_is_bit_identical_to_scalar() {
        assert_kernel_matches_scalar(&adversarial_rows(), 0.75, SimdIsa::Sse2);
        assert_kernel_matches_scalar(&adversarial_rows(), 1.0, SimdIsa::Sse2);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_check_pass_is_bit_identical_to_scalar() {
        if !is_x86_feature_detected!("avx2") {
            eprintln!("avx2 not available on this host; kernel covered by SSE2 test only");
            return;
        }
        assert_kernel_matches_scalar(&adversarial_rows(), 0.75, SimdIsa::Avx2);
        assert_kernel_matches_scalar(&adversarial_rows(), 1.0, SimdIsa::Avx2);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn hard_decision_kernels_pack_sign_predicates() {
        // 70 entries straddles a word boundary; the padded tail (negative
        // values past n) must be masked off, and -0.0 / NaN count as positive.
        let n: usize = 70;
        let mut llrs: Vec<f64> = (0..n)
            .map(|c| match c % 5 {
                0 => -1.0,
                1 => 0.0,
                2 => -0.0,
                3 => f64::NAN,
                _ => 2.5,
            })
            .collect();
        llrs.resize(n.next_multiple_of(4), -1.0); // poisoned padding
        let words = n.div_ceil(64);
        let expect: Vec<u64> = (0..words)
            .map(|w| {
                let mut word = 0u64;
                for b in 0..64 {
                    let c = w * 64 + b;
                    if c < n && llrs[c] < 0.0 {
                        word |= 1 << b;
                    }
                }
                word
            })
            .collect();
        let mut got = vec![u64::MAX; words];
        // SAFETY: SSE2 is the x86-64 baseline; buffers sized per the contract.
        unsafe { hard_decision_sse2(&llrs, n, &mut got) };
        assert_eq!(got, expect, "sse2 hard decision");
        if is_x86_feature_detected!("avx2") {
            let mut got = vec![u64::MAX; words];
            // SAFETY: guarded by the runtime AVX2 check directly above.
            unsafe { hard_decision_avx2(&llrs, n, &mut got) };
            assert_eq!(got, expect, "avx2 hard decision");
        }
    }

    #[test]
    fn mode_parsing_and_report_shape() {
        let auto = Simd::with_mode(SimdMode::Auto);
        let force = Simd::with_mode(SimdMode::Force);
        let off = Simd::with_mode(SimdMode::Off);
        assert!(!auto.forced());
        assert!(force.forced());
        assert!(off.forced());
        assert_eq!(off.isa(), SimdIsa::Scalar);
        assert_eq!(off.lanes(), 1);
        assert!(!off.is_vectorized());
        assert_eq!(auto.isa(), force.isa(), "force selects what auto selects");
        #[cfg(target_arch = "x86_64")]
        {
            assert!(auto.is_vectorized(), "x86-64 always has at least SSE2");
            assert!(auto.lanes() >= 2);
        }
        assert_eq!(Simd::scalar().isa_name(), "scalar");
        assert!(matches!(auto.isa_name(), "avx2" | "sse2" | "scalar"));
    }
}
