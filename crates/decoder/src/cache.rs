//! A deterministic per-syndrome decode cache for the batch Monte-Carlo hot path.
//!
//! BP+OSD decoding is a pure function of `(parity-check matrix, priors, syndrome)`
//! — no randomness, no history. Monte-Carlo sampling at physical rates feeds the
//! decoder a heavily repeated syndrome distribution (at `p ~ 3e-3` on
//! `[[72,12,6]]`, most non-trivial shots carry a single data error or a single
//! measurement flip, i.e. one of ~100 distinct syndromes per sector), so a small
//! direct-mapped cache keyed by the packed syndrome bits turns the vast majority
//! of decodes into a word-compare plus a copy. Because every entry stores the
//! exact output the decoder would produce, cache hits are bit-identical to cache
//! misses: estimates do not depend on hit order, eviction pattern, thread count,
//! or batch size.
//!
//! The cache is context-tagged: [`DecodeCache::ensure`] clears it whenever the
//! decoding context (matrix shape + priors identity) changes, so a scratch that
//! migrates between sectors or channels can never replay a stale correction.

/// Number of direct-mapped slots (power of two). Sized to hold the popular
/// syndromes of the catalog codes — singles plus most of the two-event tail,
/// a few thousand distinct at physical rates — while keeping the per-worker
/// footprint small (SLOTS × (syndrome + correction) words, ~400 KiB here).
const SLOTS: usize = 16384;

/// A direct-mapped syndrome → correction cache for one decoding context.
#[derive(Debug, Clone, Default)]
pub struct DecodeCache {
    /// Context tag: digest of the decoding context (sector matrix shape + priors
    /// identity). A mismatch in [`DecodeCache::ensure`] clears every slot.
    tag: u64,
    /// Words per packed syndrome (`ceil(checks / 64)`).
    syn_words: usize,
    /// Words per packed correction (`ceil(vars / 64)`).
    corr_words: usize,
    /// Slot occupancy flags.
    valid: Vec<bool>,
    /// Packed syndromes, `SLOTS × syn_words`, slot-major.
    syn: Vec<u64>,
    /// Packed corrections, `SLOTS × corr_words`, slot-major.
    corr: Vec<u64>,
    /// Lookup hits since the last clear (telemetry for tests/benches).
    hits: u64,
    /// Lookup misses since the last clear.
    misses: u64,
}

impl DecodeCache {
    /// Creates an empty cache; storage is sized by the first [`DecodeCache::ensure`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds the cache to a decoding context, clearing it if the context changed.
    /// Allocates only on first use or when the shape grows — the Monte-Carlo
    /// steady state (one context per run) performs no allocation here.
    pub fn ensure(&mut self, tag: u64, checks: usize, vars: usize) {
        let syn_words = checks.div_ceil(64).max(1);
        let corr_words = vars.div_ceil(64).max(1);
        if self.tag == tag
            && self.syn_words == syn_words
            && self.corr_words == corr_words
            && !self.valid.is_empty()
        {
            return;
        }
        self.tag = tag;
        self.syn_words = syn_words;
        self.corr_words = corr_words;
        self.valid.clear();
        self.valid.resize(SLOTS, false);
        self.syn.clear();
        self.syn.resize(SLOTS * syn_words, 0);
        self.corr.clear();
        self.corr.resize(SLOTS * corr_words, 0);
        self.hits = 0;
        self.misses = 0;
    }

    /// The direct-mapped slot of a packed syndrome.
    fn slot_of(&self, syn: &[u64]) -> usize {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for &w in syn {
            hash ^= w;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // A multiply alone never diffuses a bit *downward*, so without a
        // finalizer every weight-1 syndrome above bit log2(SLOTS) would share
        // one slot. Murmur3's fmix64 spreads every syndrome bit into the index.
        hash ^= hash >> 33;
        hash = hash.wrapping_mul(0xff51_afd7_ed55_8ccd);
        hash ^= hash >> 33;
        (hash as usize) & (SLOTS - 1)
    }

    /// Looks up a packed syndrome; on a hit returns the stored packed correction.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `syn` does not match the bound context's word count.
    pub fn lookup(&mut self, syn: &[u64]) -> Option<&[u64]> {
        debug_assert_eq!(syn.len(), self.syn_words);
        let slot = self.slot_of(syn);
        let stored = &self.syn[slot * self.syn_words..(slot + 1) * self.syn_words];
        if self.valid[slot] && stored == syn {
            self.hits += 1;
            Some(&self.corr[slot * self.corr_words..(slot + 1) * self.corr_words])
        } else {
            self.misses += 1;
            None
        }
    }

    /// Stores the correction for a syndrome (overwriting whatever occupied the
    /// slot — direct-mapped eviction never affects results, only hit rates).
    ///
    /// # Panics
    ///
    /// Panics (debug) if the word counts do not match the bound context.
    pub fn insert(&mut self, syn: &[u64], corr: &[u64]) {
        debug_assert_eq!(syn.len(), self.syn_words);
        debug_assert_eq!(corr.len(), self.corr_words);
        let slot = self.slot_of(syn);
        self.valid[slot] = true;
        self.syn[slot * self.syn_words..(slot + 1) * self.syn_words].copy_from_slice(syn);
        self.corr[slot * self.corr_words..(slot + 1) * self.corr_words].copy_from_slice(corr);
    }

    /// Lookup hits since the cache was last (re)bound.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookup misses since the cache was last (re)bound.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_roundtrip_and_counters() {
        let mut cache = DecodeCache::new();
        cache.ensure(7, 36, 72);
        let syn = [0b1010u64];
        let corr = [0x5u64, 0x0];
        assert!(cache.lookup(&syn).is_none());
        cache.insert(&syn, &corr);
        assert_eq!(cache.lookup(&syn), Some(&corr[..]));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn context_change_clears() {
        let mut cache = DecodeCache::new();
        cache.ensure(7, 36, 72);
        cache.insert(&[1], &[2, 0]);
        // Same context: entries survive.
        cache.ensure(7, 36, 72);
        assert!(cache.lookup(&[1]).is_some());
        // New tag: entries gone.
        cache.ensure(8, 36, 72);
        assert!(cache.lookup(&[1]).is_none());
        // New shape: entries gone and word counts rebound.
        cache.ensure(8, 100, 72);
        assert!(cache.lookup(&[1, 0]).is_none());
    }

    #[test]
    fn distinct_syndromes_do_not_alias_results() {
        // Even when two syndromes collide on a slot, the full-syndrome compare
        // prevents one's correction from being returned for the other.
        let mut cache = DecodeCache::new();
        cache.ensure(1, 64, 64);
        for s in 0..10_000u64 {
            if let Some(corr) = cache.lookup(&[s]) {
                assert_eq!(corr, &[s ^ 0xABCD]);
            } else {
                cache.insert(&[s], &[s ^ 0xABCD]);
            }
        }
        // Re-probe: every hit must return its own correction.
        for s in 0..10_000u64 {
            if let Some(corr) = cache.lookup(&[s]) {
                assert_eq!(corr, &[s ^ 0xABCD]);
            }
        }
    }
}
