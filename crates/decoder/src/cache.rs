//! A deterministic per-syndrome decode cache for the batch Monte-Carlo hot path.
//!
//! BP+OSD decoding is a pure function of `(parity-check matrix, priors, syndrome)`
//! — no randomness, no history. Monte-Carlo sampling at physical rates feeds the
//! decoder a heavily repeated syndrome distribution (at `p ~ 3e-3` on
//! `[[72,12,6]]`, most non-trivial shots carry a single data error or a single
//! measurement flip, i.e. one of ~100 distinct syndromes per sector), so a small
//! set-associative cache keyed by the packed syndrome bits turns the vast
//! majority of decodes into a word-compare plus a copy. Because every entry
//! stores the exact output the decoder would produce, cache hits are
//! bit-identical to cache misses: estimates do not depend on hit order, eviction
//! pattern, thread count, or batch size.
//!
//! The cache is 4-way set-associative with round-robin eviction inside a set —
//! direct mapping showed measurable conflict misses at 16k slots once structured
//! channels fattened the syndrome distribution. Total slot count is configurable
//! via `CYCLONE_DECODE_CACHE_SLOTS` (power of two), and conflict evictions are
//! counted next to hits/misses so associativity gains stay observable.
//!
//! The cache is context-tagged: [`DecodeCache::ensure`] clears it whenever the
//! decoding context (matrix shape + priors identity) changes, so a scratch that
//! migrates between sectors or channels can never replay a stale correction.
//!
//! A bound cache can also be persisted ([`DecodeCache::save_to`] /
//! [`DecodeCache::load_from`]): the file records the context tag and word
//! shapes, and a load only admits entries whose context matches the currently
//! bound one, so sweep re-runs and CI warm runs skip the compulsory-miss wall
//! without ever replaying a correction from a foreign matrix or channel.

use std::path::Path;
use std::sync::OnceLock;

/// Associativity: ways per set. Four ways absorb the conflict chains that a
/// direct-mapped table shows on structured-channel syndrome mixes while keeping
/// the probe loop short enough to stay in the word-compare regime.
const WAYS: usize = 4;

/// Default number of cache slots (power of two). Sized to hold the popular
/// syndromes of the catalog codes — singles plus most of the two-event tail,
/// a few thousand distinct at physical rates — while keeping the per-worker
/// footprint small (slots × (syndrome + correction) words, ~400 KiB here).
pub const DEFAULT_SLOTS: usize = 16384;

/// Schema version written by [`DecodeCache::save_to`].
const PERSIST_SCHEMA: u64 = 1;

/// File-format marker written by [`DecodeCache::save_to`].
const PERSIST_KIND: &str = "cyclone-decode-cache";

/// Parses a `CYCLONE_DECODE_CACHE_SLOTS`-style override. `None` (unset) yields
/// [`DEFAULT_SLOTS`]; a set value must parse as a power of two with at least
/// one full set ([`WAYS`] slots).
fn parse_slots(raw: Option<&str>) -> Result<usize, String> {
    let Some(raw) = raw else {
        return Ok(DEFAULT_SLOTS);
    };
    let value: usize = raw
        .trim()
        .parse()
        .map_err(|_| format!("CYCLONE_DECODE_CACHE_SLOTS: not an integer: {raw:?}"))?;
    if !value.is_power_of_two() || value < WAYS {
        return Err(format!(
            "CYCLONE_DECODE_CACHE_SLOTS: must be a power of two >= {WAYS}, got {value}"
        ));
    }
    Ok(value)
}

/// The process-wide slot count (env override read once).
fn env_slots() -> usize {
    static SLOTS: OnceLock<usize> = OnceLock::new();
    *SLOTS.get_or_init(|| {
        let raw = std::env::var("CYCLONE_DECODE_CACHE_SLOTS").ok();
        match parse_slots(raw.as_deref()) {
            Ok(slots) => slots,
            Err(message) => panic!("{message}"),
        }
    })
}

/// A set-associative syndrome → correction cache for one decoding context.
#[derive(Debug, Clone)]
pub struct DecodeCache {
    /// Context tag: digest of the decoding context (sector matrix shape + priors
    /// identity). A mismatch in [`DecodeCache::ensure`] clears every slot.
    tag: u64,
    /// Total slots (`sets × WAYS`), power of two.
    slots: usize,
    /// Words per packed syndrome (`ceil(checks / 64)`).
    syn_words: usize,
    /// Words per packed correction (`ceil(vars / 64)`).
    corr_words: usize,
    /// Slot occupancy flags, way-major within each set.
    valid: Vec<bool>,
    /// Packed syndromes, `slots × syn_words`, slot-major.
    syn: Vec<u64>,
    /// Packed corrections, `slots × corr_words`, slot-major.
    corr: Vec<u64>,
    /// Per-set round-robin eviction cursor.
    next_way: Vec<u8>,
    /// Lookup hits since the last clear (telemetry for tests/benches).
    hits: u64,
    /// Lookup misses since the last clear.
    misses: u64,
    /// Conflict evictions (insert into a full set) since the last clear.
    evictions: u64,
}

impl Default for DecodeCache {
    fn default() -> Self {
        Self::new()
    }
}

impl DecodeCache {
    /// Creates an empty cache sized by `CYCLONE_DECODE_CACHE_SLOTS` (default
    /// [`DEFAULT_SLOTS`]); storage is allocated by the first
    /// [`DecodeCache::ensure`].
    ///
    /// # Panics
    ///
    /// Panics if `CYCLONE_DECODE_CACHE_SLOTS` is set to anything other than a
    /// power of two with at least one full set.
    pub fn new() -> Self {
        Self::with_slots(env_slots())
    }

    /// Creates an empty cache with an explicit total slot count (must be a
    /// power of two holding at least one full set).
    ///
    /// # Panics
    ///
    /// Panics if `slots` is not a power of two at least [`WAYS`].
    pub fn with_slots(slots: usize) -> Self {
        assert!(
            slots.is_power_of_two() && slots >= WAYS,
            "DecodeCache slots must be a power of two >= {WAYS}, got {slots}"
        );
        Self {
            tag: 0,
            slots,
            syn_words: 0,
            corr_words: 0,
            valid: Vec::new(),
            syn: Vec::new(),
            corr: Vec::new(),
            next_way: Vec::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Binds the cache to a decoding context, clearing it if the context changed.
    /// Allocates only on first use or when the shape grows — the Monte-Carlo
    /// steady state (one context per run) performs no allocation here.
    pub fn ensure(&mut self, tag: u64, checks: usize, vars: usize) {
        let syn_words = checks.div_ceil(64).max(1);
        let corr_words = vars.div_ceil(64).max(1);
        if self.tag == tag
            && self.syn_words == syn_words
            && self.corr_words == corr_words
            && !self.valid.is_empty()
        {
            return;
        }
        self.tag = tag;
        self.syn_words = syn_words;
        self.corr_words = corr_words;
        self.valid.clear();
        self.valid.resize(self.slots, false);
        self.syn.clear();
        self.syn.resize(self.slots * syn_words, 0);
        self.corr.clear();
        self.corr.resize(self.slots * corr_words, 0);
        self.next_way.clear();
        self.next_way.resize(self.slots / WAYS, 0);
        self.hits = 0;
        self.misses = 0;
        self.evictions = 0;
    }

    /// The set index of a packed syndrome.
    fn set_of(&self, syn: &[u64]) -> usize {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for &w in syn {
            hash ^= w;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // A multiply alone never diffuses a bit *downward*, so without a
        // finalizer every weight-1 syndrome above bit log2(sets) would share
        // one set. Murmur3's fmix64 spreads every syndrome bit into the index.
        hash ^= hash >> 33;
        hash = hash.wrapping_mul(0xff51_afd7_ed55_8ccd);
        hash ^= hash >> 33;
        (hash as usize) & (self.slots / WAYS - 1)
    }

    /// The storage slot of `(set, way)`.
    fn slot_index(&self, set: usize, way: usize) -> usize {
        set * WAYS + way
    }

    /// Looks up a packed syndrome; on a hit returns the stored packed correction.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `syn` does not match the bound context's word count.
    // cyclone-lint: hot-path
    pub fn lookup(&mut self, syn: &[u64]) -> Option<&[u64]> {
        debug_assert_eq!(syn.len(), self.syn_words);
        let set = self.set_of(syn);
        for way in 0..WAYS {
            let slot = self.slot_index(set, way);
            let stored = &self.syn[slot * self.syn_words..(slot + 1) * self.syn_words];
            if self.valid[slot] && stored == syn {
                self.hits += 1;
                return Some(&self.corr[slot * self.corr_words..(slot + 1) * self.corr_words]);
            }
        }
        self.misses += 1;
        None
    }

    /// Stores the correction for a syndrome. An already-present syndrome is
    /// overwritten in place; otherwise an invalid way is filled, or — when the
    /// set is full — the round-robin victim way is evicted (counted in
    /// [`DecodeCache::evictions`]; eviction never affects results, only hit
    /// rates, because every entry is the exact decoder output).
    ///
    /// # Panics
    ///
    /// Panics (debug) if the word counts do not match the bound context.
    pub fn insert(&mut self, syn: &[u64], corr: &[u64]) {
        debug_assert_eq!(syn.len(), self.syn_words);
        debug_assert_eq!(corr.len(), self.corr_words);
        let set = self.set_of(syn);
        let mut victim = None;
        for way in 0..WAYS {
            let slot = self.slot_index(set, way);
            let stored = &self.syn[slot * self.syn_words..(slot + 1) * self.syn_words];
            if self.valid[slot] && stored == syn {
                victim = Some(slot);
                break;
            }
            if !self.valid[slot] && victim.is_none() {
                victim = Some(slot);
            }
        }
        let slot = match victim {
            Some(slot) => slot,
            None => {
                let way = usize::from(self.next_way[set]);
                self.next_way[set] = ((way + 1) % WAYS) as u8;
                self.evictions += 1;
                self.slot_index(set, way)
            }
        };
        self.valid[slot] = true;
        self.syn[slot * self.syn_words..(slot + 1) * self.syn_words].copy_from_slice(syn);
        self.corr[slot * self.corr_words..(slot + 1) * self.corr_words].copy_from_slice(corr);
    }
    // cyclone-lint: end-hot-path

    /// Lookup hits since the cache was last (re)bound.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookup misses since the cache was last (re)bound.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Conflict evictions (inserts into a full set) since the last (re)bind.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Number of valid entries currently stored.
    pub fn len(&self) -> usize {
        self.valid.iter().filter(|&&v| v).count()
    }

    /// Whether the cache holds no entries (or is unbound).
    pub fn is_empty(&self) -> bool {
        !self.valid.iter().any(|&v| v)
    }

    /// Serializes every valid entry (plus the context tag and word shapes) to
    /// `path` as JSON, via an atomic temp-file + rename in the same directory,
    /// so readers never observe a torn file. Entries are pure decoder outputs,
    /// so the file is a throwaway accelerator: deleting it at any time only
    /// costs warm-up misses, never correctness.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing or renaming the temp file.
    pub fn save_to(&self, path: &Path) -> std::io::Result<()> {
        use serde_json::Value;
        use std::collections::BTreeMap;

        let mut entries = Vec::new();
        for slot in 0..self.slots.min(self.valid.len()) {
            if !self.valid[slot] {
                continue;
            }
            let syn = &self.syn[slot * self.syn_words..(slot + 1) * self.syn_words];
            let corr = &self.corr[slot * self.corr_words..(slot + 1) * self.corr_words];
            let mut entry = BTreeMap::new();
            entry.insert("s".to_string(), Value::String(words_to_hex(syn)));
            entry.insert("c".to_string(), Value::String(words_to_hex(corr)));
            entries.push(Value::Object(entry));
        }
        let mut root = BTreeMap::new();
        root.insert("kind".to_string(), Value::String(PERSIST_KIND.to_string()));
        root.insert("schema".to_string(), Value::Number(PERSIST_SCHEMA as f64));
        root.insert(
            "tag".to_string(),
            Value::String(format!("{:016x}", self.tag)),
        );
        root.insert(
            "syn_words".to_string(),
            Value::Number(self.syn_words as f64),
        );
        root.insert(
            "corr_words".to_string(),
            Value::Number(self.corr_words as f64),
        );
        root.insert("entries".to_string(), Value::Array(entries));
        let text = serde_json::to_string(&Value::Object(root));

        // Atomic publish: unique temp name in the same directory, then rename.
        let dir = path.parent().unwrap_or_else(|| Path::new("."));
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("decode-cache.json");
        // The nonce only has to be unique among concurrent writers of one
        // path: pid distinguishes processes, a process-wide counter
        // distinguishes threads. (A wall-clock nonce would work too, but this
        // module is decode-hot-path territory where `cyclone-lint` bans
        // `SystemTime` outright — save paths included, so the ban stays a
        // simple module-wide invariant.)
        static SAVE_NONCE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let nonce = SAVE_NONCE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = dir.join(format!(".{name}.tmp.{}.{nonce}", std::process::id()));
        std::fs::write(&tmp, text)?;
        match std::fs::rename(&tmp, path) {
            Ok(()) => Ok(()),
            Err(err) => {
                let _ = std::fs::remove_file(&tmp);
                Err(err)
            }
        }
    }

    /// Loads persisted entries from `path` into the cache, which must already
    /// be bound (via [`DecodeCache::ensure`]) to the context the file was
    /// saved under. Entries are admitted through the normal insert path, so a
    /// file saved at one slot count loads cleanly into any other.
    ///
    /// Returns the number of entries admitted. Any mismatch — missing or
    /// unreadable file, corrupt JSON, foreign kind/schema, or a context tag or
    /// word shape different from the bound one — loads nothing and returns 0:
    /// a persisted cache is an accelerator, never a correctness input.
    pub fn load_from(&mut self, path: &Path) -> usize {
        if self.valid.is_empty() {
            return 0;
        }
        let Ok(text) = std::fs::read_to_string(path) else {
            return 0;
        };
        let Ok(root) = serde_json::from_str(&text) else {
            return 0;
        };
        if root.get("kind").and_then(|v| v.as_str()) != Some(PERSIST_KIND)
            || root.get("schema").and_then(|v| v.as_u64()) != Some(PERSIST_SCHEMA)
            || root.get("tag").and_then(|v| v.as_str())
                != Some(format!("{:016x}", self.tag).as_str())
            || root.get("syn_words").and_then(|v| v.as_u64()) != Some(self.syn_words as u64)
            || root.get("corr_words").and_then(|v| v.as_u64()) != Some(self.corr_words as u64)
        {
            return 0;
        }
        let Some(entries) = root.get("entries").and_then(|v| v.as_array()) else {
            return 0;
        };
        let mut syn = vec![0u64; self.syn_words];
        let mut corr = vec![0u64; self.corr_words];
        let mut loaded = 0;
        for entry in entries {
            let Some(s) = entry.get("s").and_then(|v| v.as_str()) else {
                continue;
            };
            let Some(c) = entry.get("c").and_then(|v| v.as_str()) else {
                continue;
            };
            if hex_to_words(s, &mut syn).is_err() || hex_to_words(c, &mut corr).is_err() {
                continue;
            }
            self.insert(&syn, &corr);
            loaded += 1;
        }
        loaded
    }
}

/// Encodes packed words as lowercase fixed-width hex, comma-joined. Hex strings
/// keep `u64` payloads exact through the JSON shim, whose numbers are `f64`
/// (lossy above 2^53).
fn words_to_hex(words: &[u64]) -> String {
    let mut out = String::with_capacity(words.len() * 17);
    for (i, &w) in words.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{w:016x}"));
    }
    out
}

/// Decodes a [`words_to_hex`] string into `out`; errors on any shape or digit
/// mismatch.
fn hex_to_words(text: &str, out: &mut [u64]) -> Result<(), ()> {
    let mut parts = text.split(',');
    for slot in out.iter_mut() {
        let part = parts.next().ok_or(())?;
        *slot = u64::from_str_radix(part, 16).map_err(|_| ())?;
    }
    if parts.next().is_some() {
        return Err(());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_roundtrip_and_counters() {
        let mut cache = DecodeCache::new();
        cache.ensure(7, 36, 72);
        let syn = [0b1010u64];
        let corr = [0x5u64, 0x0];
        assert!(cache.lookup(&syn).is_none());
        cache.insert(&syn, &corr);
        assert_eq!(cache.lookup(&syn), Some(&corr[..]));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn context_change_clears() {
        let mut cache = DecodeCache::new();
        cache.ensure(7, 36, 72);
        cache.insert(&[1], &[2, 0]);
        // Same context: entries survive.
        cache.ensure(7, 36, 72);
        assert!(cache.lookup(&[1]).is_some());
        // New tag: entries gone.
        cache.ensure(8, 36, 72);
        assert!(cache.lookup(&[1]).is_none());
        // New shape: entries gone and word counts rebound.
        cache.ensure(8, 100, 72);
        assert!(cache.lookup(&[1, 0]).is_none());
    }

    #[test]
    fn distinct_syndromes_do_not_alias_results() {
        // Even when two syndromes collide on a set, the full-syndrome compare
        // prevents one's correction from being returned for the other.
        let mut cache = DecodeCache::new();
        cache.ensure(1, 64, 64);
        for s in 0..10_000u64 {
            if let Some(corr) = cache.lookup(&[s]) {
                assert_eq!(corr, &[s ^ 0xABCD]);
            } else {
                cache.insert(&[s], &[s ^ 0xABCD]);
            }
        }
        // Re-probe: every hit must return its own correction.
        for s in 0..10_000u64 {
            if let Some(corr) = cache.lookup(&[s]) {
                assert_eq!(corr, &[s ^ 0xABCD]);
            }
        }
    }

    #[test]
    fn set_retains_up_to_four_conflicting_syndromes() {
        // A minimal cache with a single set: the first WAYS distinct syndromes
        // must all be retained simultaneously (direct mapping kept only one).
        let mut cache = DecodeCache::with_slots(WAYS);
        cache.ensure(3, 64, 64);
        let syndromes: Vec<[u64; 1]> = (1..=WAYS as u64).map(|s| [s]).collect();
        for syn in &syndromes {
            cache.insert(syn, &[syn[0] * 10]);
        }
        assert_eq!(cache.evictions(), 0);
        for syn in &syndromes {
            assert_eq!(cache.lookup(syn), Some(&[syn[0] * 10][..]));
        }
        assert_eq!(cache.hits(), WAYS as u64);
    }

    #[test]
    fn full_set_evicts_round_robin_and_counts() {
        let mut cache = DecodeCache::with_slots(WAYS);
        cache.ensure(3, 64, 64);
        for s in 1..=WAYS as u64 + 2 {
            cache.insert(&[s], &[s]);
        }
        // Two inserts past capacity evicted two victims.
        assert_eq!(cache.evictions(), 2);
        assert_eq!(cache.len(), WAYS);
        // The newest entries are present.
        assert!(cache.lookup(&[WAYS as u64 + 1]).is_some());
        assert!(cache.lookup(&[WAYS as u64 + 2]).is_some());
    }

    #[test]
    fn reinserting_same_syndrome_overwrites_in_place() {
        let mut cache = DecodeCache::with_slots(WAYS);
        cache.ensure(3, 64, 64);
        cache.insert(&[5], &[1]);
        cache.insert(&[5], &[2]);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.lookup(&[5]), Some(&[2u64][..]));
    }

    #[test]
    fn slots_parse_validates() {
        assert_eq!(parse_slots(None), Ok(DEFAULT_SLOTS));
        assert_eq!(parse_slots(Some("4096")), Ok(4096));
        assert_eq!(parse_slots(Some(" 64 ")), Ok(64));
        assert!(parse_slots(Some("1000")).is_err()); // not a power of two
        assert!(parse_slots(Some("2")).is_err()); // below one set
        assert!(parse_slots(Some("zero")).is_err());
        assert!(parse_slots(Some("-64")).is_err());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn with_slots_rejects_non_power_of_two() {
        let _ = DecodeCache::with_slots(100);
    }

    #[test]
    fn persisted_roundtrip() {
        let dir = std::env::temp_dir().join(format!("decode-cache-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.json");

        let mut cache = DecodeCache::with_slots(64);
        cache.ensure(0xDEAD_BEEF, 72, 144);
        for s in 1..40u64 {
            cache.insert(&[s, s << 32], &[!s, s.rotate_left(7), 0]);
        }
        let stored = cache.len();
        cache.save_to(&path).unwrap();

        // A fresh cache bound to the same context (different slot count to
        // prove slot-layout independence) admits every entry; a smaller
        // geometry may conflict-evict some, but never corrupts the rest.
        let mut warm = DecodeCache::with_slots(256);
        warm.ensure(0xDEAD_BEEF, 72, 144);
        assert_eq!(warm.load_from(&path), stored);
        let evicted = warm.evictions() as usize;
        assert_eq!(warm.len(), stored - evicted);
        let mut surviving = 0;
        for s in 1..40u64 {
            if let Some(corr) = warm.lookup(&[s, s << 32]) {
                assert_eq!(corr, &[!s, s.rotate_left(7), 0][..]);
                surviving += 1;
            }
        }
        assert_eq!(surviving, stored - evicted);
        assert!(surviving > stored / 2, "eviction ate the cache");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn persisted_load_rejects_foreign_context_and_corrupt_files() {
        let dir = std::env::temp_dir().join(format!("decode-cache-rej-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");

        let mut cache = DecodeCache::with_slots(64);
        cache.ensure(1, 72, 144);
        cache.insert(&[1, 2], &[3, 4, 5]);
        cache.save_to(&path).unwrap();

        // Foreign tag: nothing loads.
        let mut other = DecodeCache::with_slots(64);
        other.ensure(2, 72, 144);
        assert_eq!(other.load_from(&path), 0);
        // Foreign shape: nothing loads.
        let mut shaped = DecodeCache::with_slots(64);
        shaped.ensure(1, 72, 288);
        assert_eq!(shaped.load_from(&path), 0);
        // Unbound cache: nothing loads.
        assert_eq!(DecodeCache::with_slots(64).load_from(&path), 0);
        // Missing file: nothing loads.
        let mut fresh = DecodeCache::with_slots(64);
        fresh.ensure(1, 72, 144);
        assert_eq!(fresh.load_from(&dir.join("missing.json")), 0);
        // Corrupt JSON: nothing loads, cache still usable.
        std::fs::write(&path, "{ not json").unwrap();
        assert_eq!(fresh.load_from(&path), 0);
        fresh.insert(&[9, 9], &[9, 9, 9]);
        assert_eq!(fresh.lookup(&[9, 9]), Some(&[9u64, 9, 9][..]));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn repeated_saves_leave_no_temp_files() {
        // The atomic-publish temp names come from a pid + process-wide counter
        // (not wall-clock), so back-to-back saves must produce distinct temp
        // files, publish cleanly, and leave nothing behind in the directory.
        let dir = std::env::temp_dir().join(format!("decode-cache-tmp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");

        let mut cache = DecodeCache::with_slots(64);
        cache.ensure(7, 72, 144);
        for i in 0..4u64 {
            cache.insert(&[i, i + 1], &[i, i, i]);
            cache.save_to(&path).unwrap();
        }
        let leftovers: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n != "cache.json")
            .collect();
        assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");

        let mut back = DecodeCache::with_slots(64);
        back.ensure(7, 72, 144);
        assert_eq!(back.load_from(&path), 4);

        std::fs::remove_dir_all(&dir).ok();
    }
}
